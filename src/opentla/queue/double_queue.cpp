#include "opentla/queue/double_queue.hpp"

namespace opentla {

std::vector<AGSpec> DoubleQueueSystem::components() const {
  std::vector<AGSpec> out;
  out.push_back(property_as_ag(g, /*mover=*/false));  // TRUE +> G
  out.push_back({qe1, qm1});
  out.push_back({qe2, qm2});
  return out;
}

AGSpec DoubleQueueSystem::goal() const { return {dbl.env, dbl.queue}; }

namespace {
DoubleQueueSystem make_double_queue_impl(int capacity, int num_values, bool interleaving) {
  DoubleQueueSystem sys;
  const Domain values = range_domain(0, num_values - 1);
  const std::size_t n = static_cast<std::size_t>(capacity);

  sys.i = declare_channel(sys.vars, "i", values);
  sys.z = declare_channel(sys.vars, "z", values);
  sys.o = declare_channel(sys.vars, "o", values);
  sys.q1 = sys.vars.declare("q1", seq_domain(values, n));
  sys.q2 = sys.vars.declare("q2", seq_domain(values, n));
  sys.q = sys.vars.declare("q", seq_domain(values, 2 * n + 1));
  sys.capacity = capacity;

  auto build = [&](const Channel& in, const Channel& out, VarId q, int cap,
                   std::string suffix) {
    return interleaving ? build_queue_specs(sys.vars, in, out, q, cap, suffix)
                        : build_queue_specs_ni(sys.vars, in, out, q, cap, suffix);
  };

  // The base N-queue between i and o, buffering in q; the components are
  // its substitution instances (Section A.4).
  sys.base = build(sys.i, sys.o, sys.q, capacity, "");

  const std::map<VarId, VarId> sub1 = {{sys.o.sig, sys.z.sig},
                                       {sys.o.ack, sys.z.ack},
                                       {sys.o.val, sys.z.val},
                                       {sys.q, sys.q1}};
  const std::map<VarId, VarId> sub2 = {{sys.i.sig, sys.z.sig},
                                       {sys.i.ack, sys.z.ack},
                                       {sys.i.val, sys.z.val},
                                       {sys.q, sys.q2}};
  sys.qm1 = sys.base.queue.renamed(sub1, "QM^1");  // QM[z/o, q1/q]
  sys.qe1 = sys.base.env.renamed(sub1, "QE^1");
  sys.qm2 = sys.base.queue.renamed(sub2, "QM^2");  // QM[z/i, q2/q]
  sys.qe2 = sys.base.env.renamed(sub2, "QE^2");
  sys.qm1.fairness[0].label = "WF(QM^1)";
  sys.qm2.fairness[0].label = "WF(QM^2)";

  // F^[dbl] = F[(2N+1)/N]: the big queue over the same i, o, q.
  sys.dbl = build(sys.i, sys.o, sys.q, 2 * capacity + 1, "^dbl");

  sys.env_out = {sys.i.sig, sys.i.val, sys.o.ack};  // <i.snd, o.ack>
  sys.q1_out = {sys.z.sig, sys.z.val, sys.i.ack};   // <z.snd, i.ack>
  sys.q2_out = {sys.o.sig, sys.o.val, sys.z.ack};   // <o.snd, z.ack>
  sys.g = make_disjoint({sys.env_out, sys.q1_out, sys.q2_out}, "G");

  // qbar = q2 \o (IF z.sig # z.ack THEN <z.val> ELSE <>) \o q1: the oldest
  // items sit in q2, a value in flight on z sits between, q1 holds the
  // youngest.
  const Expr buffer = ex::ite(ex::neq(ex::var(sys.z.sig), ex::var(sys.z.ack)),
                              ex::make_tuple({ex::var(sys.z.val)}),
                              ex::constant(Value::empty_seq()));
  sys.qbar = ex::concat(ex::concat(ex::var(sys.q2), buffer), ex::var(sys.q1));

  return sys;
}
}  // namespace

DoubleQueueSystem make_double_queue(int capacity, int num_values) {
  return make_double_queue_impl(capacity, num_values, /*interleaving=*/true);
}

DoubleQueueSystem make_double_queue_ni(int capacity, int num_values) {
  return make_double_queue_impl(capacity, num_values, /*interleaving=*/false);
}

std::vector<AGSpec> TripleQueueSystem::components() const {
  std::vector<AGSpec> out;
  out.push_back(property_as_ag(g, /*mover=*/false));
  out.push_back({qe1, qm1});
  out.push_back({qe2, qm2});
  out.push_back({qe3, qm3});
  return out;
}

AGSpec TripleQueueSystem::goal() const { return {big.env, big.queue}; }

TripleQueueSystem make_triple_queue(int capacity, int num_values) {
  TripleQueueSystem sys;
  const Domain values = range_domain(0, num_values - 1);
  const std::size_t n = static_cast<std::size_t>(capacity);

  sys.i = declare_channel(sys.vars, "i", values);
  sys.z1 = declare_channel(sys.vars, "z1", values);
  sys.z2 = declare_channel(sys.vars, "z2", values);
  sys.o = declare_channel(sys.vars, "o", values);
  sys.q1 = sys.vars.declare("q1", seq_domain(values, n));
  sys.q2 = sys.vars.declare("q2", seq_domain(values, n));
  sys.q3 = sys.vars.declare("q3", seq_domain(values, n));
  sys.q = sys.vars.declare("q", seq_domain(values, 3 * n + 2));
  sys.capacity = capacity;

  // Each stage is built directly over its channels (equivalently, by
  // substitution from one spec, as make_double_queue demonstrates).
  QueueSpecs s1 = build_queue_specs(sys.vars, sys.i, sys.z1, sys.q1, capacity, "^1");
  QueueSpecs s2 = build_queue_specs(sys.vars, sys.z1, sys.z2, sys.q2, capacity, "^2");
  QueueSpecs s3 = build_queue_specs(sys.vars, sys.z2, sys.o, sys.q3, capacity, "^3");
  sys.qm1 = s1.queue;
  sys.qe1 = s1.env;
  sys.qm2 = s2.queue;
  sys.qe2 = s2.env;
  sys.qm3 = s3.queue;
  sys.qe3 = s3.env;
  sys.big = build_queue_specs(sys.vars, sys.i, sys.o, sys.q, 3 * capacity + 2, "^big");

  const std::vector<VarId> env_out = {sys.i.sig, sys.i.val, sys.o.ack};
  const std::vector<VarId> q1_out = {sys.z1.sig, sys.z1.val, sys.i.ack};
  const std::vector<VarId> q2_out = {sys.z2.sig, sys.z2.val, sys.z1.ack};
  const std::vector<VarId> q3_out = {sys.o.sig, sys.o.val, sys.z2.ack};
  sys.g = make_disjoint({env_out, q1_out, q2_out, q3_out}, "G3");

  auto buf = [&](const Channel& c) {
    return ex::ite(ex::neq(ex::var(c.sig), ex::var(c.ack)),
                   ex::make_tuple({ex::var(c.val)}), ex::constant(Value::empty_seq()));
  };
  sys.qbar = ex::concat(
      ex::concat(ex::concat(ex::concat(ex::var(sys.q3), buf(sys.z2)), ex::var(sys.q2)),
                 buf(sys.z1)),
      ex::var(sys.q1));
  return sys;
}

CanonicalSpec make_cdq(const DoubleQueueSystem& sys) {
  CanonicalSpec cdq;
  cdq.name = "CDQ";
  cdq.init = ex::land(sys.dbl.env.init, sys.qm1.init, sys.qm2.init);
  // Figure 8: environment steps pin <q1, q2, z>, queue1 steps pin <q2, o>,
  // queue2 steps pin <q1, i>.
  Expr env_step = ex::land(sys.dbl.env.next,
                           ex::unchanged({sys.q1, sys.q2, sys.z.sig, sys.z.ack, sys.z.val}));
  Expr q1_step = ex::land(sys.qm1.next,
                          ex::unchanged({sys.q2, sys.o.sig, sys.o.ack, sys.o.val}));
  Expr q2_step = ex::land(sys.qm2.next,
                          ex::unchanged({sys.q1, sys.i.sig, sys.i.ack, sys.i.val}));
  cdq.next = ex::lor(env_step, q1_step, q2_step);
  cdq.sub = {sys.i.sig, sys.i.ack, sys.i.val, sys.z.sig, sys.z.ack, sys.z.val,
             sys.o.sig, sys.o.ack, sys.o.val, sys.q1,    sys.q2};
  cdq.hidden = {sys.q1, sys.q2};
  // ICL^1 /\ ICL^2. The fairness actions carry the interleaving pins so
  // that they imply CDQ's next-state action (Proposition 1's hypothesis);
  // within CDQ's behaviors this is equivalent to WF(QM^1) / WF(QM^2), since
  // the pins are always satisfiable and no other disjunct of N performs a
  // QM^1 / QM^2 step.
  for (const auto& [action, spec, label] :
       {std::tuple{q1_step, &sys.qm1, "WF(QM^1)"}, std::tuple{q2_step, &sys.qm2, "WF(QM^2)"}}) {
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = spec->sub;
    wf.action = action;
    wf.label = label;
    cdq.fairness.push_back(std::move(wf));
  }
  return cdq;
}

}  // namespace opentla
