#include "opentla/queue/queue_spec.hpp"

namespace opentla {

QueueSpecs build_queue_specs(const VarTable& vars, const Channel& in, const Channel& out,
                             VarId q, int capacity, std::string suffix) {
  (void)vars;
  QueueSpecs s;

  const Expr q_var = ex::var(q);
  const Expr q_next = ex::primed_var(q);

  // --- Environment actions (Figure 6) ---
  s.put = ex::land(send_any_action(in), channel_unchanged(out));
  s.get = ex::land(ack_action(out), channel_unchanged(in));
  s.qe = ex::lor(s.put, s.get);

  // --- Queue actions (Figure 6) ---
  s.enq = ex::land({ex::lt(ex::len(q_var), ex::integer(capacity)),
                    ack_action(in),
                    ex::eq(q_next, ex::append(q_var, ex::var(in.val))),
                    channel_unchanged(out)});
  s.deq = ex::land({ex::gt(ex::len(q_var), ex::integer(0)),
                    send_action(ex::head(q_var), out),
                    ex::eq(q_next, ex::tail(q_var)),
                    channel_unchanged(in)});
  s.qm = ex::lor(s.enq, s.deq);

  const Expr init_e = channel_init(in);
  const Expr init_m = ex::land(channel_init(out), ex::eq(q_var, ex::constant(Value::empty_seq())));

  // --- QE: the environment as a separate component ---
  s.env.name = "QE" + suffix;
  s.env.init = init_e;
  s.env.next = s.qe;
  s.env.sub = {in.sig, in.val, out.ack};  // <in.snd, out.ack>

  // --- QM = EE q : IQM with ICL = WF(QM) ---
  s.queue.name = "QM" + suffix;
  s.queue.init = init_m;
  s.queue.next = s.qm;
  s.queue.sub = {in.ack, out.sig, out.val, q};  // <in.ack, out.snd, q>
  s.queue.hidden = {q};
  {
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = s.queue.sub;
    wf.action = s.qm;
    wf.label = "WF(QM" + suffix + ")";
    s.queue.fairness.push_back(std::move(wf));
  }

  // --- CQ = EE q : ICQ (Figure 6) ---
  s.complete.name = "CQ" + suffix;
  s.complete.init = ex::land(init_e, init_m);
  s.complete.next = ex::lor(s.qm, ex::land(s.qe, ex::eq(q_next, q_var)));
  s.complete.sub = {in.sig,  in.ack,  in.val, out.sig,
                    out.ack, out.val, q};  // <i, o, q>
  s.complete.hidden = {q};
  {
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = s.complete.sub;
    wf.action = s.qm;
    wf.label = "WF(QM" + suffix + ")";
    s.complete.fairness.push_back(std::move(wf));
  }

  return s;
}

QueueSpecs build_queue_specs_ni(const VarTable& vars, const Channel& in, const Channel& out,
                                VarId q, int capacity, std::string suffix) {
  (void)vars;
  QueueSpecs s;

  const Expr q_var = ex::var(q);
  const Expr q_next = ex::primed_var(q);
  // Pins only the component's OWN outputs on the named channel; the other
  // side of the channel (the peer's output) stays free.
  const Expr pin_out_snd = ex::unchanged({out.sig, out.val});
  const Expr pin_in_ack = ex::unchanged({in.ack});
  const Expr pin_in_snd = ex::unchanged({in.sig, in.val});
  const Expr pin_out_ack = ex::unchanged({out.ack});

  // --- Environment: Put / Get and their joint step ---
  Expr put_core = send_any_action(in);   // pins in.ack itself (Send keeps ack)
  Expr get_core = ack_action(out);       // pins out.snd itself
  s.put = ex::land(put_core, pin_out_ack);
  s.get = ex::land(get_core, pin_in_snd);
  Expr put_get = ex::land(put_core, get_core);  // both channels move at once
  s.qe = ex::lor(s.put, s.get, put_get);

  // --- Queue: Enq / Deq and their joint step ---
  Expr enq_core = ex::land({ex::lt(ex::len(q_var), ex::integer(capacity)),
                            ack_action(in),
                            ex::eq(q_next, ex::append(q_var, ex::var(in.val)))});
  Expr deq_core = ex::land({ex::gt(ex::len(q_var), ex::integer(0)),
                            send_action(ex::head(q_var), out),
                            ex::eq(q_next, ex::tail(q_var))});
  s.enq = ex::land(enq_core, pin_out_snd);
  s.deq = ex::land(deq_core, pin_in_ack);
  // Joint Enq/\Deq: both handshakes advance and the buffer does both
  // updates in one step, q' = Tail(q) \o <in.val>. The only guard is a
  // nonempty buffer: the departing element frees the slot the arriving one
  // takes, so |q'| = |q| <= capacity holds automatically.
  Expr enq_deq = ex::land({ex::gt(ex::len(q_var), ex::integer(0)),
                           ack_action(in),
                           send_action(ex::head(q_var), out),
                           ex::eq(q_next, ex::append(ex::tail(q_var), ex::var(in.val)))});
  s.qm = ex::lor(s.enq, s.deq, enq_deq);

  const Expr init_e = channel_init(in);
  const Expr init_m = ex::land(channel_init(out), ex::eq(q_var, ex::constant(Value::empty_seq())));

  s.env.name = "QE" + suffix;
  s.env.init = init_e;
  s.env.next = s.qe;
  s.env.sub = {in.sig, in.val, out.ack};

  s.queue.name = "QM" + suffix;
  s.queue.init = init_m;
  s.queue.next = s.qm;
  s.queue.sub = {in.ack, out.sig, out.val, q};
  s.queue.hidden = {q};
  {
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = s.queue.sub;
    wf.action = s.qm;
    wf.label = "WF(QM" + suffix + ")";
    s.queue.fairness.push_back(std::move(wf));
  }

  s.complete.name = "CQ" + suffix;
  s.complete.init = ex::land(init_e, init_m);
  s.complete.next = ex::lor(s.qm, ex::land(s.qe, ex::eq(q_next, q_var)));
  s.complete.sub = {in.sig, in.ack, in.val, out.sig, out.ack, out.val, q};
  s.complete.hidden = {q};
  {
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = s.complete.sub;
    wf.action = s.qm;
    wf.label = "WF(QM" + suffix + ")";
    s.complete.fairness.push_back(std::move(wf));
  }
  return s;
}

QueueSystem make_queue_system(int capacity, int num_values) {
  QueueSystem sys;
  const Domain values = range_domain(0, num_values - 1);
  sys.in = declare_channel(sys.vars, "i", values);
  sys.out = declare_channel(sys.vars, "o", values);
  sys.q = sys.vars.declare("q", seq_domain(values, static_cast<std::size_t>(capacity)));
  sys.capacity = capacity;
  sys.specs = build_queue_specs(sys.vars, sys.in, sys.out, sys.q, capacity);
  return sys;
}

}  // namespace opentla
