#include "opentla/queue/channel.hpp"

namespace opentla {

Channel declare_channel(VarTable& vars, const std::string& name, const Domain& values) {
  Channel c;
  c.sig = vars.declare(name + ".sig", bit_domain());
  c.ack = vars.declare(name + ".ack", bit_domain());
  c.val = vars.declare(name + ".val", values);
  return c;
}

Expr channel_init(const Channel& c) {
  return ex::land(ex::eq(ex::var(c.sig), ex::integer(0)),
                  ex::eq(ex::var(c.ack), ex::integer(0)));
}

namespace {
Expr flip(VarId bit) { return ex::sub(ex::integer(1), ex::var(bit)); }
}  // namespace

Expr send_action(Expr v, const Channel& c) {
  return ex::land({ex::eq(ex::var(c.sig), ex::var(c.ack)),
                   ex::eq(ex::primed_var(c.val), std::move(v)),
                   ex::eq(ex::primed_var(c.sig), flip(c.sig)),
                   ex::eq(ex::primed_var(c.ack), ex::var(c.ack))});
}

Expr send_any_action(const Channel& c) {
  // c.val' is deliberately unconstrained: successor generation ranges it
  // over its domain, which is exactly \E v \in D : Send(v, c).
  return ex::land({ex::eq(ex::var(c.sig), ex::var(c.ack)),
                   ex::eq(ex::primed_var(c.sig), flip(c.sig)),
                   ex::eq(ex::primed_var(c.ack), ex::var(c.ack))});
}

Expr ack_action(const Channel& c) {
  return ex::land({ex::neq(ex::var(c.sig), ex::var(c.ack)),
                   ex::eq(ex::primed_var(c.ack), flip(c.ack)),
                   ex::eq(ex::primed_var(c.sig), ex::var(c.sig)),
                   ex::eq(ex::primed_var(c.val), ex::var(c.val))});
}

Expr channel_unchanged(const Channel& c) { return ex::unchanged(c.all()); }

}  // namespace opentla
