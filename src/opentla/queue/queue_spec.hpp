// opentla/queue/queue_spec.hpp
//
// The N-element queue of Appendix A (Figures 3-6): component
// specifications QE (environment) and QM (queue, with hidden buffer q and
// fairness ICL = WF(QM)), and the complete-system specification CQ.

#pragma once

#include <string>

#include "opentla/queue/channel.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

/// The Appendix-A specifications for one queue between two channels.
struct QueueSpecs {
  // Actions (Figure 6).
  Expr put;  // environment sends some value on `in`
  Expr get;  // environment acknowledges on `out`
  Expr enq;  // queue acknowledges `in`, appends in.val to q (|q| < N)
  Expr deq;  // queue sends Head(q) on `out`, drops it (|q| > 0)
  Expr qe;   // Put \/ Get
  Expr qm;   // Enq \/ Deq

  /// QE: Init_E /\ [][QE]_{<in.snd, out.ack>} — no fairness, no hiding.
  CanonicalSpec env;
  /// QM = EE q : IQM, with ICL = WF(QM).
  CanonicalSpec queue;
  /// CQ = EE q : ICQ: the complete system of queue plus environment.
  CanonicalSpec complete;
};

/// Builds the specifications for a queue of capacity `capacity` reading
/// from `in` and writing to `out`, buffering in variable `q` (whose domain
/// must hold sequences up to the capacity). `suffix` decorates the spec
/// names (e.g. "^dbl").
QueueSpecs build_queue_specs(const VarTable& vars, const Channel& in, const Channel& out,
                             VarId q, int capacity, std::string suffix = "");

/// NONINTERLEAVING variants (the full paper's "other specification
/// styles"; the abstract remarks that formula (3) — composition without
/// the Disjoint side condition G — would be provable for a noninterleaving
/// representation, which bench/tests verify with these). The differences:
///
///   * a component's actions no longer pin its INPUT variables (the
///     environment may move simultaneously): Enq leaves out.ack free and
///     Deq leaves in.snd free, and symmetrically for the environment;
///   * explicit JOINT actions are added for the component's own
///     independent operations (Enq/\Deq for the queue, Put/\Get for the
///     environment), merging their effects (q' = Tail(Append(q, in.val))).
QueueSpecs build_queue_specs_ni(const VarTable& vars, const Channel& in, const Channel& out,
                                VarId q, int capacity, std::string suffix = "");

/// A self-contained single-queue universe (Figure 5): channels i and o,
/// buffer q, and the Appendix-A specs over them.
struct QueueSystem {
  VarTable vars;
  Channel in;   // i
  Channel out;  // o
  VarId q = 0;
  int capacity = 0;
  QueueSpecs specs;
};

/// Values sent are 0..num_values-1.
QueueSystem make_queue_system(int capacity, int num_values);

}  // namespace opentla
