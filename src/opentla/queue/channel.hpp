// opentla/queue/channel.hpp
//
// Two-phase handshake channels (Section A.1, Figure 2). A channel c has
// three wires: c.sig and c.ack (bits) and c.val (the value being sent);
// c.snd denotes the pair <c.sig, c.val>. The channel is ready to send when
// c.sig = c.ack; a value v is sent by setting c.val to v and complementing
// c.sig; receipt is acknowledged by complementing c.ack.
//
// Note on fidelity: the paper's Send(v, c) constrains only c.snd', leaving
// c.ack' syntactically unconstrained. Under TLA's frameless action
// semantics that reading would let a sender scramble c.ack, contradicting
// both Figure 2 (ack changes only on acknowledge steps) and the identity
// CQ = QE /\ QM used in the Figure 9 proof. We therefore pin c.ack' = c.ack
// in Send (and symmetrically c.snd' = c.snd in Ack, as the paper already
// does), which is the evident intent.

#pragma once

#include <string>

#include "opentla/expr/expr.hpp"
#include "opentla/state/var_table.hpp"

namespace opentla {

struct Channel {
  VarId sig = 0;
  VarId ack = 0;
  VarId val = 0;

  /// c = <c.sig, c.ack, c.val>.
  std::vector<VarId> all() const { return {sig, ack, val}; }
  /// c.snd = <c.sig, c.val>.
  std::vector<VarId> snd() const { return {sig, val}; }
};

/// Declares the three wires of channel `name` ("<name>.sig", "<name>.ack",
/// "<name>.val") with bit-valued sig/ack and `values` for val.
Channel declare_channel(VarTable& vars, const std::string& name, const Domain& values);

/// CInit(c): c.sig = c.ack = 0.
Expr channel_init(const Channel& c);

/// Send(v, c): ready, then set c.val' = v and complement c.sig.
Expr send_action(Expr v, const Channel& c);

/// SendAny(c): some value of the domain is sent — Send(v, c) with v ranging
/// over c.val's domain, written executably (c.val' is left to range over
/// its domain rather than bound by an existential).
Expr send_any_action(const Channel& c);

/// Ack(c): pending, then complement c.ack; c.snd unchanged.
Expr ack_action(const Channel& c);

/// UNCHANGED <<c.sig, c.ack, c.val>>.
Expr channel_unchanged(const Channel& c);

}  // namespace opentla
