// opentla/queue/double_queue.hpp
//
// The double-queue study of Sections A.4-A.5 (Figures 7-9): two N-element
// queues in series (i -> queue1 -> z -> queue2 -> o) implement a
// (2N+1)-element queue. The component specifications are produced from the
// base queue spec by the paper's substitutions
//
//     F^[1] = F[z/o, q1/q]      F^[2] = F[z/i, q2/q]      F^[dbl] = F[(2N+1)/N]
//
// and the interleaving side condition is
//
//     G = Disjoint(<i.snd, o.ack>, <z.snd, i.ack>, <o.snd, z.ack>).
//
// The system also carries the refinement witness
//
//     qbar = q2 \o (IF z.sig # z.ack THEN <z.val> ELSE <>) \o q1
//
// used to prove CDQ => CQ^[dbl] and to discharge hypothesis 2(b).

#pragma once

#include "opentla/ag/ag_spec.hpp"
#include "opentla/queue/queue_spec.hpp"
#include "opentla/tla/disjoint.hpp"

namespace opentla {

struct DoubleQueueSystem {
  VarTable vars;
  Channel i, z, o;
  VarId q1 = 0, q2 = 0;  // component buffers (sequences up to N)
  VarId q = 0;           // the big queue's hidden buffer (up to 2N+1)
  int capacity = 0;      // N

  QueueSpecs base;       // the N-queue on (i, o, q) the components are renamed from
  CanonicalSpec qm1, qe1;  // QM^[1], QE^[1]
  CanonicalSpec qm2, qe2;  // QM^[2], QE^[2]
  QueueSpecs dbl;          // the (2N+1)-queue on (i, o, q): QM^[dbl], QE^[dbl], CQ^[dbl]
  CanonicalSpec g;         // Disjoint(<i.snd,o.ack>, <z.snd,i.ack>, <o.snd,z.ack>)

  Expr qbar;  // refinement witness for q

  /// The components' output tuples (for Proposition 4 and G).
  std::vector<VarId> env_out, q1_out, q2_out;

  /// The composition-theorem instance of Section A.5:
  /// components = {TRUE +> G, QE1 +> QM1, QE2 +> QM2},
  /// goal = QE^dbl +> QM^dbl.
  std::vector<AGSpec> components() const;
  AGSpec goal() const;
};

DoubleQueueSystem make_double_queue(int capacity, int num_values);

/// The same system with NONINTERLEAVING component specifications
/// (build_queue_specs_ni). For this representation the paper's formula (3)
/// — composition WITHOUT the Disjoint side condition G — is provable; the
/// `g` member is still populated but is not needed.
DoubleQueueSystem make_double_queue_ni(int capacity, int num_values);

/// THREE queues in series (i -> z1 -> z2 -> o) implementing a
/// (3N+2)-element queue: the n-ary generalization of Appendix A, with four
/// components (G plus three queues) under one environment assumption.
struct TripleQueueSystem {
  VarTable vars;
  Channel i, z1, z2, o;
  VarId q1 = 0, q2 = 0, q3 = 0;  // component buffers (up to N each)
  VarId q = 0;                   // the big queue's hidden buffer (up to 3N+2)
  int capacity = 0;

  CanonicalSpec qm1, qe1, qm2, qe2, qm3, qe3;
  QueueSpecs big;   // the (3N+2)-queue on (i, o, q)
  CanonicalSpec g;  // Disjoint over the four output tuples

  Expr qbar;  // q3 \o buf(z2) \o q2 \o buf(z1) \o q1

  std::vector<AGSpec> components() const;
  AGSpec goal() const;
};

TripleQueueSystem make_triple_queue(int capacity, int num_values);

/// CDQ (Figure 8): the complete double-queue system as one canonical spec
/// with hidden q1, q2 — the conjunction of QE^dbl's environment with both
/// queues, interleaved.
CanonicalSpec make_cdq(const DoubleQueueSystem& sys);

}  // namespace opentla
