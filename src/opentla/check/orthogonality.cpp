#include "opentla/check/orthogonality.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace opentla {

namespace {
struct Key {
  StateId state;
  Value ce;
  Value cm;
  bool operator==(const Key& o) const {
    return state == o.state && ce == o.ce && cm == o.cm;
  }
};
struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return (k.ce.hash() * 31 + k.cm.hash()) * 1099511628211ULL + k.state;
  }
};
}  // namespace

OrthogonalityResult check_orthogonality(const StateGraph& generator, const SafetyMachine& e,
                                        const SafetyMachine& m) {
  OrthogonalityResult result;
  std::unordered_map<Key, Key, KeyHash> parent;
  std::deque<Key> frontier;
  const Key no_parent{StateStore::kNone, Value(), Value()};

  auto trace = [&](const Key& last) {
    std::vector<State> out;
    Key cur = last;
    while (cur.state != StateStore::kNone) {
      out.push_back(generator.state(cur.state));
      auto it = parent.find(cur);
      if (it == parent.end()) break;
      cur = it->second;
    }
    std::reverse(out.begin(), out.end());
    return out;
  };

  for (StateId s : generator.initial()) {
    Key k{s, e.initial(generator.state(s)), m.initial(generator.state(s))};
    // The n = 0 instance of the definition: both properties hold for the
    // empty prefix (vacuously) and fail for the first state.
    if (!e.alive(k.ce) && !m.alive(k.cm)) {
      result.holds = false;
      result.counterexample = {generator.state(s)};
      result.pairs_visited = parent.size();
      return result;
    }
    if (parent.emplace(k, no_parent).second) frontier.push_back(std::move(k));
  }

  while (!frontier.empty()) {
    Key u = std::move(frontier.front());
    frontier.pop_front();
    const State& s = generator.state(u.state);
    const bool e_alive = e.alive(u.ce);
    const bool m_alive = m.alive(u.cm);
    for (StateId vid : generator.successors(u.state)) {
      const State& t = generator.state(vid);
      Key v{vid, e.step(u.ce, s, t), m.step(u.cm, s, t)};
      if (e_alive && m_alive && !e.alive(v.ce) && !m.alive(v.cm)) {
        std::vector<State> prefix = trace(u);
        prefix.push_back(t);
        result.holds = false;
        result.counterexample = std::move(prefix);
        result.pairs_visited = parent.size();
        return result;
      }
      if (parent.emplace(v, u).second) frontier.push_back(std::move(v));
    }
  }
  result.holds = true;
  result.pairs_visited = parent.size();
  return result;
}

}  // namespace opentla
