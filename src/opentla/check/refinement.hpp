// opentla/check/refinement.hpp
//
// Refinement under a refinement mapping (Section A.4: "This result is
// proved by standard TLA reasoning using a simple refinement mapping").
//
// Given a low-level system explored as a StateGraph (with its fairness
// conditions as constraints) and a high-level canonical specification over
// a separate universe, a RefinementMapping assigns to every high-level
// variable a state function over the low-level variables (for hidden
// high-level variables this is the classical witness, e.g. the paper's
// q-bar = q2 o buffer(z) o q1 for the double queue). The checker verifies:
//
//   (init)  every low-level initial state maps into the high Init;
//   (step)  every low-level edge maps to a [HighNext]_v step;
//   (live)  no low-fair lasso violates a high fairness condition, where
//           high ENABLED is evaluated in the *high* universe at the mapped
//           state (not under syntactic substitution, which would be
//           unsound for ENABLED).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "opentla/check/liveness.hpp"
#include "opentla/expr/expr.hpp"
#include "opentla/graph/state_graph.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

/// A refinement mapping from a low universe to a high universe: one state
/// function over low variables per high variable.
class RefinementMapping {
 public:
  RefinementMapping(const VarTable& low, const VarTable& high, std::vector<Expr> witness);

  /// The mapped (high) state of a low state.
  State map(const State& low_state) const;

  const VarTable& low() const { return *low_; }
  const VarTable& high() const { return *high_; }

 private:
  const VarTable* low_;
  const VarTable* high_;
  std::vector<Expr> witness_;  // indexed by high VarId
};

/// Convenience builder: high variables with the same name as a low variable
/// map to it; the remaining ones must be given explicitly by name.
RefinementMapping mapping_by_name(const VarTable& low, const VarTable& high,
                                  const std::vector<std::pair<std::string, Expr>>& extra);

struct RefinementResult {
  bool holds = false;
  std::string failed_part;  // "init" | "step" | fairness label; empty when ok
  std::vector<State> counterexample_prefix;  // low-level states
  std::vector<State> counterexample_cycle;   // low-level states (liveness)
  std::size_t states = 0;
  std::size_t edges = 0;

  explicit operator bool() const { return holds; }
};

/// Checks that `low_graph` (whose behaviors are additionally constrained by
/// `low_fairness`) refines `high` under `mapping`. Verifies init, step, and
/// every high fairness condition.
RefinementResult check_refinement(const StateGraph& low_graph,
                                  const std::vector<Fairness>& low_fairness,
                                  const CanonicalSpec& high, const RefinementMapping& mapping);

}  // namespace opentla
