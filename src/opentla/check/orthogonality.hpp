// opentla/check/orthogonality.hpp
//
// Orthogonality (Section 4.2): E _|_ M holds of a behavior iff there is no
// n such that E and M both hold for the first n states and both fail for
// the first n+1 states — no single step falsifies both. This is the key to
// removing the freeze operator from proof obligations (Proposition 3), and
// interleaving (Disjoint) guarantees it (Proposition 4).
//
// The checker decides |= R => (E _|_ M) where the behaviors of R are given
// by an explored StateGraph and E, M by safety machines: it walks the
// product of the graph with both machines and looks for a reachable step
// killing both at once.

#pragma once

#include <string>
#include <vector>

#include "opentla/automata/prefix_machine.hpp"
#include "opentla/graph/state_graph.hpp"

namespace opentla {

struct OrthogonalityResult {
  bool holds = false;
  /// On failure: states of a finite R-behavior whose last step falsifies
  /// both E and M simultaneously.
  std::vector<State> counterexample;
  std::size_t pairs_visited = 0;

  explicit operator bool() const { return holds; }
};

/// Checks |= (behaviors of `generator`) => (E _|_ M).
OrthogonalityResult check_orthogonality(const StateGraph& generator, const SafetyMachine& e,
                                        const SafetyMachine& m);

}  // namespace opentla
