// opentla/check/inclusion.hpp
//
// Safety-inclusion checking: the engine behind the Composition Theorem's
// hypotheses 1 and 2(a), which have the shape
//
//     |= P /\ /\_j Q_j  =>  R
//
// with P, Q_j safety properties (closures, possibly with hidden variables,
// possibly wrapped by the freeze operator) and R a safety property. As the
// paper observes (Section 5), the left-hand side is the specification of a
// *complete system*; we explore that system as a product:
//
//   product node  =  visible state (hidden entries normalized)
//                    x one configuration per left-hand-side machine
//
// Candidate steps come from the union of the components' next-state
// actions ("movers") plus stuttering; every step allowed by the
// conjunction changes some component's subscript variable and is therefore
// an action step of that component, so the union is complete as long as
// every visible variable belongs to some mover's subscript.
//
// R holds iff its machine stays alive along every reachable product path.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "opentla/automata/prefix_machine.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/run/budget.hpp"
#include "opentla/state/state.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

/// A candidate-step generator for the product exploration.
struct Mover {
  /// Built from a component's next-state action over the full universe.
  std::shared_ptr<ActionSuccessors> generator;
  /// Hidden variables of the owning component, substituted from the
  /// configurations of constraint machine `machine_index` before
  /// generating (-1: generate from the visible state as-is).
  std::vector<VarId> hidden;
  int machine_index = -1;
  std::string label;
};

/// Builds the mover for a canonical spec; `constraint_index` is the
/// position of the spec's machine in the explorer's constraint list (or -1
/// if the spec has no hidden variables). `normalized` lists all variables
/// the exploration normalizes away (so the generator does not enumerate
/// them).
Mover mover_from_spec(const VarTable& vars, const CanonicalSpec& spec, int constraint_index,
                      const std::vector<VarId>& normalized);

/// Explores the product of the left-hand-side machines once; targets are
/// then checked against the reified product graph.
class ConstraintExplorer {
 public:
  /// `init_enum` enumerates candidate initial states of the universe
  /// (typically the conjunction of all components' Init predicates, with
  /// hidden variables included; their values are normalized away and
  /// re-derived by the machines).
  /// Reaching `max_nodes`, or a breach of `budget` (optional, not owned),
  /// stops the product exploration gracefully; stop_reason() reports why
  /// and check_target verdicts on the partial product are marked partial.
  ConstraintExplorer(const VarTable& vars,
                     std::vector<std::shared_ptr<const SafetyMachine>> constraints,
                     std::vector<Mover> movers, Expr init_enum, std::vector<VarId> normalize,
                     std::size_t max_nodes = 1'000'000, run::RunBudget* budget = nullptr);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return num_edges_; }
  const VarTable& vars() const { return *vars_; }
  /// Why product exploration ended (kCompleted = full product built).
  run::StopReason stop_reason() const { return stop_reason_; }

  /// Checks |= LHS => target. On failure the verdict carries a finite trace
  /// of visible states after which the target's prefix machine is dead.
  struct Verdict {
    std::string target_name;
    bool holds = false;
    std::vector<State> counterexample;
    std::size_t pairs_visited = 0;
    /// kCompleted = definitive. Otherwise the product or the pair BFS was
    /// cut short by a budget: a counterexample is still a real refutation
    /// (the partial product only contains reachable nodes), but `holds`
    /// merely means "no violation found within the budget".
    run::StopReason stop_reason = run::StopReason::kCompleted;

    explicit operator bool() const { return holds; }
  };
  Verdict check_target(const SafetyMachine& target) const;

 private:
  struct Node {
    StateId state;
    Value configs;
    std::uint32_t parent;  // UINT32_MAX for initial nodes
  };

  std::vector<State> trace_to(std::uint32_t node) const;

  const VarTable* vars_;
  std::vector<std::shared_ptr<const SafetyMachine>> constraints_;
  std::vector<Mover> movers_;
  std::vector<VarId> normalize_;
  StateStore visible_;
  std::vector<Node> nodes_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<std::uint32_t> init_nodes_;
  std::size_t num_edges_ = 0;
  run::RunBudget* budget_ = nullptr;
  run::StopReason stop_reason_ = run::StopReason::kCompleted;
};

}  // namespace opentla
