#include "opentla/check/inclusion.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "opentla/obs/obs.hpp"

namespace opentla {

Mover mover_from_spec(const VarTable& vars, const CanonicalSpec& spec, int constraint_index,
                      const std::vector<VarId>& normalized) {
  Mover m;
  // Normalized variables other than this component's own hidden ones are
  // tracked by other machines; never enumerate them.
  std::vector<VarId> pinned;
  for (VarId v : normalized) {
    if (std::find(spec.hidden.begin(), spec.hidden.end(), v) == spec.hidden.end()) {
      pinned.push_back(v);
    }
  }
  m.generator = std::make_shared<ActionSuccessors>(vars, spec.next, std::move(pinned));
  m.hidden = spec.hidden;
  m.machine_index = spec.has_hidden() ? constraint_index : -1;
  m.label = spec.name;
  return m;
}

namespace {
struct NodeKey {
  StateId state;
  Value configs;
  bool operator==(const NodeKey& other) const {
    return state == other.state && configs == other.configs;
  }
};
struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const {
    return k.configs.hash() * 1099511628211ULL + k.state;
  }
};
}  // namespace

ConstraintExplorer::ConstraintExplorer(
    const VarTable& vars, std::vector<std::shared_ptr<const SafetyMachine>> constraints,
    std::vector<Mover> movers, Expr init_enum, std::vector<VarId> normalize,
    std::size_t max_nodes, run::RunBudget* budget)
    : vars_(&vars),
      constraints_(std::move(constraints)),
      movers_(std::move(movers)),
      normalize_(std::move(normalize)),
      budget_(budget) {
  OPENTLA_OBS_SPAN("ConstraintExplorer.explore");
  auto normalized = [&](State s) {
    for (VarId v : normalize_) s[v] = vars.domain(v)[0];
    return s;
  };
  auto step_configs = [&](const Value& configs, const State& s, const State& t,
                          Value& out) {
    const Value::Tuple& parts = configs.as_tuple();
    Value::Tuple next;
    next.reserve(parts.size());
    for (std::size_t i = 0; i < constraints_.size(); ++i) {
      Value c = constraints_[i]->step(parts[i], s, t);
      if (!constraints_[i]->alive(c)) return false;
      next.push_back(std::move(c));
    }
    out = Value::tuple(std::move(next));
    return true;
  };

  std::unordered_map<NodeKey, std::uint32_t, NodeKeyHash> index;
  std::deque<std::uint32_t> frontier;

  auto add_node = [&](const State& visible, Value configs,
                      std::uint32_t parent) -> std::optional<std::uint32_t> {
    const StateId sid = visible_.intern(visible);
    NodeKey key{sid, configs};
    auto it = index.find(key);
    if (it != index.end()) return it->second;
    if (nodes_.size() >= (std::uint32_t)-2) {
      throw std::runtime_error("ConstraintExplorer: too many product nodes");
    }
    // Node budget reached: refuse the new node gracefully and latch the
    // stop reason — the product built so far is a sound partial result.
    if (nodes_.size() >= max_nodes) {
      stop_reason_ = run::StopReason::kStateBudget;
      return std::nullopt;
    }
    const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
    OPENTLA_OBS_COUNT(ProductNodes);
    nodes_.push_back({sid, std::move(key.configs), parent});
    adjacency_.emplace_back();
    index.emplace(NodeKey{sid, nodes_.back().configs}, id);
    frontier.push_back(id);
    return id;
  };

  // --- Initial nodes ---
  {
    std::unordered_set<State, StateHash> seen;
    for (const State& raw :
         ActionSuccessors::states_satisfying(vars, init_enum, normalize_)) {
      State s = normalized(raw);
      if (!seen.insert(s).second) continue;
      Value::Tuple configs;
      bool alive = true;
      for (const auto& c : constraints_) {
        Value cfg = c->initial(s);
        if (!c->alive(cfg)) {
          alive = false;
          break;
        }
        configs.push_back(std::move(cfg));
      }
      if (!alive) continue;
      auto id = add_node(s, Value::tuple(std::move(configs)), UINT32_MAX);
      if (id) init_nodes_.push_back(*id);
    }
  }

  // --- Exploration ---
  while (!frontier.empty()) {
    if (stop_reason_ != run::StopReason::kCompleted) break;
    if (budget_ != nullptr && budget_->should_stop()) {
      stop_reason_ = budget_->reason();
      break;
    }
    const std::uint32_t uid = frontier.front();
    frontier.pop_front();
    const State s = visible_.get(nodes_[uid].state);  // copy: store may grow
    const Value configs = nodes_[uid].configs;
    const Value::Tuple& config_parts = configs.as_tuple();

    // Candidate successors: the movers' actions (with hidden sources drawn
    // from the owning machine's configuration) plus the stutter step, which
    // can only grow configurations (internal component moves).
    std::unordered_set<State, StateHash> candidates;
    candidates.insert(s);
    for (const Mover& m : movers_) {
      if (m.machine_index < 0) {
        m.generator->for_each_successor(
            s, [&](const State& t) { candidates.insert(normalized(t)); });
      } else {
        const Value sources =
            constraints_[m.machine_index]->mover_configs(config_parts[m.machine_index]);
        for (const Value& h : sources.as_tuple()) {
          State source = s;
          const Value::Tuple& hv = h.as_tuple();
          for (std::size_t i = 0; i < m.hidden.size(); ++i) source[m.hidden[i]] = hv[i];
          m.generator->for_each_successor(
              source, [&](const State& t) { candidates.insert(normalized(t)); });
        }
      }
    }

    for (const State& t : candidates) {
      Value next_configs;
      if (!step_configs(configs, s, t, next_configs)) continue;
      if (t == s && next_configs == configs) continue;  // no-op stutter
      auto vid = add_node(t, std::move(next_configs), uid);
      if (vid) {
        adjacency_[uid].push_back(*vid);
        ++num_edges_;
      }
    }
  }
  OPENTLA_OBS_GAUGE_MAX(PeakProductNodes, nodes_.size());
  if (stop_reason_ != run::StopReason::kCompleted && budget_ != nullptr) {
    budget_->request_stop(stop_reason_);
  }
}

std::vector<State> ConstraintExplorer::trace_to(std::uint32_t node) const {
  std::vector<State> out;
  for (std::uint32_t n = node; n != UINT32_MAX; n = nodes_[n].parent) {
    out.push_back(visible_.get(nodes_[n].state));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

ConstraintExplorer::Verdict ConstraintExplorer::check_target(const SafetyMachine& target) const {
  OPENTLA_OBS_SPAN("ConstraintExplorer.check_target");
  OPENTLA_OBS_PHASE("check.inclusion");
  Verdict verdict;
  verdict.target_name = target.name();
  // A partial product makes every "holds" verdict on it partial too.
  verdict.stop_reason = stop_reason_;

  struct PairKey {
    std::uint32_t node;
    Value config;
    bool operator==(const PairKey& o) const { return node == o.node && config == o.config; }
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const {
      return k.config.hash() * 1099511628211ULL + k.node;
    }
  };

  std::unordered_set<PairKey, PairKeyHash> visited;
  // (product node, target config, node whose trace witnesses the path)
  std::deque<PairKey> frontier;

  for (std::uint32_t n : init_nodes_) {
    const State& s = visible_.get(nodes_[n].state);
    Value cfg = target.initial(s);
    if (!target.alive(cfg)) {
      verdict.holds = false;
      verdict.counterexample = trace_to(n);
      verdict.pairs_visited = visited.size();
      return verdict;
    }
    PairKey key{n, std::move(cfg)};
    if (visited.insert(key).second) {
      OPENTLA_OBS_COUNT(InclusionPairs);
      frontier.push_back(std::move(key));
    }
  }

  // Parent tracking for counterexample reconstruction.
  std::unordered_map<PairKey, PairKey, PairKeyHash> parent;

  while (!frontier.empty()) {
    if (budget_ != nullptr && budget_->should_stop()) {
      verdict.stop_reason = budget_->reason();
      break;
    }
    PairKey u = std::move(frontier.front());
    frontier.pop_front();
    const State& s = visible_.get(nodes_[u.node].state);
    for (std::uint32_t vnode : adjacency_[u.node]) {
      const State& t = visible_.get(nodes_[vnode].state);
      Value cfg = target.step(u.config, s, t);
      const bool dead = !target.alive(cfg);
      PairKey v{vnode, std::move(cfg)};
      if (!dead && !visited.insert(v).second) continue;
      OPENTLA_OBS_COUNT(InclusionPairs);
      parent.emplace(v, u);
      if (dead) {
        // Reconstruct the visible trace through the pair parents.
        std::vector<State> trace;
        PairKey cur = v;
        while (true) {
          trace.push_back(visible_.get(nodes_[cur.node].state));
          auto it = parent.find(cur);
          if (it == parent.end()) break;
          cur = it->second;
        }
        std::reverse(trace.begin(), trace.end());
        verdict.holds = false;
        verdict.counterexample = std::move(trace);
        verdict.pairs_visited = visited.size();
        return verdict;
      }
      frontier.push_back(std::move(v));
    }
  }
  verdict.holds = true;
  verdict.pairs_visited = visited.size();
  return verdict;
}

}  // namespace opentla
