// opentla/check/machine_closure.hpp
//
// Proposition 1: if L is a conjunction of WF_w(A) / SF_w(A) conditions with
// each A implying the next-state action N, then
//
//     C(Init /\ [][N]_v /\ L)  =  Init /\ [][N]_v
//
// i.e. the specification is machine-closed and its closure is computed
// syntactically by dropping the fairness conjuncts. This module checks the
// hypothesis "A implies N":
//
//   - syntactically: every disjunct of A is (structurally) a disjunct of N,
//     which covers the paper's usage (fairness on sub-actions of N);
//   - semantically: |= A => N over all state pairs of the finite universe
//     (exact but exponential in the number of variables — callers choose).
//
// A semantic double check of the conclusion is also provided: every
// reachable state of the safety part can be extended to a fair behavior
// (every state reaches an SCC hosting a cycle satisfying all fairness
// constraints).

#pragma once

#include <string>

#include "opentla/graph/state_graph.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

struct MachineClosureResult {
  bool machine_closed = false;
  std::string detail;

  explicit operator bool() const { return machine_closed; }
};

/// Checks Proposition 1's hypothesis syntactically (disjunct inclusion).
MachineClosureResult check_prop1_syntactic(const CanonicalSpec& spec);

/// Checks Proposition 1's hypothesis semantically: A => [N]_v valid over
/// every pair of states of the universe. Exponential in the variable count;
/// intended for small universes and tests.
MachineClosureResult check_prop1_semantic(const VarTable& vars, const CanonicalSpec& spec);

/// Checks the machine-closure *conclusion* on the spec's reachable graph:
/// from every reachable state of the safety part some fair behavior
/// continues. `graph` must be the graph of the spec's safety part.
MachineClosureResult check_machine_closure_on_graph(const StateGraph& graph,
                                                    const CanonicalSpec& spec);

}  // namespace opentla
