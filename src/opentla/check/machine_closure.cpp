#include "opentla/check/machine_closure.hpp"

#include <deque>

#include "opentla/check/liveness.hpp"
#include "opentla/expr/analysis.hpp"
#include "opentla/expr/eval.hpp"
#include "opentla/graph/scc.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/state/state_space.hpp"

namespace opentla {

MachineClosureResult check_prop1_syntactic(const CanonicalSpec& spec) {
  MachineClosureResult result;
  const std::vector<Expr> next_disjuncts = flatten_or(spec.next);
  for (const Fairness& f : spec.fairness) {
    for (const Expr& a : flatten_or(f.action)) {
      const bool found = std::any_of(
          next_disjuncts.begin(), next_disjuncts.end(),
          [&](const Expr& n) { return structurally_equal(a, n); });
      if (!found) {
        result.machine_closed = false;
        result.detail = "fairness conjunct '" + (f.label.empty() ? "?" : f.label) +
                        "' has a disjunct that is not syntactically a disjunct of N";
        return result;
      }
    }
  }
  result.machine_closed = true;
  result.detail = "every fairness action is a sub-disjunct of N (Proposition 1 applies)";
  return result;
}

MachineClosureResult check_prop1_semantic(const VarTable& vars, const CanonicalSpec& spec) {
  MachineClosureResult result;
  StateSpace space(vars);
  const Expr step = spec.box_step_action();
  for (const Fairness& f : spec.fairness) {
    bool failed = false;
    space.for_each_state([&](const State& s) {
      if (failed) return;
      space.for_each_state([&](const State& t) {
        if (failed) return;
        if (eval_action(f.action, vars, s, t) && !eval_action(step, vars, s, t)) {
          failed = true;
        }
      });
    });
    if (failed) {
      result.machine_closed = false;
      result.detail = "fairness action '" + f.label + "' has a step that is not an [N]_v step";
      return result;
    }
  }
  result.machine_closed = true;
  result.detail = "|= A => [N]_v verified over all state pairs";
  return result;
}

MachineClosureResult check_machine_closure_on_graph(const StateGraph& graph,
                                                    const CanonicalSpec& spec) {
  OPENTLA_OBS_PHASE("check.closure");
  MachineClosureResult result;
  FairnessCompiler compiler(graph);
  FairCycleQuery query;
  compiler.add_constraints(spec.fairness, query);

  // Mark the states inside fairness-supporting SCCs.
  std::vector<StateId> roots(graph.num_states());
  for (std::size_t i = 0; i < roots.size(); ++i) roots[i] = static_cast<StateId>(i);
  std::vector<char> good(graph.num_states(), 0);
  for (const std::vector<StateId>& comp :
       strongly_connected_components(graph, roots, query.filter)) {
    std::vector<StateId> cycle;
    if (component_hosts_fair_cycle(graph, query, comp, cycle)) {
      for (StateId s : cycle) good[s] = 1;
    }
  }

  // A state is extendable iff it reaches a good state: reverse BFS.
  std::vector<std::vector<StateId>> reverse(graph.num_states());
  for (StateId u = 0; u < graph.num_states(); ++u) {
    for (StateId v : graph.successors(u)) reverse[v].push_back(u);
  }
  std::deque<StateId> frontier;
  std::vector<char> extendable(graph.num_states(), 0);
  for (StateId s = 0; s < graph.num_states(); ++s) {
    if (good[s]) {
      extendable[s] = 1;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const StateId v = frontier.front();
    frontier.pop_front();
    for (StateId u : reverse[v]) {
      if (!extendable[u]) {
        extendable[u] = 1;
        frontier.push_back(u);
      }
    }
  }
  for (StateId s = 0; s < graph.num_states(); ++s) {
    if (!extendable[s]) {
      result.machine_closed = false;
      result.detail = "reachable state with no fair continuation: " +
                      graph.state(s).to_string(graph.vars());
      return result;
    }
  }
  result.machine_closed = true;
  result.detail = "every reachable state has a fair continuation";
  return result;
}

}  // namespace opentla
