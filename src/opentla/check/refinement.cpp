#include "opentla/check/refinement.hpp"

#include <stdexcept>
#include <unordered_map>

#include "opentla/expr/eval.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/obs/obs.hpp"

namespace opentla {

RefinementMapping::RefinementMapping(const VarTable& low, const VarTable& high,
                                     std::vector<Expr> witness)
    : low_(&low), high_(&high), witness_(std::move(witness)) {
  if (witness_.size() != high.size()) {
    throw std::runtime_error("RefinementMapping: need one witness per high variable");
  }
}

State RefinementMapping::map(const State& low_state) const {
  std::vector<Value> values;
  values.reserve(witness_.size());
  for (const Expr& w : witness_) values.push_back(eval_fn(w, *low_, low_state));
  return State(std::move(values));
}

RefinementMapping mapping_by_name(const VarTable& low, const VarTable& high,
                                  const std::vector<std::pair<std::string, Expr>>& extra) {
  std::vector<Expr> witness(high.size());
  for (VarId h = 0; h < high.size(); ++h) {
    const std::string& name = high.name(h);
    for (const auto& [n, e] : extra) {
      if (n == name) witness[h] = e;
    }
    if (!witness[h].is_null()) continue;
    std::optional<VarId> l = low.find(name);
    if (!l) {
      throw std::runtime_error("mapping_by_name: no witness for high variable '" + name + "'");
    }
    witness[h] = ex::var(*l);
  }
  return RefinementMapping(low, high, std::move(witness));
}

namespace {

std::vector<State> to_states(const StateGraph& g, const std::vector<StateId>& ids) {
  std::vector<State> out;
  out.reserve(ids.size());
  for (StateId s : ids) out.push_back(g.state(s));
  return out;
}

}  // namespace

RefinementResult check_refinement(const StateGraph& low_graph,
                                  const std::vector<Fairness>& low_fairness,
                                  const CanonicalSpec& high, const RefinementMapping& mapping) {
  OPENTLA_OBS_SPAN("check_refinement");
  OPENTLA_OBS_PHASE("check.refinement");
  RefinementResult result;
  result.states = low_graph.num_states();
  result.edges = low_graph.num_edges();
  const VarTable& high_vars = mapping.high();

  // Mapped high states, computed once per low state.
  std::vector<State> mapped(low_graph.num_states());
  for (StateId s = 0; s < low_graph.num_states(); ++s) {
    mapped[s] = mapping.map(low_graph.state(s));
  }

  // (init)
  for (StateId s : low_graph.initial()) {
    if (!eval_pred(high.init, high_vars, mapped[s])) {
      result.holds = false;
      result.failed_part = "init";
      result.counterexample_prefix = {low_graph.state(s)};
      return result;
    }
  }

  // (step) every low edge maps to [HighNext]_v.
  for (StateId u = 0; u < low_graph.num_states(); ++u) {
    for (StateId v : low_graph.successors(u)) {
      OPENTLA_OBS_COUNT(RefinementEdgesChecked);
      if (high.step_ok(high_vars, mapped[u], mapped[v])) continue;
      result.holds = false;
      result.failed_part = "step";
      std::vector<StateId> path = low_graph.shortest_path_to([&](StateId s) { return s == u; });
      result.counterexample_prefix = to_states(low_graph, path);
      result.counterexample_prefix.push_back(low_graph.state(v));
      return result;
    }
  }

  // (live) for each high fairness condition, search for a low-fair lasso
  // violating it.
  for (const Fairness& hf : high.fairness) {
    FairnessCompiler compiler(low_graph);
    FairCycleQuery query;
    compiler.add_constraints(low_fairness, query);

    // The violation conditions are expressed over mapped states: build a
    // small adapter evaluating the high action / ENABLED on mapped pairs.
    const Expr high_act = action_changing(hf.action, hf.sub);
    ActionSuccessors high_gen(high_vars, high_act);
    std::vector<signed char> enabled_cache(low_graph.num_states(), -1);
    auto high_enabled = [&](StateId s) {
      signed char& c = enabled_cache[s];
      if (c < 0) c = high_gen.enabled(mapped[s]) ? 1 : 0;
      return c == 1;
    };
    std::unordered_map<std::uint64_t, bool> step_cache;
    auto high_step = [&, high_act](StateId s, StateId t) {
      const std::uint64_t key = (static_cast<std::uint64_t>(s) << 32) | t;
      auto [it, inserted] = step_cache.try_emplace(key, false);
      if (inserted) {
        it->second = eval_action(high_act, high_vars, mapped[s], mapped[t]);
      }
      return it->second;
    };

    // The cycle must contain no high <A>_v step...
    auto prev_edge = query.filter.edge_ok;
    query.filter.edge_ok = [&, prev_edge](StateId s, StateId t) {
      if (prev_edge && !prev_edge(s, t)) return false;
      return !high_step(s, t);
    };
    if (hf.kind == Fairness::Kind::Weak) {
      // ...and for ~WF, <A>_v must be enabled at every cycle state.
      auto prev_node = query.filter.node_ok;
      query.filter.node_ok = [&, prev_node](StateId s) {
        if (prev_node && !prev_node(s)) return false;
        return high_enabled(s);
      };
    } else {
      // ...and for ~SF, <A>_v must be enabled infinitely often.
      BuchiObligation ob;
      ob.label = "~" + hf.label;
      ob.state_ok = [&](StateId s) { return high_enabled(s); };
      query.buchi.push_back(std::move(ob));
    }

    if (std::optional<Lasso> lasso = find_fair_cycle(low_graph, query)) {
      result.holds = false;
      result.failed_part = hf.label.empty() ? "fairness" : hf.label;
      result.counterexample_prefix = to_states(low_graph, lasso->prefix);
      result.counterexample_cycle = to_states(low_graph, lasso->cycle);
      return result;
    }
  }

  result.holds = true;
  return result;
}

}  // namespace opentla
