#include "opentla/check/invariant.hpp"

#include <sstream>

#include "opentla/compose/compose.hpp"
#include "opentla/expr/eval.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/vm/interp.hpp"

namespace opentla {

InvariantResult check_invariant(const StateGraph& g, const Expr& invariant) {
  OPENTLA_OBS_PHASE("check.invariant");
  InvariantResult result;
  result.states_checked = g.num_states();
  result.stop_reason = g.stop_reason();
  std::vector<signed char> bad(g.num_states(), -1);
  // The invariant is lowered once and evaluated per state through the VM
  // (or the tree, under the vm::set_tree_eval_for_test switch).
  const vm::CompiledExpr inv(invariant);
  vm::VmContext ctx;
  ctx.vars = &g.vars();
  auto is_bad = [&](StateId s) {
    if (bad[s] < 0) {
      ctx.current = &g.state(s);
      bad[s] = inv.eval_bool(ctx) ? 0 : 1;
    }
    return bad[s] == 1;
  };
  std::vector<StateId> path = g.shortest_path_to(is_bad);
  if (path.empty()) {
    result.holds = true;
    return result;
  }
  result.holds = false;
  result.counterexample.reserve(path.size());
  for (StateId s : path) result.counterexample.push_back(g.state(s));
  return result;
}

InvariantResult check_invariant(const VarTable& vars, const CanonicalSpec& spec,
                                const Expr& invariant, const ExploreOptions& opts) {
  const StateGraph g = build_composite_graph(vars, {{spec, /*mover=*/true}}, {}, {}, opts);
  return check_invariant(g, invariant);
}

std::string format_trace(const VarTable& vars, const std::vector<State>& states) {
  std::ostringstream os;
  for (std::size_t i = 0; i < states.size(); ++i) {
    os << "  state " << i << ": " << states[i].to_string(vars) << "\n";
  }
  return os.str();
}

}  // namespace opentla
