#include "opentla/check/liveness.hpp"

#include <algorithm>
#include <deque>

#include "opentla/expr/eval.hpp"
#include "opentla/graph/scc.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/vm/interp.hpp"

namespace opentla {

LeadsToResult check_leads_to(const StateGraph& graph, const std::vector<Fairness>& fairness,
                             const Expr& p, const Expr& q) {
  OPENTLA_OBS_SPAN("check_leads_to");
  OPENTLA_OBS_PHASE("check.leadsto");
  LeadsToResult result;
  const VarTable& vars = graph.vars();

  // Both predicates are lowered once; per-state checks run the bytecode
  // (or the tree, under the vm::set_tree_eval_for_test switch).
  const vm::CompiledExpr q_prog(q);
  const vm::CompiledExpr p_prog(p);
  vm::VmContext vm_ctx;
  vm_ctx.vars = &vars;

  std::vector<signed char> is_q(graph.num_states(), -1);
  auto q_at = [&](StateId s) {
    if (is_q[s] < 0) {
      vm_ctx.current = &graph.state(s);
      is_q[s] = q_prog.eval_bool(vm_ctx) ? 1 : 0;
    }
    return is_q[s] == 1;
  };

  // Fair cycles inside the Q-free subgraph.
  FairnessCompiler compiler(graph);
  FairCycleQuery query;
  compiler.add_constraints(fairness, query);
  query.filter.node_ok = [&](StateId s) { return !q_at(s); };

  std::vector<StateId> roots(graph.num_states());
  for (std::size_t i = 0; i < roots.size(); ++i) roots[i] = static_cast<StateId>(i);
  std::vector<char> cycle_state(graph.num_states(), 0);
  std::vector<StateId> a_cycle;  // one witness cycle for the report
  for (const std::vector<StateId>& comp :
       strongly_connected_components(graph, roots, query.filter)) {
    std::vector<StateId> cycle;
    if (component_hosts_fair_cycle(graph, query, comp, cycle)) {
      for (StateId s : cycle) cycle_state[s] = 1;
      if (a_cycle.empty()) a_cycle = cycle;
    }
  }
  if (a_cycle.empty()) {
    result.holds = true;
    return result;
  }

  // Backward reachability through Q-free states: which states can escape
  // into a Q-free fair cycle without ever visiting Q?
  std::vector<std::vector<StateId>> reverse(graph.num_states());
  for (StateId u = 0; u < graph.num_states(); ++u) {
    if (q_at(u)) continue;
    for (StateId v : graph.successors(u)) {
      if (!q_at(v)) reverse[v].push_back(u);
    }
  }
  std::vector<char> escapes(graph.num_states(), 0);
  std::deque<StateId> frontier;
  for (StateId s = 0; s < graph.num_states(); ++s) {
    if (cycle_state[s]) {
      escapes[s] = 1;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const StateId v = frontier.front();
    frontier.pop_front();
    for (StateId u : reverse[v]) {
      if (!escapes[u]) {
        escapes[u] = 1;
        frontier.push_back(u);
      }
    }
  }

  // A violation needs a reachable P /\ ~Q state that escapes. (Every graph
  // node is reachable by construction.)
  for (StateId s = 0; s < graph.num_states(); ++s) {
    if (!escapes[s] || q_at(s)) continue;
    vm_ctx.current = &graph.state(s);
    if (!p_prog.eval_bool(vm_ctx)) continue;
    // Reconstruct: init -> s, then s -> cycle through Q-free states.
    std::vector<StateId> to_p = graph.shortest_path_to([&](StateId t) { return t == s; });
    std::vector<StateId> to_cycle = graph.path(
        s, [&](StateId t) { return cycle_state[t] != 0; },
        [&](StateId t) { return !q_at(t); });
    // Recover the particular cycle this entry reaches.
    const StateId entry = to_cycle.back();
    std::vector<StateId> cycle = a_cycle;
    if (!cycle_state[entry] ||
        std::find(a_cycle.begin(), a_cycle.end(), entry) == a_cycle.end()) {
      // Entry hits some other fair cycle; recompute one through it.
      for (const std::vector<StateId>& comp :
           strongly_connected_components(graph, {entry}, query.filter)) {
        std::vector<StateId> c;
        if (component_hosts_fair_cycle(graph, query, comp, c) &&
            std::find(comp.begin(), comp.end(), entry) != comp.end()) {
          cycle = c;
          // Extend the prefix from the entry to the recomputed cycle.
          std::vector<StateId> more = graph.path(
              entry, [&](StateId t) { return std::find(c.begin(), c.end(), t) != c.end(); },
              [&](StateId t) { return !q_at(t); });
          to_cycle.insert(to_cycle.end(), more.begin() + 1, more.end());
          break;
        }
      }
    }
    result.holds = false;
    for (StateId t : to_p) result.counterexample_prefix.push_back(graph.state(t));
    for (std::size_t i = 1; i < to_cycle.size(); ++i) {
      result.counterexample_prefix.push_back(graph.state(to_cycle[i]));
    }
    for (StateId t : cycle) result.counterexample_cycle.push_back(graph.state(t));
    return result;
  }
  result.holds = true;
  return result;
}

bool FairnessCompiler::Compiled::enabled(StateId s) {
  signed char& cached = enabled_cache[s];
  if (cached < 0) {
    cached = gen->enabled(graph->state(s)) ? 1 : 0;
  }
  return cached == 1;
}

bool FairnessCompiler::Compiled::step(StateId s, StateId t) {
  const std::uint64_t key = (static_cast<std::uint64_t>(s) << 32) | t;
  auto it = step_cache.find(key);
  if (it == step_cache.end()) {
    const bool result = eval_action(act, graph->vars(), graph->state(s), graph->state(t));
    it = step_cache.emplace(key, result).first;
  }
  return it->second;
}

std::shared_ptr<FairnessCompiler::Compiled> FairnessCompiler::compile(const Fairness& f) {
  auto unit = std::make_shared<Compiled>();
  unit->act = action_changing(f.action, f.sub);
  unit->gen = std::make_shared<ActionSuccessors>(graph_->vars(), unit->act);
  unit->enabled_cache.assign(graph_->num_states(), -1);
  unit->graph = graph_;
  units_.push_back(unit);
  return unit;
}

BuchiObligation FairnessCompiler::constraint_wf(const Fairness& f) {
  auto unit = compile(f);
  BuchiObligation ob;
  ob.label = f.label.empty() ? "WF" : f.label;
  ob.state_ok = [unit](StateId s) { return !unit->enabled(s); };
  ob.step_ok = [unit](StateId s, StateId t) { return unit->step(s, t); };
  return ob;
}

StreettObligation FairnessCompiler::constraint_sf(const Fairness& f) {
  auto unit = compile(f);
  StreettObligation ob;
  ob.label = f.label.empty() ? "SF" : f.label;
  ob.trigger = [unit](StateId s) { return unit->enabled(s); };
  ob.step_ok = [unit](StateId s, StateId t) { return unit->step(s, t); };
  return ob;
}

void FairnessCompiler::add_constraints(const std::vector<Fairness>& fs, FairCycleQuery& query) {
  for (const Fairness& f : fs) {
    if (f.kind == Fairness::Kind::Weak) {
      query.buchi.push_back(constraint_wf(f));
    } else {
      query.streett.push_back(constraint_sf(f));
    }
  }
}

namespace {
// Conjoins a condition into a possibly-null filter function.
template <typename Fn>
void conjoin(std::function<Fn>& slot, std::function<Fn> extra) {
  if (!slot) {
    slot = std::move(extra);
    return;
  }
  std::function<Fn> base = std::move(slot);
  if constexpr (std::is_same_v<Fn, bool(StateId)>) {
    slot = [base, extra](StateId s) { return base(s) && extra(s); };
  } else {
    slot = [base, extra](StateId s, StateId t) { return base(s, t) && extra(s, t); };
  }
}
}  // namespace

void FairnessCompiler::restrict_to_violation(const Fairness& f, FairCycleQuery& query) {
  auto unit = compile(f);
  // Either way the cycle must contain no <A>_v step.
  conjoin<bool(StateId, StateId)>(
      query.filter.edge_ok,
      [unit](StateId s, StateId t) { return !unit->step(s, t); });
  if (f.kind == Fairness::Kind::Weak) {
    // ~WF: <A>_v enabled at every state of the cycle. Restricting the whole
    // subgraph to enabled states is sound for cycle search because only the
    // cycle part must satisfy the restriction; the prefix is recomputed on
    // the unrestricted graph by find_fair_cycle.
    conjoin<bool(StateId)>(query.filter.node_ok,
                           [unit](StateId s) { return unit->enabled(s); });
  } else {
    // ~SF: <A>_v enabled infinitely often along the cycle.
    BuchiObligation ob;
    ob.label = "~" + (f.label.empty() ? std::string("SF") : f.label);
    ob.state_ok = [unit](StateId s) { return unit->enabled(s); };
    query.buchi.push_back(std::move(ob));
  }
}

}  // namespace opentla
