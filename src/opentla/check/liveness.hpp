// opentla/check/liveness.hpp
//
// Compiles TLA fairness conditions into fair-cycle obligations over a
// StateGraph (see graph/fair_cycle.hpp for the lasso characterizations).
// Two directions are needed:
//
//   - as *constraints* on the searched behavior (the fairness of the
//     low-level system, which a counterexample must satisfy):
//       WF_v(A)  ->  Buechi  (visit a step of <A>_v or a state where
//                             <A>_v is disabled, infinitely often)
//       SF_v(A)  ->  Streett (if <A>_v-enabled states are visited
//                             infinitely often, take <A>_v steps
//                             infinitely often)
//
//   - as the *negated goal* (the high-level fairness a counterexample must
//     violate), exposed as a subgraph restriction plus extra obligations:
//       ~WF_v(A): only states where <A>_v is enabled, no <A>_v steps
//       ~SF_v(A): no <A>_v steps, and <A>_v-enabled states visited
//                 infinitely often (a Buechi obligation)
//
// ENABLED computations are cached per state, which is what makes repeated
// fair-cycle queries affordable.

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "opentla/graph/fair_cycle.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/graph/state_graph.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

/// Leads-to checking: P ~> Q ("every P state is eventually followed by a
/// Q state") over the fair behaviors of an explored graph. A violation is
/// a reachable state satisfying P /\ ~Q from which a fair behavior avoids
/// Q forever — i.e. a Q-free path into a Q-free fair cycle.
struct LeadsToResult {
  bool holds = false;
  std::vector<State> counterexample_prefix;  // init ... P-state ... cycle entry
  std::vector<State> counterexample_cycle;   // the Q-free fair cycle
  explicit operator bool() const { return holds; }
};

LeadsToResult check_leads_to(const StateGraph& graph, const std::vector<Fairness>& fairness,
                             const Expr& p, const Expr& q);

/// Compiles fairness conditions over a fixed graph, caching per-state
/// ENABLED evaluations. The compiler must outlive the obligations and
/// filters it hands out (they capture references to its caches).
class FairnessCompiler {
 public:
  explicit FairnessCompiler(const StateGraph& graph) : graph_(&graph) {}

  /// The fairness condition as a constraint on the searched behavior.
  BuchiObligation constraint_wf(const Fairness& f);
  StreettObligation constraint_sf(const Fairness& f);
  /// Adds `fs` as constraints to `query` (dispatching on kind).
  void add_constraints(const std::vector<Fairness>& fs, FairCycleQuery& query);

  /// The negation of the fairness condition as a restriction of `query`:
  /// conjoins subgraph filters (and, for SF, a Buechi obligation) so that
  /// any fair cycle found violates `f`.
  void restrict_to_violation(const Fairness& f, FairCycleQuery& query);

 private:
  // One cached evaluation unit: <A>_v on edges, ENABLED <A>_v on states.
  // The action is decomposed once (ActionSuccessors) so the per-state
  // ENABLED checks do not re-analyze it.
  struct Compiled {
    Expr act;  // <A>_v = A /\ (v' # v)
    std::shared_ptr<ActionSuccessors> gen;
    std::vector<signed char> enabled_cache;  // -1 unknown, else 0/1
    std::unordered_map<std::uint64_t, bool> step_cache;
    const StateGraph* graph;
    bool enabled(StateId s);
    bool step(StateId s, StateId t);
  };
  std::shared_ptr<Compiled> compile(const Fairness& f);

  const StateGraph* graph_;
  std::vector<std::shared_ptr<Compiled>> units_;  // keep caches alive
};

}  // namespace opentla
