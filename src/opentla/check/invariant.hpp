// opentla/check/invariant.hpp
//
// Invariance checking: is []P true of every behavior of an explored
// system? Since the graph contains exactly the reachable states, this is a
// scan plus counterexample reconstruction.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/graph/state_graph.hpp"

namespace opentla {

struct InvariantResult {
  bool holds = false;
  /// States along a shortest path from an initial state to the violation
  /// (empty when the invariant holds).
  std::vector<State> counterexample;
  std::size_t states_checked = 0;

  explicit operator bool() const { return holds; }
};

/// Checks that every reachable state of `g` satisfies `invariant`.
InvariantResult check_invariant(const StateGraph& g, const Expr& invariant);

/// Renders a counterexample path for diagnostics.
std::string format_trace(const VarTable& vars, const std::vector<State>& states);

}  // namespace opentla
