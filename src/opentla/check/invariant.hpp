// opentla/check/invariant.hpp
//
// Invariance checking: is []P true of every behavior of an explored
// system? Since the graph contains exactly the reachable states, this is a
// scan plus counterexample reconstruction.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/graph/state_graph.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

struct InvariantResult {
  bool holds = false;
  /// States along a shortest path from an initial state to the violation
  /// (empty when the invariant holds).
  std::vector<State> counterexample;
  std::size_t states_checked = 0;
  /// Why the underlying exploration ended. A violation is definitive
  /// either way; `holds` with stop_reason != kCompleted only says "no
  /// violation among the states the budget allowed" — a partial verdict.
  run::StopReason stop_reason = run::StopReason::kCompleted;

  explicit operator bool() const { return holds; }
};

/// Checks that every reachable state of `g` satisfies `invariant`.
InvariantResult check_invariant(const StateGraph& g, const Expr& invariant);

/// Explore-and-check entry point: builds the reachable graph of the
/// complete system `spec` (per `opts`, serial or parallel — the verdict and
/// counterexample are identical for every opts.threads) and checks
/// `invariant` over it.
InvariantResult check_invariant(const VarTable& vars, const CanonicalSpec& spec,
                                const Expr& invariant, const ExploreOptions& opts);

/// Renders a counterexample path for diagnostics.
std::string format_trace(const VarTable& vars, const std::vector<State>& states);

}  // namespace opentla
