#include "opentla/expr/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace opentla {

namespace {
void collect_free(const Expr& e, FreeVars& out) {
  const ExprNode& n = e.node();
  switch (n.kind) {
    case ExprKind::Var:
      (n.primed ? out.primed : out.unprimed).insert(n.var);
      return;
    case ExprKind::Enabled: {
      // ENABLED A is a state predicate: the primed variables of A are
      // quantified away; its unprimed variables remain free.
      FreeVars inner = free_vars(n.kids[0]);
      out.unprimed.insert(inner.unprimed.begin(), inner.unprimed.end());
      return;
    }
    default:
      for (const Expr& k : n.kids) collect_free(k, out);
      return;
  }
}
}  // namespace

FreeVars free_vars(const Expr& e) {
  FreeVars out;
  collect_free(e, out);
  return out;
}

bool is_state_function(const Expr& e) { return free_vars(e).primed.empty(); }

namespace {
void flatten(const Expr& e, ExprKind kind, std::vector<Expr>& out) {
  const ExprNode& n = e.node();
  if (n.kind == kind) {
    for (const Expr& k : n.kids) flatten(k, kind, out);
    return;
  }
  // Drop the connective's unit: TRUE in a conjunction, FALSE in a
  // disjunction.
  if (n.kind == ExprKind::Const && n.value.is_bool()) {
    const bool unit = (kind == ExprKind::And);
    if (n.value.as_bool() == unit) return;
  }
  out.push_back(e);
}
}  // namespace

std::vector<Expr> flatten_and(const Expr& e) {
  std::vector<Expr> out;
  flatten(e, ExprKind::And, out);
  return out;
}

std::vector<Expr> flatten_or(const Expr& e) {
  std::vector<Expr> out;
  flatten(e, ExprKind::Or, out);
  return out;
}

namespace {

// Tries to turn `conjunct` into zero or more assignments v' = rhs with
// state-function rhs. Handles <<a', b'>> = <<x, y>> structurally and the
// symmetric orientation rhs = v'. Returns false if the conjunct is not an
// assignment shape; `assigns` is unchanged in that case.
bool match_assignments(const Expr& conjunct, std::vector<std::pair<VarId, Expr>>& assigns) {
  const ExprNode& n = conjunct.node();
  if (n.kind != ExprKind::Eq) return false;
  const Expr* lhs = &n.kids[0];
  const Expr* rhs = &n.kids[1];
  // Orient so a primed side is on the left.
  auto is_primed_shape = [](const Expr& e) {
    const ExprNode& m = e.node();
    if (m.kind == ExprKind::Var && m.primed) return true;
    if (m.kind == ExprKind::MakeTuple) {
      return std::all_of(m.kids.begin(), m.kids.end(), [](const Expr& k) {
        return k.node().kind == ExprKind::Var && k.node().primed;
      });
    }
    return false;
  };
  if (!is_primed_shape(*lhs)) {
    std::swap(lhs, rhs);
    if (!is_primed_shape(*lhs)) return false;
  }
  if (!is_state_function(*rhs)) return false;

  const ExprNode& l = lhs->node();
  if (l.kind == ExprKind::Var) {
    assigns.emplace_back(l.var, *rhs);
    return true;
  }
  // <<v1', ..., vk'>> = rhs. Decompose only when rhs is a literal tuple of
  // the same arity; otherwise leave as residual (rhs might evaluate to a
  // tuple, but we cannot split it syntactically).
  const ExprNode& r = rhs->node();
  if (r.kind != ExprKind::MakeTuple || r.kids.size() != l.kids.size()) return false;
  for (std::size_t i = 0; i < l.kids.size(); ++i) {
    assigns.emplace_back(l.kids[i].node().var, r.kids[i]);
  }
  return true;
}

ActionDisjunct build_disjunct(const Expr& disjunct) {
  ActionDisjunct out;
  std::set<VarId> assigned;
  // Primed variables of each residual conjunct, collected in the same pass
  // that classifies the conjunct (one free_vars walk per conjunct; the
  // needs/unassigned/primed views below are all projections of this).
  std::vector<std::set<VarId>> per_conjunct_primed;
  for (const Expr& c : flatten_and(disjunct)) {
    if (is_state_function(c)) {
      out.guards.push_back(c);
      continue;
    }
    std::vector<std::pair<VarId, Expr>> assigns;
    if (match_assignments(c, assigns)) {
      bool fresh = true;
      for (const auto& [v, rhs] : assigns) {
        if (assigned.contains(v)) fresh = false;
      }
      if (fresh) {
        for (auto& [v, rhs] : assigns) {
          assigned.insert(v);
          out.assignments.emplace_back(v, rhs);
        }
        continue;
      }
      // A second constraint on an already-assigned variable: keep it as a
      // residual so it is checked, not silently dropped.
    }
    per_conjunct_primed.push_back(free_vars(c).primed);
    out.residual.push_back(c);
  }
  std::set<VarId> residual_primed;
  for (const std::set<VarId>& ps : per_conjunct_primed) {
    residual_primed.insert(ps.begin(), ps.end());
  }
  out.residual_primed.assign(residual_primed.begin(), residual_primed.end());
  for (VarId v : residual_primed) {
    if (!assigned.contains(v)) out.unassigned_primed.push_back(v);
  }
  // Annotate each residual conjunct with the unassigned primed variables it
  // mentions (ascending: std::set iteration order). Assigned primed
  // variables are determined before enumeration starts, so they never gate
  // a conjunct's schedule depth.
  out.residual_needs.reserve(out.residual.size());
  for (const std::set<VarId>& ps : per_conjunct_primed) {
    std::vector<VarId> needs;
    for (VarId v : ps) {
      if (!assigned.contains(v)) needs.push_back(v);
    }
    out.residual_needs.push_back(std::move(needs));
  }
  return out;
}

}  // namespace

std::vector<ActionDisjunct> decompose_action(const Expr& action) {
  std::vector<ActionDisjunct> out;
  for (const Expr& d : flatten_or(action)) {
    out.push_back(build_disjunct(d));
  }
  return out;
}

ResidualSchedule schedule_residual(const std::vector<std::vector<VarId>>& needs,
                                   const std::vector<VarId>& enumerate) {
  ResidualSchedule sched;
  sched.order.reserve(enumerate.size());
  sched.at_depth.assign(enumerate.size() + 1, {});

  const std::set<VarId> enumerable(enumerate.begin(), enumerate.end());
  // Unbound enumerated variables each conjunct still waits for; variables
  // outside `enumerate` are bound in the base state, so they drop out here.
  std::vector<std::vector<VarId>> waiting(needs.size());
  for (std::size_t i = 0; i < needs.size(); ++i) {
    for (VarId v : needs[i]) {
      if (enumerable.contains(v)) waiting[i].push_back(v);
    }
  }

  std::set<VarId> bound;
  std::vector<char> placed(needs.size(), 0);
  auto place_ready = [&] {
    // Every unplaced conjunct whose variables are all bound becomes
    // checkable at the current depth (index order for determinism).
    for (std::size_t i = 0; i < needs.size(); ++i) {
      if (placed[i]) continue;
      bool ready = true;
      for (VarId v : waiting[i]) {
        if (!bound.contains(v)) ready = false;
      }
      if (ready) {
        sched.at_depth[sched.order.size()].push_back(i);
        placed[i] = 1;
      }
    }
  };
  place_ready();  // conjuncts with no enumerated variable: depth 0

  while (sched.order.size() < enumerate.size()) {
    // Greedy: bind the variables of the conjunct that is closest to
    // becoming checkable (fewest unbound variables; ties by index).
    std::size_t best = needs.size();
    std::size_t best_missing = 0;
    for (std::size_t i = 0; i < needs.size(); ++i) {
      if (placed[i]) continue;
      std::size_t missing = 0;
      for (VarId v : waiting[i]) {
        if (!bound.contains(v)) ++missing;
      }
      if (best == needs.size() || missing < best_missing) {
        best = i;
        best_missing = missing;
      }
    }
    if (best == needs.size()) {
      // No conjunct left: the remaining variables are pure frame
      // enumeration. Keep them in the caller's order, deepest in the tree.
      for (VarId v : enumerate) {
        if (!bound.contains(v)) sched.order.push_back(v);
      }
      break;
    }
    std::vector<VarId> fresh;
    for (VarId v : waiting[best]) {
      if (!bound.contains(v)) fresh.push_back(v);
    }
    std::sort(fresh.begin(), fresh.end());
    for (VarId v : fresh) {
      sched.order.push_back(v);
      bound.insert(v);
    }
    place_ready();
  }
  return sched;
}

std::optional<Value> fold_constant(const Expr& e) {
  const ExprNode& n = e.node();
  auto fold_bool = [](const Expr& k) -> std::optional<bool> {
    std::optional<Value> v = fold_constant(k);
    if (!v || !v->is_bool()) return std::nullopt;
    return v->as_bool();
  };
  auto fold_int = [](const Expr& k) -> std::optional<std::int64_t> {
    std::optional<Value> v = fold_constant(k);
    if (!v || !v->is_int()) return std::nullopt;
    return v->as_int();
  };
  switch (n.kind) {
    case ExprKind::Const:
      return n.value;
    case ExprKind::Var:
    case ExprKind::Local:
    case ExprKind::Enabled:
      return std::nullopt;
    case ExprKind::Not: {
      std::optional<bool> a = fold_bool(n.kids[0]);
      if (!a) return std::nullopt;
      return Value::boolean(!*a);
    }
    case ExprKind::And:
    case ExprKind::Or: {
      // Short-circuit: one determining kid folds the connective even when
      // the others are non-constant.
      const bool determining = (n.kind == ExprKind::Or);
      bool all_known = true;
      for (const Expr& k : n.kids) {
        std::optional<bool> b = fold_bool(k);
        if (!b) {
          all_known = false;
        } else if (*b == determining) {
          return Value::boolean(determining);
        }
      }
      if (all_known) return Value::boolean(!determining);
      return std::nullopt;
    }
    case ExprKind::Implies: {
      std::optional<bool> a = fold_bool(n.kids[0]);
      std::optional<bool> b = fold_bool(n.kids[1]);
      if (a && !*a) return Value::boolean(true);
      if (b && *b) return Value::boolean(true);
      if (a && b) return Value::boolean(*b);
      return std::nullopt;
    }
    case ExprKind::Equiv: {
      std::optional<bool> a = fold_bool(n.kids[0]);
      std::optional<bool> b = fold_bool(n.kids[1]);
      if (!a || !b) return std::nullopt;
      return Value::boolean(*a == *b);
    }
    case ExprKind::Eq:
    case ExprKind::Neq: {
      std::optional<Value> a = fold_constant(n.kids[0]);
      std::optional<Value> b = fold_constant(n.kids[1]);
      if (!a || !b) return std::nullopt;
      return Value::boolean((*a == *b) == (n.kind == ExprKind::Eq));
    }
    case ExprKind::Lt:
    case ExprKind::Le:
    case ExprKind::Gt:
    case ExprKind::Ge: {
      std::optional<std::int64_t> a = fold_int(n.kids[0]);
      std::optional<std::int64_t> b = fold_int(n.kids[1]);
      if (!a || !b) return std::nullopt;
      switch (n.kind) {
        case ExprKind::Lt: return Value::boolean(*a < *b);
        case ExprKind::Le: return Value::boolean(*a <= *b);
        case ExprKind::Gt: return Value::boolean(*a > *b);
        default:           return Value::boolean(*a >= *b);
      }
    }
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Mul:
    case ExprKind::Mod: {
      std::optional<std::int64_t> a = fold_int(n.kids[0]);
      std::optional<std::int64_t> b = fold_int(n.kids[1]);
      if (!a || !b) return std::nullopt;
      // Overflow and a nonpositive divisor fold to nullopt: evaluation
      // reports them as eval errors, never as wrapped values.
      std::int64_t r = 0;
      switch (n.kind) {
        case ExprKind::Add:
          if (__builtin_add_overflow(*a, *b, &r)) return std::nullopt;
          return Value::integer(r);
        case ExprKind::Sub:
          if (__builtin_sub_overflow(*a, *b, &r)) return std::nullopt;
          return Value::integer(r);
        case ExprKind::Mul:
          if (__builtin_mul_overflow(*a, *b, &r)) return std::nullopt;
          return Value::integer(r);
        default:
          if (*b <= 0) return std::nullopt;
          // TLC's floored modulo: the result has the sign of b (here > 0).
          r = *a % *b;
          return Value::integer(r < 0 ? r + *b : r);
      }
    }
    case ExprKind::Neg: {
      std::optional<std::int64_t> a = fold_int(n.kids[0]);
      if (!a || *a == INT64_MIN) return std::nullopt;
      return Value::integer(-*a);
    }
    case ExprKind::IfThenElse: {
      std::optional<bool> cond = fold_bool(n.kids[0]);
      if (!cond) return std::nullopt;
      return fold_constant(n.kids[*cond ? 1 : 2]);
    }
    case ExprKind::MakeTuple: {
      Value::Tuple elems;
      elems.reserve(n.kids.size());
      for (const Expr& k : n.kids) {
        std::optional<Value> v = fold_constant(k);
        if (!v) return std::nullopt;
        elems.push_back(std::move(*v));
      }
      return Value::tuple(std::move(elems));
    }
    case ExprKind::Len: {
      std::optional<Value> s = fold_constant(n.kids[0]);
      if (!s || !s->is_tuple()) return std::nullopt;
      return Value::integer(static_cast<std::int64_t>(s->length()));
    }
    case ExprKind::Head: {
      std::optional<Value> s = fold_constant(n.kids[0]);
      if (!s || !s->is_tuple() || s->length() == 0) return std::nullopt;
      return s->as_tuple().front();
    }
    case ExprKind::Tail: {
      std::optional<Value> s = fold_constant(n.kids[0]);
      if (!s || !s->is_tuple() || s->length() == 0) return std::nullopt;
      return seq_tail(*s);
    }
    case ExprKind::Concat: {
      std::optional<Value> s = fold_constant(n.kids[0]);
      std::optional<Value> t = fold_constant(n.kids[1]);
      if (!s || !t || !s->is_tuple() || !t->is_tuple()) return std::nullopt;
      return seq_concat(*s, *t);
    }
    case ExprKind::Append: {
      std::optional<Value> s = fold_constant(n.kids[0]);
      std::optional<Value> v = fold_constant(n.kids[1]);
      if (!s || !v || !s->is_tuple()) return std::nullopt;
      return seq_append(*s, *v);
    }
    case ExprKind::Index: {
      std::optional<Value> s = fold_constant(n.kids[0]);
      std::optional<std::int64_t> i = fold_int(n.kids[1]);
      if (!s || !i || !s->is_tuple()) return std::nullopt;
      if (*i < 1 || static_cast<std::size_t>(*i) > s->length()) return std::nullopt;
      return s->as_tuple()[static_cast<std::size_t>(*i - 1)];
    }
    case ExprKind::ExistsVal:
    case ExprKind::ForallVal:
      // Folding would require substituting the bound variable; out of scope
      // for a syntactic pass.
      return std::nullopt;
  }
  return std::nullopt;
}

Expr to_dnf(const Expr& e, std::size_t max_disjuncts) {
  const ExprNode& n = e.node();
  // Each element of the result is one conjunct list.
  std::vector<std::vector<Expr>> disjuncts;
  if (n.kind == ExprKind::Or) {
    for (const Expr& k : n.kids) {
      Expr kd = to_dnf(k, max_disjuncts);
      for (const Expr& d : flatten_or(kd)) {
        disjuncts.push_back(flatten_and(d));
        if (disjuncts.size() > max_disjuncts) {
          throw std::runtime_error("to_dnf: expansion too large");
        }
      }
    }
  } else if (n.kind == ExprKind::And) {
    disjuncts.push_back({});
    for (const Expr& k : n.kids) {
      Expr kd = to_dnf(k, max_disjuncts);
      std::vector<Expr> kid_disjuncts = flatten_or(kd);
      std::vector<std::vector<Expr>> next;
      next.reserve(disjuncts.size() * kid_disjuncts.size());
      for (const std::vector<Expr>& base : disjuncts) {
        for (const Expr& d : kid_disjuncts) {
          std::vector<Expr> merged = base;
          for (const Expr& c : flatten_and(d)) merged.push_back(c);
          next.push_back(std::move(merged));
          if (next.size() > max_disjuncts) {
            throw std::runtime_error("to_dnf: expansion too large");
          }
        }
      }
      disjuncts = std::move(next);
    }
  } else {
    return e;
  }
  std::vector<Expr> out;
  out.reserve(disjuncts.size());
  for (std::vector<Expr>& conj : disjuncts) out.push_back(ex::land(std::move(conj)));
  return ex::lor(std::move(out));
}

bool structurally_equal(const Expr& a, const Expr& b) {
  if (&a.node() == &b.node()) return true;
  const ExprNode& x = a.node();
  const ExprNode& y = b.node();
  if (x.kind != y.kind) return false;
  switch (x.kind) {
    case ExprKind::Const:
      return x.value == y.value;
    case ExprKind::Var:
      return x.var == y.var && x.primed == y.primed;
    case ExprKind::Local:
      return x.local == y.local;
    case ExprKind::ExistsVal:
    case ExprKind::ForallVal:
      if (x.local != y.local || !(x.domain == y.domain)) return false;
      break;
    default:
      break;
  }
  if (x.kids.size() != y.kids.size()) return false;
  for (std::size_t i = 0; i < x.kids.size(); ++i) {
    if (!structurally_equal(x.kids[i], y.kids[i])) return false;
  }
  return true;
}

}  // namespace opentla
