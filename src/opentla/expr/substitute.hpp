// opentla/expr/substitute.hpp
//
// Syntactic transforms on expressions: priming (f |-> f'), variable
// renaming (the paper's F[z/o, q1/q] substitutions that build the two
// component queues out of one queue spec), and variable-to-expression
// substitution (refinement mappings: replace a high-level variable with a
// state function over low-level variables).

#pragma once

#include <map>

#include "opentla/expr/expr.hpp"

namespace opentla {

/// f': primes every unprimed flexible variable of `f`. Throws if `f`
/// already contains primed variables or ENABLED (priming an action is not
/// meaningful in TLA).
Expr prime(const Expr& f);

/// F[w/v ...]: renames variables according to `renaming` (both primed and
/// unprimed occurrences). Ids absent from the map are unchanged. The result
/// may refer to a different VarTable (cross-universe renaming).
Expr rename_vars(const Expr& e, const std::map<VarId, VarId>& renaming);

/// Replaces each occurrence of variable v (resp. v') by `map[v]` (resp. by
/// `prime(map[v])`). Substituted expressions must be state functions.
/// Used to push refinement mappings through high-level actions. ENABLED
/// subexpressions are substituted inside as well (sound when substituted
/// variables do not occur primed under the ENABLED, which holds for the
/// mappings we build; callers needing exact high-level ENABLED evaluate it
/// in the high universe instead — see check/refinement).
Expr substitute_vars(const Expr& e, const std::map<VarId, Expr>& map);

}  // namespace opentla
