#include "opentla/expr/substitute.hpp"

#include <stdexcept>

namespace opentla {

namespace {
Expr rebuild(const ExprNode& n, std::vector<Expr> kids) {
  ExprNode out;
  out.kind = n.kind;
  out.value = n.value;
  out.var = n.var;
  out.primed = n.primed;
  out.local = n.local;
  out.domain = n.domain;
  out.kids = std::move(kids);
  return Expr(std::make_shared<const ExprNode>(std::move(out)));
}

template <typename LeafFn>
Expr transform(const Expr& e, LeafFn&& leaf) {
  const ExprNode& n = e.node();
  if (n.kind == ExprKind::Var) return leaf(e);
  if (n.kids.empty()) return e;
  std::vector<Expr> kids;
  kids.reserve(n.kids.size());
  bool changed = false;
  for (const Expr& k : n.kids) {
    Expr nk = transform(k, leaf);
    changed = changed || (&nk.node() != &k.node());
    kids.push_back(std::move(nk));
  }
  if (!changed) return e;
  return rebuild(n, std::move(kids));
}
}  // namespace

Expr prime(const Expr& f) {
  const ExprNode& n = f.node();
  if (n.kind == ExprKind::Enabled) {
    throw std::runtime_error("prime: cannot prime an ENABLED expression");
  }
  if (n.kind == ExprKind::Var) {
    if (n.primed) throw std::runtime_error("prime: expression already contains primes");
    return ex::primed_var(n.var);
  }
  if (n.kids.empty()) return f;
  std::vector<Expr> kids;
  kids.reserve(n.kids.size());
  for (const Expr& k : n.kids) kids.push_back(prime(k));
  return rebuild(n, std::move(kids));
}

Expr rename_vars(const Expr& e, const std::map<VarId, VarId>& renaming) {
  return transform(e, [&](const Expr& leaf) {
    const ExprNode& n = leaf.node();
    auto it = renaming.find(n.var);
    if (it == renaming.end()) return leaf;
    return n.primed ? ex::primed_var(it->second) : ex::var(it->second);
  });
}

Expr substitute_vars(const Expr& e, const std::map<VarId, Expr>& map) {
  return transform(e, [&](const Expr& leaf) {
    const ExprNode& n = leaf.node();
    auto it = map.find(n.var);
    if (it == map.end()) return leaf;
    return n.primed ? prime(it->second) : it->second;
  });
}

}  // namespace opentla
