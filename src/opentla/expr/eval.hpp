// opentla/expr/eval.hpp
//
// Evaluation of state functions and actions. A state function is evaluated
// against one state; an action against a pair <s, t> with primed variables
// reading from t. Evaluation is exact and throws on spec-level type errors
// (e.g. Head of a non-sequence) rather than guessing.

#pragma once

#include <string>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/state/state.hpp"
#include "opentla/state/var_table.hpp"

namespace opentla {

/// Evaluation context. `next` may be null, in which case evaluating a
/// primed variable throws (the expression was supposed to be a state
/// function). `vars` supplies the domains needed by ENABLED.
struct EvalContext {
  const VarTable* vars = nullptr;
  const State* current = nullptr;
  const State* next = nullptr;
  /// Bound-variable environment, innermost binding last.
  std::vector<std::pair<std::string, Value>> locals;
};

/// Evaluates `e` in `ctx` to a value.
Value eval(const Expr& e, EvalContext& ctx);

/// Evaluates a boolean expression; throws if the result is not boolean.
bool eval_bool(const Expr& e, EvalContext& ctx);

/// Evaluates a state predicate at `s`.
bool eval_pred(const Expr& e, const VarTable& vars, const State& s);

/// Evaluates a state function at `s`.
Value eval_fn(const Expr& e, const VarTable& vars, const State& s);

/// Evaluates an action on the step <s, t>.
bool eval_action(const Expr& e, const VarTable& vars, const State& s, const State& t);

/// ENABLED A at state s: true iff some state t over `vars` (differing from
/// s only on the primed variables occurring in A) makes <s, t> an A step.
/// Uses the action decomposition to avoid blind enumeration where possible.
///
/// Note: in this explicit-state engine ENABLED quantifies the next state
/// over the declared finite domains; an action whose assignments would
/// leave the domain counts as disabled (no such state exists in the space).
bool eval_enabled(const Expr& action, const VarTable& vars, const State& s);

/// ENABLED with an outer bound-variable environment visible to the action.
bool enabled_with_locals(const Expr& action, const VarTable& vars, const State& s,
                         const std::vector<std::pair<std::string, Value>>& locals);

/// ENABLED evaluated in a reusable context: `ctx.vars`/`ctx.current` supply
/// the query, `ctx.locals` is the outer environment (read in place, no
/// copy), and `ctx.next` is saved and restored around the internal search.
/// This is the allocation-free path used by hot callers (eval's ENABLED
/// case, successor generation).
bool enabled_with_locals(const Expr& action, EvalContext& ctx);

}  // namespace opentla
