#include "opentla/expr/expr.hpp"

namespace opentla {
namespace ex {

namespace {
Expr make(ExprNode node) {
  return Expr(std::make_shared<const ExprNode>(std::move(node)));
}

Expr nary(ExprKind kind, std::vector<Expr> kids) {
  ExprNode n;
  n.kind = kind;
  n.kids = std::move(kids);
  return make(std::move(n));
}
}  // namespace

Expr constant(Value v) {
  ExprNode n;
  n.kind = ExprKind::Const;
  n.value = std::move(v);
  return make(std::move(n));
}

Expr boolean(bool b) { return constant(Value::boolean(b)); }
Expr integer(std::int64_t i) { return constant(Value::integer(i)); }
Expr str(std::string s) { return constant(Value::string(std::move(s))); }
Expr top() { return boolean(true); }
Expr bottom() { return boolean(false); }

Expr var(VarId v) {
  ExprNode n;
  n.kind = ExprKind::Var;
  n.var = v;
  n.primed = false;
  return make(std::move(n));
}

Expr primed_var(VarId v) {
  ExprNode n;
  n.kind = ExprKind::Var;
  n.var = v;
  n.primed = true;
  return make(std::move(n));
}

Expr local(std::string name) {
  ExprNode n;
  n.kind = ExprKind::Local;
  n.local = std::move(name);
  return make(std::move(n));
}

Expr lnot(Expr a) { return nary(ExprKind::Not, {std::move(a)}); }

Expr land(std::vector<Expr> kids) { return nary(ExprKind::And, std::move(kids)); }
Expr land(Expr a, Expr b) { return land(std::vector<Expr>{std::move(a), std::move(b)}); }
Expr land(Expr a, Expr b, Expr c) {
  return land(std::vector<Expr>{std::move(a), std::move(b), std::move(c)});
}

Expr lor(std::vector<Expr> kids) { return nary(ExprKind::Or, std::move(kids)); }
Expr lor(Expr a, Expr b) { return lor(std::vector<Expr>{std::move(a), std::move(b)}); }
Expr lor(Expr a, Expr b, Expr c) {
  return lor(std::vector<Expr>{std::move(a), std::move(b), std::move(c)});
}

Expr implies(Expr a, Expr b) { return nary(ExprKind::Implies, {std::move(a), std::move(b)}); }
Expr equiv(Expr a, Expr b) { return nary(ExprKind::Equiv, {std::move(a), std::move(b)}); }

Expr eq(Expr a, Expr b) { return nary(ExprKind::Eq, {std::move(a), std::move(b)}); }
Expr neq(Expr a, Expr b) { return nary(ExprKind::Neq, {std::move(a), std::move(b)}); }
Expr lt(Expr a, Expr b) { return nary(ExprKind::Lt, {std::move(a), std::move(b)}); }
Expr le(Expr a, Expr b) { return nary(ExprKind::Le, {std::move(a), std::move(b)}); }
Expr gt(Expr a, Expr b) { return nary(ExprKind::Gt, {std::move(a), std::move(b)}); }
Expr ge(Expr a, Expr b) { return nary(ExprKind::Ge, {std::move(a), std::move(b)}); }

Expr add(Expr a, Expr b) { return nary(ExprKind::Add, {std::move(a), std::move(b)}); }
Expr sub(Expr a, Expr b) { return nary(ExprKind::Sub, {std::move(a), std::move(b)}); }
Expr mul(Expr a, Expr b) { return nary(ExprKind::Mul, {std::move(a), std::move(b)}); }
Expr mod(Expr a, Expr b) { return nary(ExprKind::Mod, {std::move(a), std::move(b)}); }
Expr neg(Expr a) { return nary(ExprKind::Neg, {std::move(a)}); }

Expr ite(Expr cond, Expr then_e, Expr else_e) {
  return nary(ExprKind::IfThenElse, {std::move(cond), std::move(then_e), std::move(else_e)});
}

Expr make_tuple(std::vector<Expr> kids) { return nary(ExprKind::MakeTuple, std::move(kids)); }
Expr head(Expr s) { return nary(ExprKind::Head, {std::move(s)}); }
Expr tail(Expr s) { return nary(ExprKind::Tail, {std::move(s)}); }
Expr len(Expr s) { return nary(ExprKind::Len, {std::move(s)}); }
Expr concat(Expr s, Expr t) { return nary(ExprKind::Concat, {std::move(s), std::move(t)}); }
Expr append(Expr s, Expr e) { return nary(ExprKind::Append, {std::move(s), std::move(e)}); }
Expr index(Expr s, Expr i) { return nary(ExprKind::Index, {std::move(s), std::move(i)}); }

Expr exists_val(std::string name, Domain d, Expr body) {
  ExprNode n;
  n.kind = ExprKind::ExistsVal;
  n.local = std::move(name);
  n.domain = std::move(d);
  n.kids = {std::move(body)};
  return make(std::move(n));
}

Expr forall_val(std::string name, Domain d, Expr body) {
  ExprNode n;
  n.kind = ExprKind::ForallVal;
  n.local = std::move(name);
  n.domain = std::move(d);
  n.kids = {std::move(body)};
  return make(std::move(n));
}

Expr enabled(Expr action) { return nary(ExprKind::Enabled, {std::move(action)}); }

Expr unchanged(const std::vector<VarId>& vs) {
  std::vector<Expr> conj;
  conj.reserve(vs.size());
  for (VarId v : vs) conj.push_back(eq(primed_var(v), var(v)));
  return land(std::move(conj));
}

Expr var_tuple(const std::vector<VarId>& vs) {
  std::vector<Expr> kids;
  kids.reserve(vs.size());
  for (VarId v : vs) kids.push_back(var(v));
  return make_tuple(std::move(kids));
}

Expr primed_var_tuple(const std::vector<VarId>& vs) {
  std::vector<Expr> kids;
  kids.reserve(vs.size());
  for (VarId v : vs) kids.push_back(primed_var(v));
  return make_tuple(std::move(kids));
}

}  // namespace ex

std::uint64_t expr_deep_bytes(const Expr& e,
                              std::unordered_set<const ExprNode*>& seen) {
  if (e.is_null()) return 0;
  const ExprNode& n = e.node();
  // Macro splices share whole subtrees between definitions and use sites;
  // each shared node's heap bytes exist once, so count it once.
  if (!seen.insert(&n).second) return 0;
  std::uint64_t bytes = sizeof(ExprNode);
  // The node embeds a Value; value_deep_bytes counts sizeof(Value) itself,
  // so only the spill-over (heap strings, tuple elements) is added here.
  bytes += value_deep_bytes(n.value) - sizeof(Value);
  if (n.local.capacity() > sizeof(std::string) - 1) bytes += n.local.capacity() + 1;
  for (const Value& v : n.domain.values()) bytes += value_deep_bytes(v);
  bytes += n.kids.capacity() * sizeof(Expr);
  for (const Expr& k : n.kids) bytes += expr_deep_bytes(k, seen);
  return bytes;
}

std::uint64_t expr_deep_bytes(const Expr& e) {
  std::unordered_set<const ExprNode*> seen;
  return expr_deep_bytes(e, seen);
}

}  // namespace opentla
