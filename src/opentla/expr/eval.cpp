#include "opentla/expr/eval.hpp"

#include <cstdint>
#include <stdexcept>

#include "opentla/expr/analysis.hpp"
#include "opentla/state/state_space.hpp"

namespace opentla {

namespace {
[[noreturn]] void eval_error(const std::string& msg) {
  throw std::runtime_error("eval: " + msg);
}

std::int64_t as_int(const Expr& e, EvalContext& ctx) { return eval(e, ctx).as_int(); }

// Pops one local binding on scope exit, so an eval_error thrown from a
// quantifier body cannot leave a stale binding in a reused context.
struct LocalScope {
  std::vector<std::pair<std::string, Value>>* locals;
  ~LocalScope() { locals->pop_back(); }
};

// Restores ctx.next on scope exit (ENABLED re-points it at candidate states).
struct NextRestore {
  EvalContext* ctx;
  const State* saved;
  ~NextRestore() { ctx->next = saved; }
};
}  // namespace

// Pinned evaluation-order contract (shared with opentla/vm/):
//
// Operands of every binary operator are evaluated LEFT TO RIGHT, and the
// n-ary connectives And / Or short-circuit in child order. This matters
// only when evaluation can throw: which eval error a spec surfaces (an
// overflow in the left operand vs. a kind mismatch in the right) must not
// depend on the evaluator. C++ leaves the order of function-argument
// evaluation unspecified, so every case below that evaluates two operands
// does it through named temporaries rather than inline calls. The bytecode
// compiler (opentla/vm/compile.cpp) emits code in this same order; the
// differential VM-vs-tree axis in tests/test_differential.cpp holds both
// evaluators to it, down to identical exception messages.
Value eval(const Expr& e, EvalContext& ctx) {
  if (e.is_null()) eval_error("null expression");
  const ExprNode& n = e.node();
  switch (n.kind) {
    case ExprKind::Const:
      return n.value;

    case ExprKind::Var: {
      if (n.primed) {
        if (ctx.next == nullptr) {
          eval_error("primed variable in a state-function context");
        }
        return (*ctx.next)[n.var];
      }
      if (ctx.current == nullptr) eval_error("no current state");
      return (*ctx.current)[n.var];
    }

    case ExprKind::Local: {
      for (auto it = ctx.locals.rbegin(); it != ctx.locals.rend(); ++it) {
        if (it->first == n.local) return it->second;
      }
      eval_error("unbound local '" + n.local + "'");
    }

    case ExprKind::Not:
      return Value::boolean(!eval_bool(n.kids[0], ctx));

    case ExprKind::And: {
      for (const Expr& k : n.kids) {
        if (!eval_bool(k, ctx)) return Value::boolean(false);
      }
      return Value::boolean(true);
    }

    case ExprKind::Or: {
      for (const Expr& k : n.kids) {
        if (eval_bool(k, ctx)) return Value::boolean(true);
      }
      return Value::boolean(false);
    }

    case ExprKind::Implies:
      return Value::boolean(!eval_bool(n.kids[0], ctx) || eval_bool(n.kids[1], ctx));

    case ExprKind::Equiv: {
      const bool a = eval_bool(n.kids[0], ctx);
      const bool b = eval_bool(n.kids[1], ctx);
      return Value::boolean(a == b);
    }

    case ExprKind::Eq: {
      const Value a = eval(n.kids[0], ctx);
      const Value b = eval(n.kids[1], ctx);
      return Value::boolean(a == b);
    }
    case ExprKind::Neq: {
      const Value a = eval(n.kids[0], ctx);
      const Value b = eval(n.kids[1], ctx);
      return Value::boolean(!(a == b));
    }
    case ExprKind::Lt: {
      const std::int64_t a = as_int(n.kids[0], ctx);
      const std::int64_t b = as_int(n.kids[1], ctx);
      return Value::boolean(a < b);
    }
    case ExprKind::Le: {
      const std::int64_t a = as_int(n.kids[0], ctx);
      const std::int64_t b = as_int(n.kids[1], ctx);
      return Value::boolean(a <= b);
    }
    case ExprKind::Gt: {
      const std::int64_t a = as_int(n.kids[0], ctx);
      const std::int64_t b = as_int(n.kids[1], ctx);
      return Value::boolean(a > b);
    }
    case ExprKind::Ge: {
      const std::int64_t a = as_int(n.kids[0], ctx);
      const std::int64_t b = as_int(n.kids[1], ctx);
      return Value::boolean(a >= b);
    }

    case ExprKind::Add: {
      const std::int64_t a = as_int(n.kids[0], ctx);
      const std::int64_t b = as_int(n.kids[1], ctx);
      std::int64_t r = 0;
      if (__builtin_add_overflow(a, b, &r)) {
        eval_error("integer overflow in +");
      }
      return Value::integer(r);
    }
    case ExprKind::Sub: {
      const std::int64_t a = as_int(n.kids[0], ctx);
      const std::int64_t b = as_int(n.kids[1], ctx);
      std::int64_t r = 0;
      if (__builtin_sub_overflow(a, b, &r)) {
        eval_error("integer overflow in -");
      }
      return Value::integer(r);
    }
    case ExprKind::Mul: {
      const std::int64_t a = as_int(n.kids[0], ctx);
      const std::int64_t b = as_int(n.kids[1], ctx);
      std::int64_t r = 0;
      if (__builtin_mul_overflow(a, b, &r)) {
        eval_error("integer overflow in *");
      }
      return Value::integer(r);
    }
    case ExprKind::Mod: {
      const std::int64_t a = as_int(n.kids[0], ctx);
      const std::int64_t b = as_int(n.kids[1], ctx);
      if (b <= 0) eval_error("mod requires b > 0");
      // TLC's floored modulo: the result carries the divisor's sign, so with
      // b > 0 it always lies in [0, b) — e.g. -3 % 2 = 1.
      const std::int64_t r = a % b;
      return Value::integer(r < 0 ? r + b : r);
    }
    case ExprKind::Neg: {
      const std::int64_t a = as_int(n.kids[0], ctx);
      if (a == INT64_MIN) eval_error("integer overflow in unary -");
      return Value::integer(-a);
    }

    case ExprKind::IfThenElse:
      return eval_bool(n.kids[0], ctx) ? eval(n.kids[1], ctx) : eval(n.kids[2], ctx);

    case ExprKind::MakeTuple: {
      Value::Tuple elems;
      elems.reserve(n.kids.size());
      for (const Expr& k : n.kids) elems.push_back(eval(k, ctx));
      return Value::tuple(std::move(elems));
    }

    case ExprKind::Head:
      return seq_head(eval(n.kids[0], ctx));
    case ExprKind::Tail:
      return seq_tail(eval(n.kids[0], ctx));
    case ExprKind::Len:
      return Value::integer(static_cast<std::int64_t>(eval(n.kids[0], ctx).length()));
    case ExprKind::Concat: {
      const Value a = eval(n.kids[0], ctx);
      const Value b = eval(n.kids[1], ctx);
      return seq_concat(a, b);
    }
    case ExprKind::Append: {
      const Value a = eval(n.kids[0], ctx);
      const Value b = eval(n.kids[1], ctx);
      return seq_append(a, b);
    }
    case ExprKind::Index: {
      Value s = eval(n.kids[0], ctx);
      const std::int64_t i = as_int(n.kids[1], ctx);
      const Value::Tuple& t = s.as_tuple();
      if (i < 1 || static_cast<std::size_t>(i) > t.size()) {
        eval_error("sequence index " + std::to_string(i) + " out of range for " +
                   s.to_string());
      }
      return t[static_cast<std::size_t>(i) - 1];
    }

    case ExprKind::ExistsVal:
    case ExprKind::ForallVal: {
      const bool is_exists = (n.kind == ExprKind::ExistsVal);
      ctx.locals.emplace_back(n.local, Value());
      LocalScope scope{&ctx.locals};
      bool result = !is_exists;
      for (const Value& v : n.domain.values()) {
        ctx.locals.back().second = v;
        const bool b = eval_bool(n.kids[0], ctx);
        if (b == is_exists) {
          result = is_exists;
          break;
        }
      }
      return Value::boolean(result);
    }

    case ExprKind::Enabled: {
      if (ctx.vars == nullptr || ctx.current == nullptr) {
        eval_error("ENABLED requires a VarTable and a current state");
      }
      // ENABLED must be evaluated with the *outer* locals visible (the
      // action may mention bound variables of an enclosing quantifier).
      // The context is reused as scratch — no per-query locals copy.
      return Value::boolean(enabled_with_locals(n.kids[0], ctx));
    }
  }
  eval_error("unknown node kind");
}

bool eval_bool(const Expr& e, EvalContext& ctx) {
  Value v = eval(e, ctx);
  if (!v.is_bool()) {
    eval_error("expected a boolean, got " + v.to_string());
  }
  return v.as_bool();
}

bool eval_pred(const Expr& e, const VarTable& vars, const State& s) {
  EvalContext ctx;
  ctx.vars = &vars;
  ctx.current = &s;
  return eval_bool(e, ctx);
}

Value eval_fn(const Expr& e, const VarTable& vars, const State& s) {
  EvalContext ctx;
  ctx.vars = &vars;
  ctx.current = &s;
  return eval(e, ctx);
}

bool eval_action(const Expr& e, const VarTable& vars, const State& s, const State& t) {
  EvalContext ctx;
  ctx.vars = &vars;
  ctx.current = &s;
  ctx.next = &t;
  return eval_bool(e, ctx);
}

bool eval_enabled(const Expr& action, const VarTable& vars, const State& s) {
  return enabled_with_locals(action, vars, s, {});
}

bool enabled_with_locals(const Expr& action, const VarTable& vars, const State& s,
                         const std::vector<std::pair<std::string, Value>>& locals) {
  EvalContext ctx;
  ctx.vars = &vars;
  ctx.current = &s;
  ctx.locals = locals;
  return enabled_with_locals(action, ctx);
}

bool enabled_with_locals(const Expr& action, EvalContext& ctx) {
  if (ctx.vars == nullptr || ctx.current == nullptr) {
    eval_error("ENABLED requires a VarTable and a current state");
  }
  const VarTable& vars = *ctx.vars;
  const State& s = *ctx.current;
  StateSpace space(vars);
  NextRestore restore{&ctx, ctx.next};
  for (const ActionDisjunct& d : decompose_action(action)) {
    // Guards and assignment right-hand sides are state functions of s.
    ctx.next = nullptr;

    bool feasible = true;
    for (const Expr& g : d.guards) {
      if (!eval_bool(g, ctx)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    State t = s;
    for (const auto& [v, rhs] : d.assignments) {
      Value val = eval(rhs, ctx);
      if (!vars.domain(v).contains(val)) {
        feasible = false;  // the required successor lies outside the space
        break;
      }
      t[v] = val;
    }
    if (!feasible) continue;

    if (d.residual.empty()) return true;

    // Pruned existential search: a residual conjunct is evaluated as soon
    // as its last unassigned primed variable is bound, and the first leaf
    // that survives every check is a witness — stop immediately.
    const ResidualSchedule sched =
        schedule_residual(d.residual_needs, d.unassigned_primed);
    const bool witness = space.for_each_completion_pruned(
        t, sched,
        [&](std::size_t i, const State& cand) {
          ctx.next = &cand;
          return eval_bool(d.residual[i], ctx);
        },
        [](const State&) { return true; });
    if (witness) return true;
  }
  return false;
}

}  // namespace opentla
