// opentla/expr/expr.hpp
//
// State functions and actions (Section 2.1). An `Expr` is an immutable
// expression tree over the flexible variables of a VarTable. An expression
// with no primed variables is a *state function* (a *state predicate* if
// boolean-valued); one with primed variables is an *action*, true or false
// of a pair of states, with primed variables referring to the second state.
//
// Construction goes through the small builder DSL in namespace `ex`
// (constants, variables, boolean/arithmetic/sequence operators, bounded
// quantifiers, ENABLED, UNCHANGED).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "opentla/state/var_table.hpp"
#include "opentla/value/domain.hpp"
#include "opentla/value/value.hpp"

namespace opentla {

enum class ExprKind : std::uint8_t {
  // Leaves
  Const,      // literal value
  Var,        // flexible variable, possibly primed
  Local,      // bound variable of a quantifier, by name
  // Boolean connectives (And/Or are n-ary)
  Not,
  And,
  Or,
  Implies,
  Equiv,
  // Comparisons (Eq/Neq on any values; order on integers)
  Eq,
  Neq,
  Lt,
  Le,
  Gt,
  Ge,
  // Integer arithmetic
  Add,
  Sub,
  Mul,
  Mod,        // a % b, TLC's floored modulo: requires b > 0, result lies in
              // [0, b) for any a (e.g. -3 % 2 = 1); b <= 0 throws
  Neg,
  // Conditional
  IfThenElse,
  // Tuples / sequences
  MakeTuple,  // <<e1, ..., en>>
  Head,
  Tail,
  Len,
  Concat,     // s \o t
  Append,     // Append(s, e)
  Index,      // s[i], 1-based as in TLA
  // Bounded first-order quantifiers over an explicit finite domain
  ExistsVal,  // \E name \in D : body
  ForallVal,  // \A name \in D : body
  // ENABLED A: true in state s iff some successor t makes A(s, t) true
  Enabled,
};

class Expr;

/// One immutable node of an expression tree.
struct ExprNode {
  ExprKind kind;
  // Leaf payloads (used depending on kind):
  Value value;        // Const
  VarId var = 0;      // Var
  bool primed = false;  // Var
  std::string local;  // Local / ExistsVal / ForallVal bound name
  Domain domain;      // ExistsVal / ForallVal
  std::vector<Expr> kids;
};

/// Value-semantic handle to an immutable expression tree.
class Expr {
 public:
  Expr() = default;  // null handle; using it is an error
  explicit Expr(std::shared_ptr<const ExprNode> node) : node_(std::move(node)) {}

  bool is_null() const { return node_ == nullptr; }
  const ExprNode& node() const { return *node_; }
  ExprKind kind() const { return node_->kind; }
  const std::vector<Expr>& kids() const { return node_->kids; }

  /// Renders the expression in mini-TLA concrete syntax using variable
  /// names from `vars`.
  std::string to_string(const VarTable& vars) const;

 private:
  std::shared_ptr<const ExprNode> node_;
};

/// Approximate bytes retained by the tree rooted at `e`: node structs,
/// deep Value/Domain payloads, heap-allocated local names, and the kids
/// vectors. Shared subtrees (macro splices) are counted once — nodes
/// already in `seen` contribute 0 and every visited node is added, so
/// summing over several trees with one shared set counts each unique node
/// exactly once. Null handles count 0. Feeds the parser memory domain.
std::uint64_t expr_deep_bytes(const Expr& e, std::unordered_set<const ExprNode*>& seen);
std::uint64_t expr_deep_bytes(const Expr& e);

namespace ex {

// --- Leaves ---
Expr constant(Value v);
Expr boolean(bool b);
Expr integer(std::int64_t i);
Expr str(std::string s);
/// The constant TRUE / FALSE, as predicates.
Expr top();
Expr bottom();
/// Unprimed occurrence of variable `v`.
Expr var(VarId v);
/// Primed occurrence of variable `v` (refers to the next state).
Expr primed_var(VarId v);
/// Occurrence of a quantifier-bound variable.
Expr local(std::string name);

// --- Boolean connectives ---
Expr lnot(Expr a);
Expr land(std::vector<Expr> kids);  // TRUE when empty
Expr land(Expr a, Expr b);
Expr land(Expr a, Expr b, Expr c);
Expr lor(std::vector<Expr> kids);   // FALSE when empty
Expr lor(Expr a, Expr b);
Expr lor(Expr a, Expr b, Expr c);
Expr implies(Expr a, Expr b);
Expr equiv(Expr a, Expr b);

// --- Comparisons ---
Expr eq(Expr a, Expr b);
Expr neq(Expr a, Expr b);
Expr lt(Expr a, Expr b);
Expr le(Expr a, Expr b);
Expr gt(Expr a, Expr b);
Expr ge(Expr a, Expr b);

// --- Arithmetic ---
Expr add(Expr a, Expr b);
Expr sub(Expr a, Expr b);
Expr mul(Expr a, Expr b);
/// a % b: remainder on nonnegative integers (throws otherwise).
Expr mod(Expr a, Expr b);
Expr neg(Expr a);

// --- Conditional ---
Expr ite(Expr cond, Expr then_e, Expr else_e);

// --- Tuples / sequences ---
Expr make_tuple(std::vector<Expr> kids);
Expr head(Expr s);
Expr tail(Expr s);
Expr len(Expr s);
Expr concat(Expr s, Expr t);
Expr append(Expr s, Expr e);
/// s[i]: the i-th element of a sequence, 1-based (TLA convention).
Expr index(Expr s, Expr i);

// --- Quantifiers ---
Expr exists_val(std::string name, Domain d, Expr body);
Expr forall_val(std::string name, Domain d, Expr body);

// --- Actions ---
/// ENABLED A (Section 2.1): A is enabled in s iff some t makes <s,t> an
/// A step.
Expr enabled(Expr action);
/// UNCHANGED <<v1, ..., vn>>: conjunction of vi' = vi.
Expr unchanged(const std::vector<VarId>& vs);
/// The state function <<v1, ..., vn>> as a tuple expression.
Expr var_tuple(const std::vector<VarId>& vs);
/// <<v1', ..., vn'>>.
Expr primed_var_tuple(const std::vector<VarId>& vs);

}  // namespace ex

// Operator sugar for the builder DSL. These allocate nodes; they are for
// spec construction, not hot paths.
inline Expr operator&&(Expr a, Expr b) { return ex::land(std::move(a), std::move(b)); }
inline Expr operator||(Expr a, Expr b) { return ex::lor(std::move(a), std::move(b)); }
inline Expr operator!(Expr a) { return ex::lnot(std::move(a)); }
inline Expr operator+(Expr a, Expr b) { return ex::add(std::move(a), std::move(b)); }
inline Expr operator-(Expr a, Expr b) { return ex::sub(std::move(a), std::move(b)); }
inline Expr operator*(Expr a, Expr b) { return ex::mul(std::move(a), std::move(b)); }

}  // namespace opentla
