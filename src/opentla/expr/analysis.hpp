// opentla/expr/analysis.hpp
//
// Syntactic analysis of expressions: free-variable collection, flattening
// of n-ary connectives, and TLC-style decomposition of a next-state action
// into disjuncts with guards and explicit assignments. The decomposition is
// what makes successor generation cheap: instead of enumerating the full
// next-state space, each disjunct determines most primed variables by
// evaluating assignment right-hand sides.

#pragma once

#include <optional>
#include <set>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/state/state_space.hpp"

namespace opentla {

/// Free flexible variables of an expression, split by primed-ness.
struct FreeVars {
  std::set<VarId> unprimed;
  std::set<VarId> primed;
};

/// Collects free flexible variables. Variables under ENABLED count only as
/// unprimed occurrences of the ENABLED expression (ENABLED A is a state
/// predicate; its primed variables are internally quantified).
FreeVars free_vars(const Expr& e);

/// True iff `e` mentions no primed variable (i.e. is a state function).
bool is_state_function(const Expr& e);

/// Flattens nested conjunctions into a conjunct list (top() vanishes).
std::vector<Expr> flatten_and(const Expr& e);
/// Flattens nested disjunctions into a disjunct list (bottom() vanishes).
std::vector<Expr> flatten_or(const Expr& e);

/// One disjunct of a next-state action, decomposed for execution.
///
/// The disjunct is equivalent to
///     /\ guards  /\ (v' = rhs for each assignment)  /\ residual
/// where guards mention no primed variable, each assignment's rhs mentions
/// no primed variable, and `unassigned_primed` lists primed variables that
/// occur in `residual` but have no assignment (successor generation
/// enumerates their domains). Primed variables that occur nowhere in the
/// disjunct are unconstrained by it (TLA actions have no frame condition).
struct ActionDisjunct {
  std::vector<Expr> guards;
  std::vector<std::pair<VarId, Expr>> assignments;
  std::vector<Expr> residual;
  std::vector<VarId> unassigned_primed;
  /// Every primed variable occurring in `residual` (ascending), including
  /// variables that also carry an assignment. This is the residual half of
  /// the disjunct's write set; analysis/footprint.hpp unions it with the
  /// non-frame assignments.
  std::vector<VarId> residual_primed;
  /// Per residual conjunct: the unassigned primed variables it mentions
  /// (ascending). residual_needs[i] annotates residual[i]; a conjunct with
  /// an empty entry is decidable as soon as the assignments are evaluated.
  /// This is what schedule_residual turns into a pruned-search schedule.
  std::vector<std::vector<VarId>> residual_needs;
};

/// Decomposes `action` into executable disjuncts. Always succeeds; in the
/// worst case a disjunct has no assignments and everything in `residual`.
std::vector<ActionDisjunct> decompose_action(const Expr& action);

/// Builds the pruned-enumeration schedule for a disjunct's residual over
/// the variable set `enumerate` (the variables successor generation will
/// range over; any needed variable outside it is treated as already bound
/// in the base state). Free variables are ordered greedily so each
/// residual conjunct becomes checkable at the shallowest possible depth:
/// the conjunct with the fewest still-unbound variables is bound next
/// (ties by conjunct index, variables in ascending VarId order), and
/// variables no conjunct needs go last — they are pure frame enumeration
/// and only run under bindings the residual has already accepted. The
/// result is a pure function of (needs, enumerate): deterministic, so the
/// serial/parallel bit-identity contract survives.
ResidualSchedule schedule_residual(const std::vector<std::vector<VarId>>& needs,
                                   const std::vector<VarId>& enumerate);

/// Structural equality of expression trees (same shape, same leaves).
/// Used for syntactic side conditions such as Proposition 1's "A implies N"
/// check when A is literally a sub-disjunct of N.
bool structurally_equal(const Expr& a, const Expr& b);

/// Evaluates `e` if it is a compile-time constant: no flexible or bound
/// variables and no ENABLED reachable along the folded spine. Short-circuit
/// rules apply (a FALSE conjunct folds the conjunction even when siblings
/// are non-constant), so a fold result can exist for expressions that still
/// mention variables. Returns nullopt when the value is not determined
/// syntactically; never throws on spec-level type errors (those fold to
/// nullopt and are left for evaluation to report).
std::optional<Value> fold_constant(const Expr& e);

/// Distributes \/ over /\ at the boolean skeleton level, producing a
/// disjunction of conjunctions. Leaves (comparisons, quantifiers, ...) are
/// treated as atoms. Throws if the expansion would exceed `max_disjuncts`.
/// Used to turn conjunctions of step formulas /\_j [N_j]_{v_j} into
/// executable disjuncts for successor generation and prefix machines.
Expr to_dnf(const Expr& e, std::size_t max_disjuncts = 4096);

}  // namespace opentla
