#include <sstream>

#include "opentla/expr/expr.hpp"

namespace opentla {

namespace {

// Precedence levels, loosest first. Parenthesization is conservative: a
// child is parenthesized whenever its level is not strictly tighter.
int prec(ExprKind k) {
  switch (k) {
    case ExprKind::Equiv:
      return 1;
    case ExprKind::Implies:
      return 2;
    case ExprKind::Or:
      return 3;
    case ExprKind::And:
      return 4;
    case ExprKind::Not:
      return 5;
    case ExprKind::Eq:
    case ExprKind::Neq:
    case ExprKind::Lt:
    case ExprKind::Le:
    case ExprKind::Gt:
    case ExprKind::Ge:
      return 6;
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Concat:
      return 7;
    case ExprKind::Mul:
    case ExprKind::Mod:
      return 8;
    case ExprKind::Neg:
      return 9;
    default:
      return 10;  // atoms and function-call syntax
  }
}

void print(const Expr& e, const VarTable& vars, std::ostream& os);

void print_child(const Expr& child, int parent_prec, const VarTable& vars, std::ostream& os) {
  const bool parens = prec(child.kind()) <= parent_prec;
  if (parens) os << '(';
  print(child, vars, os);
  if (parens) os << ')';
}

void print_nary(const Expr& e, const char* op, const VarTable& vars, std::ostream& os) {
  const auto& kids = e.kids();
  const int p = prec(e.kind());
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (i != 0) os << ' ' << op << ' ';
    print_child(kids[i], p, vars, os);
  }
}

void print_call(const char* name, const Expr& e, const VarTable& vars, std::ostream& os) {
  os << name << '(';
  const auto& kids = e.kids();
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (i != 0) os << ", ";
    print(kids[i], vars, os);
  }
  os << ')';
}

void print(const Expr& e, const VarTable& vars, std::ostream& os) {
  if (e.is_null()) {
    os << "<null>";
    return;
  }
  const ExprNode& n = e.node();
  const int p = prec(n.kind);
  switch (n.kind) {
    case ExprKind::Const:
      os << n.value;
      return;
    case ExprKind::Var:
      os << vars.name(n.var) << (n.primed ? "'" : "");
      return;
    case ExprKind::Local:
      os << n.local;
      return;
    case ExprKind::Not:
      os << '~';
      print_child(n.kids[0], p, vars, os);
      return;
    case ExprKind::And:
      if (n.kids.empty()) {
        os << "TRUE";
        return;
      }
      print_nary(e, "/\\", vars, os);
      return;
    case ExprKind::Or:
      if (n.kids.empty()) {
        os << "FALSE";
        return;
      }
      print_nary(e, "\\/", vars, os);
      return;
    case ExprKind::Implies:
      print_nary(e, "=>", vars, os);
      return;
    case ExprKind::Equiv:
      print_nary(e, "<=>", vars, os);
      return;
    case ExprKind::Eq:
      print_nary(e, "=", vars, os);
      return;
    case ExprKind::Neq:
      print_nary(e, "#", vars, os);
      return;
    case ExprKind::Lt:
      print_nary(e, "<", vars, os);
      return;
    case ExprKind::Le:
      print_nary(e, "<=", vars, os);
      return;
    case ExprKind::Gt:
      print_nary(e, ">", vars, os);
      return;
    case ExprKind::Ge:
      print_nary(e, ">=", vars, os);
      return;
    case ExprKind::Add:
      print_nary(e, "+", vars, os);
      return;
    case ExprKind::Sub:
      print_nary(e, "-", vars, os);
      return;
    case ExprKind::Mul:
      print_nary(e, "*", vars, os);
      return;
    case ExprKind::Mod:
      print_nary(e, "%", vars, os);
      return;
    case ExprKind::Neg:
      os << '-';
      print_child(n.kids[0], p, vars, os);
      return;
    case ExprKind::IfThenElse:
      os << "IF ";
      print(n.kids[0], vars, os);
      os << " THEN ";
      print(n.kids[1], vars, os);
      os << " ELSE ";
      print(n.kids[2], vars, os);
      return;
    case ExprKind::MakeTuple: {
      os << "<<";
      for (std::size_t i = 0; i < n.kids.size(); ++i) {
        if (i != 0) os << ", ";
        print(n.kids[i], vars, os);
      }
      os << ">>";
      return;
    }
    case ExprKind::Head:
      print_call("Head", e, vars, os);
      return;
    case ExprKind::Tail:
      print_call("Tail", e, vars, os);
      return;
    case ExprKind::Len:
      print_call("Len", e, vars, os);
      return;
    case ExprKind::Concat:
      print_nary(e, "\\o", vars, os);
      return;
    case ExprKind::Append:
      print_call("Append", e, vars, os);
      return;
    case ExprKind::Index:
      // Atoms (precedence 10) need no parentheses as the indexed base.
      print_child(n.kids[0], /*parent_prec=*/9, vars, os);
      os << '[';
      print(n.kids[1], vars, os);
      os << ']';
      return;
    case ExprKind::ExistsVal:
    case ExprKind::ForallVal:
      os << (n.kind == ExprKind::ExistsVal ? "\\E " : "\\A ") << n.local << " \\in "
         << n.domain.to_string() << " : ";
      print(n.kids[0], vars, os);
      return;
    case ExprKind::Enabled:
      os << "ENABLED ";
      print_child(n.kids[0], p, vars, os);
      return;
  }
}

}  // namespace

std::string Expr::to_string(const VarTable& vars) const {
  std::ostringstream os;
  print(*this, vars, os);
  return os.str();
}

}  // namespace opentla
