#include "opentla/state/var_table.hpp"

#include <stdexcept>

namespace opentla {

VarId VarTable::declare(std::string name, Domain domain) {
  if (by_name_.contains(name)) {
    throw std::runtime_error("VarTable::declare: duplicate variable '" + name + "'");
  }
  if (domain.empty()) {
    throw std::runtime_error("VarTable::declare: empty domain for '" + name + "'");
  }
  const VarId id = static_cast<VarId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  domains_.push_back(std::move(domain));
  return id;
}

std::optional<VarId> VarTable::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

VarId VarTable::require(const std::string& name) const {
  std::optional<VarId> id = find(name);
  if (!id) throw std::runtime_error("VarTable: unknown variable '" + name + "'");
  return *id;
}

std::vector<VarId> VarTable::all_vars() const {
  std::vector<VarId> out(size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<VarId>(i);
  return out;
}

}  // namespace opentla
