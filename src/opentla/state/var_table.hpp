// opentla/state/var_table.hpp
//
// Flexible variables. A `VarTable` interns the flexible variables of a
// specification universe: each variable has a name and a finite domain and
// is identified by a dense `VarId`. States are vectors indexed by VarId, so
// a VarTable fixes the shape of every state in its universe.
//
// Distinct systems under comparison (e.g. a low-level and a high-level
// queue) may use distinct VarTables; refinement mappings translate between
// them.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "opentla/value/domain.hpp"

namespace opentla {

/// Dense identifier of a flexible variable within one VarTable.
using VarId = std::uint32_t;

/// Registry of flexible variables for one specification universe.
class VarTable {
 public:
  /// Declares a fresh variable; the name must be unused.
  VarId declare(std::string name, Domain domain);

  std::size_t size() const { return names_.size(); }
  const std::string& name(VarId id) const { return names_.at(id); }
  const Domain& domain(VarId id) const { return domains_.at(id); }

  /// Looks a variable up by name.
  std::optional<VarId> find(const std::string& name) const;
  /// Like find(), but throws with a diagnostic when the name is unknown.
  VarId require(const std::string& name) const;

  /// All declared variable ids, in declaration order (0..size-1).
  std::vector<VarId> all_vars() const;

 private:
  std::vector<std::string> names_;
  std::vector<Domain> domains_;
  std::unordered_map<std::string, VarId> by_name_;
};

}  // namespace opentla
