#include "opentla/state/sharded_store.hpp"

#include "opentla/obs/obs.hpp"

namespace opentla {

namespace {
constexpr std::size_t kDefaultShards = 64;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

ShardedStateSet::ShardedStateSet(std::size_t shard_count) {
  const std::size_t n = round_up_pow2(shard_count == 0 ? kDefaultShards : shard_count);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  mask_ = n - 1;
}

ShardedStateSet::InternResult ShardedStateSet::intern(const State& s) {
  const std::size_t h = s.hash();
  // The shard index uses the hash's high bits: unordered_map derives its
  // bucket from the low bits, so reusing them for striping would correlate
  // stripe choice with bucket choice.
  Shard& shard = *shards_[(h >> 7) & mask_];
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  // Chain length of the bucket this state hashes into: the distribution
  // diagnoses hash quality / load factor under heavy interning.
  OPENTLA_OBS_HIST(ShardProbeLength, shard.ids.bucket_count() == 0
                                         ? 0
                                         : shard.ids.bucket_size(shard.ids.bucket(s)));
  auto it = shard.ids.find(s);
  if (it != shard.ids.end()) return {it->second, false};
  const StateId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  shard.ids.emplace(s, id);
  // One deep copy lives in the shard map; the canonical second copy is
  // charged by the replay StateStore during phase-2 renumbering.
  OPENTLA_OBS_MEM_TALLY_ADD(shard.mem, state_deep_bytes(s) + kInternSlotOverhead);
  return {id, true};
}

}  // namespace opentla
