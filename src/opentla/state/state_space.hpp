// opentla/state/state_space.hpp
//
// Enumeration of the full cartesian state space of a VarTable, and of
// partial assignments over a subset of variables. Used by the universe
// graph ("all behaviors" for validity checking) and by successor generation
// when an action leaves a primed variable unconstrained.
//
// Two enumeration shapes are offered: the flat odometer
// (for_each_completion), and a pruned depth-first search
// (for_each_completion_pruned) that evaluates residual checks the moment
// their variables are bound and cuts the whole subtree on failure. Both
// take bool-returning callbacks so a caller that only needs one witness
// (ENABLED) stops the enumeration instead of spinning through the rest of
// the space.
//
// The `check` callbacks the engine passes in run residual conjuncts that
// were lowered to bytecode (opentla/vm/) at construction time; each bind
// point therefore costs one VM dispatch rather than a tree walk. The
// enumeration itself is evaluator-agnostic — vm::set_tree_eval_for_test
// flips the callbacks back to the tree without changing which leaves are
// visited or in what order.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "opentla/state/state.hpp"
#include "opentla/state/var_table.hpp"

namespace opentla {

/// A pruned-enumeration schedule over a set of free variables, produced by
/// expr/analysis's schedule_residual. `order` is the DFS assignment order:
/// order[0] is assigned outermost (most significant, slowest varying).
/// at_depth[d] lists the indices of residual checks that become decidable
/// once order[0..d-1] are bound; at_depth[0] holds checks that need no
/// enumerated variable at all (their primed variables are already fixed by
/// assignments or by the base state). The schedule carries indices only —
/// the expressions they refer to stay with the caller, so the state layer
/// never depends on the expression layer.
struct ResidualSchedule {
  std::vector<VarId> order;
  std::vector<std::vector<std::size_t>> at_depth;  // size order.size() + 1
};

/// The (finite) cartesian state space over a VarTable.
class StateSpace {
 public:
  explicit StateSpace(const VarTable& vars) : vars_(&vars) {}

  const VarTable& vars() const { return *vars_; }

  /// Number of states in the full space (product of domain sizes).
  /// Throws if the product overflows 2^63.
  std::uint64_t total_states() const;

  /// Invokes `fn` on every state of the full space.
  void for_each_state(const std::function<void(const State&)>& fn) const;

  /// Invokes `fn` on every completion of `base` obtained by assigning all
  /// values of their domains to the variables in `free_vars` (other
  /// variables keep their value from `base`). `free_vars` may be empty, in
  /// which case `fn` is called once with `base` itself. `fn` returns true
  /// to stop the enumeration; the return value is true iff it stopped.
  bool for_each_completion(const State& base, const std::vector<VarId>& free_vars,
                           const std::function<bool(const State&)>& fn) const;

  /// Pruned completion enumeration: depth-first over `sched.order`, with
  /// `check(idx, partial)` invoked for each schedule entry the moment the
  /// last variable it needs is bound. A check returning false cuts the
  /// whole subtree below the current binding (counted in the
  /// completions_pruned / residual_early_cuts obs counters). `fn` runs at
  /// the leaves and returns true to stop everything; the return value is
  /// true iff `fn` stopped the search. The leaves visited are exactly the
  /// completions the flat odometer over reversed(sched.order) would visit
  /// whose scheduled checks all pass, in the same relative order — pruning
  /// only skips, it never reorders.
  bool for_each_completion_pruned(
      const State& base, const ResidualSchedule& sched,
      const std::function<bool(std::size_t, const State&)>& check,
      const std::function<bool(const State&)>& fn) const;

  /// An arbitrary state: every variable at its first domain value.
  State first_state() const;

 private:
  const VarTable* vars_;
};

}  // namespace opentla
