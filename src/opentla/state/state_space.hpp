// opentla/state/state_space.hpp
//
// Enumeration of the full cartesian state space of a VarTable, and of
// partial assignments over a subset of variables. Used by the universe
// graph ("all behaviors" for validity checking) and by successor generation
// when an action leaves a primed variable unconstrained.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "opentla/state/state.hpp"
#include "opentla/state/var_table.hpp"

namespace opentla {

/// The (finite) cartesian state space over a VarTable.
class StateSpace {
 public:
  explicit StateSpace(const VarTable& vars) : vars_(&vars) {}

  const VarTable& vars() const { return *vars_; }

  /// Number of states in the full space (product of domain sizes).
  /// Throws if the product overflows 2^63.
  std::uint64_t total_states() const;

  /// Invokes `fn` on every state of the full space.
  void for_each_state(const std::function<void(const State&)>& fn) const;

  /// Invokes `fn` on every completion of `base` obtained by assigning all
  /// values of their domains to the variables in `free_vars` (other
  /// variables keep their value from `base`). `free_vars` may be empty, in
  /// which case `fn` is called once with `base` itself.
  void for_each_completion(const State& base, const std::vector<VarId>& free_vars,
                           const std::function<void(const State&)>& fn) const;

  /// An arbitrary state: every variable at its first domain value.
  State first_state() const;

 private:
  const VarTable* vars_;
};

}  // namespace opentla
