// opentla/state/state.hpp
//
// States and state interning. A state assigns a value to every variable of
// a VarTable ("a state is an assignment of values to variables", Section
// 2.1). The graph algorithms work over dense `StateId`s produced by a
// hash-consing `StateStore`.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "opentla/obs/memory.hpp"
#include "opentla/state/var_table.hpp"
#include "opentla/value/value.hpp"

namespace opentla {

/// A state: one value per variable of the owning VarTable, indexed by VarId.
class State {
 public:
  State() = default;
  explicit State(std::vector<Value> values) : values_(std::move(values)) {}

  std::size_t size() const { return values_.size(); }
  const Value& operator[](VarId id) const { return values_[id]; }
  Value& operator[](VarId id) { return values_[id]; }
  const std::vector<Value>& values() const { return values_; }

  friend bool operator==(const State& a, const State& b) = default;
  std::size_t hash() const;

  /// Renders as "x = 1, y = <<0, 1>>" using names from `vars`.
  std::string to_string(const VarTable& vars) const;

 private:
  std::vector<Value> values_;
};

struct StateHash {
  std::size_t operator()(const State& s) const { return s.hash(); }
};

/// Approximate deep bytes of a state's value vector (see value_deep_bytes).
std::uint64_t state_deep_bytes(const State& s);

/// Bytes one interned state costs a hash-consing store beyond its deep
/// value storage: the vector slot, the map node, and amortized bucket
/// array. A fixed estimate shared by StateStore and ShardedStateSet so
/// serial and parallel runs attribute comparably.
inline constexpr std::uint64_t kInternSlotOverhead =
    sizeof(State) + 48;  // map node (key copy header + ptr + hash) + bucket

/// Dense identifier of an interned state.
using StateId = std::uint32_t;

/// Hash-consing store mapping states to dense ids and back.
class StateStore {
 public:
  /// Interns `s`, returning its id (stable across calls).
  StateId intern(const State& s);
  const State& get(StateId id) const { return states_.at(id); }
  std::size_t size() const { return states_.size(); }
  /// Id of `s` if already interned, otherwise nullopt-like UINT32_MAX.
  static constexpr StateId kNone = UINT32_MAX;
  StateId find(const State& s) const;

 private:
  std::vector<State> states_;
  std::unordered_map<State, StateId, StateHash> ids_;
  /// Memory accounting: charged per first-sight intern (two deep copies —
  /// the id map key and the vector slot — plus node overhead), released
  /// when the store dies.
  obs::MemTally mem_{obs::MemDomain::StateStore};
};

}  // namespace opentla
