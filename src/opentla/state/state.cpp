#include "opentla/state/state.hpp"

#include <sstream>

namespace opentla {

std::size_t State::hash() const {
  std::size_t h = 1469598103934665603ULL;
  for (const Value& v : values_) {
    h ^= v.hash();
    h *= 1099511628211ULL;
  }
  return h;
}

std::string State::to_string(const VarTable& vars) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i != 0) os << ", ";
    os << vars.name(static_cast<VarId>(i)) << " = " << values_[i];
  }
  return os.str();
}

std::uint64_t state_deep_bytes(const State& s) {
  std::uint64_t bytes = 0;
  for (const Value& v : s.values()) bytes += value_deep_bytes(v);
  return bytes;
}

StateId StateStore::intern(const State& s) {
  auto [it, inserted] = ids_.try_emplace(s, static_cast<StateId>(states_.size()));
  if (inserted) {
    states_.push_back(s);
    OPENTLA_OBS_MEM_TALLY_ADD(mem_, 2 * state_deep_bytes(s) + kInternSlotOverhead);
  }
  return it->second;
}

StateId StateStore::find(const State& s) const {
  auto it = ids_.find(s);
  return it == ids_.end() ? kNone : it->second;
}

}  // namespace opentla
