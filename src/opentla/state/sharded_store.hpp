// opentla/state/sharded_store.hpp
//
// Concurrent insert path for state interning. A ShardedStateSet is the
// parallel counterpart of StateStore's hash-consing map: the key space is
// striped over 2^k independently locked shards (selected by State::hash),
// so concurrent interns from different worker threads contend only when
// they hash to the same stripe. Ids are allocated from one atomic counter,
// which keeps them dense (0..size-1) but makes their *order* dependent on
// thread scheduling — callers that need canonical ids renumber afterwards
// (see opentla/par/explore.hpp's two-phase design).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "opentla/state/state.hpp"

namespace opentla {

class ShardedStateSet {
 public:
  /// `shard_count` is rounded up to a power of two; 0 picks the default
  /// (64 stripes, plenty for any worker count this engine runs with).
  explicit ShardedStateSet(std::size_t shard_count = 0);

  struct InternResult {
    StateId id = 0;
    bool inserted = false;
  };

  /// Thread-safe hash-consing insert: returns the id of `s`, allocating a
  /// fresh dense id on first sight. Safe to call concurrently from any
  /// number of threads.
  InternResult intern(const State& s);

  /// Number of distinct states interned so far. Exact once all inserting
  /// threads have quiesced (a relaxed read of the id allocator).
  std::size_t size() const { return next_id_.load(std::memory_order_relaxed); }

  std::size_t shard_count() const { return shards_.size(); }

  /// Shard locks that were already held by another thread when an intern
  /// tried to take them (a try_lock miss). A direct contention measure for
  /// tuning the stripe count.
  std::uint64_t contended_locks() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<State, StateId, StateHash> ids;
    /// Memory accounting, charged under `mu` so the tally needs no
    /// atomics of its own; released when the set dies.
    obs::MemTally mem{obs::MemDomain::StateStore};
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t mask_ = 0;
  std::atomic<StateId> next_id_{0};
  std::atomic<std::uint64_t> contended_{0};
};

}  // namespace opentla
