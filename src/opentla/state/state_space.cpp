#include "opentla/state/state_space.hpp"

#include <stdexcept>

#include "opentla/obs/obs.hpp"

namespace opentla {

std::uint64_t StateSpace::total_states() const {
  std::uint64_t total = 1;
  for (VarId v = 0; v < vars_->size(); ++v) {
    const std::uint64_t d = vars_->domain(v).size();
    if (d != 0 && total > (std::uint64_t{1} << 62) / d) {
      throw std::runtime_error("StateSpace::total_states: overflow");
    }
    total *= d;
  }
  return total;
}

State StateSpace::first_state() const {
  std::vector<Value> values;
  values.reserve(vars_->size());
  for (VarId v = 0; v < vars_->size(); ++v) values.push_back(vars_->domain(v)[0]);
  return State(std::move(values));
}

void StateSpace::for_each_state(const std::function<void(const State&)>& fn) const {
  std::vector<VarId> all = vars_->all_vars();
  for_each_completion(first_state(), all, [&](const State& s) {
    fn(s);
    return false;
  });
}

bool StateSpace::for_each_completion(const State& base, const std::vector<VarId>& free_vars,
                                     const std::function<bool(const State&)>& fn) const {
  State cur = base;
  // Odometer enumeration over the free variables, index 0 fastest-varying.
  std::vector<std::size_t> idx(free_vars.size(), 0);
  for (std::size_t i = 0; i < free_vars.size(); ++i) {
    cur[free_vars[i]] = vars_->domain(free_vars[i])[0];
  }
  while (true) {
    if (fn(cur)) return true;
    std::size_t pos = 0;
    for (; pos < free_vars.size(); ++pos) {
      const VarId v = free_vars[pos];
      if (++idx[pos] < vars_->domain(v).size()) {
        cur[v] = vars_->domain(v)[idx[pos]];
        break;
      }
      idx[pos] = 0;
      cur[v] = vars_->domain(v)[0];
    }
    if (pos == free_vars.size()) return false;
  }
}

bool StateSpace::for_each_completion_pruned(
    const State& base, const ResidualSchedule& sched,
    const std::function<bool(std::size_t, const State&)>& check,
    const std::function<bool(const State&)>& fn) const {
  const std::size_t k = sched.order.size();
  State cur = base;

  // suffix[d] = number of completions below depth d (product of the domain
  // sizes of order[d..k-1]), saturated at UINT64_MAX. Used only for the
  // completions_pruned accounting.
  std::vector<std::uint64_t> suffix(k + 1, 1);
  for (std::size_t d = k; d-- > 0;) {
    const std::uint64_t dom = vars_->domain(sched.order[d]).size();
    suffix[d] = (dom != 0 && suffix[d + 1] > UINT64_MAX / dom) ? UINT64_MAX
                                                               : suffix[d + 1] * dom;
  }

  // Depth-0 checks need no enumerated variable: a failure prunes the whole
  // completion space of this call.
  for (std::size_t i : sched.at_depth[0]) {
    if (!check(i, cur)) {
      OPENTLA_OBS_COUNT(ResidualEarlyCuts);
      OPENTLA_OBS_COUNT_N(CompletionsPruned, suffix[0]);
      return false;
    }
  }

  // Iterative DFS: depth d picks a value for order[d], then runs the checks
  // that just became decidable. `idx[d]` is the next domain index to try.
  std::vector<std::size_t> idx(k, 0);
  std::size_t d = 0;
  if (k == 0) return fn(cur);
  while (true) {
    if (idx[d] == vars_->domain(sched.order[d]).size()) {
      // Exhausted this level; pop.
      idx[d] = 0;
      if (d == 0) return false;
      --d;
      continue;
    }
    cur[sched.order[d]] = vars_->domain(sched.order[d])[idx[d]++];
    bool cut = false;
    for (std::size_t i : sched.at_depth[d + 1]) {
      if (!check(i, cur)) {
        OPENTLA_OBS_COUNT(ResidualEarlyCuts);
        OPENTLA_OBS_COUNT_N(CompletionsPruned, suffix[d + 1]);
        cut = true;
        break;
      }
    }
    if (cut) continue;
    if (d + 1 == k) {
      if (fn(cur)) return true;
    } else {
      ++d;
    }
  }
}

}  // namespace opentla
