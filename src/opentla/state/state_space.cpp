#include "opentla/state/state_space.hpp"

#include <stdexcept>

namespace opentla {

std::uint64_t StateSpace::total_states() const {
  std::uint64_t total = 1;
  for (VarId v = 0; v < vars_->size(); ++v) {
    const std::uint64_t d = vars_->domain(v).size();
    if (d != 0 && total > (std::uint64_t{1} << 62) / d) {
      throw std::runtime_error("StateSpace::total_states: overflow");
    }
    total *= d;
  }
  return total;
}

State StateSpace::first_state() const {
  std::vector<Value> values;
  values.reserve(vars_->size());
  for (VarId v = 0; v < vars_->size(); ++v) values.push_back(vars_->domain(v)[0]);
  return State(std::move(values));
}

void StateSpace::for_each_state(const std::function<void(const State&)>& fn) const {
  std::vector<VarId> all = vars_->all_vars();
  for_each_completion(first_state(), all, fn);
}

void StateSpace::for_each_completion(const State& base, const std::vector<VarId>& free_vars,
                                     const std::function<void(const State&)>& fn) const {
  State cur = base;
  // Odometer enumeration over the free variables.
  std::vector<std::size_t> idx(free_vars.size(), 0);
  for (std::size_t i = 0; i < free_vars.size(); ++i) {
    cur[free_vars[i]] = vars_->domain(free_vars[i])[0];
  }
  while (true) {
    fn(cur);
    std::size_t pos = 0;
    for (; pos < free_vars.size(); ++pos) {
      const VarId v = free_vars[pos];
      if (++idx[pos] < vars_->domain(v).size()) {
        cur[v] = vars_->domain(v)[idx[pos]];
        break;
      }
      idx[pos] = 0;
      cur[v] = vars_->domain(v)[0];
    }
    if (pos == free_vars.size()) break;
  }
}

}  // namespace opentla
