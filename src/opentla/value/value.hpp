// opentla/value/value.hpp
//
// TLA values. The logic of "Open Systems in TLA" is untyped: a value may be
// a boolean, an integer, a string, or a finite tuple/sequence of values
// (TLA does not distinguish tuples from sequences; both are written
// <<v1, ..., vn>>).
//
// Values are immutable, cheaply copyable for scalars, and carry a total
// order across kinds (by kind index, then by content) so they can be used
// as keys in ordered and unordered containers.

#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace opentla {

/// Discriminator for the four value kinds of the untyped TLA universe.
enum class ValueKind : std::uint8_t { Bool = 0, Int = 1, String = 2, Tuple = 3 };

/// Human-readable name of a value kind ("Bool", "Int", ...).
const char* to_string(ValueKind kind);

/// An immutable TLA value.
///
/// A `Value` is one of: a boolean, a 64-bit integer, a string, or a tuple
/// (equivalently, a finite sequence) of values. Tuples own their elements.
class Value {
 public:
  using Tuple = std::vector<Value>;

  /// Constructs the boolean FALSE (the default value).
  Value() : rep_(false) {}

  static Value boolean(bool b) { return Value(Rep(b)); }
  static Value integer(std::int64_t i) { return Value(Rep(i)); }
  static Value string(std::string s) { return Value(Rep(std::move(s))); }
  static Value tuple(Tuple elems) { return Value(Rep(std::move(elems))); }
  /// The empty sequence << >>.
  static Value empty_seq() { return tuple({}); }

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }
  bool is_bool() const { return kind() == ValueKind::Bool; }
  bool is_int() const { return kind() == ValueKind::Int; }
  bool is_string() const { return kind() == ValueKind::String; }
  bool is_tuple() const { return kind() == ValueKind::Tuple; }

  /// Accessors. Each throws `std::runtime_error` on a kind mismatch: a kind
  /// mismatch means a specification applied an operator to a value outside
  /// its domain (e.g. Head of an integer), which is a spec error we surface
  /// rather than hide.
  bool as_bool() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Tuple& as_tuple() const;

  /// Sequence length; requires a tuple value.
  std::size_t length() const { return as_tuple().size(); }

  /// Structural equality (TLA `=`); values of different kinds are unequal.
  friend bool operator==(const Value& a, const Value& b) { return a.rep_ == b.rep_; }
  /// Total order across all kinds: by kind, then content (lexicographic for
  /// tuples). This is a container ordering, not a TLA-level `<`.
  friend std::strong_ordering operator<=>(const Value& a, const Value& b);

  /// FNV-1a style structural hash.
  std::size_t hash() const;

  /// Renders in TLA syntax: TRUE/FALSE, 42, "s", <<1, 2>>.
  std::string to_string() const;

 private:
  using Rep = std::variant<bool, std::int64_t, std::string, Tuple>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Hash functor usable with unordered containers.
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};

// --- Sequence operations used by specifications (Appendix A notation) ---

/// Approximate bytes `v` occupies, counting its own footprint plus deep
/// heap storage (string buffers beyond the SSO, nested tuple elements).
/// Feeds the obs memory accounting; an estimate, not an allocator truth.
std::uint64_t value_deep_bytes(const Value& v);

/// Head(s): first element of a nonempty sequence.
Value seq_head(const Value& s);
/// Tail(s): all but the first element of a nonempty sequence.
Value seq_tail(const Value& s);
/// s \o t: concatenation of two sequences.
Value seq_concat(const Value& s, const Value& t);
/// Append(s, e) = s \o <<e>>.
Value seq_append(const Value& s, const Value& e);

}  // namespace opentla
