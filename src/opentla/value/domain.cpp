#include "opentla/value/domain.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace opentla {

Domain::Domain(std::vector<Value> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

bool Domain::contains(const Value& v) const {
  return std::binary_search(values_.begin(), values_.end(), v);
}

std::size_t Domain::index_of(const Value& v) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it == values_.end() || !(*it == v)) {
    throw std::runtime_error("Domain::index_of: value " + v.to_string() +
                             " not in domain " + to_string());
  }
  return static_cast<std::size_t>(it - values_.begin());
}

std::string Domain::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i != 0) os << ", ";
    os << values_[i];
  }
  os << '}';
  return os.str();
}

Domain bool_domain() {
  return Domain({Value::boolean(false), Value::boolean(true)});
}

Domain bit_domain() { return range_domain(0, 1); }

Domain range_domain(std::int64_t lo, std::int64_t hi) {
  std::vector<Value> out;
  for (std::int64_t i = lo; i <= hi; ++i) out.push_back(Value::integer(i));
  return Domain(std::move(out));
}

Domain seq_domain(const Domain& elems, std::size_t max_len) {
  std::vector<Value> out;
  std::vector<Value> frontier = {Value::empty_seq()};
  out.push_back(Value::empty_seq());
  for (std::size_t len = 1; len <= max_len; ++len) {
    std::vector<Value> next;
    next.reserve(frontier.size() * elems.size());
    for (const Value& seq : frontier) {
      for (const Value& e : elems.values()) {
        Value extended = seq_append(seq, e);
        out.push_back(extended);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }
  return Domain(std::move(out));
}

Domain tuple_domain(const std::vector<Domain>& components) {
  std::vector<Value> out = {Value::tuple({})};
  for (const Domain& comp : components) {
    std::vector<Value> next;
    next.reserve(out.size() * comp.size());
    for (const Value& partial : out) {
      for (const Value& e : comp.values()) {
        next.push_back(seq_append(partial, e));
      }
    }
    out = std::move(next);
  }
  return Domain(std::move(out));
}

}  // namespace opentla
