// opentla/value/domain.hpp
//
// Finite domains. The explicit-state engine requires every flexible
// variable to range over a finite, explicitly enumerable set of values;
// `Domain` is that set. Helpers build the domains used by the paper's
// examples: bits, bounded integer ranges, and bounded sequences (the queue
// buffer q ranges over sequences of length <= N over the value domain).

#pragma once

#include <string>
#include <vector>

#include "opentla/value/value.hpp"

namespace opentla {

/// A finite set of values, kept sorted and deduplicated so that domains
/// compare structurally and membership is O(log n).
class Domain {
 public:
  Domain() = default;
  explicit Domain(std::vector<Value> values);

  const std::vector<Value>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  bool contains(const Value& v) const;

  /// Index of `v` within the sorted domain; throws if absent.
  std::size_t index_of(const Value& v) const;

  const Value& operator[](std::size_t i) const { return values_[i]; }

  friend bool operator==(const Domain& a, const Domain& b) = default;

  std::string to_string() const;

 private:
  std::vector<Value> values_;
};

/// {FALSE, TRUE}.
Domain bool_domain();
/// {0, 1} as integers — the paper's bit-valued signal/ack wires.
Domain bit_domain();
/// {lo, lo+1, ..., hi} as integers (empty if hi < lo).
Domain range_domain(std::int64_t lo, std::int64_t hi);
/// All sequences over `elems` of length <= max_len (includes << >>).
/// Size is sum_{k=0..max_len} |elems|^k; callers should keep this small.
Domain seq_domain(const Domain& elems, std::size_t max_len);
/// Cartesian product of component domains, as tuple values.
Domain tuple_domain(const std::vector<Domain>& components);

}  // namespace opentla
