#include "opentla/value/value.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace opentla {

const char* to_string(ValueKind kind) {
  switch (kind) {
    case ValueKind::Bool:
      return "Bool";
    case ValueKind::Int:
      return "Int";
    case ValueKind::String:
      return "String";
    case ValueKind::Tuple:
      return "Tuple";
  }
  return "?";
}

namespace {
[[noreturn]] void kind_error(const char* want, ValueKind got) {
  throw std::runtime_error(std::string("Value kind mismatch: expected ") + want +
                           ", got " + to_string(got));
}
}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&rep_)) return *b;
  kind_error("Bool", kind());
}

std::int64_t Value::as_int() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&rep_)) return *i;
  kind_error("Int", kind());
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&rep_)) return *s;
  kind_error("String", kind());
}

const Value::Tuple& Value::as_tuple() const {
  if (const Tuple* t = std::get_if<Tuple>(&rep_)) return *t;
  kind_error("Tuple", kind());
}

std::strong_ordering operator<=>(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return a.kind() <=> b.kind();
  switch (a.kind()) {
    case ValueKind::Bool:
      return a.as_bool() <=> b.as_bool();
    case ValueKind::Int:
      return a.as_int() <=> b.as_int();
    case ValueKind::String:
      return a.as_string().compare(b.as_string()) <=> 0;
    case ValueKind::Tuple: {
      const Value::Tuple& x = a.as_tuple();
      const Value::Tuple& y = b.as_tuple();
      const std::size_t n = std::min(x.size(), y.size());
      for (std::size_t i = 0; i < n; ++i) {
        std::strong_ordering c = x[i] <=> y[i];
        if (c != std::strong_ordering::equal) return c;
      }
      return x.size() <=> y.size();
    }
  }
  return std::strong_ordering::equal;
}

namespace {
constexpr std::size_t kFnvOffset = 1469598103934665603ULL;
constexpr std::size_t kFnvPrime = 1099511628211ULL;

std::size_t fnv_mix(std::size_t h, std::size_t x) {
  // Mix 8 bytes of x into the running FNV-1a hash.
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

std::size_t Value::hash() const {
  std::size_t h = kFnvOffset;
  h = fnv_mix(h, static_cast<std::size_t>(kind()));
  switch (kind()) {
    case ValueKind::Bool:
      h = fnv_mix(h, as_bool() ? 1 : 0);
      break;
    case ValueKind::Int:
      h = fnv_mix(h, static_cast<std::size_t>(as_int()));
      break;
    case ValueKind::String:
      h = fnv_mix(h, std::hash<std::string>{}(as_string()));
      break;
    case ValueKind::Tuple:
      for (const Value& e : as_tuple()) h = fnv_mix(h, e.hash());
      h = fnv_mix(h, as_tuple().size());
      break;
  }
  return h;
}

std::string Value::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case ValueKind::Bool:
      return os << (v.as_bool() ? "TRUE" : "FALSE");
    case ValueKind::Int:
      return os << v.as_int();
    case ValueKind::String:
      return os << '"' << v.as_string() << '"';
    case ValueKind::Tuple: {
      os << "<<";
      const Value::Tuple& t = v.as_tuple();
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i != 0) os << ", ";
        os << t[i];
      }
      return os << ">>";
    }
  }
  return os;
}

std::uint64_t value_deep_bytes(const Value& v) {
  std::uint64_t bytes = sizeof(Value);
  switch (v.kind()) {
    case ValueKind::String: {
      const std::string& s = v.as_string();
      // Only buffers past the small-string optimization live on the heap.
      if (s.capacity() > sizeof(std::string) - 1) bytes += s.capacity() + 1;
      break;
    }
    case ValueKind::Tuple:
      for (const Value& e : v.as_tuple()) bytes += value_deep_bytes(e);
      break;
    default: break;
  }
  return bytes;
}

Value seq_head(const Value& s) {
  const Value::Tuple& t = s.as_tuple();
  if (t.empty()) throw std::runtime_error("Head of empty sequence");
  return t.front();
}

Value seq_tail(const Value& s) {
  const Value::Tuple& t = s.as_tuple();
  if (t.empty()) throw std::runtime_error("Tail of empty sequence");
  return Value::tuple(Value::Tuple(t.begin() + 1, t.end()));
}

Value seq_concat(const Value& s, const Value& t) {
  Value::Tuple out = s.as_tuple();
  const Value::Tuple& u = t.as_tuple();
  out.insert(out.end(), u.begin(), u.end());
  return Value::tuple(std::move(out));
}

Value seq_append(const Value& s, const Value& e) {
  Value::Tuple out = s.as_tuple();
  out.push_back(e);
  return Value::tuple(std::move(out));
}

}  // namespace opentla
