#include "opentla/analysis/interval.hpp"

#include <algorithm>
#include <limits>

namespace opentla::analysis {

namespace {
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

std::int64_t sat(__int128 v) {
  if (v < static_cast<__int128>(kMin)) return kMin;
  if (v > static_cast<__int128>(kMax)) return kMax;
  return static_cast<std::int64_t>(v);
}
}  // namespace

Interval Interval::all() { return {kMin, kMax}; }

Interval meet(Interval a, Interval b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval join(Interval a, Interval b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval interval_add(Interval a, Interval b) {
  if (a.empty() || b.empty()) return {};
  return {sat(static_cast<__int128>(a.lo) + b.lo), sat(static_cast<__int128>(a.hi) + b.hi)};
}

Interval interval_sub(Interval a, Interval b) {
  if (a.empty() || b.empty()) return {};
  return {sat(static_cast<__int128>(a.lo) - b.hi), sat(static_cast<__int128>(a.hi) - b.lo)};
}

Interval interval_mul(Interval a, Interval b) {
  if (a.empty() || b.empty()) return {};
  const __int128 c[4] = {static_cast<__int128>(a.lo) * b.lo, static_cast<__int128>(a.lo) * b.hi,
                         static_cast<__int128>(a.hi) * b.lo, static_cast<__int128>(a.hi) * b.hi};
  return {sat(*std::min_element(c, c + 4)), sat(*std::max_element(c, c + 4))};
}

Interval interval_neg(Interval a) {
  if (a.empty()) return {};
  return {sat(-static_cast<__int128>(a.hi)), sat(-static_cast<__int128>(a.lo))};
}

AbsVal AbsVal::integer(Interval iv) {
  if (iv.empty()) return none();
  return {Kind::Int, iv, false, false};
}

AbsVal AbsVal::boolean(bool may_t, bool may_f) {
  if (!may_t && !may_f) return none();
  return {Kind::Bool, {}, may_t, may_f};
}

AbsVal abstract_domain(const Domain& d) {
  if (d.empty()) return AbsVal::none();
  bool all_int = true;
  bool saw_true = false, saw_false = false, all_bool = true;
  std::int64_t lo = kMax, hi = kMin;
  for (const Value& v : d.values()) {
    if (v.is_int()) {
      lo = std::min(lo, v.as_int());
      hi = std::max(hi, v.as_int());
      all_bool = false;
    } else if (v.is_bool()) {
      (v.as_bool() ? saw_true : saw_false) = true;
      all_int = false;
    } else {
      all_int = all_bool = false;
    }
  }
  if (all_int) return AbsVal::integer({lo, hi});
  if (all_bool) return AbsVal::boolean(saw_true, saw_false);
  return AbsVal::any();
}

AbstractEnv initial_env(const VarTable& vars) {
  AbstractEnv env;
  env.reserve(vars.size());
  for (VarId v = 0; v < vars.size(); ++v) env.push_back(abstract_domain(vars.domain(v)));
  return env;
}

namespace {

AbsVal abs_join(const AbsVal& a, const AbsVal& b) {
  if (a.is_none()) return b;
  if (b.is_none()) return a;
  if (a.kind != b.kind) return AbsVal::any();
  if (a.kind == AbsVal::Kind::Int) return AbsVal::integer(join(a.iv, b.iv));
  if (a.kind == AbsVal::Kind::Bool) {
    return AbsVal::boolean(a.may_true || b.may_true, a.may_false || b.may_false);
  }
  return AbsVal::any();
}

AbsVal abs_meet(const AbsVal& a, const AbsVal& b) {
  if (a.is_none() || b.is_none()) return AbsVal::none();
  if (a.kind == AbsVal::Kind::Any) return b;
  if (b.kind == AbsVal::Kind::Any) return a;
  if (a.kind != b.kind) return AbsVal::none();  // int vs bool: no common value
  if (a.kind == AbsVal::Kind::Int) return AbsVal::integer(meet(a.iv, b.iv));
  return AbsVal::boolean(a.may_true && b.may_true, a.may_false && b.may_false);
}

Truth truth_not(Truth t) {
  if (t == Truth::True) return Truth::False;
  if (t == Truth::False) return Truth::True;
  return Truth::Unknown;
}

AbsVal from_truth(Truth t) {
  return AbsVal::boolean(t != Truth::False, t != Truth::True);
}

Truth to_truth(const AbsVal& v) {
  if (v.must_true()) return Truth::True;
  if (v.must_false()) return Truth::False;
  return Truth::Unknown;
}

AbsVal abs_const(const Value& v) {
  if (v.is_int()) return AbsVal::integer(Interval::singleton(v.as_int()));
  if (v.is_bool()) return AbsVal::boolean(v.as_bool(), !v.as_bool());
  return AbsVal::any();
}

// Three-valued comparison of two abstract values under `kind`.
Truth abs_compare(ExprKind kind, const AbsVal& a, const AbsVal& b) {
  if (kind == ExprKind::Eq || kind == ExprKind::Neq) {
    Truth eq = Truth::Unknown;
    if (a.kind == AbsVal::Kind::Int && b.kind == AbsVal::Kind::Int) {
      if (meet(a.iv, b.iv).empty()) {
        eq = Truth::False;
      } else if (a.iv.is_singleton() && a.iv == b.iv) {
        eq = Truth::True;
      }
    } else if (a.kind == AbsVal::Kind::Bool && b.kind == AbsVal::Kind::Bool) {
      const Truth ta = to_truth(a), tb = to_truth(b);
      if (ta != Truth::Unknown && tb != Truth::Unknown) {
        eq = (ta == tb) ? Truth::True : Truth::False;
      }
    } else if ((a.kind == AbsVal::Kind::Int && b.kind == AbsVal::Kind::Bool) ||
               (a.kind == AbsVal::Kind::Bool && b.kind == AbsVal::Kind::Int)) {
      eq = Truth::False;  // Value equality across kinds is plain FALSE
    }
    return kind == ExprKind::Eq ? eq : truth_not(eq);
  }
  // Integer order comparisons.
  if (a.kind != AbsVal::Kind::Int || b.kind != AbsVal::Kind::Int) return Truth::Unknown;
  const Interval& x = a.iv;
  const Interval& y = b.iv;
  switch (kind) {
    case ExprKind::Lt:
      if (x.hi < y.lo) return Truth::True;
      if (x.lo >= y.hi) return Truth::False;
      return Truth::Unknown;
    case ExprKind::Le:
      if (x.hi <= y.lo) return Truth::True;
      if (x.lo > y.hi) return Truth::False;
      return Truth::Unknown;
    case ExprKind::Gt:
      return abs_compare(ExprKind::Lt, b, a);
    case ExprKind::Ge:
      return abs_compare(ExprKind::Le, b, a);
    default:
      return Truth::Unknown;
  }
}

}  // namespace

AbsVal abs_eval(const Expr& e, const AbstractEnv& env) {
  const ExprNode& n = e.node();
  switch (n.kind) {
    case ExprKind::Const:
      return abs_const(n.value);
    case ExprKind::Var:
      if (n.primed) return AbsVal::any();
      return n.var < env.size() ? env[n.var] : AbsVal::any();
    case ExprKind::Local:
      return AbsVal::any();
    case ExprKind::Not:
      return from_truth(truth_not(abs_truth(n.kids[0], env)));
    case ExprKind::And:
    case ExprKind::Or: {
      const Truth determining = (n.kind == ExprKind::Or) ? Truth::True : Truth::False;
      bool all_known = true;
      for (const Expr& k : n.kids) {
        const Truth t = abs_truth(k, env);
        if (t == determining) return from_truth(determining);
        if (t == Truth::Unknown) all_known = false;
      }
      return all_known ? from_truth(truth_not(determining))
                       : AbsVal::boolean(true, true);
    }
    case ExprKind::Implies: {
      const Truth a = abs_truth(n.kids[0], env);
      const Truth b = abs_truth(n.kids[1], env);
      if (a == Truth::False || b == Truth::True) return from_truth(Truth::True);
      if (a == Truth::True && b == Truth::False) return from_truth(Truth::False);
      return AbsVal::boolean(true, true);
    }
    case ExprKind::Equiv: {
      const Truth a = abs_truth(n.kids[0], env);
      const Truth b = abs_truth(n.kids[1], env);
      if (a == Truth::Unknown || b == Truth::Unknown) return AbsVal::boolean(true, true);
      return from_truth(a == b ? Truth::True : Truth::False);
    }
    case ExprKind::Eq:
    case ExprKind::Neq:
    case ExprKind::Lt:
    case ExprKind::Le:
    case ExprKind::Gt:
    case ExprKind::Ge:
      return from_truth(
          abs_compare(n.kind, abs_eval(n.kids[0], env), abs_eval(n.kids[1], env)));
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Mul: {
      const AbsVal a = abs_eval(n.kids[0], env);
      const AbsVal b = abs_eval(n.kids[1], env);
      if (a.kind != AbsVal::Kind::Int || b.kind != AbsVal::Kind::Int) return AbsVal::any();
      if (n.kind == ExprKind::Add) return AbsVal::integer(interval_add(a.iv, b.iv));
      if (n.kind == ExprKind::Sub) return AbsVal::integer(interval_sub(a.iv, b.iv));
      return AbsVal::integer(interval_mul(a.iv, b.iv));
    }
    case ExprKind::Mod: {
      const AbsVal a = abs_eval(n.kids[0], env);
      const AbsVal b = abs_eval(n.kids[1], env);
      // TLC's floored modulo needs b > 0 and lands in [0, b). A divisor
      // that may be nonpositive means evaluation may error; abstract that
      // possibility away to Any rather than claim a range.
      if (a.kind != AbsVal::Kind::Int || b.kind != AbsVal::Kind::Int || b.iv.lo <= 0) {
        return AbsVal::any();
      }
      if (a.iv.lo >= 0 && a.iv.hi < b.iv.lo) return a;  // a % b = a here
      return AbsVal::integer({0, b.iv.hi - 1});
    }
    case ExprKind::Neg: {
      const AbsVal a = abs_eval(n.kids[0], env);
      if (a.kind != AbsVal::Kind::Int) return AbsVal::any();
      return AbsVal::integer(interval_neg(a.iv));
    }
    case ExprKind::IfThenElse: {
      const Truth c = abs_truth(n.kids[0], env);
      if (c == Truth::True) return abs_eval(n.kids[1], env);
      if (c == Truth::False) return abs_eval(n.kids[2], env);
      return abs_join(abs_eval(n.kids[1], env), abs_eval(n.kids[2], env));
    }
    case ExprKind::Len:
      return AbsVal::integer({0, kMax});
    case ExprKind::ExistsVal:
    case ExprKind::ForallVal: {
      if (n.domain.empty()) {
        return from_truth(n.kind == ExprKind::ExistsVal ? Truth::False : Truth::True);
      }
      // The body's abstract truth with the local at Any holds for every
      // binding, so a definite body decides both quantifiers.
      const Truth body = abs_truth(n.kids[0], env);
      if (body != Truth::Unknown) return from_truth(body);
      return AbsVal::boolean(true, true);
    }
    case ExprKind::Enabled:
      return AbsVal::boolean(true, true);
    case ExprKind::MakeTuple:
    case ExprKind::Head:
    case ExprKind::Tail:
    case ExprKind::Concat:
    case ExprKind::Append:
    case ExprKind::Index:
      return AbsVal::any();
  }
  return AbsVal::any();
}

Truth abs_truth(const Expr& e, const AbstractEnv& env) {
  return to_truth(abs_eval(e, env));
}

namespace {

ExprKind flip_comparison(ExprKind k) {
  switch (k) {
    case ExprKind::Lt: return ExprKind::Gt;
    case ExprKind::Le: return ExprKind::Ge;
    case ExprKind::Gt: return ExprKind::Lt;
    case ExprKind::Ge: return ExprKind::Le;
    default: return k;  // Eq/Neq are symmetric
  }
}

// Narrows env[v] under the constraint `v cmp rhs`. Returns true if env[v]
// changed.
bool refine_var(ExprKind cmp, VarId v, const AbsVal& rhs, AbstractEnv& env) {
  if (v >= env.size()) return false;
  AbsVal cur = env[v];
  AbsVal next = cur;
  switch (cmp) {
    case ExprKind::Eq:
      next = abs_meet(cur, rhs);
      break;
    case ExprKind::Neq:
      if (rhs.kind == AbsVal::Kind::Int && rhs.iv.is_singleton() &&
          cur.kind == AbsVal::Kind::Int) {
        Interval iv = cur.iv;
        if (iv.lo == rhs.iv.lo) ++iv.lo;
        if (iv.hi == rhs.iv.lo) --iv.hi;
        next = AbsVal::integer(iv);
      } else if (rhs.kind == AbsVal::Kind::Bool && cur.kind == AbsVal::Kind::Bool) {
        if (rhs.must_true()) next = abs_meet(cur, AbsVal::boolean(false, true));
        if (rhs.must_false()) next = abs_meet(cur, AbsVal::boolean(true, false));
      }
      break;
    case ExprKind::Lt:
    case ExprKind::Le:
    case ExprKind::Gt:
    case ExprKind::Ge: {
      if (rhs.kind != AbsVal::Kind::Int || cur.kind != AbsVal::Kind::Int) break;
      Interval iv = cur.iv;
      if (cmp == ExprKind::Lt) {
        if (rhs.iv.hi == kMin) {
          iv = {};  // v < INT64_MIN: impossible
        } else {
          iv.hi = std::min(iv.hi, rhs.iv.hi - 1);
        }
      } else if (cmp == ExprKind::Le) {
        iv.hi = std::min(iv.hi, rhs.iv.hi);
      } else if (cmp == ExprKind::Gt) {
        if (rhs.iv.lo == kMax) {
          iv = {};
        } else {
          iv.lo = std::max(iv.lo, rhs.iv.lo + 1);
        }
      } else {
        iv.lo = std::max(iv.lo, rhs.iv.lo);
      }
      next = AbsVal::integer(iv);
      break;
    }
    default:
      break;
  }
  if (next == cur) return false;
  env[v] = next;
  return true;
}

// One refinement pass over a predicate known to hold. Returns true if any
// env entry changed.
bool refine_atom(const Expr& e, AbstractEnv& env) {
  const ExprNode& n = e.node();
  bool changed = false;
  switch (n.kind) {
    case ExprKind::And:
      for (const Expr& k : n.kids) changed |= refine_atom(k, env);
      return changed;
    case ExprKind::Var:
      // A bare boolean variable used as a predicate: it must be TRUE.
      if (!n.primed) changed = refine_var(ExprKind::Eq, n.var, AbsVal::boolean(true, false), env);
      return changed;
    case ExprKind::Not: {
      const ExprNode& k = n.kids[0].node();
      if (k.kind == ExprKind::Var && !k.primed) {
        return refine_var(ExprKind::Eq, k.var, AbsVal::boolean(false, true), env);
      }
      return false;
    }
    case ExprKind::Eq:
    case ExprKind::Neq:
    case ExprKind::Lt:
    case ExprKind::Le:
    case ExprKind::Gt:
    case ExprKind::Ge: {
      const ExprNode& l = n.kids[0].node();
      const ExprNode& r = n.kids[1].node();
      if (l.kind == ExprKind::Var && !l.primed) {
        changed |= refine_var(n.kind, l.var, abs_eval(n.kids[1], env), env);
      }
      if (r.kind == ExprKind::Var && !r.primed) {
        changed |= refine_var(flip_comparison(n.kind), r.var, abs_eval(n.kids[0], env), env);
      }
      return changed;
    }
    default:
      return false;
  }
}

}  // namespace

bool refine_by_guards(const std::vector<Expr>& guards, AbstractEnv& env) {
  // Narrowing is monotone; the pass cap only bounds time, not soundness.
  for (int pass = 0; pass < 8; ++pass) {
    bool changed = false;
    for (const Expr& g : guards) changed |= refine_atom(g, env);
    if (!changed) break;
  }
  for (const AbsVal& v : env) {
    if (v.is_none()) return false;
  }
  for (const Expr& g : guards) {
    if (abs_truth(g, env) == Truth::False) return false;
  }
  return true;
}

}  // namespace opentla::analysis
