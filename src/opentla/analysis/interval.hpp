// opentla/analysis/interval.hpp
//
// Interval/constant abstract domain over the declared variable domains.
// An AbstractEnv maps every flexible variable to an abstract value: an
// integer interval [lo, hi], a three-valued boolean, Any (some value, but
// nothing known about it — strings, sequences, or simply "unrefined"), or
// None (no value is possible: the context is unsatisfiable).
//
// The domain powers the semantic lint checks (OTL009–OTL011): abs_eval
// over-approximates the set of values an expression can take when each
// variable ranges over its abstract value, abs_truth is the induced
// three-valued truth, and refine_by_guards narrows variable intervals by
// the comparison atoms of a guard conjunction until a fixpoint. Every
// operation is conservative: a definite answer (True/False, or an empty
// interval) is sound; Unknown/Any never is wrong, merely useless. Lints
// fire on definite answers only, so they cannot produce false positives.

#pragma once

#include <cstdint>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/value/domain.hpp"

namespace opentla::analysis {

/// A (possibly empty) integer interval. lo > hi encodes the empty set.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = -1;

  static Interval all();
  static Interval singleton(std::int64_t v) { return {v, v}; }
  bool empty() const { return lo > hi; }
  bool is_singleton() const { return lo == hi; }
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }

  friend bool operator==(const Interval& a, const Interval& b) = default;
};

Interval meet(Interval a, Interval b);
Interval join(Interval a, Interval b);
/// Saturating interval arithmetic: results clamp at the int64 rails
/// instead of wrapping, which keeps them sound over-approximations
/// (evaluation reports actual overflow as an error, never a wrapped value).
Interval interval_add(Interval a, Interval b);
Interval interval_sub(Interval a, Interval b);
Interval interval_mul(Interval a, Interval b);
Interval interval_neg(Interval a);

/// One abstract value.
struct AbsVal {
  enum class Kind : std::uint8_t {
    None,  // bottom: no concrete value (unsatisfiable context)
    Int,   // an integer in `iv`
    Bool,  // a boolean; may_true/may_false say which truth values survive
    Any,   // top: some value of unknown type/range
  };
  Kind kind = Kind::Any;
  Interval iv;
  bool may_true = true;
  bool may_false = true;

  static AbsVal none() { return {Kind::None, {}, false, false}; }
  static AbsVal any() { return {Kind::Any, {}, true, true}; }
  static AbsVal integer(Interval iv);
  static AbsVal boolean(bool may_t, bool may_f);

  bool is_none() const { return kind == Kind::None; }
  /// The definite boolean value, if this is Bool and only one survives.
  bool must_true() const { return kind == Kind::Bool && may_true && !may_false; }
  bool must_false() const { return kind == Kind::Bool && !may_true && may_false; }

  friend bool operator==(const AbsVal& a, const AbsVal& b) = default;
};

/// Abstract values per VarId (index = VarId), for unprimed occurrences.
using AbstractEnv = std::vector<AbsVal>;

/// The abstraction of a declared domain: the hull interval for an
/// all-integer domain, both booleans for a boolean-containing domain,
/// Any for mixed or sequence-valued domains, None for an empty one.
AbsVal abstract_domain(const Domain& d);

/// An environment giving every variable of `vars` its domain abstraction.
AbstractEnv initial_env(const VarTable& vars);

/// Over-approximates the values state function `e` can take when each
/// unprimed variable ranges over env[v]. Primed variables and quantifier
/// locals abstract to Any. Never throws; ill-typed subterms yield Any
/// (evaluation owns type errors).
AbsVal abs_eval(const Expr& e, const AbstractEnv& env);

/// Three-valued truth of predicate `e` under `env`.
enum class Truth : std::uint8_t { False, True, Unknown };
Truth abs_truth(const Expr& e, const AbstractEnv& env);

/// Narrows `env` by the comparison atoms of `guards` (each a state
/// predicate, conjoined), iterating to a fixpoint. Recognizes atoms of the
/// shape `v cmp e` / `e cmp v` where `e` abstracts to an interval or a
/// definite boolean, and conjunctions nested inside the guard list.
/// Returns false — with some env entry None — when the refinement proves
/// the conjunction unsatisfiable over the declared domains; a true return
/// means "not provably unsatisfiable", never "satisfiable".
bool refine_by_guards(const std::vector<Expr>& guards, AbstractEnv& env);

}  // namespace opentla::analysis
