#include "opentla/analysis/independence.hpp"

#include <algorithm>
#include <optional>

#include "opentla/obs/obs.hpp"

namespace opentla::analysis {

namespace {

std::optional<VarId> first_common(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return *ia;
    (*ia < *ib) ? ++ia : ++ib;
  }
  return std::nullopt;
}

bool sorted_contains(const std::vector<VarId>& vs, VarId v) {
  return std::binary_search(vs.begin(), vs.end(), v);
}

}  // namespace

PairVerdict pair_independence(const VarTable& vars, const std::string& a_name,
                              const Footprint& a, const std::string& b_name,
                              const Footprint& b) {
  auto quote = [](const std::string& s) { return "'" + s + "'"; };
  if (a.conservative || b.conservative) {
    return {false, "conservative fallback: " +
                       quote(a.conservative ? a_name : b_name) +
                       " has no precise footprint"};
  }
  if (std::optional<VarId> v = first_common(a.writes, b.writes)) {
    return {false, "both write " + quote(vars.name(*v))};
  }
  auto write_read = [&](const std::string& wn, const Footprint& w, const std::string& rn,
                        const Footprint& r) -> std::optional<PairVerdict> {
    std::optional<VarId> v = first_common(w.writes, r.reads);
    if (!v) return std::nullopt;
    std::string why = quote(wn) + " writes " + quote(vars.name(*v)) + ", " + quote(rn) +
                      " reads it";
    if (sorted_contains(r.guard_reads, *v)) why += " in a guard";
    return PairVerdict{false, std::move(why)};
  };
  if (std::optional<PairVerdict> d = write_read(a_name, a, b_name, b)) return *d;
  if (std::optional<PairVerdict> d = write_read(b_name, b, a_name, a)) return *d;
  return {true, ""};
}

double IndependenceMatrix::density() const {
  const std::size_t total = independent_pairs_ + dependent_pairs_;
  return total == 0 ? 0.0 : static_cast<double>(independent_pairs_) / static_cast<double>(total);
}

IndependenceMatrix compute_independence(const VarTable& vars,
                                        std::vector<ActionUnit> units) {
  OPENTLA_OBS_SPAN("analysis.independence");
  IndependenceMatrix m;
  m.units_ = std::move(units);
  const std::size_t n = m.units_.size();
  m.cells_.assign(n * n, 0);
  m.reasons_.assign(n * n, "");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      PairVerdict v =
          pair_independence(vars, m.units_[i].name, m.units_[i].fp, m.units_[j].name,
                            m.units_[j].fp);
      m.cells_[i * n + j] = m.cells_[j * n + i] = v.independent ? 1 : 0;
      m.reasons_[i * n + j] = v.reason;
      m.reasons_[j * n + i] = std::move(v.reason);
      if (i == j) continue;
      (v.independent ? m.independent_pairs_ : m.dependent_pairs_) += 1;
    }
  }
  OPENTLA_OBS_COUNT_N(AnalysisPairsIndependent, m.independent_pairs_);
  OPENTLA_OBS_COUNT_N(AnalysisPairsDependent, m.dependent_pairs_);
  return m;
}

}  // namespace opentla::analysis
