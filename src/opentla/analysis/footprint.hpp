// opentla/analysis/footprint.hpp
//
// Per-action-disjunct read/write footprints — the whole-spec dataflow
// layer on top of expr/analysis's decompose_action. A footprint
// over-approximates the variables an action disjunct depends on (reads:
// guard variables, assignment right-hand sides, residual state
// variables) and the variables it can change (writes: non-frame
// assignments, residual primed variables, and — crucially — every
// in-scope primed variable the disjunct leaves unmentioned: TLA actions
// have no frame condition, so successor generation enumerates those over
// their full domains, which is a nondeterministic write).
//
// The frame scope is what distinguishes a closed module (scope = whole
// universe) from an open module living in a shared universe (scope = its
// subscript tuple; variables outside it belong to the environment and are
// framed by the explorer, not enumerated). Both the independence relation
// (independence.hpp) and the sound half of the lint checks consume these
// footprints; the purely syntactic OTL006 footprint is the scope-free
// projection `write_footprint`.

#pragma once

#include <string>
#include <vector>

#include "opentla/expr/analysis.hpp"
#include "opentla/expr/expr.hpp"
#include "opentla/parser/parser.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla::analysis {

/// Read/write sets of one action disjunct (or a union over several).
/// All vectors are ascending and deduplicated.
struct Footprint {
  std::vector<VarId> reads;        // unprimed variables the effect depends on
  std::vector<VarId> writes;       // primed variables the step can change
  std::vector<VarId> guard_reads;  // subset of reads occurring in guards
  /// Set when the analysis could not decompose the action faithfully; a
  /// conservative footprint must be treated as touching everything.
  bool conservative = false;

  /// In-place union with `other` (conservative absorbs).
  void merge(const Footprint& other);
};

/// Footprint of one decomposed disjunct. `frame_scope` lists the variables
/// successor generation enumerates when a disjunct leaves them
/// unconstrained (the subscript of an open module, or every universe
/// variable for a closed one); unmentioned primed variables inside it
/// count as writes. Identity frames (v' = v, i.e. UNCHANGED) are neither
/// reads nor writes: copying a variable commutes with any concurrent
/// update of it.
Footprint disjunct_footprint(const ActionDisjunct& d,
                             const std::vector<VarId>& frame_scope);

/// Union of disjunct footprints over every disjunct of `action`.
Footprint action_footprint(const Expr& action, const std::vector<VarId>& frame_scope);

/// Variables `next` can explicitly change: non-frame assignments plus
/// residual primed variables, unioned over all disjuncts, with no frame
/// scope applied. This is the syntactic written footprint lint's OTL006
/// compares between modules.
std::vector<VarId> write_footprint(const Expr& next);

/// One unit of the independence matrix: a named action disjunct with its
/// footprint.
struct ActionUnit {
  std::string name;    // "Incr", "QE1#2", "disjunct_3", ...
  std::string module;  // owning module/spec name ("" when anonymous)
  Expr action;         // the unit's disjunct (one element of flatten_or)
  Footprint fp;
};

/// The units of a parsed module: one per top-level NEXT disjunct, named
/// after the ACTION whose body it is (the scheme `tlacheck coverage`
/// uses), with `disjunct_<i>` as the fallback. The frame scope is the
/// module's subscript (unhidden), so an open module's footprints stay
/// inside the variables it governs.
std::vector<ActionUnit> module_action_units(const ParsedModule& mod);

/// The units of a canonical spec built programmatically (composition
/// parts, the queue systems): one per NEXT disjunct, named
/// `<spec>#<i>` (`<spec>` alone when NEXT has a single disjunct). The
/// frame scope is the spec's subscript.
std::vector<ActionUnit> spec_action_units(const CanonicalSpec& spec,
                                          const std::string& fallback_name = "");

}  // namespace opentla::analysis
