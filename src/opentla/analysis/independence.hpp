// opentla/analysis/independence.hpp
//
// Sound static independence relation over action units (Godefroid-style,
// the precomputation ample-set partial-order reduction executes on, and
// the machine-checkable reading of the paper's Disjoint interleaving
// representation: actions over disjoint variable tuples commute).
//
// Two units A and B are declared independent iff
//
//     writes(A) ∩ writes(B) = ∅   (no write/write race)
//     writes(A) ∩ reads(B)  = ∅   (A cannot change B's effect...)
//     writes(B) ∩ reads(A)  = ∅   (...nor B change A's, and since guard
//                                  reads ⊆ reads, neither can enable or
//                                  disable the other's guard)
//
// with footprints that count every in-scope unmentioned primed variable
// as a write (footprint.hpp), and a conservative fallback: a unit whose
// footprint analysis gave up is dependent on everything. Independence
// then gives genuine diamond commutation: from any state, executing A
// then B and B then A produce the same successor-state sets, and neither
// step disables the other — which is exactly what the differential
// harness brute-forces against random actions.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "opentla/analysis/footprint.hpp"

namespace opentla::analysis {

/// One pair's verdict with provenance ("why dependent: both write 'q'").
struct PairVerdict {
  bool independent = false;
  std::string reason;  // empty when independent
};

/// Decides one pair from footprints alone. `vars` supplies names for the
/// provenance string; `a_name`/`b_name` label the two units in it.
PairVerdict pair_independence(const VarTable& vars, const std::string& a_name,
                              const Footprint& a, const std::string& b_name,
                              const Footprint& b);

/// The N×N commutation matrix over `units`. Symmetric; the diagonal is
/// computed by the same rule (an effect-free unit is independent of
/// itself). Deterministic: a pure function of the unit list.
class IndependenceMatrix {
 public:
  IndependenceMatrix() = default;

  std::size_t size() const { return units_.size(); }
  const std::vector<ActionUnit>& units() const { return units_; }
  bool independent(std::size_t i, std::size_t j) const { return cells_[i * units_.size() + j]; }
  /// Provenance for a dependent pair (empty string when independent).
  const std::string& reason(std::size_t i, std::size_t j) const {
    return reasons_[i * units_.size() + j];
  }

  /// Unordered pair counts over i < j (diagonal excluded).
  std::size_t independent_pairs() const { return independent_pairs_; }
  std::size_t dependent_pairs() const { return dependent_pairs_; }
  /// independent_pairs / (independent_pairs + dependent_pairs); 0 when no
  /// pairs exist.
  double density() const;

  friend IndependenceMatrix compute_independence(const VarTable& vars,
                                                 std::vector<ActionUnit> units);

 private:
  std::vector<ActionUnit> units_;
  std::vector<std::uint8_t> cells_;    // row-major N×N
  std::vector<std::string> reasons_;   // row-major N×N
  std::size_t independent_pairs_ = 0;
  std::size_t dependent_pairs_ = 0;
};

/// Builds the matrix, bumps the analysis_pairs_* obs counters (unordered
/// pairs, diagonal excluded) and records an "analysis.independence" span.
IndependenceMatrix compute_independence(const VarTable& vars,
                                        std::vector<ActionUnit> units);

}  // namespace opentla::analysis
