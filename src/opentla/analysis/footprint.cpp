#include "opentla/analysis/footprint.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace opentla::analysis {

namespace {

std::vector<VarId> sorted_vec(const std::set<VarId>& s) {
  return {s.begin(), s.end()};
}

void merge_sorted(std::vector<VarId>& into, const std::vector<VarId>& from) {
  std::vector<VarId> merged;
  merged.reserve(into.size() + from.size());
  std::set_union(into.begin(), into.end(), from.begin(), from.end(),
                 std::back_inserter(merged));
  into = std::move(merged);
}

bool is_identity_frame(VarId v, const Expr& rhs) {
  const ExprNode& r = rhs.node();
  return r.kind == ExprKind::Var && r.var == v && !r.primed;
}

}  // namespace

void Footprint::merge(const Footprint& other) {
  conservative = conservative || other.conservative;
  merge_sorted(reads, other.reads);
  merge_sorted(writes, other.writes);
  merge_sorted(guard_reads, other.guard_reads);
}

Footprint disjunct_footprint(const ActionDisjunct& d,
                             const std::vector<VarId>& frame_scope) {
  std::set<VarId> reads, writes, guard_reads;
  std::set<VarId> constrained;  // primed variables the disjunct mentions
  for (const Expr& g : d.guards) {
    const FreeVars fv = free_vars(g);
    guard_reads.insert(fv.unprimed.begin(), fv.unprimed.end());
  }
  reads = guard_reads;
  for (const auto& [v, rhs] : d.assignments) {
    constrained.insert(v);
    // UNCHANGED v (v' = v) copies the variable: the copy commutes with any
    // concurrent update, so it is neither a read nor a write.
    if (is_identity_frame(v, rhs)) continue;
    writes.insert(v);
    const FreeVars fv = free_vars(rhs);
    reads.insert(fv.unprimed.begin(), fv.unprimed.end());
  }
  for (const Expr& c : d.residual) {
    const FreeVars fv = free_vars(c);
    reads.insert(fv.unprimed.begin(), fv.unprimed.end());
  }
  writes.insert(d.residual_primed.begin(), d.residual_primed.end());
  constrained.insert(d.residual_primed.begin(), d.residual_primed.end());
  // No frame condition: an in-scope primed variable the disjunct never
  // mentions is enumerated over its whole domain — a nondeterministic
  // write.
  for (VarId v : frame_scope) {
    if (!constrained.contains(v)) writes.insert(v);
  }
  Footprint fp;
  fp.reads = sorted_vec(reads);
  fp.writes = sorted_vec(writes);
  fp.guard_reads = sorted_vec(guard_reads);
  return fp;
}

Footprint action_footprint(const Expr& action, const std::vector<VarId>& frame_scope) {
  Footprint fp;
  if (action.is_null()) {
    fp.conservative = true;
    return fp;
  }
  for (const ActionDisjunct& d : decompose_action(action)) {
    fp.merge(disjunct_footprint(d, frame_scope));
  }
  return fp;
}

std::vector<VarId> write_footprint(const Expr& next) {
  std::set<VarId> written;
  if (!next.is_null()) {
    for (const ActionDisjunct& d : decompose_action(next)) {
      for (const auto& [v, rhs] : d.assignments) {
        if (!is_identity_frame(v, rhs)) written.insert(v);
      }
      written.insert(d.residual_primed.begin(), d.residual_primed.end());
    }
  }
  return sorted_vec(written);
}

namespace {

std::vector<VarId> sorted_scope(std::vector<VarId> scope) {
  std::sort(scope.begin(), scope.end());
  scope.erase(std::unique(scope.begin(), scope.end()), scope.end());
  return scope;
}

std::vector<ActionUnit> units_over(const Expr& next, const std::string& module,
                                   const std::vector<VarId>& scope,
                                   const std::function<std::string(const Expr&, std::size_t)>& name_of) {
  std::vector<ActionUnit> units;
  if (next.is_null()) return units;
  const std::vector<Expr> disjuncts = flatten_or(next);
  units.reserve(disjuncts.size());
  for (std::size_t i = 0; i < disjuncts.size(); ++i) {
    ActionUnit u;
    u.name = name_of(disjuncts[i], i);
    u.module = module;
    u.action = disjuncts[i];
    u.fp = action_footprint(disjuncts[i], scope);
    units.push_back(std::move(u));
  }
  return units;
}

}  // namespace

std::vector<ActionUnit> module_action_units(const ParsedModule& mod) {
  std::vector<VarId> scope = mod.spec.sub.empty() ? mod.declared : mod.spec.sub;
  scope = sorted_scope(std::move(scope));
  return units_over(
      mod.spec.next, mod.name, scope, [&](const Expr& d, std::size_t i) -> std::string {
        for (const std::string& name : mod.action_names) {
          auto it = mod.definitions.find(name);
          if (it != mod.definitions.end() && structurally_equal(d, it->second)) return name;
        }
        return "disjunct_" + std::to_string(i);
      });
}

std::vector<ActionUnit> spec_action_units(const CanonicalSpec& spec,
                                          const std::string& fallback_name) {
  const std::string base =
      !spec.name.empty() ? spec.name : (!fallback_name.empty() ? fallback_name : "action");
  std::vector<VarId> scope = spec.sub;
  if (scope.empty()) {
    const std::set<VarId> all = spec_variables(spec);
    scope.assign(all.begin(), all.end());
  }
  scope = sorted_scope(std::move(scope));
  const std::size_t n = spec.next.is_null() ? 0 : flatten_or(spec.next).size();
  return units_over(spec.next, base, scope, [&](const Expr&, std::size_t i) -> std::string {
    return n <= 1 ? base : base + "#" + std::to_string(i);
  });
}

}  // namespace opentla::analysis
