#include "opentla/proof/report.hpp"

#include <numeric>
#include <sstream>

namespace opentla {

bool ProofReport::all_discharged() const {
  for (const Obligation& ob : obligations) {
    if (!ob.discharged) return false;
  }
  return true;
}

double ProofReport::total_millis() const {
  return std::accumulate(obligations.begin(), obligations.end(), 0.0,
                         [](double acc, const Obligation& ob) { return acc + ob.millis; });
}

Obligation& ProofReport::add(Obligation ob) {
  obligations.push_back(std::move(ob));
  return obligations.back();
}

std::string ProofReport::to_string() const {
  std::ostringstream os;
  os << "THEOREM " << theorem << "\n";
  for (const Obligation& ob : obligations) {
    os << "  [" << (ob.discharged ? "ok" : (ob.inconclusive ? "?budget" : "FAILED")) << "] "
       << ob.id << ": " << ob.description << "\n";
    os << "        method: " << ob.method;
    if (ob.millis > 0) os << "  (" << ob.millis << " ms)";
    os << "\n";
    if (!ob.detail.empty()) os << "        " << ob.detail << "\n";
  }
  bool refuted = false;
  for (const Obligation& ob : obligations) {
    if (!ob.discharged && !ob.inconclusive) refuted = true;
  }
  os << (all_discharged() ? "  Q.E.D."
         : refuted        ? "  NOT PROVED"
                          : "  NOT PROVED (run budget stopped the proof)")
     << "\n";
  return os.str();
}

ObligationTimer::ObligationTimer(Obligation& ob)
    : ob_(&ob), start_(std::chrono::steady_clock::now()) {}

ObligationTimer::~ObligationTimer() {
  const auto end = std::chrono::steady_clock::now();
  ob_->millis = std::chrono::duration<double, std::milli>(end - start_).count();
}

}  // namespace opentla
