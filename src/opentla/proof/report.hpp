// opentla/proof/report.hpp

#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "opentla/proof/obligation.hpp"

namespace opentla {

/// The outcome of verifying a theorem instance: a conclusion plus the list
/// of discharged (or failed) hypotheses.
struct ProofReport {
  std::string theorem;  // rendered conclusion, e.g. "(QE1 +> QM1) /\ ... => (QE +> QM)"
  std::vector<Obligation> obligations;

  bool all_discharged() const;
  double total_millis() const;
  /// Figure-9-style rendering: one line per obligation with status, method
  /// and timing, then the verdict.
  std::string to_string() const;

  Obligation& add(Obligation ob);
};

/// Scoped wall-clock timer filling an obligation's `millis`.
class ObligationTimer {
 public:
  explicit ObligationTimer(Obligation& ob);
  ~ObligationTimer();
  ObligationTimer(const ObligationTimer&) = delete;
  ObligationTimer& operator=(const ObligationTimer&) = delete;

 private:
  Obligation* ob_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace opentla
