#include "opentla/proof/obligation.hpp"

// Data-only translation unit: Obligation has no out-of-line members, but
// the file anchors the module in the build.
namespace opentla {}
