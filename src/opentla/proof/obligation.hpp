// opentla/proof/obligation.hpp
//
// Proof obligations and reports. The Composition Theorem verifier and the
// proposition engines record each hypothesis they discharge — what was
// checked, by which method, with what statistics or counterexample — so a
// run reads like the paper's Figure 9 proof sketch, but machine-checked.

#pragma once

#include <string>
#include <vector>

namespace opentla {

struct Obligation {
  std::string id;           // e.g. "H1[QE^1]", "H2a", "2.1.2"
  std::string description;  // the validity being checked
  bool discharged = false;
  std::string method;  // "product-inclusion", "refinement-mapping", "prop1-syntactic", ...
  std::string detail;  // stats, or a rendered counterexample on failure
  /// Not discharged, but not refuted either: the run budget stopped the
  /// check before it finished (or before it started). Distinguishes "the
  /// theorem failed" from "the run ran out" — the CLI maps the former to
  /// exit 1 and the latter to the budget exit code.
  bool inconclusive = false;
  double millis = 0.0;

  explicit operator bool() const { return discharged; }
};

}  // namespace opentla
