// opentla/parser/lexer.hpp
//
// Tokenizer for the mini-TLA concrete syntax. ASCII operator spellings
// follow TLA+: /\ \/ ~ => <=> = # < <= > >= ' << >> \o \E \A \in ==
// plus keywords (TRUE, FALSE, IF, THEN, ELSE, ENABLED, UNCHANGED, module
// structure keywords) and identifiers that may contain dots (channel
// fields such as i.sig are plain flexible variables here).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace opentla {

enum class TokenKind : std::uint8_t {
  End,
  Ident,       // x, i.sig, Head (names and builtins are resolved by the parser)
  Number,      // 42
  String,      // "abc"
  And,         // /\.
  Or,          // \/
  Not,         // ~
  Implies,     // =>
  Equiv,       // <=>
  Eq,          // =
  Neq,         // #
  Lt,          // <
  Le,          // <=
  Gt,          // >
  Ge,          // >=
  Plus,        // +
  Minus,       // -
  Star,        // *
  Percent,     // %
  Prime,       // '
  LParen,      // (
  RParen,      // )
  LTuple,      // <<
  RTuple,      // >>
  LBrace,      // {
  RBrace,      // }
  LBracket,    // [
  RBracket,    // ]
  Comma,       // ,
  Colon,       // :
  DotDot,      // ..
  ConcatOp,    // \o
  Exists,      // \E
  Forall,      // \A
  In,          // \in
  DefEq,       // ==
  Newline,     // significant for module structure
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;
  std::int64_t number = 0;
  std::size_t line = 0;
  std::size_t column = 0;
};

/// Tokenizes `src`. `\*` comments run to end of line. Throws
/// std::runtime_error with line/column on malformed input.
std::vector<Token> tokenize(const std::string& src);

const char* to_string(TokenKind kind);

}  // namespace opentla
