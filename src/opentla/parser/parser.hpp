// opentla/parser/parser.hpp
//
// Recursive-descent parser for the mini-TLA concrete syntax: expressions
// and actions over a declared universe, and whole modules that assemble a
// canonical-form specification. Example module:
//
//     MODULE Counter
//     VARIABLE x \in 0..3
//     DEFINE AtMax == x = 3
//     INIT x = 0
//     ACTION Incr == x < 3 /\ x' = x + 1
//     ACTION Reset == AtMax /\ x' = 0
//     NEXT Incr \/ Reset
//     SUBSCRIPT <<x>>
//     FAIRNESS WF Incr
//
// Domains: `a..b` (integer range), `{1, 2, 5}`, `BOOLEAN`,
// `Seq(<domain>, maxlen)`. `HIDDEN` declares an internal variable (it is
// appended to the subscript automatically if missing). Definitions are
// macros: each use splices the defining expression.

#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/obs/memory.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

/// Parses one expression/action over `vars`. `definitions` (optional)
/// provides named macros.
Expr parse_expression(const std::string& src, const VarTable& vars,
                      const std::map<std::string, Expr>* definitions = nullptr);

/// A position in the module source (1-based; {0, 0} means "unknown").
struct SourceLoc {
  std::size_t line = 0;
  std::size_t column = 0;

  bool known() const { return line != 0; }
};

/// Source locations of a module's declarations and statements, recorded by
/// the parser so later passes (the linter, error reporters) can point at
/// the offending line instead of just naming a construct.
struct ModuleLocations {
  SourceLoc module_kw;                          // the MODULE statement
  SourceLoc init;                               // the INIT statement
  SourceLoc next;                               // the NEXT statement
  SourceLoc subscript;                          // the SUBSCRIPT statement
  SourceLoc disjoint;                           // the DISJOINT statement
  std::map<std::string, SourceLoc> definitions; // DEFINE/ACTION name tokens
  std::map<VarId, SourceLoc> variables;         // declaration name tokens
  std::vector<SourceLoc> fairness;              // one per FAIRNESS statement,
                                                // aligned with spec.fairness
};

struct ParsedModule {
  std::string name;
  std::shared_ptr<VarTable> vars;
  std::map<std::string, Expr> definitions;
  /// Names introduced with ACTION (not DEFINE), in statement order.
  /// Coverage reporting treats these as the module's named actions.
  std::vector<std::string> action_names;
  CanonicalSpec spec;
  /// Variables this module itself declares (a shared universe may hold
  /// more), in declaration order.
  std::vector<VarId> declared;
  /// The tuples of a DISJOINT module, in statement order (empty otherwise).
  std::vector<std::vector<VarId>> disjoint_tuples;
  ModuleLocations locs;
  /// Memory accounting: expression-tree bytes of the parsed module
  /// (definitions, init, next, fairness actions), charged to the parser
  /// domain at parse completion and released with the module.
  obs::MemTally mem{obs::MemDomain::Parser};

  bool is_disjoint() const { return !disjoint_tuples.empty(); }
};

/// Parses a full module into a canonical specification. Throws
/// std::runtime_error with position information on syntax or resolution
/// errors.
///
/// `shared_vars` (optional) supplies the universe: declarations of a name
/// already present must repeat the same domain (modules describing
/// components of one system each declare the variables they touch, and the
/// tables merge). A `DISJOINT <<a, b>>, <<c>>, ...` statement replaces
/// INIT/NEXT and produces the interleaving spec of Section 2.3.
ParsedModule parse_module(const std::string& src,
                          std::shared_ptr<VarTable> shared_vars = nullptr);

}  // namespace opentla
