#include "opentla/parser/parser.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "opentla/expr/substitute.hpp"
#include "opentla/parser/lexer.hpp"
#include "opentla/tla/disjoint.hpp"

namespace opentla {

namespace {

[[noreturn]] void parse_error(const Token& at, const std::string& msg) {
  throw std::runtime_error("parse error at " + std::to_string(at.line) + ":" +
                           std::to_string(at.column) + ": " + msg + " (got '" +
                           (at.text.empty() ? to_string(at.kind) : at.text) + "')");
}

/// Token-stream cursor over a newline-free token slice.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {
    Token end;
    end.kind = TokenKind::End;
    tokens_.push_back(std::move(end));
  }

  const Token& peek(std::size_t ahead = 0) const {
    return tokens_[std::min(pos_ + ahead, tokens_.size() - 1)];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  bool accept(TokenKind kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }
  const Token& expect(TokenKind kind, const std::string& what) {
    if (!at(kind)) parse_error(peek(), "expected " + what);
    return advance();
  }
  bool done() const { return at(TokenKind::End); }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

class ExprParser {
 public:
  ExprParser(Cursor& cur, const VarTable& vars, const std::map<std::string, Expr>* defs)
      : cur_(&cur), vars_(&vars), defs_(defs) {}

  Expr parse() { return parse_equiv(); }

  /// Parses a domain: a..b | {c, ...} | BOOLEAN | Seq(domain, n).
  Domain parse_domain() {
    if (cur_->at(TokenKind::LBrace)) {
      cur_->advance();
      std::vector<Value> values;
      if (!cur_->at(TokenKind::RBrace)) {
        do {
          values.push_back(parse_constant());
        } while (cur_->accept(TokenKind::Comma));
      }
      cur_->expect(TokenKind::RBrace, "'}'");
      return Domain(std::move(values));
    }
    if (cur_->at(TokenKind::Ident) && cur_->peek().text == "BOOLEAN") {
      cur_->advance();
      return bool_domain();
    }
    if (cur_->at(TokenKind::Ident) && cur_->peek().text == "Seq") {
      cur_->advance();
      cur_->expect(TokenKind::LParen, "'('");
      Domain elems = parse_domain();
      cur_->expect(TokenKind::Comma, "','");
      const Token& n = cur_->expect(TokenKind::Number, "sequence length bound");
      cur_->expect(TokenKind::RParen, "')'");
      return seq_domain(elems, static_cast<std::size_t>(n.number));
    }
    // a..b
    Value lo = parse_constant();
    cur_->expect(TokenKind::DotDot, "'..'");
    Value hi = parse_constant();
    return range_domain(lo.as_int(), hi.as_int());
  }

 private:
  Value parse_constant() {
    bool negative = cur_->accept(TokenKind::Minus);
    const Token& t = cur_->peek();
    if (t.kind == TokenKind::Number) {
      cur_->advance();
      return Value::integer(negative ? -t.number : t.number);
    }
    if (negative) parse_error(t, "expected a number after '-'");
    if (t.kind == TokenKind::String) {
      cur_->advance();
      return Value::string(t.text);
    }
    if (t.kind == TokenKind::Ident && (t.text == "TRUE" || t.text == "FALSE")) {
      cur_->advance();
      return Value::boolean(t.text == "TRUE");
    }
    parse_error(t, "expected a constant");
  }

  Expr parse_equiv() {
    Expr lhs = parse_implies();
    while (cur_->accept(TokenKind::Equiv)) lhs = ex::equiv(lhs, parse_implies());
    return lhs;
  }

  Expr parse_implies() {
    Expr lhs = parse_or();
    if (cur_->accept(TokenKind::Implies)) return ex::implies(lhs, parse_implies());
    return lhs;
  }

  Expr parse_or() {
    Expr lhs = parse_and();
    if (!cur_->at(TokenKind::Or)) return lhs;
    std::vector<Expr> kids = {lhs};
    while (cur_->accept(TokenKind::Or)) kids.push_back(parse_and());
    return ex::lor(std::move(kids));
  }

  Expr parse_and() {
    Expr lhs = parse_not();
    if (!cur_->at(TokenKind::And)) return lhs;
    std::vector<Expr> kids = {lhs};
    while (cur_->accept(TokenKind::And)) kids.push_back(parse_not());
    return ex::land(std::move(kids));
  }

  Expr parse_not() {
    if (cur_->accept(TokenKind::Not)) return ex::lnot(parse_not());
    return parse_comparison();
  }

  Expr parse_comparison() {
    Expr lhs = parse_additive();
    switch (cur_->peek().kind) {
      case TokenKind::Eq:
        cur_->advance();
        return ex::eq(lhs, parse_additive());
      case TokenKind::Neq:
        cur_->advance();
        return ex::neq(lhs, parse_additive());
      case TokenKind::Lt:
        cur_->advance();
        return ex::lt(lhs, parse_additive());
      case TokenKind::Le:
        cur_->advance();
        return ex::le(lhs, parse_additive());
      case TokenKind::Gt:
        cur_->advance();
        return ex::gt(lhs, parse_additive());
      case TokenKind::Ge:
        cur_->advance();
        return ex::ge(lhs, parse_additive());
      default:
        return lhs;
    }
  }

  Expr parse_additive() {
    Expr lhs = parse_multiplicative();
    while (true) {
      if (cur_->accept(TokenKind::Plus)) {
        lhs = ex::add(lhs, parse_multiplicative());
      } else if (cur_->accept(TokenKind::Minus)) {
        lhs = ex::sub(lhs, parse_multiplicative());
      } else if (cur_->accept(TokenKind::ConcatOp)) {
        lhs = ex::concat(lhs, parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  Expr parse_multiplicative() {
    Expr lhs = parse_unary();
    while (true) {
      if (cur_->accept(TokenKind::Star)) {
        lhs = ex::mul(lhs, parse_unary());
      } else if (cur_->accept(TokenKind::Percent)) {
        lhs = ex::mod(lhs, parse_unary());
      } else {
        return lhs;
      }
    }
  }

  Expr parse_unary() {
    if (cur_->accept(TokenKind::Minus)) return ex::neg(parse_unary());
    return parse_postfix();
  }

  Expr parse_postfix() {
    Expr e = parse_atom();
    while (true) {
      if (cur_->accept(TokenKind::Prime)) {
        e = prime(e);
      } else if (cur_->accept(TokenKind::LBracket)) {
        e = ex::index(e, parse());
        cur_->expect(TokenKind::RBracket, "']'");
      } else {
        return e;
      }
    }
  }

  Expr parse_call(std::size_t arity_min, std::size_t arity_max, std::vector<Expr>& args) {
    cur_->expect(TokenKind::LParen, "'('");
    if (!cur_->at(TokenKind::RParen)) {
      do {
        args.push_back(parse());
      } while (cur_->accept(TokenKind::Comma));
    }
    cur_->expect(TokenKind::RParen, "')'");
    if (args.size() < arity_min || args.size() > arity_max) {
      parse_error(cur_->peek(), "wrong number of arguments");
    }
    return Expr();
  }

  Expr parse_quantifier(bool exists) {
    const Token& name = cur_->expect(TokenKind::Ident, "bound variable");
    cur_->expect(TokenKind::In, "'\\in'");
    Domain d = parse_domain();
    cur_->expect(TokenKind::Colon, "':'");
    locals_.push_back(name.text);
    Expr body = parse();  // quantifier body extends as far right as possible
    locals_.pop_back();
    return exists ? ex::exists_val(name.text, std::move(d), std::move(body))
                  : ex::forall_val(name.text, std::move(d), std::move(body));
  }

  Expr parse_atom() {
    const Token& t = cur_->peek();
    switch (t.kind) {
      case TokenKind::Number:
        cur_->advance();
        return ex::integer(t.number);
      case TokenKind::String:
        cur_->advance();
        return ex::str(t.text);
      case TokenKind::LParen: {
        cur_->advance();
        Expr e = parse();
        cur_->expect(TokenKind::RParen, "')'");
        return e;
      }
      case TokenKind::LTuple: {
        cur_->advance();
        std::vector<Expr> kids;
        if (!cur_->at(TokenKind::RTuple)) {
          do {
            kids.push_back(parse());
          } while (cur_->accept(TokenKind::Comma));
        }
        cur_->expect(TokenKind::RTuple, "'>>'");
        return ex::make_tuple(std::move(kids));
      }
      case TokenKind::Exists:
        cur_->advance();
        return parse_quantifier(/*exists=*/true);
      case TokenKind::Forall:
        cur_->advance();
        return parse_quantifier(/*exists=*/false);
      case TokenKind::Ident:
        break;  // handled below
      default:
        parse_error(t, "expected an expression");
    }

    const std::string name = t.text;
    cur_->advance();

    if (name == "TRUE") return ex::top();
    if (name == "FALSE") return ex::bottom();
    if (name == "IF") {
      Expr cond = parse();
      const Token& then_tok = cur_->expect(TokenKind::Ident, "'THEN'");
      if (then_tok.text != "THEN") parse_error(then_tok, "expected 'THEN'");
      Expr then_e = parse();
      const Token& else_tok = cur_->expect(TokenKind::Ident, "'ELSE'");
      if (else_tok.text != "ELSE") parse_error(else_tok, "expected 'ELSE'");
      return ex::ite(std::move(cond), std::move(then_e), parse());
    }
    if (name == "Head" || name == "Tail" || name == "Len" || name == "ENABLED") {
      std::vector<Expr> args;
      parse_call(1, 1, args);
      if (name == "Head") return ex::head(args[0]);
      if (name == "Tail") return ex::tail(args[0]);
      if (name == "Len") return ex::len(args[0]);
      return ex::enabled(args[0]);
    }
    if (name == "Append") {
      std::vector<Expr> args;
      parse_call(2, 2, args);
      return ex::append(args[0], args[1]);
    }
    if (name == "UNCHANGED") {
      // UNCHANGED <<v1, ..., vn>> or UNCHANGED v.
      std::vector<VarId> vs;
      if (cur_->accept(TokenKind::LTuple)) {
        do {
          const Token& v = cur_->expect(TokenKind::Ident, "variable");
          vs.push_back(resolve_var(v));
        } while (cur_->accept(TokenKind::Comma));
        cur_->expect(TokenKind::RTuple, "'>>'");
      } else {
        const Token& v = cur_->expect(TokenKind::Ident, "variable");
        vs.push_back(resolve_var(v));
      }
      return ex::unchanged(vs);
    }

    // Bound local?
    if (std::find(locals_.rbegin(), locals_.rend(), name) != locals_.rend()) {
      return ex::local(name);
    }
    // Definition macro?
    if (defs_ != nullptr) {
      auto it = defs_->find(name);
      if (it != defs_->end()) return it->second;
    }
    // Flexible variable.
    std::optional<VarId> id = vars_->find(name);
    if (!id) parse_error(t, "unknown identifier '" + name + "'");
    return ex::var(*id);
  }

  VarId resolve_var(const Token& t) {
    std::optional<VarId> id = vars_->find(t.text);
    if (!id) parse_error(t, "unknown variable '" + t.text + "'");
    return *id;
  }

  Cursor* cur_;
  const VarTable* vars_;
  const std::map<std::string, Expr>* defs_;
  std::vector<std::string> locals_;
};

std::vector<Token> strip_newlines(std::vector<Token> tokens) {
  tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                              [](const Token& t) { return t.kind == TokenKind::Newline; }),
               tokens.end());
  return tokens;
}

}  // namespace

Expr parse_expression(const std::string& src, const VarTable& vars,
                      const std::map<std::string, Expr>* definitions) {
  Cursor cur(strip_newlines(tokenize(src)));
  ExprParser parser(cur, vars, definitions);
  Expr e = parser.parse();
  if (!cur.done()) parse_error(cur.peek(), "trailing input");
  return e;
}

namespace {

const std::set<std::string> kStatementKeywords = {
    "MODULE", "VARIABLE", "VARIABLES", "HIDDEN",    "DEFINE",
    "INIT",   "ACTION",   "NEXT",      "SUBSCRIPT", "FAIRNESS", "DISJOINT"};

/// One statement: keyword plus its newline-free token slice.
struct Statement {
  Token keyword;
  std::vector<Token> body;
};

std::vector<Statement> split_statements(const std::vector<Token>& tokens) {
  std::vector<Statement> out;
  bool at_line_start = true;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::Newline) {
      at_line_start = true;
      continue;
    }
    if (t.kind == TokenKind::End) break;
    if (at_line_start && t.kind == TokenKind::Ident && kStatementKeywords.contains(t.text)) {
      out.push_back({t, {}});
    } else {
      if (out.empty()) parse_error(t, "expected a statement keyword (e.g. MODULE)");
      out.back().body.push_back(t);
    }
    at_line_start = false;
  }
  return out;
}

SourceLoc loc_of(const Token& t) { return SourceLoc{t.line, t.column}; }

/// Expression-tree bytes retained by a finished module, for the parser
/// memory domain. One shared visited set across all trees, so subtrees
/// macro-spliced into several places count exactly once.
std::uint64_t module_tree_bytes(const ParsedModule& mod) {
  std::unordered_set<const ExprNode*> seen;
  std::uint64_t bytes = 0;
  for (const auto& [name, body] : mod.definitions) bytes += expr_deep_bytes(body, seen);
  bytes += expr_deep_bytes(mod.spec.init, seen);
  bytes += expr_deep_bytes(mod.spec.next, seen);
  for (const Fairness& f : mod.spec.fairness) bytes += expr_deep_bytes(f.action, seen);
  return bytes;
}

}  // namespace

ParsedModule parse_module(const std::string& src, std::shared_ptr<VarTable> shared_vars) {
  ParsedModule mod;
  mod.vars = shared_vars ? std::move(shared_vars) : std::make_shared<VarTable>();
  std::vector<Statement> statements = split_statements(tokenize(src));

  Expr next;
  std::vector<VarId> subscript;
  std::vector<std::vector<VarId>> disjoint_tuples;
  bool have_disjoint = false;
  bool have_subscript = false;
  std::vector<std::pair<bool, std::vector<Token>>> fairness_bodies;  // (is_strong, body)
  std::vector<VarId> hidden;

  // Pass 1: declarations (so expressions can refer to any variable).
  for (const Statement& st : statements) {
    const std::string& kw = st.keyword.text;
    if (kw == "MODULE") {
      if (st.body.size() != 1 || st.body[0].kind != TokenKind::Ident) {
        parse_error(st.keyword, "MODULE expects a name");
      }
      mod.name = st.body[0].text;
      mod.locs.module_kw = loc_of(st.keyword);
    } else if (kw == "VARIABLE" || kw == "VARIABLES" || kw == "HIDDEN") {
      Cursor cur(st.body);
      do {
        const Token& name = cur.expect(TokenKind::Ident, "variable name");
        cur.expect(TokenKind::In, "'\\in' and a domain");
        ExprParser dp(cur, *mod.vars, nullptr);
        Domain domain = dp.parse_domain();
        VarId id;
        if (std::optional<VarId> existing = mod.vars->find(name.text)) {
          // Shared universe: re-declarations must agree on the domain.
          if (!(mod.vars->domain(*existing) == domain)) {
            parse_error(name, "variable '" + name.text +
                                  "' re-declared with a different domain");
          }
          id = *existing;
        } else {
          id = mod.vars->declare(name.text, std::move(domain));
        }
        if (std::find(mod.declared.begin(), mod.declared.end(), id) == mod.declared.end()) {
          mod.declared.push_back(id);
        }
        mod.locs.variables.emplace(id, loc_of(name));
        if (kw == "HIDDEN") hidden.push_back(id);
      } while (cur.accept(TokenKind::Comma));
      if (!cur.done()) parse_error(cur.peek(), "trailing input after declaration");
    }
  }

  // Pass 2: definitions and spec parts, in order (macros see earlier ones).
  for (const Statement& st : statements) {
    const std::string& kw = st.keyword.text;
    if (kw == "MODULE" || kw == "VARIABLE" || kw == "VARIABLES" || kw == "HIDDEN") continue;

    Cursor cur(st.body);
    if (kw == "DEFINE" || kw == "ACTION") {
      const Token& name = cur.expect(TokenKind::Ident, "definition name");
      cur.expect(TokenKind::DefEq, "'=='");
      ExprParser parser(cur, *mod.vars, &mod.definitions);
      Expr body = parser.parse();
      if (!cur.done()) parse_error(cur.peek(), "trailing input in definition");
      mod.definitions.emplace(name.text, std::move(body));
      mod.locs.definitions.emplace(name.text, loc_of(name));
      if (kw == "ACTION") mod.action_names.push_back(name.text);
    } else if (kw == "INIT") {
      mod.locs.init = loc_of(st.keyword);
      ExprParser parser(cur, *mod.vars, &mod.definitions);
      mod.spec.init = parser.parse();
      if (!cur.done()) parse_error(cur.peek(), "trailing input after INIT");
    } else if (kw == "NEXT") {
      mod.locs.next = loc_of(st.keyword);
      ExprParser parser(cur, *mod.vars, &mod.definitions);
      next = parser.parse();
      if (!cur.done()) parse_error(cur.peek(), "trailing input after NEXT");
    } else if (kw == "SUBSCRIPT") {
      mod.locs.subscript = loc_of(st.keyword);
      cur.expect(TokenKind::LTuple, "'<<'");
      if (!cur.at(TokenKind::RTuple)) {
        do {
          const Token& v = cur.expect(TokenKind::Ident, "variable");
          std::optional<VarId> id = mod.vars->find(v.text);
          if (!id) parse_error(v, "unknown variable '" + v.text + "'");
          subscript.push_back(*id);
        } while (cur.accept(TokenKind::Comma));
      }
      cur.expect(TokenKind::RTuple, "'>>'");
      have_subscript = true;
    } else if (kw == "DISJOINT") {
      mod.locs.disjoint = loc_of(st.keyword);
      have_disjoint = true;
      do {
        cur.expect(TokenKind::LTuple, "'<<'");
        std::vector<VarId> tuple;
        if (!cur.at(TokenKind::RTuple)) {
          do {
            const Token& v = cur.expect(TokenKind::Ident, "variable");
            std::optional<VarId> id = mod.vars->find(v.text);
            if (!id) parse_error(v, "unknown variable '" + v.text + "'");
            tuple.push_back(*id);
          } while (cur.accept(TokenKind::Comma));
        }
        cur.expect(TokenKind::RTuple, "'>>'");
        disjoint_tuples.push_back(std::move(tuple));
      } while (cur.accept(TokenKind::Comma));
      if (!cur.done()) parse_error(cur.peek(), "trailing input after DISJOINT");
    } else if (kw == "FAIRNESS") {
      const Token& kind = cur.expect(TokenKind::Ident, "'WF' or 'SF'");
      if (kind.text != "WF" && kind.text != "SF") parse_error(kind, "expected 'WF' or 'SF'");
      std::vector<Token> rest;
      while (!cur.done()) rest.push_back(cur.advance());
      fairness_bodies.emplace_back(kind.text == "SF", std::move(rest));
      mod.locs.fairness.push_back(loc_of(st.keyword));
    }
  }

  if (have_disjoint) {
    if (!mod.spec.init.is_null() || !next.is_null() || !fairness_bodies.empty()) {
      throw std::runtime_error("a DISJOINT module cannot also have INIT/NEXT/FAIRNESS");
    }
    mod.spec = make_disjoint(disjoint_tuples, mod.name.empty() ? "Disjoint" : mod.name);
    mod.disjoint_tuples = std::move(disjoint_tuples);
    OPENTLA_OBS_MEM_TALLY_ADD(mod.mem, module_tree_bytes(mod));
    return mod;
  }
  if (mod.spec.init.is_null()) throw std::runtime_error("module has no INIT");
  if (next.is_null()) throw std::runtime_error("module has no NEXT");
  mod.spec.name = mod.name.empty() ? "Spec" : mod.name;
  mod.spec.next = std::move(next);
  mod.spec.hidden = hidden;
  if (!have_subscript) {
    subscript = mod.vars->all_vars();
  } else {
    for (VarId h : hidden) {
      if (std::find(subscript.begin(), subscript.end(), h) == subscript.end()) {
        subscript.push_back(h);
      }
    }
  }
  mod.spec.sub = std::move(subscript);

  for (auto& [is_strong, body] : fairness_bodies) {
    Cursor cur(body);
    Fairness f;
    f.kind = is_strong ? Fairness::Kind::Strong : Fairness::Kind::Weak;
    // Optional <<subscript>> before the action; defaults to the spec's.
    if (cur.at(TokenKind::LTuple)) {
      cur.advance();
      do {
        const Token& v = cur.expect(TokenKind::Ident, "variable");
        std::optional<VarId> id = mod.vars->find(v.text);
        if (!id) parse_error(v, "unknown variable '" + v.text + "'");
        f.sub.push_back(*id);
      } while (cur.accept(TokenKind::Comma));
      cur.expect(TokenKind::RTuple, "'>>'");
    } else {
      f.sub = mod.spec.sub;
    }
    ExprParser parser(cur, *mod.vars, &mod.definitions);
    f.action = parser.parse();
    if (!cur.done()) parse_error(cur.peek(), "trailing input after FAIRNESS");
    f.label = std::string(is_strong ? "SF" : "WF");
    mod.spec.fairness.push_back(std::move(f));
  }

  OPENTLA_OBS_MEM_TALLY_ADD(mod.mem, module_tree_bytes(mod));
  return mod;
}

}  // namespace opentla
