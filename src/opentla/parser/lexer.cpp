#include "opentla/parser/lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace opentla {

namespace {
[[noreturn]] void lex_error(std::size_t line, std::size_t col, const std::string& msg) {
  throw std::runtime_error("lex error at " + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + msg);
}
}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::size_t line = 1;
  std::size_t col = 1;

  auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  };
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  // Position of the token currently being scanned; emit() stamps tokens
  // with their start, not the cursor position after the text.
  std::size_t tok_line = 1;
  std::size_t tok_col = 1;
  auto emit = [&](TokenKind kind, std::string text, std::int64_t number = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.number = number;
    t.line = tok_line;
    t.column = tok_col;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    tok_line = line;
    tok_col = col;
    const char c = peek();
    if (c == '\n') {
      // Collapse runs of newlines into one token.
      if (out.empty() || out.back().kind != TokenKind::Newline) emit(TokenKind::Newline, "\n");
      advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // \* comment to end of line
    if (c == '\\' && peek(1) == '*') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        num.push_back(peek());
        advance();
      }
      emit(TokenKind::Number, num, std::stoll(num));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
             (peek() == '.' && peek(1) != '.')) {
        ident.push_back(peek());
        advance();
      }
      emit(TokenKind::Ident, ident);
      continue;
    }
    if (c == '"') {
      advance();
      std::string s;
      while (peek() != '"') {
        if (peek() == '\0' || peek() == '\n') lex_error(line, col, "unterminated string");
        s.push_back(peek());
        advance();
      }
      advance();
      emit(TokenKind::String, s);
      continue;
    }
    switch (c) {
      case '/':
        if (peek(1) == '\\') {
          emit(TokenKind::And, "/\\");
          advance(2);
          continue;
        }
        lex_error(line, col, "unexpected '/'");
      case '\\':
        if (peek(1) == '/') {
          emit(TokenKind::Or, "\\/");
          advance(2);
          continue;
        }
        if (peek(1) == 'o' && !std::isalnum(static_cast<unsigned char>(peek(2)))) {
          emit(TokenKind::ConcatOp, "\\o");
          advance(2);
          continue;
        }
        if (peek(1) == 'E') {
          emit(TokenKind::Exists, "\\E");
          advance(2);
          continue;
        }
        if (peek(1) == 'A') {
          emit(TokenKind::Forall, "\\A");
          advance(2);
          continue;
        }
        if (src.compare(i, 3, "\\in") == 0) {
          emit(TokenKind::In, "\\in");
          advance(3);
          continue;
        }
        lex_error(line, col, "unexpected '\\'");
      case '~':
        emit(TokenKind::Not, "~");
        advance();
        continue;
      case '=':
        if (peek(1) == '>') {
          emit(TokenKind::Implies, "=>");
          advance(2);
          continue;
        }
        if (peek(1) == '=') {
          emit(TokenKind::DefEq, "==");
          advance(2);
          continue;
        }
        emit(TokenKind::Eq, "=");
        advance();
        continue;
      case '#':
        emit(TokenKind::Neq, "#");
        advance();
        continue;
      case '<':
        if (peek(1) == '=' && peek(2) == '>') {
          emit(TokenKind::Equiv, "<=>");
          advance(3);
          continue;
        }
        if (peek(1) == '=') {
          emit(TokenKind::Le, "<=");
          advance(2);
          continue;
        }
        if (peek(1) == '<') {
          emit(TokenKind::LTuple, "<<");
          advance(2);
          continue;
        }
        emit(TokenKind::Lt, "<");
        advance();
        continue;
      case '>':
        if (peek(1) == '>') {
          emit(TokenKind::RTuple, ">>");
          advance(2);
          continue;
        }
        if (peek(1) == '=') {
          emit(TokenKind::Ge, ">=");
          advance(2);
          continue;
        }
        emit(TokenKind::Gt, ">");
        advance();
        continue;
      case '+':
        emit(TokenKind::Plus, "+");
        advance();
        continue;
      case '-':
        emit(TokenKind::Minus, "-");
        advance();
        continue;
      case '*':
        emit(TokenKind::Star, "*");
        advance();
        continue;
      case '%':
        emit(TokenKind::Percent, "%");
        advance();
        continue;
      case '[':
        emit(TokenKind::LBracket, "[");
        advance();
        continue;
      case ']':
        emit(TokenKind::RBracket, "]");
        advance();
        continue;
      case '\'':
        emit(TokenKind::Prime, "'");
        advance();
        continue;
      case '(':
        emit(TokenKind::LParen, "(");
        advance();
        continue;
      case ')':
        emit(TokenKind::RParen, ")");
        advance();
        continue;
      case '{':
        emit(TokenKind::LBrace, "{");
        advance();
        continue;
      case '}':
        emit(TokenKind::RBrace, "}");
        advance();
        continue;
      case ',':
        emit(TokenKind::Comma, ",");
        advance();
        continue;
      case ':':
        emit(TokenKind::Colon, ":");
        advance();
        continue;
      case '.':
        if (peek(1) == '.') {
          emit(TokenKind::DotDot, "..");
          advance(2);
          continue;
        }
        lex_error(line, col, "unexpected '.'");
      default:
        lex_error(line, col, std::string("unexpected character '") + c + "'");
    }
  }
  tok_line = line;
  tok_col = col;
  emit(TokenKind::End, "");
  return out;
}

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::End: return "<end>";
    case TokenKind::Ident: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::String: return "string";
    case TokenKind::And: return "/\\";
    case TokenKind::Or: return "\\/";
    case TokenKind::Not: return "~";
    case TokenKind::Implies: return "=>";
    case TokenKind::Equiv: return "<=>";
    case TokenKind::Eq: return "=";
    case TokenKind::Neq: return "#";
    case TokenKind::Lt: return "<";
    case TokenKind::Le: return "<=";
    case TokenKind::Gt: return ">";
    case TokenKind::Ge: return ">=";
    case TokenKind::Plus: return "+";
    case TokenKind::Minus: return "-";
    case TokenKind::Star: return "*";
    case TokenKind::Percent: return "%";
    case TokenKind::LBracket: return "[";
    case TokenKind::RBracket: return "]";
    case TokenKind::Prime: return "'";
    case TokenKind::LParen: return "(";
    case TokenKind::RParen: return ")";
    case TokenKind::LTuple: return "<<";
    case TokenKind::RTuple: return ">>";
    case TokenKind::LBrace: return "{";
    case TokenKind::RBrace: return "}";
    case TokenKind::Comma: return ",";
    case TokenKind::Colon: return ":";
    case TokenKind::DotDot: return "..";
    case TokenKind::ConcatOp: return "\\o";
    case TokenKind::Exists: return "\\E";
    case TokenKind::Forall: return "\\A";
    case TokenKind::In: return "\\in";
    case TokenKind::DefEq: return "==";
    case TokenKind::Newline: return "<newline>";
  }
  return "?";
}

}  // namespace opentla
