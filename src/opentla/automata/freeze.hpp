// opentla/automata/freeze.hpp
//
// The freeze operator F_{+v} (Section 4.1): a behavior satisfies F_{+v}
// iff either it satisfies F, or F holds for its first n states and the
// state function v never changes from the (n+1)st state on.
//
// As a safety machine over prefixes: alongside the inner machine for F we
// track a single "frozen" bit. All surviving frozen branches necessarily
// agree that v equals its value in the current state (a frozen branch dies
// the moment v changes), so one bit suffices:
//
//   frozen after <s>              =  TRUE   (n = 0 vacuously holds)
//   frozen after step <.., s, t>  =  alive(inner before step)   [freeze now]
//                                    \/ (frozen /\ v(t) = v(s)) [stay frozen]
//
// and the prefix satisfies F_{+v} iff the inner machine is alive or the
// frozen bit is set.

#pragma once

#include <memory>

#include "opentla/automata/prefix_machine.hpp"

namespace opentla {

class FreezeMachine final : public SafetyMachine {
 public:
  /// Wraps `inner` (the machine for a safety property F, typically C(E))
  /// with freeze tuple `v`. The tuple must consist of visible variables.
  FreezeMachine(std::shared_ptr<const SafetyMachine> inner, std::vector<VarId> v);

  Value initial(const State& s) const override;
  Value step(const Value& config, const State& s, const State& t) const override;
  bool alive(const Value& config) const override;
  std::string name() const override { return inner_->name() + "_plus"; }
  /// Movers draw hidden sources from the inner machine's configuration.
  Value mover_configs(const Value& config) const override {
    return inner_->mover_configs(config.as_tuple()[0]);
  }

  const std::vector<VarId>& freeze_tuple() const { return v_; }

 private:
  std::shared_ptr<const SafetyMachine> inner_;
  std::vector<VarId> v_;
};

}  // namespace opentla
