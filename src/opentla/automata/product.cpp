#include "opentla/automata/product.hpp"

#include "opentla/obs/obs.hpp"

namespace opentla {

ProductMachine::ProductMachine(std::vector<std::shared_ptr<const SafetyMachine>> factors)
    : factors_(std::move(factors)) {}

Value ProductMachine::initial(const State& s) const {
  Value::Tuple configs;
  configs.reserve(factors_.size());
  for (const auto& f : factors_) configs.push_back(f->initial(s));
  return Value::tuple(std::move(configs));
}

Value ProductMachine::step(const Value& config, const State& s, const State& t) const {
  OPENTLA_OBS_COUNT(ProductSteps);
  const Value::Tuple& parts = config.as_tuple();
  Value::Tuple configs;
  configs.reserve(factors_.size());
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    configs.push_back(factors_[i]->step(parts[i], s, t));
  }
  return Value::tuple(std::move(configs));
}

bool ProductMachine::alive(const Value& config) const {
  const Value::Tuple& parts = config.as_tuple();
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (!factors_[i]->alive(parts[i])) return false;
  }
  return true;
}

std::string ProductMachine::name() const {
  std::string out = "(";
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (i != 0) out += " /\\ ";
    out += factors_[i]->name();
  }
  return out + ")";
}

Value ProductMachine::factor_config(const Value& config, std::size_t i) const {
  return config.as_tuple()[i];
}

}  // namespace opentla
