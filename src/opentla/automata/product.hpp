// opentla/automata/product.hpp
//
// Product of safety machines: recognizes the conjunction of its factors.
// Parallel composition is conjunction in this framework (Section 1), so
// the product machine is literally the composition of the components'
// safety parts.

#pragma once

#include <memory>
#include <vector>

#include "opentla/automata/prefix_machine.hpp"

namespace opentla {

class ProductMachine final : public SafetyMachine {
 public:
  explicit ProductMachine(std::vector<std::shared_ptr<const SafetyMachine>> factors);

  Value initial(const State& s) const override;
  Value step(const Value& config, const State& s, const State& t) const override;
  bool alive(const Value& config) const override;
  std::string name() const override;

  std::size_t num_factors() const { return factors_.size(); }
  /// The configuration of one factor within a product configuration.
  Value factor_config(const Value& config, std::size_t i) const;
  const SafetyMachine& factor(std::size_t i) const { return *factors_[i]; }

 private:
  std::vector<std::shared_ptr<const SafetyMachine>> factors_;
};

}  // namespace opentla
