// opentla/automata/prefix_machine.hpp
//
// Prefix machines: deciders for "F holds for the first n states of sigma"
// (Section 2.4). For a canonical safety specification
//
//     F  ==  EE x : Init /\ [][N]_v
//
// a finite behavior satisfies F iff some assignment of values to the hidden
// variables x extends it to a run; the machine tracks the *set* of possible
// hidden assignments (a subset construction). The machine is the engine
// behind closure C(F), the while-plus operator E +> M, the freeze operator
// F_{+v}, and orthogonality — every operator the paper defines via "holds
// for the first n states".
//
// Because [][N]_v admits stuttering, a finite behavior with a nonempty
// configuration always extends to an infinite one (stutter forever), so
// "configuration nonempty" is exactly prefix satisfaction of the safety
// part; and an infinite behavior keeps a nonempty configuration forever iff
// it satisfies C(F) (Koenig's lemma over the finitely-branching run tree).
//
// Configurations are encoded as Values (a sorted tuple of hidden-value
// assignments) so that products and explorer hash tables work uniformly.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "opentla/expr/analysis.hpp"
#include "opentla/state/state.hpp"
#include "opentla/state/var_table.hpp"
#include "opentla/tla/spec.hpp"
#include "opentla/vm/interp.hpp"

namespace opentla {

/// Interface of a safety machine over a universe of states: feed it the
/// states of a behavior one step at a time; `alive` says whether the prefix
/// read so far satisfies the property.
class SafetyMachine {
 public:
  virtual ~SafetyMachine() = default;
  /// Configuration after reading the one-state prefix <s>.
  virtual Value initial(const State& s) const = 0;
  /// Configuration after extending a prefix ending in s by the state t.
  virtual Value step(const Value& config, const State& s, const State& t) const = 0;
  /// True iff the prefix read so far satisfies the property.
  virtual bool alive(const Value& config) const = 0;
  virtual std::string name() const = 0;
  /// The tuple of hidden-variable assignments movers may draw source
  /// values from. For a plain prefix machine this is the configuration
  /// itself; wrappers (e.g. the freeze transform) project out their inner
  /// machine's assignments.
  virtual Value mover_configs(const Value& config) const { return config; }
};

/// Prefix machine of the safety part of a canonical specification. The
/// fairness conjuncts are ignored; by Proposition 1 this machine recognizes
/// C(spec) whenever the spec is machine-closed (see check/machine_closure).
class PrefixMachine final : public SafetyMachine {
 public:
  /// `spec`'s variables (including hidden ones) must belong to `vars`.
  /// Hidden entries of the states fed to the machine are ignored; the
  /// machine carries its own hidden assignments in the configuration.
  PrefixMachine(const VarTable& vars, CanonicalSpec spec);

  Value initial(const State& s) const override;
  Value step(const Value& config, const State& s, const State& t) const override;
  bool alive(const Value& config) const override;
  std::string name() const override { return spec_.name; }

  const CanonicalSpec& spec() const { return spec_; }

  /// Largest configuration cardinality observed (diagnostic: how
  /// nondeterministic the subset construction got).
  std::size_t max_config_size() const { return max_config_; }

 private:
  struct Disjunct {
    ActionDisjunct parts;
    std::vector<VarId> hidden_free;  // hidden vars not assigned by this disjunct
    /// Pruned-search schedule over hidden_free: residual conjuncts fire as
    /// soon as their hidden variables are bound (visible primed variables
    /// are already fixed by the given successor t).
    ResidualSchedule hidden_sched;
    /// Bytecode lowered at construction, paired index-for-index with
    /// parts.guards / parts.assignments / parts.residual (see the same
    /// scheme in ActionSuccessors::CompiledDisjunct).
    std::vector<vm::CompiledExpr> guards;
    std::vector<vm::CompiledExpr> rhs;
    std::vector<vm::CompiledExpr> residual;
  };

  State compose(const State& visible, const Value& hidden_vals) const;
  void hidden_successors(const State& s_full, const State& t,
                         const std::function<void(Value)>& emit) const;

  const VarTable* vars_;
  CanonicalSpec spec_;
  std::vector<char> is_hidden_;       // indexed by VarId
  std::vector<VarId> visible_sub_;    // subscript vars that are not hidden
  std::vector<VarId> hidden_sub_;     // subscript vars that are hidden
  std::vector<Disjunct> disjuncts_;
  mutable std::size_t max_config_ = 0;
};

/// Encodes a set of hidden-assignment tuples as a configuration Value.
Value encode_config(std::vector<Value> assignments);
/// The dead configuration (empty set).
Value dead_config();

}  // namespace opentla
