#include "opentla/automata/prefix_machine.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "opentla/expr/eval.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/state/state_space.hpp"

namespace opentla {

Value encode_config(std::vector<Value> assignments) {
  std::sort(assignments.begin(), assignments.end());
  assignments.erase(std::unique(assignments.begin(), assignments.end()), assignments.end());
  return Value::tuple(std::move(assignments));
}

Value dead_config() { return Value::tuple({}); }

PrefixMachine::PrefixMachine(const VarTable& vars, CanonicalSpec spec)
    : vars_(&vars), spec_(std::move(spec)), is_hidden_(vars.size(), 0) {
  for (VarId v : spec_.hidden) is_hidden_[v] = 1;
  for (VarId v : spec_.sub) {
    (is_hidden_[v] ? hidden_sub_ : visible_sub_).push_back(v);
  }
  // Canonical form (Section 2.2) has v = <m, x>: every hidden variable is
  // part of the subscript. The stuttering branch below relies on this (a
  // [N]_v stutter pins the hidden assignment).
  if (hidden_sub_.size() != spec_.hidden.size()) {
    throw std::runtime_error("PrefixMachine: spec '" + spec_.name +
                             "' has hidden variables outside its subscript");
  }
  for (ActionDisjunct& d : decompose_action(spec_.next)) {
    Disjunct cd;
    cd.parts = std::move(d);
    std::vector<char> assigned(vars.size(), 0);
    for (const auto& [v, rhs] : cd.parts.assignments) assigned[v] = 1;
    for (VarId v : spec_.hidden) {
      if (!assigned[v]) cd.hidden_free.push_back(v);
    }
    cd.hidden_sched = schedule_residual(cd.parts.residual_needs, cd.hidden_free);
    for (const Expr& g : cd.parts.guards) cd.guards.emplace_back(g);
    for (const auto& [v, rhs] : cd.parts.assignments) cd.rhs.emplace_back(rhs);
    for (const Expr& r : cd.parts.residual) cd.residual.emplace_back(r);
    disjuncts_.push_back(std::move(cd));
  }
}

State PrefixMachine::compose(const State& visible, const Value& hidden_vals) const {
  State out = visible;
  const Value::Tuple& h = hidden_vals.as_tuple();
  for (std::size_t i = 0; i < spec_.hidden.size(); ++i) out[spec_.hidden[i]] = h[i];
  return out;
}

Value PrefixMachine::initial(const State& s) const {
  std::vector<Value> alive_assignments;
  StateSpace space(*vars_);
  space.for_each_completion(s, spec_.hidden, [&](const State& full) {
    if (eval_pred(spec_.init, *vars_, full)) {
      Value::Tuple h;
      h.reserve(spec_.hidden.size());
      for (VarId v : spec_.hidden) h.push_back(full[v]);
      alive_assignments.push_back(Value::tuple(std::move(h)));
    }
    return false;
  });
  Value config = encode_config(std::move(alive_assignments));
  max_config_ = std::max(max_config_, config.length());
  OPENTLA_OBS_GAUGE_MAX(PeakConfigurationCount, config.length());
  return config;
}

void PrefixMachine::hidden_successors(const State& s_full, const State& t,
                                      const std::function<void(Value)>& emit) const {
  StateSpace space(*vars_);
  // One scratch context per call; emission order across disjuncts changes
  // with the schedule, but configurations are sorted sets (encode_config),
  // so only the set of emissions matters here.
  vm::VmContext ctx;
  ctx.vars = vars_;
  ctx.current = &s_full;
  for (const Disjunct& cd : disjuncts_) {
    ctx.next = nullptr;

    bool feasible = true;
    for (const vm::CompiledExpr& g : cd.guards) {
      if (!g.eval_bool(ctx)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    // Assignments either pin a hidden variable of the successor or must
    // agree with the given visible successor t.
    State t_full = t;
    for (std::size_t i = 0; i < cd.parts.assignments.size(); ++i) {
      const VarId v = cd.parts.assignments[i].first;
      Value val = cd.rhs[i].eval(ctx);
      if (is_hidden_[v]) {
        if (!vars_->domain(v).contains(val)) {
          feasible = false;
          break;
        }
        t_full[v] = std::move(val);
      } else if (!(t[v] == val)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    space.for_each_completion_pruned(
        t_full, cd.hidden_sched,
        [&](std::size_t i, const State& cand) {
          ctx.next = &cand;
          return cd.residual[i].eval_bool(ctx);
        },
        [&](const State& cand) {
          Value::Tuple h;
          h.reserve(spec_.hidden.size());
          for (VarId v : spec_.hidden) h.push_back(cand[v]);
          emit(Value::tuple(std::move(h)));
          return false;
        });
  }
}

Value PrefixMachine::step(const Value& config, const State& s, const State& t) const {
  OPENTLA_OBS_COUNT_N(ConfigsExpanded, config.length());
  std::vector<Value> next_assignments;
  const bool visible_stutter = !changes_tuple(visible_sub_, s, t);
  for (const Value& h : config.as_tuple()) {
    // Stuttering branch of [N]_v: the whole subscript (visible and hidden
    // parts) is unchanged, which the choice h' = h realizes.
    if (visible_stutter) next_assignments.push_back(h);
    const State s_full = compose(s, h);
    hidden_successors(s_full, t,
                      [&](Value h_next) { next_assignments.push_back(std::move(h_next)); });
  }
  Value next = encode_config(std::move(next_assignments));
  max_config_ = std::max(max_config_, next.length());
  OPENTLA_OBS_GAUGE_MAX(PeakConfigurationCount, next.length());
  return next;
}

bool PrefixMachine::alive(const Value& config) const { return config.length() > 0; }

}  // namespace opentla
