#include "opentla/automata/freeze.hpp"

#include "opentla/obs/obs.hpp"

namespace opentla {

FreezeMachine::FreezeMachine(std::shared_ptr<const SafetyMachine> inner, std::vector<VarId> v)
    : inner_(std::move(inner)), v_(std::move(v)) {}

Value FreezeMachine::initial(const State& s) const {
  // n = 0: "F holds for the first 0 states" is vacuous, so a behavior whose
  // v never changes from the first state on satisfies F_{+v} regardless of F.
  return Value::tuple({inner_->initial(s), Value::boolean(true)});
}

Value FreezeMachine::step(const Value& config, const State& s, const State& t) const {
  OPENTLA_OBS_COUNT(FreezeSteps);
  const Value::Tuple& parts = config.as_tuple();
  const Value& inner_before = parts[0];
  const bool frozen_before = parts[1].as_bool();
  const bool can_freeze_now = inner_->alive(inner_before);
  const bool stays_frozen = frozen_before && !changes_tuple(v_, s, t);
  return Value::tuple(
      {inner_->step(inner_before, s, t), Value::boolean(can_freeze_now || stays_frozen)});
}

bool FreezeMachine::alive(const Value& config) const {
  const Value::Tuple& parts = config.as_tuple();
  return inner_->alive(parts[0]) || parts[1].as_bool();
}

}  // namespace opentla
