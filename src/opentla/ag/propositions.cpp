#include "opentla/ag/propositions.hpp"

#include <algorithm>
#include <set>

#include "opentla/check/machine_closure.hpp"
#include "opentla/expr/analysis.hpp"

namespace opentla {

Prop1Result prop1_closure(const CanonicalSpec& spec) {
  Prop1Result result;
  result.obligation.id = "Prop1[" + spec.name + "]";
  result.obligation.description =
      "C(" + spec.name + ") = Init /\\ [][N]_v  (machine closure)";
  result.obligation.method = "prop1-syntactic";
  MachineClosureResult mc = check_prop1_syntactic(spec);
  result.obligation.discharged = mc.machine_closed;
  result.obligation.detail = mc.detail;
  result.closure = spec.safety_part();
  return result;
}

Obligation prop2_side_conditions(const VarTable& vars,
                                 const std::vector<const CanonicalSpec*>& specs,
                                 const CanonicalSpec& m) {
  Obligation ob;
  ob.id = "Prop2";
  ob.description = "hidden variables are private to their components";
  ob.method = "prop2-syntactic";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (VarId x : specs[i]->hidden) {
      for (std::size_t j = 0; j < specs.size(); ++j) {
        if (i == j) continue;
        if (spec_variables(*specs[j]).contains(x)) {
          ob.discharged = false;
          ob.detail = "hidden variable '" + vars.name(x) + "' of " + specs[i]->name +
                      " occurs in " + specs[j]->name;
          return ob;
        }
      }
      // x must not occur in M's formula except as M's own hidden variable.
      if (spec_variables(m).contains(x) &&
          std::find(m.hidden.begin(), m.hidden.end(), x) == m.hidden.end()) {
        ob.discharged = false;
        ob.detail = "hidden variable '" + vars.name(x) + "' of " + specs[i]->name +
                    " occurs free in " + m.name;
        return ob;
      }
    }
  }
  ob.discharged = true;
  ob.detail = "quantifiers commute with the closure implication (Proposition 2)";
  return ob;
}

Obligation prop3_side_condition(const VarTable& vars, const CanonicalSpec& m,
                                const std::vector<VarId>& v) {
  Obligation ob;
  ob.id = "Prop3-side";
  ob.description = "every variable of " + m.name + " occurs in the freeze tuple v";
  ob.method = "prop3-syntactic";
  for (VarId x : spec_variables(m)) {
    // Hidden variables are bound by the quantifier, not free in M.
    if (std::find(m.hidden.begin(), m.hidden.end(), x) != m.hidden.end()) continue;
    if (std::find(v.begin(), v.end(), x) == v.end()) {
      ob.discharged = false;
      ob.detail = "variable '" + vars.name(x) + "' of " + m.name + " is not in v";
      return ob;
    }
  }
  ob.discharged = true;
  return ob;
}

Obligation prop4_orthogonality(const VarTable& vars, const CanonicalSpec& e,
                               const std::vector<VarId>& e_out, const CanonicalSpec& m,
                               const std::vector<VarId>& m_out) {
  Obligation ob;
  ob.id = "Prop4[" + e.name + " _|_ " + m.name + "]";
  ob.description = "interleaving component specs are orthogonal";
  ob.method = "prop4-syntactic";
  // Side condition 1: output tuples are disjoint variable sets.
  for (VarId x : e_out) {
    if (std::find(m_out.begin(), m_out.end(), x) != m_out.end()) {
      ob.discharged = false;
      ob.detail = "output variable '" + vars.name(x) + "' shared by both components";
      return ob;
    }
  }
  // Side condition 2: each spec can only be falsified by changing its own
  // outputs (or hidden variables): its subscript is outputs + hidden.
  auto sub_is_out_plus_hidden = [](const CanonicalSpec& s, const std::vector<VarId>& out) {
    std::set<VarId> expect(out.begin(), out.end());
    expect.insert(s.hidden.begin(), s.hidden.end());
    return std::set<VarId>(s.sub.begin(), s.sub.end()) == expect;
  };
  if (!sub_is_out_plus_hidden(e, e_out)) {
    ob.discharged = false;
    ob.detail = e.name + "'s subscript is not its output tuple (plus hidden variables)";
    return ob;
  }
  if (!sub_is_out_plus_hidden(m, m_out)) {
    ob.discharged = false;
    ob.detail = m.name + "'s subscript is not its output tuple (plus hidden variables)";
    return ob;
  }
  // Side condition 3: closures computable by Proposition 1.
  if (!prop1_closure(e).obligation || !prop1_closure(m).obligation) {
    ob.discharged = false;
    ob.detail = "a component's closure is not syntactically computable (Proposition 1)";
    return ob;
  }
  ob.discharged = true;
  ob.detail = "under Disjoint(e, m) and the initial condition, no step falsifies both";
  return ob;
}

}  // namespace opentla
