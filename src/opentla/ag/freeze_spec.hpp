// opentla/ag/freeze_spec.hpp
//
// The explicit canonical form of the freeze operator (Section 4.1: "When E
// is a safety property in canonical form, it is easy to write E_{+v}
// explicitly"). For E = Init /\ [][N]_w, the formula E_{+v} equals
//
//   EE b :  /\ (~b /\ Init) \/ b
//           /\ [][ \/ ~b /\ ~b' /\ [N]_w     (still following E)
//                 \/ ~b /\ b'                (the freeze step; unconstrained)
//                 \/ b /\ b' /\ v' = v ]_u   (frozen: v pinned)
//
// where b is a fresh boolean history variable ("E has been abandoned") and
// u is the tuple <w, v, b>. The initial disjunct b = TRUE is the n = 0
// case (v constant from the very first state). This realization is
// verified against the semantic freeze machine by the test suite — the
// paper's claim that +v "can be expressed in terms of the primitives",
// made checkable.

#pragma once

#include "opentla/tla/spec.hpp"

namespace opentla {

/// Builds the explicit spec for E_{+v}. `flag` must be a fresh
/// boolean-domain variable of the universe, used as the hidden history
/// variable b. E must be a safety property (no fairness) whose hidden list
/// is empty (apply to closures of component assumptions, as the
/// Composition Theorem does).
CanonicalSpec freeze_spec(const CanonicalSpec& e, const std::vector<VarId>& v, VarId flag);

}  // namespace opentla
