// opentla/ag/composition_theorem.hpp
//
// The Composition Theorem (Section 5) as a mechanical verifier. To
// establish
//
//     |= /\_{j=1..n} (E_j +> M_j)  =>  (E +> M)
//
// it discharges, for i = 1..n,
//
//   (H1)   |= C(E) /\ /\_j C(M_j)        => E_i
//   (H2a)  |= C(E)_{+v} /\ /\_j C(M_j)   => C(M)
//   (H2b)  |= E /\ /\_j M_j              => M
//
// Closures are computed syntactically after verifying machine closure
// (Proposition 1); hidden variables are handled by the prefix machines'
// subset constructions (justified by Proposition 2, whose side conditions
// are checked). H1 and H2a are safety inclusions checked by product
// exploration (check/inclusion); the freeze operator of H2a is the
// machine transform of automata/freeze. H2b is a full (safety + liveness)
// implication checked on the explicit complete system (compose) against
// the goal guarantee under a refinement mapping (check/refinement), which
// supplies the witness for the goal's hidden variables — exactly the
// paper's "standard TLA reasoning using a simple refinement mapping".
//
// The refinement Corollary ((E +> M') => (E +> M) for safety E) is the
// n = 1 instance.

#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "opentla/ag/ag_spec.hpp"
#include "opentla/proof/report.hpp"
#include "opentla/run/budget.hpp"

namespace opentla {

struct CompositionOptions {
  /// The freeze tuple v of C(E)_{+v} in H2a. Empty: all universe variables
  /// that are hidden in no spec (the paper's <<i, o, z>> for the queues).
  std::vector<VarId> plus_tuple;
  /// Refinement witnesses for H2b, by high-variable name. Must cover the
  /// goal guarantee's hidden variables (e.g. the double queue's
  /// q |-> q2 \o buffer(z) \o q1); identically-named variables map to
  /// themselves.
  std::vector<std::pair<std::string, Expr>> goal_witness;
  /// Extra "free environment move" tuples for the product explorations:
  /// for each tuple, candidate steps setting exactly those variables to
  /// arbitrary values. Needed only when no component's action generates
  /// the steps some assumption permits.
  std::vector<std::vector<VarId>> free_tuples;
  /// OPTIONAL interleaving optimization. When nonempty, declares the
  /// output tuple of each component (aligned with the components vector;
  /// the goal assumption's outputs go in `env_outputs`). Candidate steps
  /// for component j then vary only its own outputs and hidden variables.
  /// SOUND ONLY when a Disjoint over exactly these tuples is among the
  /// components (simultaneous cross-component moves are then filtered
  /// anyway); with no such G conjunct, leave empty — the exploration stays
  /// exhaustive.
  std::vector<std::vector<VarId>> component_outputs;
  std::vector<VarId> env_outputs;
  std::size_t max_nodes = 1'000'000;
  std::size_t max_states = 2'000'000;
  /// Optional run budget (deadline / RSS / signal stop), polled by every
  /// exploration the verifier runs. On a breach the remaining obligations
  /// come back inconclusive instead of the run throwing. Not owned.
  run::RunBudget* budget = nullptr;
  /// Worker threads for the state-graph explorations (H2b's low graph and
  /// Proposition 3's R graph): 1 = serial, 0 = hardware concurrency. The
  /// verdicts and graphs are identical for every value (see ExploreOptions).
  unsigned threads = 1;
  /// Also verify H1/H2a's closure side conditions semantically on graphs
  /// (slower; default is the syntactic Proposition 1 check only).
  bool semantic_machine_closure = false;
};

/// Verifies the Composition Theorem instance
///     /\_j components[j]  =>  goal
/// over the single universe `vars` (which contains every variable,
/// including all hidden ones). Returns the full obligation report; the
/// conclusion holds iff report.all_discharged().
ProofReport verify_composition(const VarTable& vars, const std::vector<AGSpec>& components,
                               const AGSpec& goal, const CompositionOptions& opts = {});

/// The Corollary: |= (E +> M_low) => (E +> M_high) for a safety E, i.e.
/// refinement under a fixed environment assumption.
ProofReport verify_refinement_corollary(const VarTable& vars, const CanonicalSpec& assumption,
                                        const CanonicalSpec& low, const CanonicalSpec& high,
                                        const CompositionOptions& opts = {});

/// Inputs for the paper's own discharge of hypothesis 2(a) — Figure 9's
/// steps 2.1/2.2 — via Propositions 3 and 4 instead of the direct
/// freeze-product exploration:
///
///   2.2  |= C(E) /\ R => C(M)            (a plain product inclusion)
///   2.1  |= R => C(E) _|_ C(M)           (orthogonality: by Proposition 4's
///        side conditions, and checked semantically on R's behaviors)
///   side |= vars(M) within v             (Proposition 3's side condition)
///   =>   |= C(E)_{+v} /\ R => C(M)       (hypothesis 2(a))
///
/// where R = /\_j C(M_j). `env_outputs` / `guarantee_outputs` are the
/// output tuples e and m of the goal's environment and system components
/// (Proposition 4's interleaving shape).
struct Prop3Route {
  std::vector<VarId> env_outputs;
  std::vector<VarId> guarantee_outputs;
};

/// Returns the Figure-9-style obligations for H2a discharged by the
/// Proposition 3/4 route. All obligations discharged iff H2a holds by this
/// route (the route is sound but may be less complete than the direct
/// check when its side conditions fail).
std::vector<Obligation> discharge_h2a_via_prop3(const VarTable& vars,
                                                const std::vector<AGSpec>& components,
                                                const AGSpec& goal, const Prop3Route& route,
                                                const CompositionOptions& opts = {});

}  // namespace opentla
