#include "opentla/ag/freeze_spec.hpp"

#include <algorithm>
#include <stdexcept>

namespace opentla {

CanonicalSpec freeze_spec(const CanonicalSpec& e, const std::vector<VarId>& v, VarId flag) {
  if (!e.fairness.empty()) {
    throw std::runtime_error("freeze_spec: E must be a safety property (no fairness)");
  }
  if (!e.hidden.empty()) {
    throw std::runtime_error("freeze_spec: E must have no hidden variables");
  }

  const Expr b = ex::var(flag);
  const Expr b_next = ex::primed_var(flag);
  const Expr not_yet = ex::eq(b, ex::boolean(false));
  const Expr frozen = ex::eq(b, ex::boolean(true));
  const Expr stays_unfrozen = ex::eq(b_next, ex::boolean(false));
  const Expr freezes = ex::eq(b_next, ex::boolean(true));

  CanonicalSpec out;
  out.name = e.name + "_plus";
  out.init = ex::lor(ex::land(not_yet, e.init), frozen);
  out.next = ex::lor(
      // Still following E: an [N]_w step with the flag down.
      ex::land(not_yet, stays_unfrozen, e.box_step_action()),
      // The freeze step: the flag goes up; this step is unconstrained
      // ("v never changes from the (n+1)st state on" starts afterwards).
      ex::land(not_yet, freezes),
      // Frozen: v is pinned (and the flag stays up).
      ex::land(frozen, freezes, ex::eq(ex::primed_var_tuple(v), ex::var_tuple(v))));

  // Subscript: E's subscript plus v plus the flag, deduplicated.
  std::vector<VarId> sub = e.sub;
  sub.insert(sub.end(), v.begin(), v.end());
  sub.push_back(flag);
  std::sort(sub.begin(), sub.end());
  sub.erase(std::unique(sub.begin(), sub.end()), sub.end());
  out.sub = std::move(sub);
  out.hidden = {flag};
  return out;
}

}  // namespace opentla
