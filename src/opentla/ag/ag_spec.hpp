// opentla/ag/ag_spec.hpp
//
// Assumption/guarantee specifications E +> M (Section 3): the system
// guarantees M at least one step longer than the environment satisfies E.
// E and M are component specifications in canonical form (Section 2.2); in
// practice E is a safety property (the paper: "we write the environment
// assumption as a safety property") and M carries the fairness.
//
// `trivial_assumption` builds TRUE as a canonical spec, which turns a plain
// property G into the A/G specification TRUE +> G = G — how the paper
// threads the interleaving assumption G through the Composition Theorem
// (Section 5: "we just let M_1 equal G and E_1 equal true").

#pragma once

#include <string>

#include "opentla/tla/formula.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

struct AGSpec {
  CanonicalSpec assumption;  // E (safety: fairness must be empty)
  CanonicalSpec guarantee;   // M
  /// Whether M's next-state action generates candidate steps in product
  /// explorations. Set false for constraint-only guarantees such as
  /// Disjoint, whose action has no executable assignments.
  bool guarantee_is_mover = true;

  std::string name() const { return assumption.name + " +> " + guarantee.name; }
  /// The formula E +> M.
  Formula to_formula() const { return tf::while_plus(assumption, guarantee); }
};

/// The specification TRUE (Init = TRUE, [][TRUE]_<<>>, no fairness).
CanonicalSpec trivial_assumption();

/// G as an A/G spec: TRUE +> G (equal to G).
AGSpec property_as_ag(CanonicalSpec g, bool mover = false);

}  // namespace opentla
