// opentla/ag/propositions.hpp
//
// The paper's Propositions 1-4 as checkable reduction rules. Each returns
// an Obligation describing what was established (or why it failed), so the
// theorem verifier's reports read like the paper's proofs.
//
//   Proposition 1 (machine closure): if every fairness action implies N,
//     C(Init /\ [][N]_v /\ L) = Init /\ [][N]_v; the closure of a spec is
//     then computed syntactically by dropping L.
//
//   Proposition 2 (closure vs hiding): if the hidden tuples x_i are
//     pairwise disjoint and do not occur in the other specs,
//     |= /\ C(M_i) => EE x : C(M)  implies  |= /\ C(EE x_i : M_i) => C(EE x : M).
//     Operationally this is what justifies checking closures with prefix
//     machines that carry their own hidden assignments; the rule here
//     verifies the variable side conditions.
//
//   Proposition 3 (freeze elimination): for safety E, M, R with vars(M)
//     included in v:  |= E /\ R => M  and  |= R => (E _|_ M)  imply
//     |= E_{+v} /\ R => M. This is the paper's route for hypothesis 2(a);
//     `prop3_side_condition` checks the variable inclusion.
//
//   Proposition 4 (interleaving orthogonality): for interleaving component
//     specs E (outputs e) and M (outputs m),
//     |= (EE x: Init_E \/ EE y: Init_M) /\ Disjoint(e, m) => C(E) _|_ C(M).
//     `prop4` checks the side conditions (closures in canonical form via
//     Proposition 1, initial condition, output disjointness) and concludes
//     orthogonality.

#pragma once

#include <vector>

#include "opentla/proof/obligation.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

/// Proposition 1: returns the closure (the safety part) when the spec is
/// syntactically machine-closed; the obligation records the check.
struct Prop1Result {
  Obligation obligation;
  CanonicalSpec closure;
};
Prop1Result prop1_closure(const CanonicalSpec& spec);

/// Proposition 2's side conditions: each spec's hidden variables occur in
/// no other spec of `specs` (including the goal `m`).
Obligation prop2_side_conditions(const VarTable& vars,
                                 const std::vector<const CanonicalSpec*>& specs,
                                 const CanonicalSpec& m);

/// Proposition 3's side condition: every free variable of M is in v.
Obligation prop3_side_condition(const VarTable& vars, const CanonicalSpec& m,
                                const std::vector<VarId>& v);

/// Proposition 4: concludes C(E) _|_ C(M) for interleaving component specs
/// with output tuples `e_out` and `m_out`, given that Disjoint(e_out,
/// m_out) is among the behaviors considered. Checks the side conditions
/// syntactically; the semantic content (no step falsifies both) is
/// validated elsewhere by check_orthogonality when desired.
Obligation prop4_orthogonality(const VarTable& vars, const CanonicalSpec& e,
                               const std::vector<VarId>& e_out, const CanonicalSpec& m,
                               const std::vector<VarId>& m_out);

}  // namespace opentla
