#include "opentla/ag/ag_spec.hpp"

namespace opentla {

CanonicalSpec trivial_assumption() {
  CanonicalSpec spec;
  spec.name = "TRUE";
  spec.init = ex::top();
  spec.next = ex::top();
  // Empty subscript: [TRUE]_<<>> holds of every step.
  return spec;
}

AGSpec property_as_ag(CanonicalSpec g, bool mover) {
  AGSpec ag;
  ag.assumption = trivial_assumption();
  ag.guarantee = std::move(g);
  ag.guarantee_is_mover = mover;
  return ag;
}

}  // namespace opentla
