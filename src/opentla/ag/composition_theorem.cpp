#include "opentla/ag/composition_theorem.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "opentla/ag/propositions.hpp"
#include "opentla/automata/freeze.hpp"
#include "opentla/check/inclusion.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/check/machine_closure.hpp"
#include "opentla/check/orthogonality.hpp"
#include "opentla/check/refinement.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/expr/analysis.hpp"
#include "opentla/obs/obs.hpp"

namespace opentla {

namespace {

bool is_trivial_spec(const CanonicalSpec& s) {
  return s.sub.empty() && s.fairness.empty() &&
         structurally_equal(s.init, ex::top());
}

std::string short_trace(const VarTable& vars, const std::vector<State>& states,
                        std::size_t max_states = 12) {
  std::vector<State> shown(states.begin(),
                           states.begin() + std::min(states.size(), max_states));
  std::string out = "counterexample (" + std::to_string(states.size()) + " states):\n" +
                    format_trace(vars, shown);
  if (shown.size() < states.size()) out += "  ...\n";
  return out;
}

/// An obligation the run budget prevented from being evaluated at all:
/// not discharged, not refuted — inconclusive, with the breach named.
Obligation skipped_obligation(std::string id, std::string description,
                              const run::RunBudget& budget) {
  Obligation ob;
  ob.id = std::move(id);
  ob.description = std::move(description);
  ob.method = "skipped(budget)";
  ob.inconclusive = true;
  ob.detail =
      std::string("not evaluated: run budget stop (") + run::to_string(budget.reason()) + ")";
  return ob;
}

/// Folds a possibly-partial inclusion verdict into `ob`: a counterexample
/// refutes regardless of budget state; "holds" on a truncated product or
/// pair search is inconclusive, never a discharge.
void adopt_verdict(Obligation& ob, const ConstraintExplorer::Verdict& verdict) {
  if (!verdict.holds) {
    ob.discharged = false;
  } else if (verdict.stop_reason != run::StopReason::kCompleted) {
    ob.discharged = false;
    ob.inconclusive = true;
    ob.detail += std::string(" [partial: run budget stop (") +
                 run::to_string(verdict.stop_reason) + ")]";
  } else {
    ob.discharged = true;
  }
}

Mover free_tuple_mover(const VarTable& vars, const std::vector<VarId>& tuple) {
  std::vector<VarId> complement;
  for (VarId v = 0; v < vars.size(); ++v) {
    if (std::find(tuple.begin(), tuple.end(), v) == tuple.end()) complement.push_back(v);
  }
  Mover m;
  m.generator = std::make_shared<ActionSuccessors>(vars, ex::unchanged(complement));
  m.machine_index = -1;
  m.label = "free-move";
  return m;
}

}  // namespace

ProofReport verify_composition(const VarTable& vars, const std::vector<AGSpec>& components,
                               const AGSpec& goal, const CompositionOptions& opts) {
  ProofReport report;
  {
    std::ostringstream os;
    for (std::size_t j = 0; j < components.size(); ++j) {
      if (j != 0) os << " /\\ ";
      os << "(" << components[j].name() << ")";
    }
    os << "  =>  (" << goal.name() << ")";
    report.theorem = os.str();
  }

  // --- 0. assumptions must be safety properties ---
  for (const AGSpec* ag : [&] {
         std::vector<const AGSpec*> all;
         for (const AGSpec& c : components) all.push_back(&c);
         all.push_back(&goal);
         return all;
       }()) {
    if (!ag->assumption.fairness.empty()) {
      Obligation ob;
      ob.id = "safety-assumption";
      ob.description = "environment assumption " + ag->assumption.name + " is a safety property";
      ob.method = "syntactic";
      ob.discharged = false;
      ob.detail = "assumption carries fairness conditions; write it as a safety property "
                  "(Section 3)";
      report.add(std::move(ob));
      return report;
    }
  }

  // --- hidden, relevant, and irrelevant variables; the freeze tuple ---
  std::set<VarId> hidden_set(goal.guarantee.hidden.begin(), goal.guarantee.hidden.end());
  std::set<VarId> relevant = spec_variables(goal.guarantee);
  {
    std::set<VarId> s = spec_variables(goal.assumption);
    relevant.insert(s.begin(), s.end());
  }
  for (const AGSpec& c : components) {
    hidden_set.insert(c.guarantee.hidden.begin(), c.guarantee.hidden.end());
    hidden_set.insert(c.assumption.hidden.begin(), c.assumption.hidden.end());
    for (const CanonicalSpec* s : {&c.guarantee, &c.assumption}) {
      std::set<VarId> sv = spec_variables(*s);
      relevant.insert(sv.begin(), sv.end());
    }
  }
  for (const auto& [name, witness] : opts.goal_witness) {
    FreeVars fv = free_vars(witness);
    relevant.insert(fv.unprimed.begin(), fv.unprimed.end());
  }
  // Universe variables no spec mentions can be held constant: neither side
  // of any hypothesis depends on them, and leaving them free would only
  // blow up the exploration.
  std::vector<VarId> irrelevant;
  for (VarId v = 0; v < vars.size(); ++v) {
    if (!relevant.contains(v)) irrelevant.push_back(v);
  }
  // Normalized variables: hidden ones (tracked by machines) plus the
  // irrelevant ones (pinned).
  std::vector<VarId> normalize(hidden_set.begin(), hidden_set.end());
  normalize.insert(normalize.end(), irrelevant.begin(), irrelevant.end());
  std::vector<VarId> plus_v = opts.plus_tuple;
  if (plus_v.empty()) {
    for (VarId v = 0; v < vars.size(); ++v) {
      if (!hidden_set.contains(v) && relevant.contains(v)) plus_v.push_back(v);
    }
  }

  // --- 1. Proposition 1: syntactic closures ---
  // Proof-step spans follow Figure 9's numbering: 1 (closures + side
  // conditions), 2.1.i (H1 per component), 2.2 (H2a), 2.3 (H2b), 3 (the
  // theorem's conclusion from the discharged hypotheses).
  std::vector<CanonicalSpec> closures;  // C(M_j)
  Prop1Result goal_p1;
  {
    OPENTLA_OBS_SPAN("fig9:1");
    OPENTLA_OBS_PHASE("fig9:1");
    for (const AGSpec& c : components) {
      Prop1Result p1 = prop1_closure(c.guarantee);
      report.add(p1.obligation);
      closures.push_back(std::move(p1.closure));
    }
    goal_p1 = prop1_closure(goal.guarantee);
    report.add(goal_p1.obligation);
    if (!report.all_discharged()) return report;

    // --- Proposition 2: hidden variables are private ---
    std::vector<const CanonicalSpec*> all_specs;
    all_specs.push_back(&goal.assumption);
    for (const CanonicalSpec& c : closures) all_specs.push_back(&c);
    report.add(prop2_side_conditions(vars, all_specs, goal.guarantee));
    if (!report.all_discharged()) return report;
  }

  // --- shared exploration pieces ---
  std::vector<Expr> init_conjuncts = {goal.assumption.init};
  for (const AGSpec& c : components) init_conjuncts.push_back(c.guarantee.init);
  const Expr init_enum = ex::land(std::move(init_conjuncts));

  // With the interleaving optimization, a component's mover varies only
  // its declared outputs and hidden variables; everything else is pinned
  // (the Disjoint conjunct among the components filters any step the
  // pinning could miss).
  const bool interleaved = !opts.component_outputs.empty();
  auto pinned_for = [&](const std::vector<VarId>& outputs,
                        const std::vector<VarId>& hidden) {
    std::vector<VarId> pinned = normalize;
    if (!interleaved || outputs.empty()) return pinned;
    std::set<VarId> own(outputs.begin(), outputs.end());
    own.insert(hidden.begin(), hidden.end());
    for (VarId v = 0; v < vars.size(); ++v) {
      if (!own.contains(v)) pinned.push_back(v);
    }
    return pinned;
  };

  auto build_movers = [&]() {
    std::vector<Mover> movers;
    std::set<VarId> covered;
    if (!is_trivial_spec(goal.assumption) && !goal.assumption.sub.empty()) {
      movers.push_back(mover_from_spec(
          vars, goal.assumption, 0,
          pinned_for(opts.env_outputs, goal.assumption.hidden)));
      covered.insert(goal.assumption.sub.begin(), goal.assumption.sub.end());
    }
    for (std::size_t j = 0; j < components.size(); ++j) {
      if (!components[j].guarantee_is_mover || components[j].guarantee.sub.empty()) continue;
      const std::vector<VarId> outputs =
          j < opts.component_outputs.size() ? opts.component_outputs[j]
                                            : std::vector<VarId>{};
      movers.push_back(mover_from_spec(vars, closures[j], static_cast<int>(1 + j),
                                       pinned_for(outputs, closures[j].hidden)));
      covered.insert(closures[j].sub.begin(), closures[j].sub.end());
    }
    for (const std::vector<VarId>& tuple : opts.free_tuples) {
      movers.push_back(free_tuple_mover(vars, tuple));
      covered.insert(tuple.begin(), tuple.end());
    }
    // Relevant visible variables no mover writes are unconstrained by the
    // conjunction (no [N]_v mentions them): they may change at any step.
    // Changes combined with component moves are enumerated by the movers
    // themselves (such variables are never pinned); changes while every
    // component stutters need an explicit free mover.
    std::vector<VarId> uncovered;
    for (VarId v = 0; v < vars.size(); ++v) {
      if (relevant.contains(v) && !hidden_set.contains(v) && !covered.contains(v)) {
        uncovered.push_back(v);
      }
    }
    if (!uncovered.empty()) movers.push_back(free_tuple_mover(vars, uncovered));
    return movers;
  };

  // Once the run budget latches, the remaining hypotheses are reported as
  // inconclusive skips rather than evaluated against a breached budget.
  auto budget_stopped = [&] { return opts.budget != nullptr && opts.budget->stopped(); };

  // --- H1: |= C(E) /\ /\_j C(M_j) => E_i ---
  {
    OPENTLA_OBS_SPAN("fig9:2.1");
    OPENTLA_OBS_PHASE("fig9:2.1");
    std::vector<std::shared_ptr<const SafetyMachine>> constraints;
    constraints.push_back(std::make_shared<PrefixMachine>(vars, goal.assumption));
    for (const CanonicalSpec& c : closures) {
      constraints.push_back(std::make_shared<PrefixMachine>(vars, c));
    }
    ConstraintExplorer explorer(vars, constraints, build_movers(), init_enum, normalize,
                                opts.max_nodes, opts.budget);
    for (std::size_t i = 0; i < components.size(); ++i) {
      OPENTLA_OBS_SPAN("fig9:2.1." + std::to_string(i + 1));
      Obligation ob;
      ob.id = "H1[" + components[i].assumption.name + "]";
      ob.description = "C(" + goal.assumption.name + ") /\\ /\\_j C(M_j) => " +
                       components[i].assumption.name;
      if (is_trivial_spec(components[i].assumption)) {
        ob.method = "trivial";
        ob.discharged = true;
        report.add(std::move(ob));
        continue;
      }
      if (budget_stopped() && explorer.stop_reason() == run::StopReason::kCompleted) {
        // The product itself is complete but the budget tripped meanwhile
        // (e.g. deadline during an earlier target): skip the remaining
        // targets instead of starting new pair searches.
        report.add(skipped_obligation(std::move(ob.id), std::move(ob.description),
                                      *opts.budget));
        continue;
      }
      ob.method = "product-inclusion";
      ConstraintExplorer::Verdict verdict = [&] {
        ObligationTimer timer(ob);
        PrefixMachine target(vars, components[i].assumption);
        return explorer.check_target(target);
      }();
      ob.detail = "product nodes: " + std::to_string(explorer.num_nodes()) +
                  ", pairs: " + std::to_string(verdict.pairs_visited);
      adopt_verdict(ob, verdict);
      if (!verdict.holds) ob.detail += "\n" + short_trace(vars, verdict.counterexample);
      report.add(std::move(ob));
    }
  }

  // --- H2a: |= C(E)_{+v} /\ /\_j C(M_j) => C(M) ---
  {
    Obligation ob;
    ob.id = "H2a";
    ob.description = "C(" + goal.assumption.name + ")_{+v} /\\ /\\_j C(M_j) => C(" +
                     goal.guarantee.name + ")";
    if (budget_stopped()) {
      report.add(skipped_obligation(std::move(ob.id), std::move(ob.description),
                                    *opts.budget));
    } else {
    ob.method = "product-inclusion(freeze)";
    {
      OPENTLA_OBS_SPAN("fig9:2.2");
      OPENTLA_OBS_PHASE("fig9:2.2");
      ObligationTimer timer(ob);
      std::vector<std::shared_ptr<const SafetyMachine>> constraints;
      constraints.push_back(std::make_shared<FreezeMachine>(
          std::make_shared<PrefixMachine>(vars, goal.assumption), plus_v));
      for (const CanonicalSpec& c : closures) {
        constraints.push_back(std::make_shared<PrefixMachine>(vars, c));
      }
      std::vector<Mover> movers = build_movers();
      // After E fails, variables outside v may still change freely.
      std::vector<VarId> unfrozen;
      for (VarId v = 0; v < vars.size(); ++v) {
        if (hidden_set.contains(v) || !relevant.contains(v)) continue;
        if (std::find(plus_v.begin(), plus_v.end(), v) == plus_v.end()) unfrozen.push_back(v);
      }
      if (!unfrozen.empty()) movers.push_back(free_tuple_mover(vars, unfrozen));

      ConstraintExplorer explorer(vars, constraints, std::move(movers), init_enum, normalize,
                                  opts.max_nodes, opts.budget);
      PrefixMachine target(vars, goal_p1.closure);
      ConstraintExplorer::Verdict verdict = explorer.check_target(target);
      ob.detail = "product nodes: " + std::to_string(explorer.num_nodes()) +
                  ", pairs: " + std::to_string(verdict.pairs_visited);
      adopt_verdict(ob, verdict);
      if (!verdict.holds) ob.detail += "\n" + short_trace(vars, verdict.counterexample);
    }
    report.add(std::move(ob));
    }  // budget-skip else
  }

  // --- H2b: |= E /\ /\_j M_j => M ---
  if (budget_stopped()) {
    report.add(skipped_obligation(
        "H2b", goal.assumption.name + " /\\ /\\_j M_j => " + goal.guarantee.name,
        *opts.budget));
  } else {
    Obligation ob;
    ob.id = "H2b";
    ob.description =
        goal.assumption.name + " /\\ /\\_j M_j => " + goal.guarantee.name;
    ob.method = "complete-system refinement";
    {
    OPENTLA_OBS_SPAN("fig9:2.3");
    OPENTLA_OBS_PHASE("fig9:2.3");
    ObligationTimer timer_guard(ob);
    std::vector<CompositePart> parts;
    if (!is_trivial_spec(goal.assumption)) {
      parts.push_back({goal.assumption, /*mover=*/true,
                       pinned_for(opts.env_outputs, goal.assumption.hidden)});
    }
    std::vector<Fairness> low_fairness = goal.assumption.fairness;
    for (std::size_t j = 0; j < components.size(); ++j) {
      const AGSpec& c = components[j];
      const std::vector<VarId> outputs =
          j < opts.component_outputs.size() ? opts.component_outputs[j]
                                            : std::vector<VarId>{};
      // The unhidden part's buffer variables move with its own actions.
      std::vector<VarId> own_hidden = c.guarantee.hidden;
      parts.push_back({c.guarantee.unhidden(), c.guarantee_is_mover,
                       pinned_for(outputs, own_hidden)});
      low_fairness.insert(low_fairness.end(), c.guarantee.fairness.begin(),
                          c.guarantee.fairness.end());
    }
    // Pin whatever no part constrains: the goal guarantee's hidden
    // variables when they are fresh (the refinement witness supplies their
    // values), and the irrelevant variables.
    std::vector<VarId> pin_tuple;
    {
      std::set<VarId> covered;
      for (const CompositePart& p : parts) covered.insert(p.spec.sub.begin(), p.spec.sub.end());
      for (VarId v : goal.guarantee.hidden) {
        if (!covered.contains(v)) pin_tuple.push_back(v);
      }
      for (VarId v : irrelevant) {
        if (!covered.contains(v)) pin_tuple.push_back(v);
      }
    }
    if (!pin_tuple.empty()) {
      parts.push_back({make_pin(vars, pin_tuple, "PinUnconstrained"), /*mover=*/false});
    }
    try {
      ExploreOptions explore_opts;
      explore_opts.threads = opts.threads;
      explore_opts.max_states = opts.max_states;
      explore_opts.budget = opts.budget;
      StateGraph low =
          build_composite_graph(vars, parts, opts.free_tuples, pin_tuple, explore_opts);
      if (low.stop_reason() != run::StopReason::kCompleted) {
        // Refinement (incl. its liveness side) is only meaningful on the
        // complete low graph; a truncated one can neither discharge nor
        // refute, so the obligation stays inconclusive.
        ob.discharged = false;
        ob.inconclusive = true;
        ob.detail = "low states: " + std::to_string(low.num_states()) +
                    " [partial: run budget stop (" + run::to_string(low.stop_reason()) +
                    "), refinement not evaluated]";
      } else {
        RefinementMapping mapping = mapping_by_name(vars, vars, opts.goal_witness);
        RefinementResult r = check_refinement(low, low_fairness, goal.guarantee, mapping);
        ob.discharged = r.holds;
        ob.detail = "low states: " + std::to_string(r.states) +
                    ", edges: " + std::to_string(r.edges);
        if (!r.holds) {
          ob.detail += "\nfailed: " + r.failed_part + "\n" +
                       short_trace(vars, r.counterexample_prefix);
          if (!r.counterexample_cycle.empty()) {
            ob.detail += "cycle:\n" + format_trace(vars, r.counterexample_cycle);
          }
        }
      }
    } catch (const std::exception& e) {
      ob.discharged = false;
      ob.detail = std::string("exploration failed: ") + e.what();
    }
    }  // timer scope
    report.add(std::move(ob));
  }

  {
    // Step 3: the Composition Theorem's conclusion — assembling the verdict
    // from the discharged hypotheses (no further exploration).
    OPENTLA_OBS_SPAN("fig9:3");
    OPENTLA_OBS_PHASE("fig9:3");
    report.all_discharged();
  }
  return report;
}

ProofReport verify_refinement_corollary(const VarTable& vars, const CanonicalSpec& assumption,
                                        const CanonicalSpec& low, const CanonicalSpec& high,
                                        const CompositionOptions& opts) {
  AGSpec component{assumption, low};
  AGSpec goal{assumption, high};
  return verify_composition(vars, {component}, goal, opts);
}

std::vector<Obligation> discharge_h2a_via_prop3(const VarTable& vars,
                                                const std::vector<AGSpec>& components,
                                                const AGSpec& goal, const Prop3Route& route,
                                                const CompositionOptions& opts) {
  std::vector<Obligation> out;

  // Closures (Proposition 1) and the relevant/irrelevant split, as in
  // verify_composition.
  std::vector<CanonicalSpec> closures;
  for (const AGSpec& c : components) {
    Prop1Result p1 = prop1_closure(c.guarantee);
    if (!p1.obligation) {
      out.push_back(p1.obligation);
      return out;
    }
    closures.push_back(std::move(p1.closure));
  }
  Prop1Result goal_p1 = prop1_closure(goal.guarantee);
  if (!goal_p1.obligation) {
    out.push_back(goal_p1.obligation);
    return out;
  }

  std::set<VarId> hidden_set(goal.guarantee.hidden.begin(), goal.guarantee.hidden.end());
  std::set<VarId> relevant = spec_variables(goal.guarantee);
  {
    std::set<VarId> s = spec_variables(goal.assumption);
    relevant.insert(s.begin(), s.end());
  }
  for (const AGSpec& c : components) {
    hidden_set.insert(c.guarantee.hidden.begin(), c.guarantee.hidden.end());
    for (const CanonicalSpec* s : {&c.guarantee, &c.assumption}) {
      std::set<VarId> sv = spec_variables(*s);
      relevant.insert(sv.begin(), sv.end());
    }
  }
  std::vector<VarId> normalize(hidden_set.begin(), hidden_set.end());
  for (VarId v = 0; v < vars.size(); ++v) {
    if (!relevant.contains(v)) normalize.push_back(v);
  }
  std::vector<VarId> plus_v = opts.plus_tuple;
  if (plus_v.empty()) {
    for (VarId v = 0; v < vars.size(); ++v) {
      if (!hidden_set.contains(v) && relevant.contains(v)) plus_v.push_back(v);
    }
  }

  // --- Proposition 3's side condition: free vars of C(M) within v ---
  out.push_back(prop3_side_condition(vars, goal_p1.closure, plus_v));
  if (!out.back()) return out;

  // --- Proposition 4's syntactic side conditions for C(E) _|_ C(M) ---
  out.push_back(prop4_orthogonality(vars, goal.assumption, route.env_outputs,
                                    goal.guarantee, route.guarantee_outputs));
  if (!out.back()) return out;

  // --- Step 2.1 (semantic): |= R => C(E) _|_ C(M) on R's behaviors ---
  {
    Obligation ob;
    ob.id = "2.1";
    ob.description = "/\\_j C(M_j) => C(" + goal.assumption.name + ") _|_ C(" +
                     goal.guarantee.name + ")";
    ob.method = "orthogonality(product)";
    {
      OPENTLA_OBS_SPAN("prop3:2.1");
      OPENTLA_OBS_PHASE("prop3:2.1");
      ObligationTimer timer(ob);
      // R's generator: the closures with hidden variables explicit, plus a
      // single free tuple for everything no mover constrains (environment
      // moves; the components' own step filters reject what R forbids).
      std::vector<CompositePart> parts;
      std::set<VarId> covered;
      for (std::size_t j = 0; j < components.size(); ++j) {
        parts.push_back({closures[j].unhidden(), components[j].guarantee_is_mover});
        covered.insert(closures[j].sub.begin(), closures[j].sub.end());
      }
      std::vector<VarId> env_free;
      std::vector<VarId> pin_tuple;
      for (VarId v = 0; v < vars.size(); ++v) {
        if (covered.contains(v)) continue;
        if (relevant.contains(v) && !hidden_set.contains(v)) {
          env_free.push_back(v);
        } else {
          pin_tuple.push_back(v);
        }
      }
      if (!env_free.empty()) {
        // Cover the free environment variables with a frame part so the
        // coverage check passes; the free tuple generates their moves.
        CanonicalSpec frame;
        frame.name = "EnvFrame";
        frame.init = ex::top();
        frame.next = ex::top();
        frame.sub = env_free;
        parts.push_back({frame, /*mover=*/false});
      }
      if (!pin_tuple.empty()) {
        parts.push_back({make_pin(vars, pin_tuple, "Pin"), /*mover=*/false});
      }
      std::vector<std::vector<VarId>> free_tuples = opts.free_tuples;
      if (!env_free.empty()) free_tuples.push_back(env_free);

      ExploreOptions explore_opts;
      explore_opts.threads = opts.threads;
      explore_opts.max_states = opts.max_states;
      explore_opts.budget = opts.budget;
      StateGraph r_graph =
          build_composite_graph(vars, parts, free_tuples, pin_tuple, explore_opts);
      if (r_graph.stop_reason() != run::StopReason::kCompleted) {
        ob.discharged = false;
        ob.inconclusive = true;
        ob.detail = "R states: " + std::to_string(r_graph.num_states()) +
                    " [partial: run budget stop (" + run::to_string(r_graph.stop_reason()) +
                    "), orthogonality not evaluated]";
      } else {
        PrefixMachine e_machine(vars, goal.assumption);
        PrefixMachine m_machine(vars, goal_p1.closure);
        OrthogonalityResult orth = check_orthogonality(r_graph, e_machine, m_machine);
        ob.discharged = orth.holds;
        ob.detail = "R states: " + std::to_string(r_graph.num_states()) +
                    ", pairs: " + std::to_string(orth.pairs_visited);
        if (!orth.holds) ob.detail += "\n" + short_trace(vars, orth.counterexample);
      }
    }
    out.push_back(std::move(ob));
    if (!out.back()) return out;
  }

  // --- Step 2.2: |= C(E) /\ R => C(M) (no freeze) ---
  {
    Obligation ob;
    ob.id = "2.2";
    ob.description =
        "C(" + goal.assumption.name + ") /\\ /\\_j C(M_j) => C(" + goal.guarantee.name + ")";
    ob.method = "product-inclusion";
    {
      OPENTLA_OBS_SPAN("prop3:2.2");
      OPENTLA_OBS_PHASE("prop3:2.2");
      ObligationTimer timer(ob);
      std::vector<std::shared_ptr<const SafetyMachine>> constraints;
      constraints.push_back(std::make_shared<PrefixMachine>(vars, goal.assumption));
      for (const CanonicalSpec& c : closures) {
        constraints.push_back(std::make_shared<PrefixMachine>(vars, c));
      }
      std::vector<Mover> movers;
      if (!is_trivial_spec(goal.assumption) && !goal.assumption.sub.empty()) {
        movers.push_back(mover_from_spec(vars, goal.assumption, 0, normalize));
      }
      for (std::size_t j = 0; j < components.size(); ++j) {
        if (!components[j].guarantee_is_mover || components[j].guarantee.sub.empty()) continue;
        movers.push_back(mover_from_spec(vars, closures[j], static_cast<int>(1 + j), normalize));
      }
      std::vector<Expr> init_conjuncts = {goal.assumption.init};
      for (const AGSpec& c : components) init_conjuncts.push_back(c.guarantee.init);
      ConstraintExplorer explorer(vars, constraints, std::move(movers),
                                  ex::land(std::move(init_conjuncts)), normalize,
                                  opts.max_nodes, opts.budget);
      PrefixMachine target(vars, goal_p1.closure);
      ConstraintExplorer::Verdict verdict = explorer.check_target(target);
      ob.detail = "product nodes: " + std::to_string(explorer.num_nodes()) +
                  ", pairs: " + std::to_string(verdict.pairs_visited);
      adopt_verdict(ob, verdict);
      if (!verdict.holds) ob.detail += "\n" + short_trace(vars, verdict.counterexample);
    }
    out.push_back(std::move(ob));
    if (!out.back()) return out;
  }

  // --- Conclusion: Proposition 3 assembles H2a ---
  Obligation concl;
  concl.id = "H2a(via Prop3)";
  concl.description = "C(" + goal.assumption.name + ")_{+v} /\\ /\\_j C(M_j) => C(" +
                      goal.guarantee.name + ")";
  concl.method = "prop3";
  concl.discharged = true;
  concl.detail = "from 2.1, 2.2 and Proposition 3";
  out.push_back(std::move(concl));
  return out;
}

}  // namespace opentla
