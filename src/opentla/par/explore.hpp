// opentla/par/explore.hpp
//
// Work-sharing parallel state-space exploration with a deterministic
// result. The design is two-phase:
//
//   Phase 1 (parallel): a pool of workers drains per-thread frontier
//   deques (owners pop LIFO, idle workers steal FIFO from peers), interns
//   discovered states in a ShardedStateSet (mutex-striped by State::hash),
//   and records, per expanded state, the raw successor emission list in
//   the order the successor provider produced it. Ids in this phase are
//   provisional: dense, but scheduling-dependent.
//
//   Phase 2 (serial, cheap): a replay BFS over the recorded emission lists
//   renumbers every state exactly as the serial engine's interleaved
//   intern-during-BFS would have — initial states first in seeding order,
//   then successors in parent-BFS x emission order. Because each state's
//   emission list depends only on the state (the successor providers
//   enumerate odometer-style over ordered structures; see
//   graph/successor.cpp), the renumbered graph is bit-identical to the
//   serial BFS for every thread count.
//
// Phase 1 dominates the cost (successor generation is the hot path);
// phase 2 is a linear pointer-chase over already-computed lists.

#pragma once

#include <cstddef>

#include "opentla/graph/state_graph.hpp"

namespace opentla::par {

/// The canonical exploration result a StateGraph adopts: states interned
/// in serial-BFS order, adjacency sorted per node, initial ids sorted.
/// stop_reason != kCompleted marks a graceful partial result (the state
/// budget, a deadline, the RSS ceiling, or a stop signal cut it short).
struct ExploreResult {
  StateStore store;
  std::vector<StateId> init;
  std::vector<std::vector<StateId>> adjacency;
  std::size_t num_edges = 0;
  run::StopReason stop_reason = run::StopReason::kCompleted;
};

/// Explores with `threads` workers (must be >= 1; callers resolve 0 to
/// hardware concurrency first). Reaching opts.max_states, or a breach of
/// opts.budget, stops gracefully with the partial graph and a stop reason;
/// the state count at a state-budget stop equals the serial engine's at
/// the same bound. Rethrows the first exception a successor provider
/// raises on any worker.
ExploreResult explore(const std::vector<State>& init_states,
                      const StateGraph::SuccessorFn& succ, const ExploreOptions& opts,
                      unsigned threads);

}  // namespace opentla::par
