#include "opentla/par/explore.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "opentla/obs/memory.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/state/sharded_store.hpp"

namespace opentla::par {

namespace {

struct WorkItem {
  StateId pid = 0;  // provisional id
  State state;
};

/// One expanded state: its provisional id, the state itself, and the raw
/// successor emission list (provisional ids, in emission order, duplicates
/// kept). Phase 2 replays these; nothing else from phase 1 survives.
struct Expanded {
  StateId pid = 0;
  State state;
  std::vector<StateId> raw;
};

struct WorkQueue {
  std::mutex mu;
  // The deque's block allocations charge the frontier memory domain.
  std::deque<WorkItem, obs::CountingAllocator<WorkItem>> q{
      obs::CountingAllocator<WorkItem>(obs::MemDomain::Frontier)};
};

}  // namespace

ExploreResult explore(const std::vector<State>& init_states,
                      const StateGraph::SuccessorFn& succ, const ExploreOptions& opts,
                      unsigned threads) {
  OPENTLA_OBS_SPAN("par.explore");
  OPENTLA_OBS_GAUGE_MAX(PeakParWorkers, threads);

  ShardedStateSet seen(opts.shards);
  std::vector<WorkQueue> queues(threads);
  std::vector<std::vector<Expanded>> records(threads);

  // Discovered-but-not-yet-expanded items. Children are counted before
  // their parent's expansion is uncounted, so 0 really means drained.
  std::atomic<std::int64_t> outstanding{0};
  std::atomic<bool> abort{false};
  std::atomic<bool> overflow{false};
  std::mutex error_mu;
  std::exception_ptr error;

  // Seed: intern the initial states in caller order (the serial engine
  // interns them in this order too, which phase 2's replay reproduces).
  // Provisional ids are globally monotonic, so "pid >= max_states" is
  // exactly the set of states past the budget: they are interned (dedup
  // still works) but never enqueued, and phase 2 drops them.
  std::vector<StateId> init_pids;
  init_pids.reserve(init_states.size());
  {
    std::size_t next_queue = 0;
    for (const State& s : init_states) {
      const ShardedStateSet::InternResult r = seen.intern(s);
      init_pids.push_back(r.id);
      if (r.inserted) {
        if (static_cast<std::size_t>(r.id) >= opts.max_states) {
          overflow.store(true, std::memory_order_relaxed);
          abort.store(true, std::memory_order_relaxed);
          continue;
        }
        OPENTLA_OBS_COUNT(StatesGenerated);
        outstanding.fetch_add(1, std::memory_order_relaxed);
        queues[next_queue % threads].q.push_back({r.id, s});
        ++next_queue;
      }
    }
  }

  run::RunBudget* const budget = opts.budget;
  auto worker = [&](unsigned me) {
    OPENTLA_OBS_SPAN("par.worker");
    std::vector<Expanded>& mine = records[me];
    // One ParWorkerExpansions sample per worker at exit: the histogram's
    // spread is the load-balance picture for this run.
    std::uint64_t expanded_here = 0;
    struct ExitSample {
      const std::uint64_t& n;
      ~ExitSample() { OPENTLA_OBS_HIST(ParWorkerExpansions, n); }
    } exit_sample{expanded_here};
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (budget != nullptr && budget->should_stop()) {
        abort.store(true, std::memory_order_relaxed);
        return;
      }

      // Own deque first (LIFO keeps the working set warm), then steal
      // FIFO from peers, oldest work first.
      WorkItem item;
      bool have = false;
      {
        std::lock_guard<std::mutex> lock(queues[me].mu);
        if (!queues[me].q.empty()) {
          item = std::move(queues[me].q.back());
          queues[me].q.pop_back();
          have = true;
        }
      }
      if (!have) {
        for (unsigned k = 1; k < threads && !have; ++k) {
          WorkQueue& victim = queues[(me + k) % threads];
          // Stage the haul locally so the victim's mutex is released before
          // our own is taken: holding two queue mutexes at once would let
          // mutual stealers form a lock cycle (deadlock).
          std::vector<WorkItem> haul;
          {
            std::lock_guard<std::mutex> lock(victim.mu);
            if (victim.q.empty()) continue;
            // Take half the victim's backlog: the first item is expanded
            // now, the rest seeds our own deque.
            const std::size_t grab = std::max<std::size_t>(1, victim.q.size() / 2);
            item = std::move(victim.q.front());
            victim.q.pop_front();
            have = true;
            OPENTLA_OBS_COUNT(ParSteals);
            haul.reserve(grab - 1);
            for (std::size_t i = 1; i < grab; ++i) {
              haul.push_back(std::move(victim.q.front()));
              victim.q.pop_front();
            }
          }
          if (!haul.empty()) {
            std::lock_guard<std::mutex> own(queues[me].mu);
            for (WorkItem& w : haul) queues[me].q.push_back(std::move(w));
          }
        }
      }
      if (!have) {
        if (outstanding.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }

      Expanded rec;
      rec.pid = item.pid;
      rec.state = std::move(item.state);
      try {
        succ(rec.state, [&](const State& t) {
          const ShardedStateSet::InternResult r = seen.intern(t);
          if (r.inserted) {
            if (static_cast<std::size_t>(r.id) >= opts.max_states) {
              overflow.store(true, std::memory_order_relaxed);
              abort.store(true, std::memory_order_relaxed);
            } else {
              OPENTLA_OBS_COUNT(StatesGenerated);
              outstanding.fetch_add(1, std::memory_order_relaxed);
              std::lock_guard<std::mutex> lock(queues[me].mu);
              queues[me].q.push_back({r.id, t});
            }
          }
          rec.raw.push_back(r.id);
        });
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      OPENTLA_OBS_COUNT(ParStatesExpanded);
      ++expanded_here;
      mine.push_back(std::move(rec));
      const std::int64_t left = outstanding.fetch_sub(1, std::memory_order_release) - 1;
      (void)left;  // only read by the level below, which OPENTLA_OBS=OFF strips
      OPENTLA_OBS_LEVEL_SET(FrontierSize, left > 0 ? left : 0);
    }
  };

  {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }
  OPENTLA_OBS_COUNT_N(ParShardContention, seen.contended_locks());

  if (error) std::rethrow_exception(error);

  // Resolve why phase 1 ended. The budget's latch wins (its first-breach
  // reason is authoritative); a local overflow without a budget object
  // still reports the state budget.
  run::StopReason stop = run::StopReason::kCompleted;
  if (overflow.load(std::memory_order_relaxed)) stop = run::StopReason::kStateBudget;
  if (budget != nullptr) {
    if (stop != run::StopReason::kCompleted) budget->request_stop(stop);
    if (budget->stopped()) stop = budget->reason();
  }

  // --- Phase 2: canonical renumbering (serial). ---
  OPENTLA_OBS_SPAN("par.renumber");
  const std::size_t n = seen.size();
  std::vector<State> state_of(n);
  std::vector<std::vector<StateId>> raw_of(n);
  std::vector<char> expanded(n, 0);
  for (std::vector<Expanded>& recs : records) {
    for (Expanded& r : recs) {
      state_of[r.pid] = std::move(r.state);
      raw_of[r.pid] = std::move(r.raw);
      expanded[r.pid] = 1;
    }
  }
  // On a graceful stop, discovered-but-unexpanded states are still parked
  // in the work deques; their State lives nowhere else, so drain them.
  // (On a completed run the deques are empty and this is a no-op.)
  for (WorkQueue& wq : queues) {
    for (WorkItem& w : wq.q) state_of[w.pid] = std::move(w.state);
  }

  // Replay the serial BFS's id assignment: initial states in seeding
  // order, then each state's emissions in order, FIFO. `order[c]` is the
  // provisional id that receives canonical id c. States past the budget
  // (pid >= max_states) are skipped everywhere: the canonical graph holds
  // exactly the states the serial engine would keep at the same bound.
  std::vector<StateId> canon(n, StateStore::kNone);
  std::vector<StateId> order;
  order.reserve(n);
  for (StateId pid : init_pids) {
    if (static_cast<std::size_t>(pid) >= opts.max_states) continue;
    if (canon[pid] == StateStore::kNone) {
      canon[pid] = static_cast<StateId>(order.size());
      order.push_back(pid);
    }
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (StateId t : raw_of[order[head]]) {
      if (static_cast<std::size_t>(t) >= opts.max_states) continue;
      if (canon[t] == StateStore::kNone) {
        canon[t] = static_cast<StateId>(order.size());
        order.push_back(t);
      }
    }
  }

  ExploreResult res;
  res.stop_reason = stop;
  const std::size_t kept = order.size();
  res.adjacency.resize(kept);
  for (std::size_t c = 0; c < kept; ++c) res.store.intern(state_of[order[c]]);
  for (std::size_t c = 0; c < kept; ++c) {
    const StateId pid = order[c];
    std::vector<StateId> out;
    out.reserve(raw_of[pid].size() + 1);
    for (StateId t : raw_of[pid]) {
      // canon is kNone for budget-dropped targets; their edges go with them.
      if (canon[t] != StateStore::kNone) out.push_back(canon[t]);
    }
    // The stuttering self-loop marks an *expanded* node; an unexpanded
    // frontier survivor of a partial run keeps an empty adjacency, exactly
    // like the serial engine's unexpanded frontier. On completed runs every
    // kept node is expanded, so this is the historical behavior.
    if (opts.add_self_loops && expanded[pid]) out.push_back(static_cast<StateId>(c));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    if (expanded[pid]) {
      // Same fanout definition as the serial engine (final deduped
      // out-degree), so the histogram matches it bit for bit.
      OPENTLA_OBS_HIST(SuccessorFanout, out.size());
    }
    res.num_edges += out.size();
    res.adjacency[c] = std::move(out);
  }
  res.init.reserve(init_pids.size());
  for (StateId pid : init_pids) {
    if (static_cast<std::size_t>(pid) >= opts.max_states) continue;
    res.init.push_back(canon[pid]);
  }
  std::sort(res.init.begin(), res.init.end());
  res.init.erase(std::unique(res.init.begin(), res.init.end()), res.init.end());

  OPENTLA_OBS_GAUGE_MAX(PeakGraphStates, kept);
  return res;
}

}  // namespace opentla::par
