#include "opentla/abp/abp.hpp"

#include <algorithm>

namespace opentla {

namespace {
Expr seq1(Expr e) { return ex::make_tuple({std::move(e)}); }
Expr empty_seq() { return ex::constant(Value::empty_seq()); }
Expr flip(VarId bit) { return ex::sub(ex::integer(1), ex::var(bit)); }
}  // namespace

CanonicalSpec AbpSystem::system_with_weak_fairness_only() const {
  CanonicalSpec weak = system;
  weak.name = "ABP_WF";
  for (Fairness& f : weak.fairness) {
    f.kind = Fairness::Kind::Weak;
  }
  return weak;
}

AbpSystem make_abp_system(int num_values) {
  AbpSystem sys;
  const Domain values = range_domain(0, num_values - 1);
  sys.in = declare_channel(sys.vars, "in", values);
  sys.out = declare_channel(sys.vars, "out", values);
  sys.d_full = sys.vars.declare("d.full", bool_domain());
  sys.d_val = sys.vars.declare("d.val", values);
  sys.d_bit = sys.vars.declare("d.bit", bit_domain());
  sys.a_full = sys.vars.declare("a.full", bool_domain());
  sys.a_bit = sys.vars.declare("a.bit", bit_domain());
  sys.s_buf = sys.vars.declare("s.buf", seq_domain(values, 1));
  sys.s_bit = sys.vars.declare("s.bit", bit_domain());
  sys.r_buf = sys.vars.declare("r.buf", seq_domain(values, 1));
  sys.r_bit = sys.vars.declare("r.bit", bit_domain());
  sys.q = sys.vars.declare("q", seq_domain(values, 2));

  const std::vector<VarId> protocol_vars = {
      sys.in.sig,  sys.in.ack, sys.in.val, sys.out.sig, sys.out.ack, sys.out.val,
      sys.d_full,  sys.d_val,  sys.d_bit,  sys.a_full,  sys.a_bit,
      sys.s_buf,   sys.s_bit,  sys.r_buf,  sys.r_bit};

  // Pins every protocol variable outside `changed` (q is never part of the
  // protocol; the refinement witness reconstructs it).
  auto pin_rest = [&](std::vector<VarId> changed) {
    std::vector<VarId> rest;
    for (VarId v : protocol_vars) {
      if (std::find(changed.begin(), changed.end(), v) == changed.end()) rest.push_back(v);
    }
    return ex::unchanged(rest);
  };
  auto clear_d = [&] {
    return ex::land({ex::eq(ex::primed_var(sys.d_full), ex::boolean(false)),
                     ex::eq(ex::primed_var(sys.d_val), ex::constant(values[0])),
                     ex::eq(ex::primed_var(sys.d_bit), ex::integer(0))});
  };
  auto clear_a = [&] {
    return ex::land(ex::eq(ex::primed_var(sys.a_full), ex::boolean(false)),
                    ex::eq(ex::primed_var(sys.a_bit), ex::integer(0)));
  };

  // --- Sender ---
  sys.s_accept = ex::land({ex::neq(ex::var(sys.in.sig), ex::var(sys.in.ack)),
                           ex::eq(ex::var(sys.s_buf), empty_seq()),
                           ex::eq(ex::primed_var(sys.in.ack), flip(sys.in.ack)),
                           ex::eq(ex::primed_var(sys.s_buf), seq1(ex::var(sys.in.val))),
                           pin_rest({sys.in.ack, sys.s_buf})});
  sys.s_send = ex::land({ex::neq(ex::var(sys.s_buf), empty_seq()),
                         ex::eq(ex::var(sys.d_full), ex::boolean(false)),
                         ex::eq(ex::primed_var(sys.d_full), ex::boolean(true)),
                         ex::eq(ex::primed_var(sys.d_val), ex::head(ex::var(sys.s_buf))),
                         ex::eq(ex::primed_var(sys.d_bit), ex::var(sys.s_bit)),
                         pin_rest({sys.d_full, sys.d_val, sys.d_bit})});
  sys.s_ack_match = ex::land({ex::eq(ex::var(sys.a_full), ex::boolean(true)),
                              ex::eq(ex::var(sys.a_bit), ex::var(sys.s_bit)),
                              clear_a(),
                              ex::eq(ex::primed_var(sys.s_bit), flip(sys.s_bit)),
                              ex::eq(ex::primed_var(sys.s_buf), empty_seq()),
                              pin_rest({sys.a_full, sys.a_bit, sys.s_bit, sys.s_buf})});
  sys.s_ack_stale = ex::land({ex::eq(ex::var(sys.a_full), ex::boolean(true)),
                              ex::neq(ex::var(sys.a_bit), ex::var(sys.s_bit)),
                              clear_a(),
                              pin_rest({sys.a_full, sys.a_bit})});

  // --- Receiver ---
  sys.r_rcv_new = ex::land({ex::eq(ex::var(sys.d_full), ex::boolean(true)),
                            ex::eq(ex::var(sys.d_bit), ex::var(sys.r_bit)),
                            ex::eq(ex::var(sys.r_buf), empty_seq()),
                            ex::eq(ex::var(sys.a_full), ex::boolean(false)),
                            clear_d(),
                            ex::eq(ex::primed_var(sys.r_buf), seq1(ex::var(sys.d_val))),
                            ex::eq(ex::primed_var(sys.r_bit), flip(sys.r_bit)),
                            ex::eq(ex::primed_var(sys.a_full), ex::boolean(true)),
                            ex::eq(ex::primed_var(sys.a_bit), ex::var(sys.d_bit)),
                            pin_rest({sys.d_full, sys.d_val, sys.d_bit, sys.r_buf,
                                      sys.r_bit, sys.a_full, sys.a_bit})});
  sys.r_rcv_dup = ex::land({ex::eq(ex::var(sys.d_full), ex::boolean(true)),
                            ex::neq(ex::var(sys.d_bit), ex::var(sys.r_bit)),
                            ex::eq(ex::var(sys.a_full), ex::boolean(false)),
                            clear_d(),
                            ex::eq(ex::primed_var(sys.a_full), ex::boolean(true)),
                            ex::eq(ex::primed_var(sys.a_bit), ex::var(sys.d_bit)),
                            pin_rest({sys.d_full, sys.d_val, sys.d_bit, sys.a_full,
                                      sys.a_bit})});
  sys.r_deliver = ex::land({ex::neq(ex::var(sys.r_buf), empty_seq()),
                            ex::eq(ex::var(sys.out.sig), ex::var(sys.out.ack)),
                            ex::eq(ex::primed_var(sys.out.val), ex::head(ex::var(sys.r_buf))),
                            ex::eq(ex::primed_var(sys.out.sig), flip(sys.out.sig)),
                            ex::eq(ex::primed_var(sys.r_buf), empty_seq()),
                            pin_rest({sys.out.val, sys.out.sig, sys.r_buf})});

  // --- Lossy wires ---
  sys.lose_d = ex::land({ex::eq(ex::var(sys.d_full), ex::boolean(true)), clear_d(),
                         pin_rest({sys.d_full, sys.d_val, sys.d_bit})});
  sys.lose_a = ex::land({ex::eq(ex::var(sys.a_full), ex::boolean(true)), clear_a(),
                         pin_rest({sys.a_full, sys.a_bit})});

  // --- Clients ---
  Expr put = ex::land({ex::eq(ex::var(sys.in.sig), ex::var(sys.in.ack)),
                       ex::eq(ex::primed_var(sys.in.sig), flip(sys.in.sig)),
                       pin_rest({sys.in.sig, sys.in.val})});  // in.val' free
  Expr get = ex::land({ex::neq(ex::var(sys.out.sig), ex::var(sys.out.ack)),
                       ex::eq(ex::primed_var(sys.out.ack), flip(sys.out.ack)),
                       pin_rest({sys.out.ack})});
  sys.client = ex::lor(put, get);

  // --- The complete system ---
  CanonicalSpec& s = sys.system;
  s.name = "ABP";
  s.init = ex::land({channel_init(sys.in), channel_init(sys.out),
                     ex::eq(ex::var(sys.d_full), ex::boolean(false)),
                     ex::eq(ex::var(sys.d_val), ex::constant(values[0])),
                     ex::eq(ex::var(sys.d_bit), ex::integer(0)),
                     ex::eq(ex::var(sys.a_full), ex::boolean(false)),
                     ex::eq(ex::var(sys.a_bit), ex::integer(0)),
                     ex::eq(ex::var(sys.s_buf), empty_seq()),
                     ex::eq(ex::var(sys.s_bit), ex::integer(0)),
                     ex::eq(ex::var(sys.r_buf), empty_seq()),
                     ex::eq(ex::var(sys.r_bit), ex::integer(0))});
  s.next = ex::lor({sys.s_accept, sys.s_send, sys.s_ack_match, sys.s_ack_stale,
                    sys.r_rcv_new, sys.r_rcv_dup, sys.r_deliver, sys.lose_d, sys.lose_a,
                    sys.client});
  s.sub = protocol_vars;

  auto weak = [&](Expr action, const char* label) {
    Fairness f;
    f.kind = Fairness::Kind::Weak;
    f.sub = protocol_vars;
    f.action = std::move(action);
    f.label = label;
    return f;
  };
  auto strong = [&](Expr action, const char* label) {
    Fairness f = weak(std::move(action), label);
    f.kind = Fairness::Kind::Strong;
    return f;
  };
  s.fairness = {
      weak(sys.s_accept, "WF(SAccept)"),
      weak(sys.s_send, "WF(SSend)"),
      weak(ex::lor(sys.s_ack_match, sys.s_ack_stale), "WF(SRcvAck)"),
      weak(sys.r_deliver, "WF(RDeliver)"),
      // Loss keeps toggling the enabledness of every receive action, so WF
      // is too weak: only SF guarantees that infinitely many arrivals mean
      // infinitely many receptions. This includes duplicates — without
      // SF(RRcvDup) the wire can eat every retransmission of an already
      // delivered message and the acknowledgment never regenerates.
      strong(sys.r_rcv_new, "SF(RRcvNew)"),
      strong(sys.r_rcv_dup, "SF(RRcvDup)"),
      strong(sys.s_ack_match, "SF(SAckMatch)"),
  };

  // --- Refinement target ---
  sys.queue = build_queue_specs(sys.vars, sys.in, sys.out, sys.q, /*capacity=*/2, "^abp");
  sys.qbar = ex::concat(ex::var(sys.r_buf),
                        ex::ite(ex::eq(ex::var(sys.r_bit), ex::var(sys.s_bit)),
                                ex::var(sys.s_buf), empty_seq()));
  return sys;
}

}  // namespace opentla
