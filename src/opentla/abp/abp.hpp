// opentla/abp/abp.hpp
//
// The alternating-bit protocol as a second case study (beyond the paper's
// appendix): a sender and a receiver communicate over LOSSY single-message
// wires and still implement a reliable 2-place queue between two-phase
// handshake client interfaces.
//
//    in ==> [Sender s_buf, s_bit] --d (lossy)--> [Receiver r_buf, r_bit] ==> out
//                       ^------------ a (lossy) -----------'
//
// The study exercises the pieces of the library the paper's queue does not
// stress: STRONG fairness (loss defeats weak fairness — a message can be
// retransmitted forever yet never consumed, because reception keeps being
// disabled in between; only SF on the receive actions forces progress),
// and a refinement witness that must decide whether an in-flight value has
// already been delivered:
//
//     qbar = r_buf \o (IF r_bit = s_bit THEN s_buf ELSE <<>>)
//
// (once the receiver flips r_bit past s_bit, the sender's copy is a
// duplicate awaiting acknowledgment, not queue content).

#pragma once

#include "opentla/queue/queue_spec.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

struct AbpSystem {
  VarTable vars;
  Channel in;   // client -> sender handshake
  Channel out;  // receiver -> client handshake
  // Data wire d: at most one (value, tag) message; zeroed when empty.
  VarId d_full = 0, d_val = 0, d_bit = 0;
  // Ack wire a: at most one tag.
  VarId a_full = 0, a_bit = 0;
  // Sender: the value being transmitted (if any) and the current tag.
  VarId s_buf = 0, s_bit = 0;
  // Receiver: the value awaiting delivery (if any) and the expected tag.
  VarId r_buf = 0, r_bit = 0;

  // Actions (each pins every other system variable: the closed system is
  // interleaving by construction).
  Expr s_accept;     // take a client value into s_buf, acknowledge `in`
  Expr s_send;       // (re)transmit <Head(s_buf), s_bit> on d
  Expr s_ack_match;  // consume a matching ack: transfer complete
  Expr s_ack_stale;  // consume and ignore a stale ack
  Expr r_rcv_new;    // consume a fresh message: buffer, flip r_bit, ack
  Expr r_rcv_dup;    // consume a duplicate: re-acknowledge its tag
  Expr r_deliver;    // hand r_buf to the client on `out`
  Expr lose_d;       // the wire drops the data message
  Expr lose_a;       // the wire drops the ack
  Expr client;       // Put on `in` \/ Get on `out` (no fairness: open world)

  /// The complete system: client + sender + receiver + lossy wires, with
  /// the protocol's fairness (WF on send/accept/deliver/ack handling, SF
  /// on the two receive-success actions).
  CanonicalSpec system;

  // The refinement target: a 2-place queue between `in` and `out`, with
  // hidden buffer `q` and WF(QM).
  VarId q = 0;
  QueueSpecs queue;
  Expr qbar;  // the refinement witness described above

  /// The same system with every SF weakened to WF — NOT sufficient for
  /// liveness under loss (used by the negative tests).
  CanonicalSpec system_with_weak_fairness_only() const;
};

/// Values are 0..num_values-1.
AbpSystem make_abp_system(int num_values);

}  // namespace opentla
