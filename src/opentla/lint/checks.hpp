// opentla/lint/checks.hpp
//
// Registry of static checks over a ParsedModule. Each check approximates a
// side condition of the paper syntactically, in milliseconds, before any
// state exploration:
//
//   OTL001  variable declared but never read or constrained
//   OTL002  primed variable inside INIT (a state-predicate context)
//   OTL003  action disjunct reads a variable but leaves it unconstrained
//           (frame-condition gap: a forgotten UNCHANGED conjunct)
//   OTL004  DISJOINT tuples overlap (Proposition 4's precondition fails)
//   OTL005  fairness action not a syntactic subaction of NEXT (Proposition
//           1's machine-closure precondition is not syntactically evident)
//   OTL006  overlapping written footprints between two modules (the
//           syntactic guarantee of E \perp M orthogonality fails) — runs
//           only when linting several modules over a shared universe
//   OTL007  state-space estimate (product of declared domains) exceeds the
//           configured bound
//   OTL008  constant-foldable guard / dead action disjunct
//   OTL009  guard unsatisfiable over the declared domains (interval
//           analysis proves the action can never fire)
//   OTL010  primed assignment provably outside the variable's declared
//           domain (the step can never be taken)
//   OTL011  two NEXT disjuncts with identical effects where one's guard
//           implies the other's (dead disjunct subsumption)
//   OTL012  a module's action writes across two tuples of a composed
//           DISJOINT declaration (the static independence matrix
//           contradicts the declared interleaving) — runs only when
//           linting several modules over a shared universe
//
// Checks never explore states; they use the syntactic machinery of
// expr/analysis (free_vars, decompose_action, fold_constant) and the
// whole-spec dataflow layer in analysis/ (footprints, the interval
// abstract domain, the independence relation). OTL009–OTL011 fire on
// *definite* abstract verdicts only, so they cannot produce false
// positives over the declared domains.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "opentla/lint/diagnostic.hpp"
#include "opentla/parser/parser.hpp"

namespace opentla::lint {

struct LintOptions {
  /// OTL007 warns when the product of declared domain sizes exceeds this.
  std::uint64_t state_bound = 1'000'000;
};

/// One registered per-module check.
struct LintCheck {
  std::string code;
  std::string summary;
  Severity severity;
  std::function<void(const ParsedModule&, const LintOptions&, std::vector<Diagnostic>&)> run;
};

/// The per-module checks (OTL001–OTL005, OTL007–OTL011) in code order.
const std::vector<LintCheck>& check_registry();

/// Runs every registered per-module check on `mod`.
std::vector<Diagnostic> lint_module(const ParsedModule& mod, const LintOptions& opts = {});

/// OTL006: reports variables both modules' next-state actions can change
/// (footprint overlap). Disjoint written footprints are the syntactic
/// guarantee of a \perp b (Proposition 4 via interleaving); an overlap means
/// the orthogonality obligation needs a semantic check. Both modules must
/// live in one shared VarTable universe.
std::vector<Diagnostic> lint_pair(const ParsedModule& a, const ParsedModule& b,
                                  const LintOptions& opts = {});

/// Lints every module and, when modules share one universe, every pair
/// (OTL006 footprint overlap, OTL012 Disjoint contradiction). The written
/// footprint OTL006 compares is analysis::write_footprint.
std::vector<Diagnostic> lint_modules(const std::vector<ParsedModule>& mods,
                                     const LintOptions& opts = {});

}  // namespace opentla::lint
