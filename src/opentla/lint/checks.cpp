#include "opentla/lint/checks.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

#include "opentla/expr/analysis.hpp"

namespace opentla::lint {

namespace {

/// Name and location of the DEFINE/ACTION a spliced expression came from,
/// when the expression is structurally a whole definition body. Macro
/// splicing erases names; this recovers them for readable diagnostics.
struct NamedExpr {
  std::string name;
  SourceLoc loc;
};

std::optional<NamedExpr> definition_of(const ParsedModule& mod, const Expr& e) {
  for (const auto& [name, body] : mod.definitions) {
    if (structurally_equal(e, body)) {
      auto it = mod.locs.definitions.find(name);
      return NamedExpr{name, it == mod.locs.definitions.end() ? SourceLoc{} : it->second};
    }
  }
  return std::nullopt;
}

Diagnostic make(const char* code, Severity severity, const ParsedModule& mod,
                std::string context, SourceLoc loc, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.module_name = mod.name;
  d.context = std::move(context);
  d.loc = loc;
  return d;
}

std::string join_names(const VarTable& vars, const std::vector<VarId>& vs) {
  std::string out;
  for (VarId v : vs) {
    if (!out.empty()) out += ", ";
    out += vars.name(v);
  }
  return out;
}

// --- OTL001: variable declared but never read or constrained ---

void check_unused_variable(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  std::set<VarId> used;
  auto collect = [&used](const Expr& e) {
    if (e.is_null()) return;
    FreeVars fv = free_vars(e);
    used.insert(fv.unprimed.begin(), fv.unprimed.end());
    used.insert(fv.primed.begin(), fv.primed.end());
  };
  collect(mod.spec.init);
  collect(mod.spec.next);
  for (const Fairness& f : mod.spec.fairness) collect(f.action);
  for (const std::vector<VarId>& tuple : mod.disjoint_tuples) {
    used.insert(tuple.begin(), tuple.end());
  }
  for (VarId v : mod.declared) {
    if (used.contains(v)) continue;
    auto it = mod.locs.variables.find(v);
    out.push_back(make("OTL001", Severity::Warning, mod, mod.vars->name(v),
                       it == mod.locs.variables.end() ? SourceLoc{} : it->second,
                       "variable '" + mod.vars->name(v) +
                           "' is declared but never read or constrained"));
  }
}

// --- OTL002: primed variable inside INIT ---

void check_primed_in_init(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.init.is_null()) return;
  FreeVars fv = free_vars(mod.spec.init);
  for (VarId v : fv.primed) {
    out.push_back(make("OTL002", Severity::Error, mod, mod.vars->name(v), mod.locs.init,
                       "INIT is a state predicate but mentions the primed variable '" +
                           mod.vars->name(v) + "''"));
  }
}

// --- OTL003: action disjunct reads a variable it leaves unconstrained ---

void check_frame_gap(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.next.is_null() || mod.is_disjoint()) return;
  for (const Expr& disjunct : flatten_or(mod.spec.next)) {
    FreeVars fv = free_vars(disjunct);
    std::optional<NamedExpr> named = definition_of(mod, disjunct);
    for (VarId v : fv.unprimed) {
      if (fv.primed.contains(v)) continue;
      const std::string where =
          named ? "action '" + named->name + "'" : "an action disjunct of NEXT";
      out.push_back(make("OTL003", Severity::Warning, mod, mod.vars->name(v),
                         named && named->loc.known() ? named->loc : mod.locs.next,
                         where + " reads '" + mod.vars->name(v) + "' but places no " +
                             "constraint on " + mod.vars->name(v) +
                             "' (frame-condition gap: missing UNCHANGED?)"));
    }
  }
}

// --- OTL004: DISJOINT tuples overlap ---

void check_disjoint_overlap(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < mod.disjoint_tuples.size(); ++i) {
    for (std::size_t j = i + 1; j < mod.disjoint_tuples.size(); ++j) {
      std::vector<VarId> overlap;
      for (VarId v : mod.disjoint_tuples[i]) {
        const std::vector<VarId>& other = mod.disjoint_tuples[j];
        if (std::find(other.begin(), other.end(), v) != other.end()) {
          overlap.push_back(v);
        }
      }
      if (overlap.empty()) continue;
      out.push_back(make("OTL004", Severity::Error, mod, join_names(*mod.vars, overlap), mod.locs.disjoint,
                         "Disjoint tuples " + std::to_string(i + 1) + " and " +
                             std::to_string(j + 1) + " share {" +
                             join_names(*mod.vars, overlap) +
                             "}; Proposition 4's precondition fails"));
    }
  }
}

// --- OTL005: fairness action not a syntactic subaction of NEXT ---

void check_fairness_subaction(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.next.is_null()) return;
  const std::vector<Expr> next_disjuncts = flatten_or(mod.spec.next);
  for (std::size_t i = 0; i < mod.spec.fairness.size(); ++i) {
    const Fairness& f = mod.spec.fairness[i];
    for (const Expr& a : flatten_or(f.action)) {
      const bool found =
          std::any_of(next_disjuncts.begin(), next_disjuncts.end(),
                      [&](const Expr& n) { return structurally_equal(a, n); });
      if (found) continue;
      std::optional<NamedExpr> named = definition_of(mod, a);
      const std::string what =
          named ? "'" + named->name + "'" : "a disjunct of its action";
      out.push_back(make("OTL005", Severity::Warning, mod, f.label,
                         i < mod.locs.fairness.size() ? mod.locs.fairness[i] : SourceLoc{},
                         "fairness condition " + std::to_string(i + 1) + " (" + f.label +
                             "): " + what + " is not syntactically a disjunct of NEXT; " +
                             "Proposition 1 (machine closure) does not apply syntactically"));
      break;  // one finding per fairness condition is enough
    }
  }
}

// --- OTL007: state-space size estimate ---

void check_state_space_estimate(const ParsedModule& mod, const LintOptions& opts, std::vector<Diagnostic>& out) {
  long double product = 1.0L;
  for (VarId v : mod.declared) {
    product *= static_cast<long double>(mod.vars->domain(v).size());
  }
  if (mod.declared.empty() || product <= static_cast<long double>(opts.state_bound)) return;
  std::ostringstream estimate;
  estimate.precision(3);
  estimate << product;
  out.push_back(make("OTL007", Severity::Warning, mod, "", mod.locs.module_kw,
                     "declared domains span ~" + estimate.str() +
                         " states (bound " + std::to_string(opts.state_bound) +
                         "); exploration may be intractable"));
}

// --- OTL008: constant-foldable guard / dead disjunct ---

void check_constant_guards(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.next.is_null() || mod.is_disjoint()) return;
  for (const Expr& disjunct : flatten_or(mod.spec.next)) {
    std::optional<NamedExpr> named = definition_of(mod, disjunct);
    const std::string where =
        named ? "action '" + named->name + "'" : "an action disjunct of NEXT";
    const SourceLoc loc =
        named && named->loc.known() ? named->loc : mod.locs.next;
    std::vector<ActionDisjunct> parts = decompose_action(disjunct);
    bool dead = false;
    for (const ActionDisjunct& part : parts) {
      for (const Expr& guard : part.guards) {
        std::optional<Value> v = fold_constant(guard);
        if (!v || !v->is_bool()) continue;
        if (!v->as_bool()) {
          out.push_back(make("OTL008", Severity::Warning, mod, named ? named->name : "", loc,
                             where + " is dead: a guard folds to FALSE"));
          dead = true;
          break;
        }
        out.push_back(make("OTL008", Severity::Warning, mod, named ? named->name : "", loc,
                           where + " has a guard that folds to TRUE (redundant)"));
      }
      if (dead) break;
    }
  }
}

}  // namespace

const std::vector<LintCheck>& check_registry() {
  static const std::vector<LintCheck> registry = {
      {"OTL001", "variable declared but never read or constrained", Severity::Warning,
       check_unused_variable},
      {"OTL002", "primed variable inside INIT", Severity::Error, check_primed_in_init},
      {"OTL003", "action disjunct leaves a read variable unconstrained", Severity::Warning,
       check_frame_gap},
      {"OTL004", "DISJOINT tuples overlap", Severity::Error, check_disjoint_overlap},
      {"OTL005", "fairness action is not a syntactic subaction of NEXT", Severity::Warning,
       check_fairness_subaction},
      {"OTL007", "state-space estimate exceeds the configured bound", Severity::Warning,
       check_state_space_estimate},
      {"OTL008", "constant-foldable guard / dead action disjunct", Severity::Warning,
       check_constant_guards},
  };
  return registry;
}

std::vector<Diagnostic> lint_module(const ParsedModule& mod, const LintOptions& opts) {
  std::vector<Diagnostic> out;
  for (const LintCheck& check : check_registry()) check.run(mod, opts, out);
  return out;
}

std::vector<VarId> written_footprint(const Expr& next) {
  std::set<VarId> written;
  if (!next.is_null()) {
    for (const ActionDisjunct& d : decompose_action(next)) {
      for (const auto& [v, rhs] : d.assignments) {
        const ExprNode& r = rhs.node();
        const bool frame = r.kind == ExprKind::Var && r.var == v && !r.primed;
        if (!frame) written.insert(v);
      }
      for (const Expr& c : d.residual) {
        FreeVars fv = free_vars(c);
        written.insert(fv.primed.begin(), fv.primed.end());
      }
    }
  }
  return {written.begin(), written.end()};
}

std::vector<Diagnostic> lint_pair(const ParsedModule& a, const ParsedModule& b,
                                  const LintOptions&) {
  std::vector<Diagnostic> out;
  const std::vector<VarId> wa = written_footprint(a.spec.next);
  const std::vector<VarId> wb = written_footprint(b.spec.next);
  std::vector<VarId> overlap;
  std::set_intersection(wa.begin(), wa.end(), wb.begin(), wb.end(),
                        std::back_inserter(overlap));
  if (overlap.empty()) return out;
  Diagnostic d;
  d.code = "OTL006";
  d.severity = Severity::Warning;
  d.module_name = a.name;
  d.context = join_names(*a.vars, overlap);
  d.loc = a.locs.next;
  d.message = "modules '" + a.name + "' and '" + b.name +
              "' can both change {" + join_names(*a.vars, overlap) +
              "}; the footprint argument for '" + a.name + "' _|_ '" + b.name +
              "' (Proposition 4 via Disjoint) fails syntactically";
  out.push_back(std::move(d));
  return out;
}

std::vector<Diagnostic> lint_modules(const std::vector<ParsedModule>& mods,
                                     const LintOptions& opts) {
  std::vector<Diagnostic> out;
  for (const ParsedModule& mod : mods) {
    std::vector<Diagnostic> diags = lint_module(mod, opts);
    out.insert(out.end(), diags.begin(), diags.end());
  }
  for (std::size_t i = 0; i < mods.size(); ++i) {
    for (std::size_t j = i + 1; j < mods.size(); ++j) {
      if (mods[i].vars != mods[j].vars) continue;  // distinct universes
      std::vector<Diagnostic> diags = lint_pair(mods[i], mods[j], opts);
      out.insert(out.end(), diags.begin(), diags.end());
    }
  }
  return out;
}

}  // namespace opentla::lint
