#include "opentla/lint/checks.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "opentla/analysis/footprint.hpp"
#include "opentla/analysis/independence.hpp"
#include "opentla/analysis/interval.hpp"
#include "opentla/expr/analysis.hpp"

namespace opentla::lint {

namespace {

/// Name and location of the DEFINE/ACTION a spliced expression came from,
/// when the expression is structurally a whole definition body. Macro
/// splicing erases names; this recovers them for readable diagnostics.
struct NamedExpr {
  std::string name;
  SourceLoc loc;
};

std::optional<NamedExpr> definition_of(const ParsedModule& mod, const Expr& e) {
  for (const auto& [name, body] : mod.definitions) {
    if (structurally_equal(e, body)) {
      auto it = mod.locs.definitions.find(name);
      return NamedExpr{name, it == mod.locs.definitions.end() ? SourceLoc{} : it->second};
    }
  }
  return std::nullopt;
}

Diagnostic make(const char* code, Severity severity, const ParsedModule& mod,
                std::string context, SourceLoc loc, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.module_name = mod.name;
  d.context = std::move(context);
  d.loc = loc;
  return d;
}

std::string join_names(const VarTable& vars, const std::vector<VarId>& vs) {
  std::string out;
  for (VarId v : vs) {
    if (!out.empty()) out += ", ";
    out += vars.name(v);
  }
  return out;
}

// --- OTL001: variable declared but never read or constrained ---

void check_unused_variable(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  std::set<VarId> used;
  auto collect = [&used](const Expr& e) {
    if (e.is_null()) return;
    FreeVars fv = free_vars(e);
    used.insert(fv.unprimed.begin(), fv.unprimed.end());
    used.insert(fv.primed.begin(), fv.primed.end());
  };
  collect(mod.spec.init);
  collect(mod.spec.next);
  for (const Fairness& f : mod.spec.fairness) collect(f.action);
  for (const std::vector<VarId>& tuple : mod.disjoint_tuples) {
    used.insert(tuple.begin(), tuple.end());
  }
  for (VarId v : mod.declared) {
    if (used.contains(v)) continue;
    auto it = mod.locs.variables.find(v);
    out.push_back(make("OTL001", Severity::Warning, mod, mod.vars->name(v),
                       it == mod.locs.variables.end() ? SourceLoc{} : it->second,
                       "variable '" + mod.vars->name(v) +
                           "' is declared but never read or constrained"));
  }
}

// --- OTL002: primed variable inside INIT ---

void check_primed_in_init(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.init.is_null()) return;
  FreeVars fv = free_vars(mod.spec.init);
  for (VarId v : fv.primed) {
    out.push_back(make("OTL002", Severity::Error, mod, mod.vars->name(v), mod.locs.init,
                       "INIT is a state predicate but mentions the primed variable '" +
                           mod.vars->name(v) + "''"));
  }
}

// --- OTL003: action disjunct reads a variable it leaves unconstrained ---

void check_frame_gap(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.next.is_null() || mod.is_disjoint()) return;
  for (const Expr& disjunct : flatten_or(mod.spec.next)) {
    FreeVars fv = free_vars(disjunct);
    std::optional<NamedExpr> named = definition_of(mod, disjunct);
    for (VarId v : fv.unprimed) {
      if (fv.primed.contains(v)) continue;
      const std::string where =
          named ? "action '" + named->name + "'" : "an action disjunct of NEXT";
      out.push_back(make("OTL003", Severity::Warning, mod, mod.vars->name(v),
                         named && named->loc.known() ? named->loc : mod.locs.next,
                         where + " reads '" + mod.vars->name(v) + "' but places no " +
                             "constraint on " + mod.vars->name(v) +
                             "' (frame-condition gap: missing UNCHANGED?)"));
    }
  }
}

// --- OTL004: DISJOINT tuples overlap ---

void check_disjoint_overlap(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < mod.disjoint_tuples.size(); ++i) {
    for (std::size_t j = i + 1; j < mod.disjoint_tuples.size(); ++j) {
      std::vector<VarId> overlap;
      for (VarId v : mod.disjoint_tuples[i]) {
        const std::vector<VarId>& other = mod.disjoint_tuples[j];
        if (std::find(other.begin(), other.end(), v) != other.end()) {
          overlap.push_back(v);
        }
      }
      if (overlap.empty()) continue;
      out.push_back(make("OTL004", Severity::Error, mod, join_names(*mod.vars, overlap), mod.locs.disjoint,
                         "Disjoint tuples " + std::to_string(i + 1) + " and " +
                             std::to_string(j + 1) + " share {" +
                             join_names(*mod.vars, overlap) +
                             "}; Proposition 4's precondition fails"));
    }
  }
}

// --- OTL005: fairness action not a syntactic subaction of NEXT ---

void check_fairness_subaction(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.next.is_null()) return;
  const std::vector<Expr> next_disjuncts = flatten_or(mod.spec.next);
  for (std::size_t i = 0; i < mod.spec.fairness.size(); ++i) {
    const Fairness& f = mod.spec.fairness[i];
    for (const Expr& a : flatten_or(f.action)) {
      const bool found =
          std::any_of(next_disjuncts.begin(), next_disjuncts.end(),
                      [&](const Expr& n) { return structurally_equal(a, n); });
      if (found) continue;
      std::optional<NamedExpr> named = definition_of(mod, a);
      const std::string what =
          named ? "'" + named->name + "'" : "a disjunct of its action";
      out.push_back(make("OTL005", Severity::Warning, mod, f.label,
                         i < mod.locs.fairness.size() ? mod.locs.fairness[i] : SourceLoc{},
                         "fairness condition " + std::to_string(i + 1) + " (" + f.label +
                             "): " + what + " is not syntactically a disjunct of NEXT; " +
                             "Proposition 1 (machine closure) does not apply syntactically"));
      break;  // one finding per fairness condition is enough
    }
  }
}

// --- OTL007: state-space size estimate ---

void check_state_space_estimate(const ParsedModule& mod, const LintOptions& opts, std::vector<Diagnostic>& out) {
  long double product = 1.0L;
  for (VarId v : mod.declared) {
    product *= static_cast<long double>(mod.vars->domain(v).size());
  }
  if (mod.declared.empty() || product <= static_cast<long double>(opts.state_bound)) return;
  std::ostringstream estimate;
  estimate.precision(3);
  estimate << product;
  out.push_back(make("OTL007", Severity::Warning, mod, "", mod.locs.module_kw,
                     "declared domains span ~" + estimate.str() +
                         " states (bound " + std::to_string(opts.state_bound) +
                         "); exploration may be intractable"));
}

// --- OTL008: constant-foldable guard / dead disjunct ---

void check_constant_guards(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.next.is_null() || mod.is_disjoint()) return;
  for (const Expr& disjunct : flatten_or(mod.spec.next)) {
    std::optional<NamedExpr> named = definition_of(mod, disjunct);
    const std::string where =
        named ? "action '" + named->name + "'" : "an action disjunct of NEXT";
    const SourceLoc loc =
        named && named->loc.known() ? named->loc : mod.locs.next;
    std::vector<ActionDisjunct> parts = decompose_action(disjunct);
    bool dead = false;
    for (const ActionDisjunct& part : parts) {
      for (const Expr& guard : part.guards) {
        std::optional<Value> v = fold_constant(guard);
        if (!v || !v->is_bool()) continue;
        if (!v->as_bool()) {
          out.push_back(make("OTL008", Severity::Warning, mod, named ? named->name : "", loc,
                             where + " is dead: a guard folds to FALSE"));
          dead = true;
          break;
        }
        out.push_back(make("OTL008", Severity::Warning, mod, named ? named->name : "", loc,
                           where + " has a guard that folds to TRUE (redundant)"));
      }
      if (dead) break;
    }
  }
}

// --- OTL009: guard unsatisfiable over the declared domains ---

// True iff some guard of `part` folds to the constant FALSE — OTL008's
// territory; OTL009 skips such parts instead of double-reporting.
bool has_constant_false_guard(const ActionDisjunct& part) {
  for (const Expr& guard : part.guards) {
    std::optional<Value> v = fold_constant(guard);
    if (v && v->is_bool() && !v->as_bool()) return true;
  }
  return false;
}

void check_guard_unsat(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.next.is_null() || mod.is_disjoint()) return;
  for (const Expr& disjunct : flatten_or(mod.spec.next)) {
    std::optional<NamedExpr> named = definition_of(mod, disjunct);
    const std::string where =
        named ? "action '" + named->name + "'" : "an action disjunct of NEXT";
    const SourceLoc loc = named && named->loc.known() ? named->loc : mod.locs.next;
    for (const ActionDisjunct& part : decompose_action(disjunct)) {
      if (has_constant_false_guard(part)) continue;
      analysis::AbstractEnv env = analysis::initial_env(*mod.vars);
      if (!analysis::refine_by_guards(part.guards, env)) {
        out.push_back(make("OTL009", Severity::Warning, mod, named ? named->name : "", loc,
                           where + " has guards that are unsatisfiable over the declared "
                                   "domains; the action can never fire"));
        break;  // one finding per disjunct
      }
    }
  }
}

// --- OTL010: primed assignment provably outside the declared domain ---

void check_domain_escape(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.next.is_null() || mod.is_disjoint()) return;
  for (const Expr& disjunct : flatten_or(mod.spec.next)) {
    std::optional<NamedExpr> named = definition_of(mod, disjunct);
    const std::string where =
        named ? "action '" + named->name + "'" : "an action disjunct of NEXT";
    const SourceLoc loc = named && named->loc.known() ? named->loc : mod.locs.next;
    for (const ActionDisjunct& part : decompose_action(disjunct)) {
      analysis::AbstractEnv env = analysis::initial_env(*mod.vars);
      if (!analysis::refine_by_guards(part.guards, env)) continue;  // OTL009's finding
      for (const auto& [v, rhs] : part.assignments) {
        const Domain& dom = mod.vars->domain(v);
        bool escapes = false;
        if (std::optional<Value> c = fold_constant(rhs)) {
          // A constant right-hand side checks exactly (this also catches
          // holes in non-contiguous domains).
          escapes = !dom.contains(*c);
        } else {
          const analysis::AbsVal a = analysis::abs_eval(rhs, env);
          const analysis::AbsVal d = analysis::abstract_domain(dom);
          if (a.kind == analysis::AbsVal::Kind::Int && d.kind == analysis::AbsVal::Kind::Int) {
            escapes = analysis::meet(a.iv, d.iv).empty();
          } else if (a.kind == analysis::AbsVal::Kind::Bool &&
                     d.kind == analysis::AbsVal::Kind::Bool) {
            escapes = (a.must_true() && !d.may_true) || (a.must_false() && !d.may_false);
          } else if ((a.kind == analysis::AbsVal::Kind::Int &&
                      d.kind == analysis::AbsVal::Kind::Bool) ||
                     (a.kind == analysis::AbsVal::Kind::Bool &&
                      d.kind == analysis::AbsVal::Kind::Int)) {
            escapes = true;  // integer vs boolean: no common value
          }
        }
        if (!escapes) continue;
        out.push_back(make("OTL010", Severity::Error, mod, mod.vars->name(v), loc,
                           where + " assigns " + mod.vars->name(v) +
                               "' a value provably outside the declared domain of '" +
                               mod.vars->name(v) + "'; the step can never be taken"));
      }
    }
  }
}

// --- OTL011: dead disjunct subsumption ---

// Identical effect: the same assignment map (by variable, structurally
// equal right-hand sides) and the same residual conjuncts.
bool same_effect(const ActionDisjunct& a, const ActionDisjunct& b) {
  if (a.assignments.size() != b.assignments.size()) return false;
  if (a.residual.size() != b.residual.size()) return false;
  std::map<VarId, Expr> bm;
  for (const auto& [v, rhs] : b.assignments) bm.emplace(v, rhs);
  for (const auto& [v, rhs] : a.assignments) {
    auto it = bm.find(v);
    if (it == bm.end() || !structurally_equal(rhs, it->second)) return false;
  }
  for (std::size_t i = 0; i < a.residual.size(); ++i) {
    if (!structurally_equal(a.residual[i], b.residual[i])) return false;
  }
  return true;
}

// True iff every guard of `weaker` provably holds whenever `stronger`'s
// guards do: structurally present, or abstractly True in the interval
// environment refined by `stronger`'s guards.
bool guards_imply(const VarTable& vars, const std::vector<Expr>& stronger,
                  const std::vector<Expr>& weaker) {
  analysis::AbstractEnv env = analysis::initial_env(vars);
  if (!analysis::refine_by_guards(stronger, env)) return false;  // unsat: OTL009's finding
  for (const Expr& g : weaker) {
    const bool structural = std::any_of(stronger.begin(), stronger.end(), [&](const Expr& s) {
      return structurally_equal(g, s);
    });
    if (structural) continue;
    if (analysis::abs_truth(g, env) != analysis::Truth::True) return false;
  }
  return true;
}

void check_subsumed_disjunct(const ParsedModule& mod, const LintOptions&, std::vector<Diagnostic>& out) {
  if (mod.spec.next.is_null() || mod.is_disjoint()) return;
  const std::vector<Expr> disjuncts = flatten_or(mod.spec.next);
  std::vector<std::vector<ActionDisjunct>> parts;
  parts.reserve(disjuncts.size());
  for (const Expr& d : disjuncts) parts.push_back(decompose_action(d));
  std::vector<std::optional<NamedExpr>> named(disjuncts.size());
  for (std::size_t i = 0; i < disjuncts.size(); ++i) named[i] = definition_of(mod, disjuncts[i]);
  auto display = [&](std::size_t i) {
    return named[i] ? "action '" + named[i]->name + "'"
                    : "NEXT disjunct " + std::to_string(i + 1);
  };
  for (std::size_t i = 0; i < disjuncts.size(); ++i) {
    for (std::size_t j = i + 1; j < disjuncts.size(); ++j) {
      if (parts[i].size() != 1 || parts[j].size() != 1) continue;
      const ActionDisjunct& a = parts[i][0];
      const ActionDisjunct& b = parts[j][0];
      if (!same_effect(a, b)) continue;
      // If b's guards imply a's, every b step is already an a step: b is
      // dead (and symmetrically).
      const bool b_subsumed = guards_imply(*mod.vars, b.guards, a.guards);
      const bool a_subsumed = !b_subsumed && guards_imply(*mod.vars, a.guards, b.guards);
      if (!b_subsumed && !a_subsumed) continue;
      const std::size_t dead = b_subsumed ? j : i;
      const std::size_t live = b_subsumed ? i : j;
      out.push_back(make("OTL011", Severity::Warning, mod,
                         named[dead] ? named[dead]->name : "",
                         named[dead] && named[dead]->loc.known() ? named[dead]->loc
                                                                 : mod.locs.next,
                         display(dead) + " is subsumed by " + display(live) +
                             ": identical effect and its guard implies the other's "
                             "(dead disjunct)"));
    }
  }
}

}  // namespace

const std::vector<LintCheck>& check_registry() {
  static const std::vector<LintCheck> registry = {
      {"OTL001", "variable declared but never read or constrained", Severity::Warning,
       check_unused_variable},
      {"OTL002", "primed variable inside INIT", Severity::Error, check_primed_in_init},
      {"OTL003", "action disjunct leaves a read variable unconstrained", Severity::Warning,
       check_frame_gap},
      {"OTL004", "DISJOINT tuples overlap", Severity::Error, check_disjoint_overlap},
      {"OTL005", "fairness action is not a syntactic subaction of NEXT", Severity::Warning,
       check_fairness_subaction},
      {"OTL007", "state-space estimate exceeds the configured bound", Severity::Warning,
       check_state_space_estimate},
      {"OTL008", "constant-foldable guard / dead action disjunct", Severity::Warning,
       check_constant_guards},
      {"OTL009", "guards unsatisfiable over the declared domains", Severity::Warning,
       check_guard_unsat},
      {"OTL010", "primed assignment provably outside the declared domain", Severity::Error,
       check_domain_escape},
      {"OTL011", "dead disjunct subsumption (identical effect, implied guard)", Severity::Warning,
       check_subsumed_disjunct},
  };
  return registry;
}

std::vector<Diagnostic> lint_module(const ParsedModule& mod, const LintOptions& opts) {
  std::vector<Diagnostic> out;
  for (const LintCheck& check : check_registry()) check.run(mod, opts, out);
  return out;
}

std::vector<Diagnostic> lint_pair(const ParsedModule& a, const ParsedModule& b,
                                  const LintOptions&) {
  std::vector<Diagnostic> out;
  const std::vector<VarId> wa = analysis::write_footprint(a.spec.next);
  const std::vector<VarId> wb = analysis::write_footprint(b.spec.next);
  std::vector<VarId> overlap;
  std::set_intersection(wa.begin(), wa.end(), wb.begin(), wb.end(),
                        std::back_inserter(overlap));
  if (overlap.empty()) return out;
  Diagnostic d;
  d.code = "OTL006";
  d.severity = Severity::Warning;
  d.module_name = a.name;
  d.context = join_names(*a.vars, overlap);
  d.loc = a.locs.next;
  d.message = "modules '" + a.name + "' and '" + b.name +
              "' can both change {" + join_names(*a.vars, overlap) +
              "}; the footprint argument for '" + a.name + "' _|_ '" + b.name +
              "' (Proposition 4 via Disjoint) fails syntactically";
  out.push_back(std::move(d));
  return out;
}

namespace {

// --- OTL012: a component action writes across DISJOINT tuples ---
//
// Disjoint(t_1, ..., t_n) declares the composed system an interleaving:
// every step changes at most one tuple, so actions confined to different
// tuples commute (Proposition 4). A component whose action unit writes
// variables of two tuples cannot be a step of any single tuple's
// interleaving — its row of the static independence matrix contradicts
// the declaration.
std::vector<Diagnostic> lint_disjoint_contradiction(const ParsedModule& disjoint_mod,
                                                    const ParsedModule& component) {
  std::vector<Diagnostic> out;
  for (const analysis::ActionUnit& u : analysis::module_action_units(component)) {
    std::vector<std::size_t> touched;
    std::vector<VarId> witnesses;
    for (std::size_t t = 0; t < disjoint_mod.disjoint_tuples.size(); ++t) {
      const std::vector<VarId>& tuple = disjoint_mod.disjoint_tuples[t];
      for (VarId v : u.fp.writes) {
        if (std::find(tuple.begin(), tuple.end(), v) != tuple.end()) {
          touched.push_back(t);
          witnesses.push_back(v);
          break;
        }
      }
    }
    if (touched.size() < 2) continue;
    auto loc_it = component.locs.definitions.find(u.name);
    Diagnostic d;
    d.code = "OTL012";
    d.severity = Severity::Error;
    d.module_name = component.name;
    d.context = u.name;
    d.loc = loc_it != component.locs.definitions.end() ? loc_it->second
                                                       : component.locs.next;
    d.message = "action '" + u.name + "' of module '" + component.name +
                "' writes across Disjoint tuples " + std::to_string(touched[0] + 1) +
                " and " + std::to_string(touched[1] + 1) + " of '" + disjoint_mod.name +
                "' (" + join_names(*component.vars, {witnesses[0]}) + " and " +
                join_names(*component.vars, {witnesses[1]}) +
                "); the static independence matrix contradicts the declared interleaving";
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> lint_modules(const std::vector<ParsedModule>& mods,
                                     const LintOptions& opts) {
  std::vector<Diagnostic> out;
  for (const ParsedModule& mod : mods) {
    std::vector<Diagnostic> diags = lint_module(mod, opts);
    out.insert(out.end(), diags.begin(), diags.end());
  }
  for (std::size_t i = 0; i < mods.size(); ++i) {
    for (std::size_t j = i + 1; j < mods.size(); ++j) {
      if (mods[i].vars != mods[j].vars) continue;  // distinct universes
      std::vector<Diagnostic> diags = lint_pair(mods[i], mods[j], opts);
      out.insert(out.end(), diags.begin(), diags.end());
      // OTL012 pairs a DISJOINT declaration with each component module.
      for (auto [d, m] : {std::pair{i, j}, std::pair{j, i}}) {
        if (!mods[d].is_disjoint() || mods[m].is_disjoint()) continue;
        std::vector<Diagnostic> contra = lint_disjoint_contradiction(mods[d], mods[m]);
        out.insert(out.end(), contra.begin(), contra.end());
      }
    }
  }
  return out;
}

}  // namespace opentla::lint
