// opentla/lint/diagnostic.hpp
//
// The diagnostics engine of the static spec analyzer. A `Diagnostic` is one
// finding of a lint check: a stable code (OTL001, ...), a severity, a
// human-readable message, the variable or definition it concerns, and the
// source location recorded by the parser. Renderers produce the classic
// compiler-style `file:line:col: severity: message [CODE]` form and a
// machine-readable JSON array for tooling.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opentla/parser/parser.hpp"

namespace opentla::lint {

enum class Severity : std::uint8_t { Info, Warning, Error };

const char* to_string(Severity s);

/// One finding of a static check.
struct Diagnostic {
  std::string code;         // stable check id, e.g. "OTL003"
  Severity severity = Severity::Warning;
  std::string message;
  std::string module_name;  // module the finding is in
  std::string context;      // variable / definition name, may be empty
  SourceLoc loc;            // statement or declaration the finding points at
  std::string file;         // filled by drivers that know the input path
};

/// True iff any diagnostic has Error severity.
bool has_errors(const std::vector<Diagnostic>& diags);

/// `file:line:col: severity: message [CODE]`, one line per diagnostic,
/// followed by a `N finding(s)` summary line (omitted when empty).
std::string render_human(const std::vector<Diagnostic>& diags);

/// JSON array of objects with keys file, module, code, severity, line,
/// column, context, message. Always valid JSON (`[]` when empty).
std::string render_json(const std::vector<Diagnostic>& diags);

}  // namespace opentla::lint
