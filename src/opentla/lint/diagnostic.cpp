#include "opentla/lint/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace opentla::lint {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(),
                     [](const Diagnostic& d) { return d.severity == Severity::Error; });
}

std::string render_human(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << (d.file.empty() ? d.module_name : d.file);
    if (d.loc.known()) out << ":" << d.loc.line << ":" << d.loc.column;
    out << ": " << to_string(d.severity) << ": " << d.message << " [" << d.code << "]\n";
  }
  if (!diags.empty()) {
    out << diags.size() << (diags.size() == 1 ? " finding\n" : " findings\n");
  }
  return out.str();
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string render_json(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i > 0) out << ",";
    out << "\n  {\"file\": \"" << json_escape(d.file) << "\""
        << ", \"module\": \"" << json_escape(d.module_name) << "\""
        << ", \"code\": \"" << json_escape(d.code) << "\""
        << ", \"severity\": \"" << to_string(d.severity) << "\""
        << ", \"line\": " << d.loc.line
        << ", \"column\": " << d.loc.column
        << ", \"context\": \"" << json_escape(d.context) << "\""
        << ", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  if (!diags.empty()) out << "\n";
  out << "]\n";
  return out.str();
}

}  // namespace opentla::lint
