// opentla/obs/progress.hpp
//
// Live progress heartbeat: a ProgressSampler runs a background thread
// that periodically snapshots the cheap live instruments (states
// interned, frontier size, resident set size) and delivers a
// ProgressSample to a sink callback. Long `states`/`compose`/`--threads
// N` runs use it to prove liveness to the operator before they finish.
//
// Delivery guarantees: one sample is emitted synchronously from the
// constructor (seq 0), one per elapsed period from the background
// thread, and one final sample from stop() after the thread has joined —
// so every run observes at least two samples, and the sink is never
// called concurrently with itself.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace opentla::obs {

/// One heartbeat. Timestamps are microseconds on the shared obs epoch
/// (now_us()); rates are computed over the interval since the previous
/// sample.
struct ProgressSample {
  std::uint64_t seq = 0;          // 0 = start, then 1, 2, ...; last = final
  bool final_sample = false;      // true for the sample stop() emits
  std::uint64_t ts_us = 0;        // obs epoch timestamp
  std::uint64_t elapsed_us = 0;   // since the sampler started
  std::uint64_t states = 0;       // Counter::StatesGenerated total
  std::uint64_t frontier = 0;     // Level::FrontierSize current value
  double states_per_sec = 0.0;    // over the last inter-sample interval
  std::uint64_t rss_bytes = 0;    // resident set size, 0 if unreadable
  std::uint64_t tracked_bytes = 0;   // live bytes across tracked mem domains
  std::uint64_t bytes_per_state = 0; // tracked live bytes / states, 0 early
};

/// Background heartbeat thread. Construct to start sampling, call stop()
/// (or destroy) to join and emit the final sample. The sink runs on the
/// sampler thread for periodic samples and on the caller's thread for
/// the first and final ones; calls never overlap.
class ProgressSampler {
 public:
  using Sink = std::function<void(const ProgressSample&)>;

  ProgressSampler(std::chrono::milliseconds period, Sink sink);
  ~ProgressSampler();
  ProgressSampler(const ProgressSampler&) = delete;
  ProgressSampler& operator=(const ProgressSampler&) = delete;

  /// Joins the thread and emits the final sample. Idempotent.
  void stop();

 private:
  ProgressSample make_sample();
  void emit(ProgressSample s);
  void run();

  std::chrono::milliseconds period_;
  Sink sink_;
  std::uint64_t start_us_ = 0;

  // Rate state: touched only inside emit(), which is never concurrent
  // with itself (constructor emit -> thread emits -> post-join emit).
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_ts_us_ = 0;
  std::uint64_t last_states_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace opentla::obs
