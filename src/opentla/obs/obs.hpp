// opentla/obs/obs.hpp
//
// Zero-dependency observability layer for the checking engine: monotonic
// counters and peak gauges for the hot algorithms (successor generation,
// subset construction, SCC refinement, fair-cycle search, product
// inclusion), RAII timer spans with parent/child nesting, and a
// thread-safe global registry. Three renderers serve different consumers:
// a human table, a JSON object, and the Chrome trace_event format that
// `chrome://tracing` and Perfetto load directly.
//
// Instrumentation sites use the OPENTLA_OBS_* macros below. They are
// gated twice: at compile time by OPENTLA_OBS_ENABLED (the default build
// defines it to 1; -DOPENTLA_OBS=OFF builds define it to 0, turning every
// macro into `((void)0)`), and at runtime by a relaxed atomic flag, so an
// instrumented-but-disabled build pays one predictable branch per site.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#ifndef OPENTLA_OBS_ENABLED
#define OPENTLA_OBS_ENABLED 1
#endif

namespace opentla::obs {

// --- Counters: monotonic event totals, one atomic cell each. ---
enum class Counter : std::size_t {
  StatesGenerated,         // states interned while building a StateGraph
  SuccessorsEnumerated,    // distinct successors emitted by ActionSuccessors
  EnabledEvaluations,      // ENABLED queries answered by ActionSuccessors
  ConfigsExpanded,         // hidden-variable assignments stepped by PrefixMachine
  SccPasses,               // Tarjan decompositions run
  LassoCandidates,         // SCCs examined as fair-cycle candidates
  InclusionPairs,          // (product node, target config) pairs visited
  ProductNodes,            // nodes interned by ConstraintExplorer
  ProductSteps,            // ProductMachine::step calls
  FreezeSteps,             // FreezeMachine::step calls
  RefinementEdgesChecked,  // low edges checked against [HighNext]_v
  OracleEvaluations,       // lasso-oracle formula node evaluations
  ParStatesExpanded,       // states expanded by parallel exploration workers
  ParSteals,               // work items stolen from another worker's deque
  ParShardContention,      // seen-set shard locks that were contended
  kCount
};

// --- Gauges: high-water marks, updated with atomic max. ---
enum class Gauge : std::size_t {
  PeakConfigurationCount,  // largest prefix-machine configuration seen
  PeakGraphStates,         // largest single StateGraph built
  PeakProductNodes,        // largest ConstraintExplorer node set built
  PeakParWorkers,          // widest worker pool used by parallel exploration
  kCount
};

constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::kCount);

/// Stable snake_case identifiers used by every renderer and BENCH_*.json.
const char* name(Counter c);
const char* name(Gauge g);

namespace detail {

struct Bank {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kNumGauges> gauges{};
};

extern Bank g_bank;
extern std::atomic<bool> g_enabled;

}  // namespace detail

/// Runtime toggle. Off by default; `tlacheck profile`, `--stats` and the
/// bench harness turn it on. Sites check this with a relaxed load.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);

/// True in builds whose instrumentation macros are live.
constexpr bool compile_time_enabled() { return OPENTLA_OBS_ENABLED != 0; }

inline void count(Counter c, std::uint64_t n = 1) {
  detail::g_bank.counters[static_cast<std::size_t>(c)].fetch_add(n,
                                                                 std::memory_order_relaxed);
}

inline void gauge_max(Gauge g, std::uint64_t v) {
  auto& cell = detail::g_bank.gauges[static_cast<std::size_t>(g)];
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (v > cur && !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// --- Spans ---

/// One completed timer span. `parent` is the id of the span that was open
/// on the same thread when this one started (0 = root). Timestamps are
/// microseconds since the process-wide epoch, which is what trace_event
/// `ts`/`dur` expect.
struct SpanRecord {
  std::string name;
  std::uint32_t id = 0;
  std::uint32_t parent = 0;
  std::uint32_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// RAII timer span. Construction is a no-op when the runtime flag is off
/// — the inline constructors test the flag before materializing the name,
/// so a disabled literal-named span costs one relaxed load and a branch
/// (no std::string allocation, no out-of-line call). Destruction appends
/// a SpanRecord to the global registry. Nesting is tracked per thread.
class Span {
 public:
  explicit Span(const char* span_name) {
    if (enabled()) open(span_name);
  }
  explicit Span(std::string span_name) {
    if (enabled()) open(std::move(span_name));
  }
  ~Span() {
    if (active_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(std::string span_name);
  void close();

  bool active_ = false;
  std::uint32_t id_ = 0;
  std::uint32_t parent_ = 0;
  std::uint64_t start_us_ = 0;
  std::string name_;
};

// --- Snapshot and registry operations ---

struct Snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumGauges> gauges{};
  std::vector<SpanRecord> spans;
  std::uint64_t spans_dropped = 0;

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  std::uint64_t gauge(Gauge g) const { return gauges[static_cast<std::size_t>(g)]; }
};

/// Copy the registry's current totals (counters, gauges, completed spans).
Snapshot snapshot();

/// Zero all counters and gauges and drop all recorded spans.
void reset();

/// Scoped sink: remembers the registry baseline and the previous runtime
/// flag at construction, enables collection, and restores the flag at
/// destruction. `take()` returns only what happened inside the scope, so
/// sinks nest (each sees its own delta) and drivers never have to reset
/// the global registry.
class ScopedSink {
 public:
  ScopedSink();
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

  Snapshot take() const;

 private:
  std::array<std::uint64_t, kNumCounters> base_counters_{};
  std::size_t base_spans_ = 0;
  bool prev_enabled_ = false;
};

// --- Renderers ---

/// Minimal JSON string escaping (shared with the CLI's JSON emitters).
std::string json_escape(const std::string& s);

/// Aligned table: all counters and gauges, then spans aggregated by name
/// (count, total/self milliseconds).
std::string render_human(const Snapshot& snap);

/// One JSON object: {"counters": {...}, "gauges": {...}, "spans": [...]}.
std::string render_json(const Snapshot& snap);

/// Chrome trace_event JSON ({"traceEvents": [...]}): one "X" complete
/// event per span plus one "C" counter sample per nonzero counter.
/// Loadable in chrome://tracing and https://ui.perfetto.dev.
std::string render_chrome_trace(const Snapshot& snap);

/// Write `BENCH_<bench_name>.json` (schema tools/bench_schema.json) into
/// the current directory: counters + gauges for the whole process run.
/// Returns the path written, or an empty string on I/O failure.
std::string write_bench_json(const std::string& bench_name, const Snapshot& snap);

}  // namespace opentla::obs

// --- Instrumentation macros ---
//
// These, not the functions above, are what engine code uses: a build with
// OPENTLA_OBS_ENABLED=0 compiles every site to `((void)0)` with all
// arguments unevaluated.

#if OPENTLA_OBS_ENABLED

#define OPENTLA_OBS_COUNT(counter_id)                                   \
  do {                                                                  \
    if (::opentla::obs::enabled())                                      \
      ::opentla::obs::count(::opentla::obs::Counter::counter_id);       \
  } while (0)

#define OPENTLA_OBS_COUNT_N(counter_id, n)                              \
  do {                                                                  \
    if (::opentla::obs::enabled())                                      \
      ::opentla::obs::count(::opentla::obs::Counter::counter_id,        \
                            static_cast<std::uint64_t>(n));             \
  } while (0)

#define OPENTLA_OBS_GAUGE_MAX(gauge_id, v)                              \
  do {                                                                  \
    if (::opentla::obs::enabled())                                      \
      ::opentla::obs::gauge_max(::opentla::obs::Gauge::gauge_id,        \
                                static_cast<std::uint64_t>(v));         \
  } while (0)

#define OPENTLA_OBS_CONCAT_IMPL(a, b) a##b
#define OPENTLA_OBS_CONCAT(a, b) OPENTLA_OBS_CONCAT_IMPL(a, b)

// `name_expr` may be a string literal (free when disabled: the inline
// ctor tests the flag before converting to std::string) or a dynamic
// std::string expression (evaluated regardless — reserve those for cold
// call sites such as per-proof-step spans).
#define OPENTLA_OBS_SPAN(name_expr) \
  ::opentla::obs::Span OPENTLA_OBS_CONCAT(opentla_obs_span_, __LINE__)(name_expr)

#else  // !OPENTLA_OBS_ENABLED

#define OPENTLA_OBS_COUNT(counter_id) ((void)0)
#define OPENTLA_OBS_COUNT_N(counter_id, n) ((void)0)
#define OPENTLA_OBS_GAUGE_MAX(gauge_id, v) ((void)0)
#define OPENTLA_OBS_SPAN(name_expr) ((void)0)

#endif  // OPENTLA_OBS_ENABLED
