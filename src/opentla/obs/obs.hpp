// opentla/obs/obs.hpp
//
// Zero-dependency observability layer for the checking engine: monotonic
// counters and peak gauges for the hot algorithms (successor generation,
// subset construction, SCC refinement, fair-cycle search, product
// inclusion), string-labeled counters over a bounded interned label table
// (per-action coverage), power-of-two-bucket histograms (successor
// fanout, worker balance, shard probe lengths), level gauges that track a
// current value (frontier size, for live progress), phase-boundary
// events, and RAII timer spans with parent/child nesting — all behind a
// thread-safe global registry. Renderers serve different consumers: a
// human table, a JSON object, the Chrome trace_event format, and an
// OpenMetrics/Prometheus exposition (see export.hpp).
//
// Instrumentation sites use the OPENTLA_OBS_* macros below. They are
// gated twice: at compile time by OPENTLA_OBS_ENABLED (the default build
// defines it to 1; -DOPENTLA_OBS=OFF builds define it to 0, turning every
// macro into `((void)0)`), and at runtime by a relaxed atomic flag, so an
// instrumented-but-disabled build pays one predictable branch per site.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#ifndef OPENTLA_OBS_ENABLED
#define OPENTLA_OBS_ENABLED 1
#endif

namespace opentla::obs {

// --- Counters: monotonic event totals, one atomic cell each. ---
enum class Counter : std::size_t {
  StatesGenerated,         // states interned while building a StateGraph
  SuccessorsEnumerated,    // distinct successors emitted by ActionSuccessors
  EnabledEvaluations,      // ENABLED queries answered by ActionSuccessors
  ConfigsExpanded,         // hidden-variable assignments stepped by PrefixMachine
  SccPasses,               // Tarjan decompositions run
  LassoCandidates,         // SCCs examined as fair-cycle candidates
  InclusionPairs,          // (product node, target config) pairs visited
  ProductNodes,            // nodes interned by ConstraintExplorer
  ProductSteps,            // ProductMachine::step calls
  FreezeSteps,             // FreezeMachine::step calls
  RefinementEdgesChecked,  // low edges checked against [HighNext]_v
  OracleEvaluations,       // lasso-oracle formula node evaluations
  BehaviorsChecked,        // lasso behaviors examined by bounded validity
  ParStatesExpanded,       // states expanded by parallel exploration workers
  ParSteals,               // work items stolen from another worker's deque
  ParShardContention,      // seen-set shard locks that were contended
  CompletionsPruned,       // completions skipped by residual subtree cuts
  ResidualEarlyCuts,       // residual conjuncts that failed before full depth
  AnalysisPairsIndependent,  // action pairs the static matrix proves commute
  AnalysisPairsDependent,    // action pairs left dependent (incl. fallback)
  BudgetStops,             // run-budget breaches latched (RunBudget::request_stop)
  VmProgramsCompiled,      // expressions lowered to bytecode by vm::compile
  VmInstrsExecuted,        // bytecode instructions retired by the VM interpreter
  kCount
};

// --- Gauges: high-water marks, updated with atomic max. ---
enum class Gauge : std::size_t {
  PeakConfigurationCount,  // largest prefix-machine configuration seen
  PeakGraphStates,         // largest single StateGraph built
  PeakProductNodes,        // largest ConstraintExplorer node set built
  PeakParWorkers,          // widest worker pool used by parallel exploration
  PeakRssBytes,            // resident-set high-water (fed by progress samples)
  kCount
};

// --- Levels: current-value gauges (plain atomic store, last write wins).
// Unlike Gauge these go up and down; the ProgressSampler reads them live.
enum class Level : std::size_t {
  FrontierSize,  // states discovered but not yet expanded
  kCount
};

// --- Labeled counters: one family x interned-label table of atomic cells.
// Labels are interned once (cold path, e.g. at ActionSuccessors
// construction); counting is an index into a fixed table.
enum class LabeledCounter : std::size_t {
  ActionFired,    // successors emitted, attributed to the labeled action
  ActionEnabled,  // expansions in which the labeled action had a successor
  kCount
};

// --- Histograms: power-of-two buckets. Bucket 0 holds the value 0;
// bucket i (i >= 1) holds values in (2^(i-2), 2^(i-1)], i.e. the `le`
// upper bounds run 0, 1, 2, 4, 8, ...; the last bucket is unbounded.
enum class Histogram : std::size_t {
  SuccessorFanout,      // distinct successors (incl. stuttering self-loop) per expanded state
  ParWorkerExpansions,  // states expanded per parallel worker (one sample each)
  ShardProbeLength,     // hash-bucket chain length probed per sharded intern
  LassoWalkLength,      // random-walk length before a lasso closes
  kCount
};

// --- Memory domains: every tracked allocation is attributed to the
// subsystem that owns it. Per-domain live/peak byte gauges and a
// power-of-two allocation-size histogram live in the registry; the RAII
// scopes, byte tallies, and the counting allocator that feed them are in
// opentla/obs/memory.hpp.
enum class MemDomain : std::size_t {
  StateStore,  // interned state vectors + seen-set nodes (serial & sharded)
  StateGraph,  // adjacency lists of the built graph
  Frontier,    // BFS frontier / parallel work deques
  VmPools,     // compiled bytecode programs (instrs, consts, domains, pools)
  Parser,      // expression trees retained by parsed modules
  Oracle,      // lasso-oracle memo table and predicate cache
  Other,       // tracked bytes with no finer attribution
  kCount
};

constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::kCount);
constexpr std::size_t kNumLevels = static_cast<std::size_t>(Level::kCount);
constexpr std::size_t kNumLabeledCounters =
    static_cast<std::size_t>(LabeledCounter::kCount);
constexpr std::size_t kNumHistograms = static_cast<std::size_t>(Histogram::kCount);
constexpr std::size_t kNumMemDomains = static_cast<std::size_t>(MemDomain::kCount);

/// Interned labels are bounded: id 0 is the overflow bucket "_other" that
/// absorbs every label interned past the table's capacity.
using LabelId = std::uint32_t;
constexpr LabelId kLabelOverflow = 0;
constexpr std::size_t kMaxLabels = 256;

constexpr std::size_t kHistBuckets = 32;

/// Stable snake_case identifiers used by every renderer and BENCH_*.json.
const char* name(Counter c);
const char* name(Gauge g);
const char* name(Level l);
const char* name(LabeledCounter f);
const char* name(Histogram h);
const char* name(MemDomain d);
/// The OpenMetrics label key of a family, e.g. "action" for ActionFired.
const char* label_key(LabeledCounter f);

/// Inclusive upper bound of histogram bucket `i`; the final bucket has no
/// bound (render it as +Inf).
constexpr std::uint64_t hist_bucket_le(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

/// Bucket index a value lands in: 0 for 0, else 1 + ceil(log2(v)), capped.
constexpr std::size_t hist_bucket_index(std::uint64_t v) {
  if (v == 0) return 0;
  const std::size_t i = 1 + static_cast<std::size_t>(std::bit_width(v - 1));
  return i < kHistBuckets ? i : kHistBuckets - 1;
}

namespace detail {

struct Bank {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kNumGauges> gauges{};
  std::array<std::atomic<std::uint64_t>, kNumLevels> levels{};
  std::array<std::array<std::atomic<std::uint64_t>, kMaxLabels>, kNumLabeledCounters>
      labeled{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistBuckets>, kNumHistograms>
      hist_buckets{};
  std::array<std::atomic<std::uint64_t>, kNumHistograms> hist_sums{};
};

/// Per-domain memory cells. `live` is a signed sum so a free recorded
/// without its matching alloc (collection toggled mid-object-lifetime)
/// dips below zero instead of wrapping; snapshots clamp at 0.
struct MemCells {
  std::atomic<std::int64_t> live{0};
  std::atomic<std::int64_t> peak{0};
  std::atomic<std::uint64_t> allocs{0};
  std::array<std::atomic<std::uint64_t>, kHistBuckets> size_buckets{};
  std::atomic<std::uint64_t> size_sum{0};
};

struct MemBank {
  std::array<MemCells, kNumMemDomains> domains{};
  std::atomic<std::int64_t> tracked_live{0};
  std::atomic<std::int64_t> tracked_peak{0};
};

extern Bank g_bank;
extern MemBank g_mem_bank;
extern std::atomic<bool> g_enabled;

void gauge_max_slow(std::size_t g, std::uint64_t v);

/// Attribute `bytes` to `d` (runtime-gated). Returns true when the bytes
/// were recorded, so RAII tallies free exactly what they charged.
bool mem_account_alloc(MemDomain d, std::uint64_t bytes);
/// Release `bytes` from `d`. NOT gated on the runtime flag: callers
/// (MemTally) only free bytes a successful mem_account_alloc recorded.
void mem_account_free(MemDomain d, std::uint64_t bytes);

}  // namespace detail

/// Runtime toggle. Off by default; `tlacheck profile`, `--stats` and the
/// bench harness turn it on. Sites check this with a relaxed load.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);

/// True in builds whose instrumentation macros are live.
constexpr bool compile_time_enabled() { return OPENTLA_OBS_ENABLED != 0; }

inline void count(Counter c, std::uint64_t n = 1) {
  detail::g_bank.counters[static_cast<std::size_t>(c)].fetch_add(n,
                                                                 std::memory_order_relaxed);
}

/// High-water update. Also feeds every live ScopedSink's scope-local
/// gauge bank (a cold path: gauges change once per graph build, not per
/// state).
inline void gauge_max(Gauge g, std::uint64_t v) {
  detail::gauge_max_slow(static_cast<std::size_t>(g), v);
}

inline void level_set(Level l, std::uint64_t v) {
  detail::g_bank.levels[static_cast<std::size_t>(l)].store(v, std::memory_order_relaxed);
}

inline std::uint64_t level_get(Level l) {
  return detail::g_bank.levels[static_cast<std::size_t>(l)].load(std::memory_order_relaxed);
}

/// Live reads of single instruments — what the flight recorder and the
/// /progress endpoint sample without paying for a full snapshot().
inline std::uint64_t counter_value(Counter c) {
  return detail::g_bank.counters[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

inline std::uint64_t gauge_value(Gauge g) {
  return detail::g_bank.gauges[static_cast<std::size_t>(g)].load(std::memory_order_relaxed);
}

/// Interns `label` into the bounded global table and returns its id. Ids
/// are stable until reset(). Past kMaxLabels - 1 distinct labels, returns
/// kLabelOverflow ("_other"). Cold path (takes a mutex) — call at
/// construction time, not per event.
LabelId intern_label(const std::string& label);

inline void count_labeled(LabeledCounter f, LabelId l, std::uint64_t n = 1) {
  detail::g_bank.labeled[static_cast<std::size_t>(f)][l].fetch_add(
      n, std::memory_order_relaxed);
}

inline void hist_observe(Histogram h, std::uint64_t v) {
  const std::size_t hi = static_cast<std::size_t>(h);
  detail::g_bank.hist_buckets[hi][hist_bucket_index(v)].fetch_add(
      1, std::memory_order_relaxed);
  detail::g_bank.hist_sums[hi].fetch_add(v, std::memory_order_relaxed);
}

// --- Phase events ---

/// A phase boundary crossed by the engine (a proof step starting, a check
/// beginning). Timestamps share the span epoch (microseconds).
struct PhaseEvent {
  std::string phase;
  std::uint64_t ts_us = 0;
};

/// Records a phase event in the registry and forwards it to the phase
/// sink, if one is registered (the JSONL event stream).
void phase_event(std::string phase_name);

/// Registers a callback that observes every phase event as it happens
/// (nullptr clears). Called under an internal mutex; keep it cheap.
void set_phase_sink(std::function<void(const PhaseEvent&)> sink);

// --- Spans ---

/// One completed timer span. `parent` is the id of the span that was open
/// on the same thread when this one started (0 = root). Timestamps are
/// microseconds since the process-wide epoch, which is what trace_event
/// `ts`/`dur` expect.
struct SpanRecord {
  std::string name;
  std::uint32_t id = 0;
  std::uint32_t parent = 0;
  std::uint32_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// Microseconds since the process-wide span epoch (what SpanRecord and
/// PhaseEvent timestamps are measured in).
std::uint64_t now_us();

/// RAII timer span. Construction is a no-op when the runtime flag is off
/// — the inline constructors test the flag before materializing the name,
/// so a disabled literal-named span costs one relaxed load and a branch
/// (no std::string allocation, no out-of-line call). Destruction appends
/// a SpanRecord to the global registry. Nesting is tracked per thread.
class Span {
 public:
  explicit Span(const char* span_name) {
    if (enabled()) open(span_name);
  }
  explicit Span(std::string span_name) {
    if (enabled()) open(std::move(span_name));
  }
  ~Span() {
    if (active_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(std::string span_name);
  void close();

  bool active_ = false;
  std::uint32_t id_ = 0;
  std::uint32_t parent_ = 0;
  std::uint64_t start_us_ = 0;
  std::string name_;
};

// --- Snapshot and registry operations ---

struct HistogramSnapshot {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
};

/// One memory domain at snapshot time: live/peak bytes plus the
/// power-of-two allocation-size histogram (same bucket scheme as
/// Histogram: hist_bucket_le / hist_bucket_index).
struct MemDomainSnapshot {
  std::uint64_t live_bytes = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t allocs = 0;
  std::array<std::uint64_t, kHistBuckets> alloc_size_buckets{};
  std::uint64_t alloc_size_sum = 0;
};

struct Snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumGauges> gauges{};
  std::array<std::uint64_t, kNumLevels> levels{};
  /// The interned label table at snapshot time; labeled[f][id] pairs with
  /// labels[id]. Index 0 is the overflow bucket "_other".
  std::vector<std::string> labels;
  std::array<std::vector<std::uint64_t>, kNumLabeledCounters> labeled;
  std::array<HistogramSnapshot, kNumHistograms> hists;
  std::vector<PhaseEvent> phases;
  std::vector<SpanRecord> spans;
  std::uint64_t spans_dropped = 0;
  /// Memory accounting. Unlike counters these are absolute registry values
  /// even under ScopedSink::take() — live bytes describe the process now,
  /// not a scope-relative delta.
  std::array<MemDomainSnapshot, kNumMemDomains> mem{};
  std::uint64_t mem_tracked_live_bytes = 0;
  std::uint64_t mem_tracked_peak_bytes = 0;

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  std::uint64_t gauge(Gauge g) const { return gauges[static_cast<std::size_t>(g)]; }
  std::uint64_t level(Level l) const { return levels[static_cast<std::size_t>(l)]; }
  const HistogramSnapshot& hist(Histogram h) const {
    return hists[static_cast<std::size_t>(h)];
  }
  const MemDomainSnapshot& mem_domain(MemDomain d) const {
    return mem[static_cast<std::size_t>(d)];
  }
  /// The headline memory metric: tracked peak bytes over the peak graph
  /// size (Gauge::PeakGraphStates). 0 until a graph has been built.
  std::uint64_t bytes_per_state() const {
    const std::uint64_t states = gauge(Gauge::PeakGraphStates);
    return states == 0 ? 0 : mem_tracked_peak_bytes / states;
  }
  /// Value of family `f` at `label`, 0 when the label was never interned.
  std::uint64_t labeled_value(LabeledCounter f, const std::string& label) const;
};

/// Copy the registry's current totals (counters, gauges, levels, labeled
/// counters, histograms, phase events, completed spans).
Snapshot snapshot();

/// Zero every instrument, drop all recorded spans and phase events, and
/// clear the interned label table (outstanding LabelIds become stale —
/// reset only between independent runs, never mid-exploration).
void reset();

/// Scoped sink: remembers the registry baseline and the previous runtime
/// flag at construction, enables collection, and restores the flag at
/// destruction. `take()` returns only what happened inside the scope —
/// counters, labeled counters, histograms, spans, and phase events as
/// deltas, and gauges as *scope-local* high-water marks (observations
/// made while this sink was live, not process-lifetime peaks) — so sinks
/// nest (each sees its own delta) and drivers never have to reset the
/// global registry.
class ScopedSink {
 public:
  ScopedSink();
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

  Snapshot take() const;

 private:
  friend void detail::gauge_max_slow(std::size_t, std::uint64_t);

  std::array<std::uint64_t, kNumCounters> base_counters_{};
  std::array<std::array<std::uint64_t, kMaxLabels>, kNumLabeledCounters> base_labeled_{};
  std::array<std::array<std::uint64_t, kHistBuckets>, kNumHistograms> base_hist_buckets_{};
  std::array<std::uint64_t, kNumHistograms> base_hist_sums_{};
  /// Scope-local gauge high-water: fed by gauge_max while this sink lives.
  std::array<std::atomic<std::uint64_t>, kNumGauges> local_gauges_{};
  std::size_t base_spans_ = 0;
  std::size_t base_phases_ = 0;
  bool prev_enabled_ = false;
};

// --- Renderers ---

/// Minimal JSON string escaping (shared with the CLI's JSON emitters).
std::string json_escape(const std::string& s);

/// Aligned table: counters, gauges, labeled counters, histograms, then
/// spans aggregated by name (count, total milliseconds).
std::string render_human(const Snapshot& snap);

/// One JSON object: {"counters": {...}, "gauges": {...}, "labeled": {...},
/// "histograms": {...}, "phases": [...], "spans": [...]}.
std::string render_json(const Snapshot& snap);

/// Chrome trace_event JSON ({"traceEvents": [...]}): one "X" complete
/// event per span, one "I" instant event per phase event, one "C" counter
/// sample per nonzero counter, and a metadata event carrying the dropped-
/// span count when the recording cap was hit. Loadable in
/// chrome://tracing and https://ui.perfetto.dev.
std::string render_chrome_trace(const Snapshot& snap);

/// Write `BENCH_<bench_name>.json` (schema tools/bench_schema.json) into
/// the current directory: counters, gauges, labeled counters, and
/// histograms for the whole process run.
/// Returns the path written, or an empty string on I/O failure.
std::string write_bench_json(const std::string& bench_name, const Snapshot& snap);

}  // namespace opentla::obs

// --- Instrumentation macros ---
//
// These, not the functions above, are what engine code uses: a build with
// OPENTLA_OBS_ENABLED=0 compiles every site to `((void)0)` with all
// arguments unevaluated.

#if OPENTLA_OBS_ENABLED

#define OPENTLA_OBS_COUNT(counter_id)                                   \
  do {                                                                  \
    if (::opentla::obs::enabled())                                      \
      ::opentla::obs::count(::opentla::obs::Counter::counter_id);       \
  } while (0)

#define OPENTLA_OBS_COUNT_N(counter_id, n)                              \
  do {                                                                  \
    if (::opentla::obs::enabled())                                      \
      ::opentla::obs::count(::opentla::obs::Counter::counter_id,        \
                            static_cast<std::uint64_t>(n));             \
  } while (0)

#define OPENTLA_OBS_GAUGE_MAX(gauge_id, v)                              \
  do {                                                                  \
    if (::opentla::obs::enabled())                                      \
      ::opentla::obs::gauge_max(::opentla::obs::Gauge::gauge_id,        \
                                static_cast<std::uint64_t>(v));         \
  } while (0)

#define OPENTLA_OBS_LEVEL_SET(level_id, v)                              \
  do {                                                                  \
    if (::opentla::obs::enabled())                                      \
      ::opentla::obs::level_set(::opentla::obs::Level::level_id,        \
                                static_cast<std::uint64_t>(v));         \
  } while (0)

// `label` is a LabelId obtained from intern_label at setup time.
#define OPENTLA_OBS_COUNT_LABELED(family_id, label, n)                    \
  do {                                                                    \
    if (::opentla::obs::enabled())                                        \
      ::opentla::obs::count_labeled(                                      \
          ::opentla::obs::LabeledCounter::family_id, (label),             \
          static_cast<std::uint64_t>(n));                                 \
  } while (0)

#define OPENTLA_OBS_HIST(hist_id, v)                                    \
  do {                                                                  \
    if (::opentla::obs::enabled())                                      \
      ::opentla::obs::hist_observe(::opentla::obs::Histogram::hist_id,  \
                                   static_cast<std::uint64_t>(v));      \
  } while (0)

#define OPENTLA_OBS_PHASE(name_expr)                                    \
  do {                                                                  \
    if (::opentla::obs::enabled())                                      \
      ::opentla::obs::phase_event(name_expr);                           \
  } while (0)

#define OPENTLA_OBS_CONCAT_IMPL(a, b) a##b
#define OPENTLA_OBS_CONCAT(a, b) OPENTLA_OBS_CONCAT_IMPL(a, b)

// `name_expr` may be a string literal (free when disabled: the inline
// ctor tests the flag before converting to std::string) or a dynamic
// std::string expression (evaluated regardless — reserve those for cold
// call sites such as per-proof-step spans).
#define OPENTLA_OBS_SPAN(name_expr) \
  ::opentla::obs::Span OPENTLA_OBS_CONCAT(opentla_obs_span_, __LINE__)(name_expr)

// Memory accounting at a free-standing site. `bytes_expr` stays
// unevaluated while collection is off, so byte estimators (deep state
// walks) cost nothing on the disabled path.
#define OPENTLA_OBS_MEM_ALLOC(domain_id, bytes_expr)                      \
  do {                                                                    \
    if (::opentla::obs::enabled())                                        \
      ::opentla::obs::detail::mem_account_alloc(                          \
          ::opentla::obs::MemDomain::domain_id,                           \
          static_cast<std::uint64_t>(bytes_expr));                        \
  } while (0)

#define OPENTLA_OBS_MEM_FREE(domain_id, bytes_expr)                       \
  do {                                                                    \
    if (::opentla::obs::enabled())                                        \
      ::opentla::obs::detail::mem_account_free(                           \
          ::opentla::obs::MemDomain::domain_id,                           \
          static_cast<std::uint64_t>(bytes_expr));                        \
  } while (0)

// Charge bytes against an owner's obs::MemTally member (memory.hpp). The
// tally itself re-checks the runtime flag; this macro exists so the
// byte-estimator argument compiles away entirely with the layer off.
#define OPENTLA_OBS_MEM_TALLY_ADD(tally, bytes_expr)            \
  do {                                                          \
    if (::opentla::obs::enabled())                              \
      (tally).add(static_cast<std::uint64_t>(bytes_expr));      \
  } while (0)

#else  // !OPENTLA_OBS_ENABLED

#define OPENTLA_OBS_COUNT(counter_id) ((void)0)
#define OPENTLA_OBS_COUNT_N(counter_id, n) ((void)0)
#define OPENTLA_OBS_GAUGE_MAX(gauge_id, v) ((void)0)
#define OPENTLA_OBS_LEVEL_SET(level_id, v) ((void)0)
#define OPENTLA_OBS_COUNT_LABELED(family_id, label, n) ((void)0)
#define OPENTLA_OBS_HIST(hist_id, v) ((void)0)
#define OPENTLA_OBS_PHASE(name_expr) ((void)0)
#define OPENTLA_OBS_SPAN(name_expr) ((void)0)
#define OPENTLA_OBS_MEM_ALLOC(domain_id, bytes_expr) ((void)0)
#define OPENTLA_OBS_MEM_FREE(domain_id, bytes_expr) ((void)0)
#define OPENTLA_OBS_MEM_TALLY_ADD(tally, bytes_expr) ((void)0)

#endif  // OPENTLA_OBS_ENABLED
