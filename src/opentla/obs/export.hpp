// opentla/obs/export.hpp
//
// Machine-facing exports for the obs registry: an OpenMetrics/Prometheus
// text exposition of a Snapshot (scrape it, or diff two files in CI) and
// an append-only JSONL event stream (one JSON object per line — phase
// events and progress heartbeats — flushed per line so a crash loses at
// most the line in flight). The JSONL line schema is documented in
// tools/events_schema.json.

#pragma once

#include <mutex>
#include <string>

#include "opentla/obs/obs.hpp"
#include "opentla/obs/progress.hpp"

namespace opentla::obs {

/// OpenMetrics text exposition: counters as `opentla_<name>_total`,
/// gauges and levels as `opentla_<name>`, labeled counters with their
/// label key, histograms with cumulative `le` buckets ending at "+Inf",
/// and a terminating `# EOF` line.
std::string render_openmetrics(const Snapshot& snap);

/// Escapes a value for an OpenMetrics label position (backslash, quote,
/// and newline).
std::string openmetrics_escape(const std::string& s);

/// Append-only JSONL writer. Thread-safe: phase events arrive from
/// engine threads while progress samples arrive from the sampler.
class JsonlWriter {
 public:
  /// Opens `path` for appending; check ok() before use.
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  bool ok() const { return ok_; }

  /// {"type":"phase","phase":...,"ts_us":...}
  void write_phase(const PhaseEvent& ev);
  /// {"type":"progress","seq":...,"final":...,"ts_us":...,...}
  void write_progress(const ProgressSample& s);

 private:
  void write_line(const std::string& line);

  std::mutex mu_;
  std::FILE* file_ = nullptr;
  bool ok_ = false;
};

}  // namespace opentla::obs
