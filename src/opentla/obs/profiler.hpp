// opentla/obs/profiler.hpp
//
// Span-stack sampling profiler (obs v4). Every obs::Span open/close
// maintains a per-thread stack of interned span-name ids (lock-free
// atomics, bounded depth); a SamplingProfiler walks all registered
// threads' stacks from a background thread at a fixed rate (the
// ProgressSampler pattern) and accumulates folded stack counts. Output is
// the collapsed-stack format flamegraph.pl and speedscope consume
// ("root;child;leaf <count>" per line), plus a self-time/total-time top-N
// table derived from the completed SpanRecords in a Snapshot.
//
// When no sampler ran (e.g. `tlacheck profile --format folded` without
// --sample-hz), folded_from_spans() derives the same collapsed format
// from the recorded spans, weighted by self-time microseconds — the
// flamegraph renders either way.

#pragma once

#include <cstdint>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "opentla/obs/obs.hpp"

namespace opentla::obs {

/// Frames beyond this nesting depth are counted in the sample but not
/// named (the stack key is truncated). Engine nesting is ~6 deep.
constexpr std::size_t kMaxSpanDepth = 64;
/// Distinct span names tracked; later names intern to id 0 ("_other").
constexpr std::size_t kMaxSpanNames = 512;

namespace detail {

// Span::open/close hooks (obs.cpp): intern the span's name and push/pop
// the calling thread's frame stack. Push/pop are a release store plus a
// relaxed depth bump — no locks on the span path.
std::uint32_t profiler_intern_name(const std::string& span_name);
void profiler_push_frame(std::uint32_t name_id);
void profiler_pop_frame();

/// Snapshot of the interned span-name table (index = name id).
std::vector<std::string> profiler_name_table();

/// Drop interned names and reset per-thread stacks' visibility — called
/// by obs::reset(). Live stacks keep their depth (RAII spans will pop
/// back to zero); only the name table is cleared.
void profiler_reset();

}  // namespace detail

/// One collapsed-stack line: "graph.explore_serial;store.intern 42".
struct FoldedStack {
  std::string stack;
  std::uint64_t count = 0;
};

/// Background sampler over every registered thread's span stack.
/// Construction starts the thread; stop() (or destruction) joins it.
/// Sampling only reads atomics — it never perturbs exploration order, so
/// the determinism contract (bit-identical graphs per thread count)
/// holds with a sampler running.
class SamplingProfiler {
 public:
  explicit SamplingProfiler(double hz);
  ~SamplingProfiler();
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Stop sampling and join the thread. Idempotent; takes one final
  /// sample first so short runs still record something.
  void stop();

  /// Sampling ticks taken so far (including ticks that saw no open span).
  std::uint64_t samples() const;

  /// Folded stacks accumulated so far, sorted by stack string.
  std::vector<FoldedStack> folded() const;

 private:
  void run();
  void sample_once();

  std::chrono::microseconds period_;
  mutable std::mutex data_mu_;
  std::map<std::vector<std::uint32_t>, std::uint64_t> counts_;
  std::uint64_t samples_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

/// Collapsed stacks derived from a snapshot's completed spans: one line
/// per distinct ancestor chain, weighted by the chain leaf's self-time in
/// microseconds (if every span rounded to 0 us, each occurrence counts 1
/// so the output still renders). Deterministically sorted.
std::vector<FoldedStack> folded_from_spans(const Snapshot& snap);

/// The collapsed-stack text flamegraph.pl consumes.
std::string render_folded(const std::vector<FoldedStack>& stacks);

/// Per-span-name aggregate over a snapshot: call count, total (inclusive)
/// time, and self (exclusive) time — total minus direct children, clamped
/// at zero per record.
struct ProfileRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t self_us = 0;
};

/// Rows sorted by self-time descending (name ascending on ties).
std::vector<ProfileRow> profile_rows(const Snapshot& snap);

/// Human table of the top `top_n` rows by self time.
std::string render_profile_table(const std::vector<ProfileRow>& rows,
                                 std::size_t top_n);

}  // namespace opentla::obs
