// opentla/obs/metrics_server.hpp
//
// A minimal embedded HTTP server for live scraping: binds 127.0.0.1 and
// serves
//
//   GET /metrics    the OpenMetrics exposition of a fresh obs snapshot
//                   (content-type application/openmetrics-text)
//   GET /progress   the latest ProgressSample as one JSON object, plus
//                   the peak_rss_bytes high-water gauge
//
// One background thread, poll()-based accept loop, HTTP/1.0 one request
// per connection — deliberately no keep-alive, no TLS, no routing table.
// This is the scrape endpoint the ROADMAP's `tlacheck serve` will mount;
// here it rides on any long `tlacheck ... --serve-metrics PORT` run.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "opentla/obs/progress.hpp"

namespace opentla::obs {

class MetricsServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; read the chosen one back with
  /// port()) and starts the serving thread. Check ok(): a failed bind
  /// leaves the server inert.
  explicit MetricsServer(std::uint16_t port);
  ~MetricsServer();
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  bool ok() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Publishes the newest heartbeat for /progress. Thread-safe; typically
  /// called from a ProgressSampler sink.
  void set_progress(const ProgressSample& s);

  /// Stops the accept loop and joins the thread. Idempotent.
  void stop();

 private:
  void run();
  void handle(int client_fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex mu_;
  ProgressSample latest_;
  bool have_sample_ = false;
  std::thread thread_;
};

}  // namespace opentla::obs
