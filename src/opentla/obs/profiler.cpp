#include "opentla/obs/profiler.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace opentla::obs {

namespace detail {

namespace {

// One per thread, heap-allocated and registered once, never freed: a
// sampler may still be walking the registry while a worker thread exits.
// RAII spans guarantee depth returns to 0 before thread exit, so a dead
// thread's stack simply samples as empty.
struct ThreadSpanStack {
  std::atomic<std::uint32_t> depth{0};
  std::array<std::atomic<std::uint32_t>, kMaxSpanDepth> frames{};
};

std::mutex g_stack_mutex;
std::vector<ThreadSpanStack*> g_stacks;

ThreadSpanStack* thread_stack() {
  thread_local ThreadSpanStack* stack = [] {
    auto* s = new ThreadSpanStack();
    std::lock_guard<std::mutex> lock(g_stack_mutex);
    g_stacks.push_back(s);
    return s;
  }();
  return stack;
}

// Name table: id 0 is the overflow bucket, real names start at 1.
// Interning takes a mutex but runs once per Span::open — spans mark
// algorithm phases, not per-state events.
std::mutex g_name_mutex;
std::vector<std::string> g_names = {"_other"};
std::unordered_map<std::string, std::uint32_t> g_name_ids;

}  // namespace

std::uint32_t profiler_intern_name(const std::string& span_name) {
  std::lock_guard<std::mutex> lock(g_name_mutex);
  auto it = g_name_ids.find(span_name);
  if (it != g_name_ids.end()) return it->second;
  if (g_names.size() >= kMaxSpanNames) return 0;
  const auto id = static_cast<std::uint32_t>(g_names.size());
  g_names.push_back(span_name);
  g_name_ids.emplace(span_name, id);
  return id;
}

void profiler_push_frame(std::uint32_t name_id) {
  ThreadSpanStack* s = thread_stack();
  const std::uint32_t d = s->depth.load(std::memory_order_relaxed);
  if (d < kMaxSpanDepth) {
    s->frames[d].store(name_id, std::memory_order_relaxed);
  }
  // The release store publishes the frame written above before the new
  // depth becomes visible to the sampler's acquire load.
  s->depth.store(d + 1, std::memory_order_release);
}

void profiler_pop_frame() {
  ThreadSpanStack* s = thread_stack();
  const std::uint32_t d = s->depth.load(std::memory_order_relaxed);
  if (d > 0) s->depth.store(d - 1, std::memory_order_release);
}

std::vector<std::string> profiler_name_table() {
  std::lock_guard<std::mutex> lock(g_name_mutex);
  return g_names;
}

void profiler_reset() {
  std::lock_guard<std::mutex> lock(g_name_mutex);
  g_names = {"_other"};
  g_name_ids.clear();
}

}  // namespace detail

SamplingProfiler::SamplingProfiler(double hz) {
  const double safe_hz = hz > 0.0 ? hz : 1.0;
  period_ = std::chrono::microseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(1e6 / safe_hz)));
  thread_ = std::thread([this] { run(); });
}

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  sample_once();
}

void SamplingProfiler::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, period_, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

void SamplingProfiler::sample_once() {
  std::vector<detail::ThreadSpanStack*> stacks;
  {
    std::lock_guard<std::mutex> lock(detail::g_stack_mutex);
    stacks = detail::g_stacks;
  }
  std::vector<std::vector<std::uint32_t>> keys;
  for (detail::ThreadSpanStack* s : stacks) {
    // Acquire pairs with the push's release: every frame below the depth
    // we read has been written with a registered name id.
    std::uint32_t d = s->depth.load(std::memory_order_acquire);
    if (d == 0) continue;
    if (d > kMaxSpanDepth) d = kMaxSpanDepth;
    std::vector<std::uint32_t> key(d);
    for (std::uint32_t i = 0; i < d; ++i) {
      key[i] = s->frames[i].load(std::memory_order_acquire);
    }
    keys.push_back(std::move(key));
  }
  std::lock_guard<std::mutex> lock(data_mu_);
  ++samples_;
  for (auto& key : keys) ++counts_[key];
}

std::uint64_t SamplingProfiler::samples() const {
  std::lock_guard<std::mutex> lock(data_mu_);
  return samples_;
}

std::vector<FoldedStack> SamplingProfiler::folded() const {
  const std::vector<std::string> names = detail::profiler_name_table();
  std::map<std::string, std::uint64_t> agg;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    for (const auto& [key, count] : counts_) {
      std::string stack;
      for (std::size_t i = 0; i < key.size(); ++i) {
        if (i > 0) stack += ';';
        stack += key[i] < names.size() ? names[key[i]] : "_other";
      }
      agg[stack] += count;
    }
  }
  std::vector<FoldedStack> out;
  out.reserve(agg.size());
  for (auto& [stack, count] : agg) out.push_back({stack, count});
  return out;
}

std::vector<FoldedStack> folded_from_spans(const Snapshot& snap) {
  // Self time per record: inclusive duration minus direct children.
  std::unordered_map<std::uint32_t, const SpanRecord*> by_id;
  std::unordered_map<std::uint32_t, std::uint64_t> child_dur;
  by_id.reserve(snap.spans.size());
  for (const SpanRecord& s : snap.spans) by_id.emplace(s.id, &s);
  for (const SpanRecord& s : snap.spans) {
    if (s.parent != 0 && by_id.count(s.parent)) child_dur[s.parent] += s.dur_us;
  }
  std::map<std::string, std::uint64_t> agg;
  std::uint64_t total_weight = 0;
  for (const SpanRecord& s : snap.spans) {
    std::string stack = s.name;
    // Ancestor chain; a parent evicted by a ScopedSink baseline (or the
    // span cap) simply truncates the chain at the oldest known span.
    for (std::uint32_t p = s.parent; p != 0;) {
      auto it = by_id.find(p);
      if (it == by_id.end()) break;
      stack = it->second->name + ";" + stack;
      p = it->second->parent;
    }
    std::uint64_t self = s.dur_us;
    auto it = child_dur.find(s.id);
    if (it != child_dur.end()) self = self > it->second ? self - it->second : 0;
    agg[stack] += self;
    total_weight += self;
  }
  if (total_weight == 0) {
    // Sub-microsecond run: weight each occurrence once so the flamegraph
    // still renders the call structure.
    agg.clear();
    for (const SpanRecord& s : snap.spans) {
      std::string stack = s.name;
      for (std::uint32_t p = s.parent; p != 0;) {
        auto it = by_id.find(p);
        if (it == by_id.end()) break;
        stack = it->second->name + ";" + stack;
        p = it->second->parent;
      }
      agg[stack] += 1;
    }
  }
  std::vector<FoldedStack> out;
  out.reserve(agg.size());
  for (auto& [stack, weight] : agg) {
    if (weight > 0) out.push_back({stack, weight});
  }
  return out;
}

std::string render_folded(const std::vector<FoldedStack>& stacks) {
  std::ostringstream out;
  for (const FoldedStack& f : stacks) {
    out << f.stack << ' ' << f.count << '\n';
  }
  return out.str();
}

std::vector<ProfileRow> profile_rows(const Snapshot& snap) {
  std::unordered_map<std::uint32_t, const SpanRecord*> by_id;
  std::unordered_map<std::uint32_t, std::uint64_t> child_dur;
  by_id.reserve(snap.spans.size());
  for (const SpanRecord& s : snap.spans) by_id.emplace(s.id, &s);
  for (const SpanRecord& s : snap.spans) {
    if (s.parent != 0 && by_id.count(s.parent)) child_dur[s.parent] += s.dur_us;
  }
  std::map<std::string, ProfileRow> agg;
  for (const SpanRecord& s : snap.spans) {
    ProfileRow& row = agg[s.name];
    row.name = s.name;
    ++row.count;
    row.total_us += s.dur_us;
    std::uint64_t self = s.dur_us;
    auto it = child_dur.find(s.id);
    if (it != child_dur.end()) self = self > it->second ? self - it->second : 0;
    row.self_us += self;
  }
  std::vector<ProfileRow> rows;
  rows.reserve(agg.size());
  for (auto& [span_name, row] : agg) rows.push_back(row);
  std::sort(rows.begin(), rows.end(), [](const ProfileRow& a, const ProfileRow& b) {
    if (a.self_us != b.self_us) return a.self_us > b.self_us;
    return a.name < b.name;
  });
  return rows;
}

std::string render_profile_table(const std::vector<ProfileRow>& rows,
                                 std::size_t top_n) {
  std::ostringstream out;
  out << "  profile (top " << std::min(top_n, rows.size())
      << " spans by self time):\n";
  out << "        self ms     total ms      count  span\n";
  for (std::size_t i = 0; i < rows.size() && i < top_n; ++i) {
    char line[192];
    std::snprintf(line, sizeof line, "    %11.3f  %11.3f  %9llu  %s\n",
                  static_cast<double>(rows[i].self_us) / 1000.0,
                  static_cast<double>(rows[i].total_us) / 1000.0,
                  static_cast<unsigned long long>(rows[i].count),
                  rows[i].name.c_str());
    out << line;
  }
  return out.str();
}

}  // namespace opentla::obs
