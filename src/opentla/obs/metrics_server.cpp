#include "opentla/obs/metrics_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "opentla/obs/export.hpp"
#include "opentla/obs/obs.hpp"

namespace opentla::obs {

namespace {

constexpr char kOpenMetricsContentType[] =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a scraper that hangs up mid-response must not deliver
    // SIGPIPE to the checking process.
    const ssize_t w = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (w <= 0) return;
    off += static_cast<std::size_t>(w);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string progress_json(const ProgressSample& s, bool have_sample) {
  char buf[640];
  std::snprintf(buf, sizeof buf,
                "{\"have_sample\": %s, \"seq\": %llu, \"final\": %s, \"ts_us\": %llu, "
                "\"elapsed_us\": %llu, \"states\": %llu, \"frontier\": %llu, "
                "\"states_per_sec\": %.1f, \"rss_bytes\": %llu, \"peak_rss_bytes\": %llu, "
                "\"tracked_bytes\": %llu, \"bytes_per_state\": %llu}\n",
                have_sample ? "true" : "false",
                static_cast<unsigned long long>(s.seq), s.final_sample ? "true" : "false",
                static_cast<unsigned long long>(s.ts_us),
                static_cast<unsigned long long>(s.elapsed_us),
                static_cast<unsigned long long>(s.states),
                static_cast<unsigned long long>(s.frontier), s.states_per_sec,
                static_cast<unsigned long long>(s.rss_bytes),
                static_cast<unsigned long long>(gauge_value(Gauge::PeakRssBytes)),
                static_cast<unsigned long long>(s.tracked_bytes),
                static_cast<unsigned long long>(s.bytes_per_state));
  return buf;
}

}  // namespace

MetricsServer::MetricsServer(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { run(); });
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsServer::set_progress(const ProgressSample& s) {
  std::lock_guard<std::mutex> lock(mu_);
  latest_ = s;
  have_sample_ = true;
}

void MetricsServer::run() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd = {listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle(client);
    ::close(client);
  }
}

void MetricsServer::handle(int client_fd) {
  // One read is enough for a GET line; anything longer is not our client.
  char req[2048] = {};
  const ssize_t n = ::recv(client_fd, req, sizeof req - 1, 0);
  if (n <= 0) return;
  const char* path_start = std::strchr(req, ' ');
  std::string path;
  if (path_start != nullptr) {
    const char* path_end = std::strchr(path_start + 1, ' ');
    if (path_end != nullptr) path.assign(path_start + 1, path_end);
  }
  if (path == "/metrics") {
    send_all(client_fd,
             http_response("200 OK", kOpenMetricsContentType,
                           render_openmetrics(snapshot())));
  } else if (path == "/progress") {
    ProgressSample s;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      s = latest_;
      have = have_sample_;
    }
    send_all(client_fd, http_response("200 OK", "application/json", progress_json(s, have)));
  } else {
    send_all(client_fd, http_response("404 Not Found", "text/plain",
                                      "try /metrics or /progress\n"));
  }
}

}  // namespace opentla::obs
