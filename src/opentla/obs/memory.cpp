#include "opentla/obs/memory.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>

namespace opentla::obs {

const char* name(MemDomain d) {
  switch (d) {
    case MemDomain::StateStore: return "state_store";
    case MemDomain::StateGraph: return "state_graph";
    case MemDomain::Frontier: return "frontier";
    case MemDomain::VmPools: return "vm_pools";
    case MemDomain::Parser: return "parser";
    case MemDomain::Oracle: return "oracle";
    case MemDomain::Other: return "other";
    case MemDomain::kCount: break;
  }
  return "?";
}

namespace detail {

MemBank g_mem_bank;

namespace {

thread_local MemDomain t_mem_domain = MemDomain::Other;

std::atomic<bool> g_mem_suspended{false};

void bump_peak(std::atomic<std::int64_t>& peak, std::int64_t v) {
  std::int64_t cur = peak.load(std::memory_order_relaxed);
  while (v > cur &&
         !peak.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool mem_account_alloc(MemDomain d, std::uint64_t bytes) {
  if (!enabled() || g_mem_suspended.load(std::memory_order_relaxed)) return false;
  MemCells& cells = g_mem_bank.domains[static_cast<std::size_t>(d)];
  const std::int64_t b = static_cast<std::int64_t>(bytes);
  bump_peak(cells.peak, cells.live.fetch_add(b, std::memory_order_relaxed) + b);
  cells.allocs.fetch_add(1, std::memory_order_relaxed);
  cells.size_buckets[hist_bucket_index(bytes)].fetch_add(1,
                                                         std::memory_order_relaxed);
  cells.size_sum.fetch_add(bytes, std::memory_order_relaxed);
  bump_peak(g_mem_bank.tracked_peak,
            g_mem_bank.tracked_live.fetch_add(b, std::memory_order_relaxed) + b);
  return true;
}

void mem_account_free(MemDomain d, std::uint64_t bytes) {
  MemCells& cells = g_mem_bank.domains[static_cast<std::size_t>(d)];
  const std::int64_t b = static_cast<std::int64_t>(bytes);
  cells.live.fetch_sub(b, std::memory_order_relaxed);
  g_mem_bank.tracked_live.fetch_sub(b, std::memory_order_relaxed);
}

}  // namespace detail

MemDomain current_mem_domain() { return detail::t_mem_domain; }

bool mem_accounting_suspended() {
  return detail::g_mem_suspended.load(std::memory_order_relaxed);
}

void set_mem_accounting_suspended(bool suspended) {
  detail::g_mem_suspended.store(suspended, std::memory_order_relaxed);
}

MemScope::MemScope(MemDomain d) : prev_(detail::t_mem_domain) {
  detail::t_mem_domain = d;
}

MemScope::~MemScope() { detail::t_mem_domain = prev_; }

std::uint64_t statm_resident_bytes(const char* statm_text, std::uint64_t page_size) {
  if (statm_text == nullptr) return 0;
  std::uint64_t size_pages = 0;
  std::uint64_t resident_pages = 0;
  if (std::sscanf(statm_text, "%" SCNu64 " %" SCNu64, &size_pages,
                  &resident_pages) != 2) {
    return 0;
  }
  return resident_pages * page_size;
}

std::uint64_t read_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  char buf[256];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return statm_resident_bytes(
      buf, static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE)));
}

}  // namespace opentla::obs
