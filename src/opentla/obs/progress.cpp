#include "opentla/obs/progress.hpp"

#include "opentla/obs/memory.hpp"
#include "opentla/obs/obs.hpp"

namespace opentla::obs {

ProgressSampler::ProgressSampler(std::chrono::milliseconds period, Sink sink)
    : period_(period), sink_(std::move(sink)), start_us_(now_us()) {
  last_ts_us_ = start_us_;
  // Sample 0 fires synchronously before the thread exists, so even a run
  // that finishes inside one period still observes start + final.
  emit(make_sample());
  thread_ = std::thread([this] { run(); });
}

ProgressSampler::~ProgressSampler() { stop(); }

void ProgressSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  ProgressSample s = make_sample();
  s.final_sample = true;
  emit(std::move(s));
}

ProgressSample ProgressSampler::make_sample() {
  ProgressSample s;
  s.ts_us = now_us();
  s.elapsed_us = s.ts_us - start_us_;
  s.states = detail::g_bank.counters[static_cast<std::size_t>(Counter::StatesGenerated)]
                 .load(std::memory_order_relaxed);
  s.frontier = level_get(Level::FrontierSize);
  s.rss_bytes = read_rss_bytes();
  gauge_max(Gauge::PeakRssBytes, s.rss_bytes);
  const std::int64_t tracked =
      detail::g_mem_bank.tracked_live.load(std::memory_order_relaxed);
  s.tracked_bytes = tracked > 0 ? static_cast<std::uint64_t>(tracked) : 0;
  s.bytes_per_state = s.states > 0 ? s.tracked_bytes / s.states : 0;
  return s;
}

void ProgressSampler::emit(ProgressSample s) {
  s.seq = next_seq_++;
  const std::uint64_t dt_us = s.ts_us - last_ts_us_;
  if (dt_us > 0 && s.states >= last_states_) {
    s.states_per_sec =
        static_cast<double>(s.states - last_states_) * 1e6 / static_cast<double>(dt_us);
  }
  last_ts_us_ = s.ts_us;
  last_states_ = s.states;
  if (sink_) sink_(s);
}

void ProgressSampler::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, period_, [this] { return stopping_; })) return;
    // Sample outside the lock so a slow sink cannot delay stop().
    lock.unlock();
    emit(make_sample());
    lock.lock();
  }
}

}  // namespace opentla::obs
