// opentla/obs/memory.hpp
//
// Domain-scoped memory accounting (obs v4). Subsystems attribute the
// bytes they retain to one of the obs::MemDomain buckets declared in
// obs.hpp — per-domain live/peak gauges plus a power-of-two
// allocation-size histogram — through three mechanisms, all runtime-gated
// on obs::enabled() and none of which hijacks global operator new:
//
//   * MemTally — an RAII byte tally owned by the object whose memory it
//     describes (StateStore, StateGraph, CompiledExpr, Oracle). add()
//     charges bytes when collection is on; the destructor releases
//     exactly what was charged, so toggling collection mid-lifetime never
//     leaves phantom live bytes.
//   * CountingAllocator<T> — a std::pmr-style counting allocator with a
//     fixed domain, for containers whose growth *is* the cost (frontier
//     deques, parallel work queues). The domain is a plain member, so
//     alloc and free always hit the same bucket regardless of what scope
//     the container reallocates under.
//   * MemScope — an RAII domain scope for code that wants a thread-local
//     "current domain" (defaults to MemDomain::Other), paired with
//     mem_scope_alloc/free for sites without a natural owner object.
//
// This header also owns the single RSS helper: ProgressSampler, the
// RunBudget memory ceiling, and the peak_rss_bytes gauge all read
// /proc/self/statm through read_rss_bytes(); statm_resident_bytes() is
// the pure pages-to-bytes conversion a unit test pins.

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "opentla/obs/obs.hpp"

namespace opentla::obs {

/// Thread-local current domain, MemDomain::Other until a MemScope opens.
MemDomain current_mem_domain();

/// Runtime sub-gate for the accounting layer alone: while suspended,
/// mem_account_alloc records nothing (tallies accumulate no bytes, byte
/// estimators in OPENTLA_OBS_MEM_* macro arguments still run), so a
/// paired benchmark can price the accounting with the rest of the obs
/// layer (counters, spans) equally live on both sides. Frees for bytes
/// charged before suspension still land — a tally releases exactly what
/// it charged. Like toggling obs::enabled() mid-lifetime, suspending
/// around a CountingAllocator's life can dip a live cell below zero;
/// snapshots clamp to 0.
bool mem_accounting_suspended();
void set_mem_accounting_suspended(bool suspended);

/// RAII domain scope: allocations recorded through mem_scope_alloc (or a
/// CountingAllocator constructed with the current domain) while the scope
/// is open are attributed to `d`. Scopes nest; the previous domain is
/// restored on destruction.
class MemScope {
 public:
  explicit MemScope(MemDomain d);
  ~MemScope();
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

 private:
  MemDomain prev_;
};

/// Record `bytes` against the thread's current domain (see MemScope).
inline void mem_scope_alloc(std::uint64_t bytes) {
  if (enabled()) detail::mem_account_alloc(current_mem_domain(), bytes);
}
inline void mem_scope_free(std::uint64_t bytes) {
  if (enabled()) detail::mem_account_free(current_mem_domain(), bytes);
}

/// RAII byte tally for an owning object. `add(n)` charges n bytes to the
/// domain when collection is on and remembers the charge; the destructor
/// releases the accumulated total, so the registry's live gauge never
/// drifts negative on account of a tally (frees always match successful
/// charges). Copying an owner re-charges its bytes; moving transfers the
/// tally. Cheap enough to embed anywhere: one uint64 + the domain.
class MemTally {
 public:
  MemTally() = default;
  explicit MemTally(MemDomain d) : domain_(d) {}
  MemTally(const MemTally& other) : domain_(other.domain_) {
    if (other.bytes_ != 0 && detail::mem_account_alloc(domain_, other.bytes_)) {
      bytes_ = other.bytes_;
    }
  }
  MemTally& operator=(const MemTally& other) {
    if (this == &other) return *this;
    release();
    domain_ = other.domain_;
    if (other.bytes_ != 0 && detail::mem_account_alloc(domain_, other.bytes_)) {
      bytes_ = other.bytes_;
    }
    return *this;
  }
  MemTally(MemTally&& other) noexcept : domain_(other.domain_), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  MemTally& operator=(MemTally&& other) noexcept {
    if (this == &other) return *this;
    release();
    domain_ = other.domain_;
    bytes_ = other.bytes_;
    other.bytes_ = 0;
    return *this;
  }
  ~MemTally() { release(); }

  /// Charge `n` more bytes. No-op while collection is off.
  void add(std::uint64_t n) {
    if (n != 0 && detail::mem_account_alloc(domain_, n)) bytes_ += n;
  }
  /// Release every charged byte (also what the destructor does).
  void release() {
    if (bytes_ != 0) {
      detail::mem_account_free(domain_, bytes_);
      bytes_ = 0;
    }
  }
  /// Replace the tally with a fresh total (re-measure sites).
  void set(std::uint64_t n) {
    release();
    add(n);
  }

  MemDomain domain() const { return domain_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  MemDomain domain_ = MemDomain::Other;
  std::uint64_t bytes_ = 0;
};

/// Minimal counting allocator: operator new/delete plus accounting
/// against a fixed domain. The domain travels with rebinds and copies, so
/// a container's internal reallocation always charges and releases the
/// same bucket. Frees are gated on the runtime flag exactly like allocs;
/// a toggle mid-container-lifetime can dip a domain's signed live cell
/// below zero, which snapshots clamp to 0.
template <typename T>
class CountingAllocator {
 public:
  using value_type = T;

  CountingAllocator() noexcept = default;
  explicit CountingAllocator(MemDomain d) noexcept : domain_(d) {}
  template <typename U>
  CountingAllocator(const CountingAllocator<U>& other) noexcept
      : domain_(other.domain()) {}

  T* allocate(std::size_t n) {
    if (enabled()) {
      detail::mem_account_alloc(domain_, static_cast<std::uint64_t>(n) * sizeof(T));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (enabled()) {
      detail::mem_account_free(domain_, static_cast<std::uint64_t>(n) * sizeof(T));
    }
    ::operator delete(p);
  }

  MemDomain domain() const noexcept { return domain_; }

  friend bool operator==(const CountingAllocator& a, const CountingAllocator& b) {
    return a.domain_ == b.domain_;
  }

 private:
  MemDomain domain_ = MemDomain::Other;
};

// --- The shared RSS helper (satellite: one statm reader everywhere) ---

/// Parse the text of /proc/self/statm ("size resident shared ...", page
/// counts) and return resident bytes = resident pages * page_size.
/// Returns 0 on malformed input. Pure, for unit testing the conversion.
std::uint64_t statm_resident_bytes(const char* statm_text, std::uint64_t page_size);

/// Current resident set size in bytes, read from /proc/self/statm via
/// statm_resident_bytes. 0 when the file is unavailable.
std::uint64_t read_rss_bytes();

}  // namespace opentla::obs
