#include "opentla/obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace opentla::obs {

std::string openmetrics_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_openmetrics(const Snapshot& snap) {
  std::ostringstream out;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const char* n = name(static_cast<Counter>(i));
    out << "# TYPE opentla_" << n << " counter\n";
    out << "opentla_" << n << "_total " << snap.counters[i] << "\n";
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const char* n = name(static_cast<Gauge>(i));
    out << "# TYPE opentla_" << n << " gauge\n";
    out << "opentla_" << n << " " << snap.gauges[i] << "\n";
  }
  for (std::size_t i = 0; i < kNumLevels; ++i) {
    const char* n = name(static_cast<Level>(i));
    out << "# TYPE opentla_" << n << " gauge\n";
    out << "opentla_" << n << " " << snap.levels[i] << "\n";
  }
  for (std::size_t f = 0; f < kNumLabeledCounters; ++f) {
    const char* n = name(static_cast<LabeledCounter>(f));
    const char* key = label_key(static_cast<LabeledCounter>(f));
    out << "# TYPE opentla_" << n << " counter\n";
    for (std::size_t l = 0; l < snap.labeled[f].size(); ++l) {
      if (snap.labeled[f][l] == 0) continue;
      out << "opentla_" << n << "_total{" << key << "=\""
          << openmetrics_escape(snap.labels[l]) << "\"} " << snap.labeled[f][l] << "\n";
    }
  }
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    const char* n = name(static_cast<Histogram>(h));
    const HistogramSnapshot& hist = snap.hists[h];
    out << "# TYPE opentla_" << n << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      cum += hist.buckets[b];
      if (b + 1 == kHistBuckets) {
        out << "opentla_" << n << "_bucket{le=\"+Inf\"} " << cum << "\n";
      } else {
        // Skip empty interior buckets past the data to keep the
        // exposition short, but always emit le="0" and the +Inf bound.
        if (hist.buckets[b] == 0 && b != 0) continue;
        out << "opentla_" << n << "_bucket{le=\"" << hist_bucket_le(b) << "\"} " << cum
            << "\n";
      }
    }
    out << "opentla_" << n << "_sum " << hist.sum << "\n";
    out << "opentla_" << n << "_count " << hist.count << "\n";
  }
  // Memory accounting: per-domain live/peak gauges, the per-domain
  // allocation-size histograms, and the headline bytes_per_state.
  out << "# TYPE opentla_mem_live_bytes gauge\n";
  for (std::size_t d = 0; d < kNumMemDomains; ++d) {
    out << "opentla_mem_live_bytes{domain=\"" << name(static_cast<MemDomain>(d))
        << "\"} " << snap.mem[d].live_bytes << "\n";
  }
  out << "# TYPE opentla_mem_peak_bytes gauge\n";
  for (std::size_t d = 0; d < kNumMemDomains; ++d) {
    out << "opentla_mem_peak_bytes{domain=\"" << name(static_cast<MemDomain>(d))
        << "\"} " << snap.mem[d].peak_bytes << "\n";
  }
  out << "# TYPE opentla_mem_alloc_size_bytes histogram\n";
  for (std::size_t d = 0; d < kNumMemDomains; ++d) {
    const MemDomainSnapshot& ms = snap.mem[d];
    if (ms.allocs == 0) continue;
    const char* dn = name(static_cast<MemDomain>(d));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      cum += ms.alloc_size_buckets[b];
      if (b + 1 == kHistBuckets) {
        out << "opentla_mem_alloc_size_bytes_bucket{domain=\"" << dn
            << "\",le=\"+Inf\"} " << cum << "\n";
      } else {
        if (ms.alloc_size_buckets[b] == 0 && b != 0) continue;
        out << "opentla_mem_alloc_size_bytes_bucket{domain=\"" << dn << "\",le=\""
            << hist_bucket_le(b) << "\"} " << cum << "\n";
      }
    }
    out << "opentla_mem_alloc_size_bytes_sum{domain=\"" << dn << "\"} "
        << ms.alloc_size_sum << "\n";
    out << "opentla_mem_alloc_size_bytes_count{domain=\"" << dn << "\"} "
        << ms.allocs << "\n";
  }
  out << "# TYPE opentla_mem_tracked_peak_bytes gauge\n";
  out << "opentla_mem_tracked_peak_bytes " << snap.mem_tracked_peak_bytes << "\n";
  out << "# TYPE opentla_bytes_per_state gauge\n";
  out << "opentla_bytes_per_state " << snap.bytes_per_state() << "\n";
  out << "# EOF\n";
  return out.str();
}

JsonlWriter::JsonlWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "a");
  ok_ = file_ != nullptr;
}

JsonlWriter::~JsonlWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_) std::fclose(file_);
  file_ = nullptr;
  ok_ = false;
}

void JsonlWriter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);  // crash-safe: at most the in-flight line is lost
}

void JsonlWriter::write_phase(const PhaseEvent& ev) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\",\"ts_us\":%" PRIu64 "}", ev.ts_us);
  write_line("{\"type\":\"phase\",\"phase\":\"" + json_escape(ev.phase) + buf);
}

void JsonlWriter::write_progress(const ProgressSample& s) {
  char buf[400];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"progress\",\"seq\":%" PRIu64 ",\"final\":%s,\"ts_us\":%" PRIu64
                ",\"elapsed_us\":%" PRIu64 ",\"states\":%" PRIu64 ",\"frontier\":%" PRIu64
                ",\"states_per_sec\":%.1f,\"rss_bytes\":%" PRIu64
                ",\"tracked_bytes\":%" PRIu64 ",\"bytes_per_state\":%" PRIu64 "}",
                s.seq, s.final_sample ? "true" : "false", s.ts_us, s.elapsed_us, s.states,
                s.frontier, s.states_per_sec, s.rss_bytes, s.tracked_bytes,
                s.bytes_per_state);
  write_line(buf);
}

}  // namespace opentla::obs
