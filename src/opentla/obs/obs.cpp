#include "opentla/obs/obs.hpp"

#include "opentla/obs/flight_recorder.hpp"
#include "opentla/obs/memory.hpp"
#include "opentla/obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace opentla::obs {

const char* name(Counter c) {
  switch (c) {
    case Counter::StatesGenerated: return "states_generated";
    case Counter::SuccessorsEnumerated: return "successors_enumerated";
    case Counter::EnabledEvaluations: return "enabled_evaluations";
    case Counter::ConfigsExpanded: return "configs_expanded";
    case Counter::SccPasses: return "scc_passes";
    case Counter::LassoCandidates: return "lasso_candidates";
    case Counter::InclusionPairs: return "inclusion_pairs";
    case Counter::ProductNodes: return "product_nodes";
    case Counter::ProductSteps: return "product_steps";
    case Counter::FreezeSteps: return "freeze_steps";
    case Counter::RefinementEdgesChecked: return "refinement_edges_checked";
    case Counter::OracleEvaluations: return "oracle_evaluations";
    case Counter::BehaviorsChecked: return "behaviors_checked";
    case Counter::ParStatesExpanded: return "par_states_expanded";
    case Counter::ParSteals: return "par_steals";
    case Counter::ParShardContention: return "par_shard_contention";
    case Counter::CompletionsPruned: return "completions_pruned";
    case Counter::ResidualEarlyCuts: return "residual_early_cuts";
    case Counter::AnalysisPairsIndependent: return "analysis_pairs_independent";
    case Counter::AnalysisPairsDependent: return "analysis_pairs_dependent";
    case Counter::BudgetStops: return "budget_stops";
    case Counter::VmProgramsCompiled: return "vm_programs_compiled";
    case Counter::VmInstrsExecuted: return "vm_instrs_executed";
    case Counter::kCount: break;
  }
  return "?";
}

const char* name(Gauge g) {
  switch (g) {
    case Gauge::PeakConfigurationCount: return "peak_configuration_count";
    case Gauge::PeakGraphStates: return "peak_graph_states";
    case Gauge::PeakProductNodes: return "peak_product_nodes";
    case Gauge::PeakParWorkers: return "peak_par_workers";
    case Gauge::PeakRssBytes: return "peak_rss_bytes";
    case Gauge::kCount: break;
  }
  return "?";
}

const char* name(Level l) {
  switch (l) {
    case Level::FrontierSize: return "frontier_size";
    case Level::kCount: break;
  }
  return "?";
}

const char* name(LabeledCounter f) {
  switch (f) {
    case LabeledCounter::ActionFired: return "action_fired";
    case LabeledCounter::ActionEnabled: return "action_enabled";
    case LabeledCounter::kCount: break;
  }
  return "?";
}

const char* label_key(LabeledCounter f) {
  switch (f) {
    case LabeledCounter::ActionFired:
    case LabeledCounter::ActionEnabled: return "action";
    case LabeledCounter::kCount: break;
  }
  return "label";
}

const char* name(Histogram h) {
  switch (h) {
    case Histogram::SuccessorFanout: return "successor_fanout";
    case Histogram::ParWorkerExpansions: return "par_worker_expansions";
    case Histogram::ShardProbeLength: return "shard_probe_length";
    case Histogram::LassoWalkLength: return "lasso_walk_length";
    case Histogram::kCount: break;
  }
  return "?";
}

namespace detail {

Bank g_bank;
std::atomic<bool> g_enabled{false};

namespace {

// Completed spans, appended under a mutex. Bounded so pathological runs
// (a span per benchmark iteration) cannot exhaust memory; overflow is
// counted and reported by every renderer.
constexpr std::size_t kMaxSpans = 1u << 17;
constexpr std::size_t kMaxPhases = 1u << 14;

std::mutex g_span_mutex;
std::vector<SpanRecord> g_spans;
std::uint64_t g_spans_dropped = 0;
std::vector<PhaseEvent> g_phases;

std::mutex g_phase_sink_mutex;
std::function<void(const PhaseEvent&)> g_phase_sink;

std::atomic<std::uint32_t> g_next_span_id{1};
std::atomic<std::uint32_t> g_next_tid{1};

thread_local std::uint32_t t_current_span = 0;  // innermost open span, 0 = none
thread_local std::uint32_t t_tid = 0;

// Labels: id 0 is the overflow bucket; real labels start at 1. The table
// is written only under the mutex (interning is a setup-time operation).
std::mutex g_label_mutex;
std::vector<std::string> g_labels = {"_other"};
std::unordered_map<std::string, LabelId> g_label_ids;

// Live ScopedSinks: gauge_max feeds each one its scope-local high-water.
std::mutex g_sink_mutex;
std::vector<ScopedSink*> g_sinks;

std::uint32_t thread_tid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

}  // namespace

void gauge_max_slow(std::size_t g, std::uint64_t v) {
  auto bump = [v](std::atomic<std::uint64_t>& cell) {
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (v > cur && !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  };
  bump(g_bank.gauges[g]);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  for (ScopedSink* sink : g_sinks) bump(sink->local_gauges_[g]);
}

}  // namespace detail

std::uint64_t now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

LabelId intern_label(const std::string& label) {
  std::lock_guard<std::mutex> lock(detail::g_label_mutex);
  auto it = detail::g_label_ids.find(label);
  if (it != detail::g_label_ids.end()) return it->second;
  if (detail::g_labels.size() >= kMaxLabels) return kLabelOverflow;
  const LabelId id = static_cast<LabelId>(detail::g_labels.size());
  detail::g_labels.push_back(label);
  detail::g_label_ids.emplace(label, id);
  return id;
}

void phase_event(std::string phase_name) {
  PhaseEvent ev;
  ev.phase = std::move(phase_name);
  ev.ts_us = now_us();
  if (flight_recorder_enabled()) {
    flight_recorder_record(FlightKind::kPhase, ev.phase.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(detail::g_span_mutex);
    if (detail::g_phases.size() < detail::kMaxPhases) detail::g_phases.push_back(ev);
  }
  std::lock_guard<std::mutex> lock(detail::g_phase_sink_mutex);
  if (detail::g_phase_sink) detail::g_phase_sink(ev);
}

void set_phase_sink(std::function<void(const PhaseEvent&)> sink) {
  std::lock_guard<std::mutex> lock(detail::g_phase_sink_mutex);
  detail::g_phase_sink = std::move(sink);
}

void Span::open(std::string span_name) {
  active_ = true;
  name_ = std::move(span_name);
  id_ = detail::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = detail::t_current_span;
  detail::t_current_span = id_;
  detail::profiler_push_frame(detail::profiler_intern_name(name_));
  start_us_ = now_us();
}

void Span::close() {
  const std::uint64_t end_us = now_us();
  detail::profiler_pop_frame();
  detail::t_current_span = parent_;
  SpanRecord rec;
  rec.name = std::move(name_);
  rec.id = id_;
  rec.parent = parent_;
  rec.tid = detail::thread_tid();
  rec.start_us = start_us_;
  rec.dur_us = end_us - start_us_;
  std::lock_guard<std::mutex> lock(detail::g_span_mutex);
  if (detail::g_spans.size() < detail::kMaxSpans) {
    detail::g_spans.push_back(std::move(rec));
  } else {
    ++detail::g_spans_dropped;
  }
}

Snapshot snapshot() {
  Snapshot snap;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    snap.counters[i] = detail::g_bank.counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    snap.gauges[i] = detail::g_bank.gauges[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kNumLevels; ++i) {
    snap.levels[i] = detail::g_bank.levels[i].load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(detail::g_label_mutex);
    snap.labels = detail::g_labels;
  }
  for (std::size_t f = 0; f < kNumLabeledCounters; ++f) {
    snap.labeled[f].resize(snap.labels.size());
    for (std::size_t l = 0; l < snap.labels.size(); ++l) {
      snap.labeled[f][l] = detail::g_bank.labeled[f][l].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    std::uint64_t count = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      snap.hists[h].buckets[b] =
          detail::g_bank.hist_buckets[h][b].load(std::memory_order_relaxed);
      count += snap.hists[h].buckets[b];
    }
    snap.hists[h].sum = detail::g_bank.hist_sums[h].load(std::memory_order_relaxed);
    snap.hists[h].count = count;
  }
  auto clamp0 = [](std::int64_t v) {
    return v > 0 ? static_cast<std::uint64_t>(v) : 0u;
  };
  for (std::size_t d = 0; d < kNumMemDomains; ++d) {
    const detail::MemCells& cells = detail::g_mem_bank.domains[d];
    MemDomainSnapshot& ms = snap.mem[d];
    ms.live_bytes = clamp0(cells.live.load(std::memory_order_relaxed));
    ms.peak_bytes = clamp0(cells.peak.load(std::memory_order_relaxed));
    ms.allocs = cells.allocs.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      ms.alloc_size_buckets[b] = cells.size_buckets[b].load(std::memory_order_relaxed);
    }
    ms.alloc_size_sum = cells.size_sum.load(std::memory_order_relaxed);
  }
  snap.mem_tracked_live_bytes =
      clamp0(detail::g_mem_bank.tracked_live.load(std::memory_order_relaxed));
  snap.mem_tracked_peak_bytes =
      clamp0(detail::g_mem_bank.tracked_peak.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(detail::g_span_mutex);
  snap.spans = detail::g_spans;
  snap.spans_dropped = detail::g_spans_dropped;
  snap.phases = detail::g_phases;
  return snap;
}

void reset() {
  for (auto& c : detail::g_bank.counters) c.store(0, std::memory_order_relaxed);
  for (auto& g : detail::g_bank.gauges) g.store(0, std::memory_order_relaxed);
  for (auto& l : detail::g_bank.levels) l.store(0, std::memory_order_relaxed);
  for (auto& fam : detail::g_bank.labeled) {
    for (auto& cell : fam) cell.store(0, std::memory_order_relaxed);
  }
  for (auto& hist : detail::g_bank.hist_buckets) {
    for (auto& cell : hist) cell.store(0, std::memory_order_relaxed);
  }
  for (auto& s : detail::g_bank.hist_sums) s.store(0, std::memory_order_relaxed);
  for (auto& cells : detail::g_mem_bank.domains) {
    cells.live.store(0, std::memory_order_relaxed);
    cells.peak.store(0, std::memory_order_relaxed);
    cells.allocs.store(0, std::memory_order_relaxed);
    for (auto& b : cells.size_buckets) b.store(0, std::memory_order_relaxed);
    cells.size_sum.store(0, std::memory_order_relaxed);
  }
  detail::g_mem_bank.tracked_live.store(0, std::memory_order_relaxed);
  detail::g_mem_bank.tracked_peak.store(0, std::memory_order_relaxed);
  detail::profiler_reset();
  {
    std::lock_guard<std::mutex> lock(detail::g_label_mutex);
    detail::g_labels = {"_other"};
    detail::g_label_ids.clear();
  }
  std::lock_guard<std::mutex> lock(detail::g_span_mutex);
  detail::g_spans.clear();
  detail::g_spans_dropped = 0;
  detail::g_phases.clear();
}

std::uint64_t Snapshot::labeled_value(LabeledCounter f, const std::string& label) const {
  for (std::size_t l = 0; l < labels.size(); ++l) {
    if (labels[l] == label) return labeled[static_cast<std::size_t>(f)][l];
  }
  return 0;
}

ScopedSink::ScopedSink() : prev_enabled_(enabled()) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    base_counters_[i] = detail::g_bank.counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t f = 0; f < kNumLabeledCounters; ++f) {
    for (std::size_t l = 0; l < kMaxLabels; ++l) {
      base_labeled_[f][l] = detail::g_bank.labeled[f][l].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      base_hist_buckets_[h][b] =
          detail::g_bank.hist_buckets[h][b].load(std::memory_order_relaxed);
    }
    base_hist_sums_[h] = detail::g_bank.hist_sums[h].load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(detail::g_span_mutex);
    base_spans_ = detail::g_spans.size();
    base_phases_ = detail::g_phases.size();
  }
  {
    std::lock_guard<std::mutex> lock(detail::g_sink_mutex);
    detail::g_sinks.push_back(this);
  }
  set_enabled(true);
}

ScopedSink::~ScopedSink() {
  {
    std::lock_guard<std::mutex> lock(detail::g_sink_mutex);
    detail::g_sinks.erase(
        std::remove(detail::g_sinks.begin(), detail::g_sinks.end(), this),
        detail::g_sinks.end());
  }
  set_enabled(prev_enabled_);
}

Snapshot ScopedSink::take() const {
  Snapshot snap = snapshot();
  for (std::size_t i = 0; i < kNumCounters; ++i) snap.counters[i] -= base_counters_[i];
  // Gauges: the scope-local high-water this sink accumulated, not the
  // process-lifetime peak (a peak set before the scope opened is stale).
  for (std::size_t g = 0; g < kNumGauges; ++g) {
    snap.gauges[g] = local_gauges_[g].load(std::memory_order_relaxed);
  }
  for (std::size_t f = 0; f < kNumLabeledCounters; ++f) {
    for (std::size_t l = 0; l < snap.labeled[f].size(); ++l) {
      snap.labeled[f][l] -= base_labeled_[f][l];
    }
  }
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    std::uint64_t count = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      snap.hists[h].buckets[b] -= base_hist_buckets_[h][b];
      count += snap.hists[h].buckets[b];
    }
    snap.hists[h].sum -= base_hist_sums_[h];
    snap.hists[h].count = count;
  }
  snap.spans.erase(snap.spans.begin(),
                   snap.spans.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(base_spans_, snap.spans.size())));
  snap.phases.erase(snap.phases.begin(),
                    snap.phases.begin() + static_cast<std::ptrdiff_t>(
                                              std::min(base_phases_, snap.phases.size())));
  return snap;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_human(const Snapshot& snap) {
  std::ostringstream out;
  out << "opentla::obs stats\n";
  out << "  counters:\n";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    char line[96];
    std::snprintf(line, sizeof line, "    %-26s %12llu\n", name(static_cast<Counter>(i)),
                  static_cast<unsigned long long>(snap.counters[i]));
    out << line;
  }
  out << "  gauges:\n";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    char line[96];
    std::snprintf(line, sizeof line, "    %-26s %12llu\n", name(static_cast<Gauge>(i)),
                  static_cast<unsigned long long>(snap.gauges[i]));
    out << line;
  }
  // Labeled counters: only interned labels with activity in some family.
  bool labeled_header = false;
  for (std::size_t f = 0; f < kNumLabeledCounters; ++f) {
    for (std::size_t l = 0; l < snap.labeled[f].size(); ++l) {
      if (snap.labeled[f][l] == 0) continue;
      if (!labeled_header) {
        out << "  labeled counters:\n";
        labeled_header = true;
      }
      char line[160];
      std::snprintf(line, sizeof line, "    %s{%s=\"%s\"} %llu\n",
                    name(static_cast<LabeledCounter>(f)),
                    label_key(static_cast<LabeledCounter>(f)), snap.labels[l].c_str(),
                    static_cast<unsigned long long>(snap.labeled[f][l]));
      out << line;
    }
  }
  // Histograms: count/sum plus the nonzero buckets.
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    const HistogramSnapshot& hist = snap.hists[h];
    if (hist.count == 0) continue;
    char line[160];
    std::snprintf(line, sizeof line, "  histogram %s: count=%llu sum=%llu\n",
                  name(static_cast<Histogram>(h)),
                  static_cast<unsigned long long>(hist.count),
                  static_cast<unsigned long long>(hist.sum));
    out << line;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (hist.buckets[b] == 0) continue;
      if (b + 1 == kHistBuckets) {
        std::snprintf(line, sizeof line, "    le=+Inf %12llu\n",
                      static_cast<unsigned long long>(hist.buckets[b]));
      } else {
        std::snprintf(line, sizeof line, "    le=%-5llu %12llu\n",
                      static_cast<unsigned long long>(hist_bucket_le(b)),
                      static_cast<unsigned long long>(hist.buckets[b]));
      }
      out << line;
    }
  }
  // Memory: tracked domains with any activity, then the headline totals.
  bool mem_header = false;
  for (std::size_t d = 0; d < kNumMemDomains; ++d) {
    const MemDomainSnapshot& ms = snap.mem[d];
    if (ms.peak_bytes == 0 && ms.allocs == 0) continue;
    if (!mem_header) {
      out << "  memory (tracked bytes by domain):\n";
      mem_header = true;
    }
    char line[160];
    std::snprintf(line, sizeof line,
                  "    %-14s live %12llu  peak %12llu  allocs %9llu\n",
                  name(static_cast<MemDomain>(d)),
                  static_cast<unsigned long long>(ms.live_bytes),
                  static_cast<unsigned long long>(ms.peak_bytes),
                  static_cast<unsigned long long>(ms.allocs));
    out << line;
  }
  if (mem_header) {
    char line[160];
    std::snprintf(line, sizeof line, "    %-26s %12llu\n", "tracked_peak_bytes",
                  static_cast<unsigned long long>(snap.mem_tracked_peak_bytes));
    out << line;
    std::snprintf(line, sizeof line, "    %-26s %12llu\n", "bytes_per_state",
                  static_cast<unsigned long long>(snap.bytes_per_state()));
    out << line;
  }
  if (!snap.phases.empty()) {
    out << "  phases:\n";
    for (const PhaseEvent& p : snap.phases) {
      char line[160];
      std::snprintf(line, sizeof line, "    %-26s at %12.3f ms\n", p.phase.c_str(),
                    static_cast<double>(p.ts_us) / 1000.0);
      out << line;
    }
  }
  if (!snap.spans.empty()) {
    // Aggregate by name, preserving first-appearance order.
    struct Agg {
      std::uint64_t count = 0;
      std::uint64_t total_us = 0;
    };
    std::vector<std::pair<std::string, Agg>> aggs;
    for (const SpanRecord& s : snap.spans) {
      auto it = std::find_if(aggs.begin(), aggs.end(),
                             [&](const auto& a) { return a.first == s.name; });
      if (it == aggs.end()) {
        aggs.push_back({s.name, {}});
        it = aggs.end() - 1;
      }
      ++it->second.count;
      it->second.total_us += s.dur_us;
    }
    out << "  spans (aggregated):\n";
    for (const auto& [span_name, agg] : aggs) {
      char line[160];
      std::snprintf(line, sizeof line, "    %-26s %8llu x %12.3f ms\n", span_name.c_str(),
                    static_cast<unsigned long long>(agg.count),
                    static_cast<double>(agg.total_us) / 1000.0);
      out << line;
    }
  }
  if (snap.spans_dropped > 0) {
    out << "  (" << snap.spans_dropped << " spans dropped past the recording cap)\n";
  }
  return out.str();
}

std::string render_json(const Snapshot& snap) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << name(static_cast<Counter>(i)) << "\": " << snap.counters[i];
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << name(static_cast<Gauge>(i)) << "\": " << snap.gauges[i];
  }
  out << "\n  },\n  \"levels\": {";
  for (std::size_t i = 0; i < kNumLevels; ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << name(static_cast<Level>(i)) << "\": " << snap.levels[i];
  }
  out << "\n  },\n  \"labeled\": {";
  for (std::size_t f = 0; f < kNumLabeledCounters; ++f) {
    if (f > 0) out << ",";
    out << "\n    \"" << name(static_cast<LabeledCounter>(f)) << "\": {";
    bool first = true;
    for (std::size_t l = 0; l < snap.labeled[f].size(); ++l) {
      if (snap.labeled[f][l] == 0) continue;
      if (!first) out << ",";
      first = false;
      out << "\n      \"" << json_escape(snap.labels[l]) << "\": " << snap.labeled[f][l];
    }
    out << (first ? "}" : "\n    }");
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    if (h > 0) out << ",";
    const HistogramSnapshot& hist = snap.hists[h];
    out << "\n    \"" << name(static_cast<Histogram>(h)) << "\": {\"buckets\": [";
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (b > 0) out << ", ";
      out << hist.buckets[b];
    }
    out << "], \"sum\": " << hist.sum << ", \"count\": " << hist.count << "}";
  }
  out << "\n  },\n  \"memory\": {\n    \"domains\": {";
  for (std::size_t d = 0; d < kNumMemDomains; ++d) {
    if (d > 0) out << ",";
    const MemDomainSnapshot& ms = snap.mem[d];
    out << "\n      \"" << name(static_cast<MemDomain>(d))
        << "\": {\"live_bytes\": " << ms.live_bytes
        << ", \"peak_bytes\": " << ms.peak_bytes << ", \"allocs\": " << ms.allocs
        << ", \"alloc_size\": {\"buckets\": [";
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (b > 0) out << ", ";
      out << ms.alloc_size_buckets[b];
    }
    out << "], \"sum\": " << ms.alloc_size_sum << ", \"count\": " << ms.allocs
        << "}}";
  }
  out << "\n    },\n    \"tracked_live_bytes\": " << snap.mem_tracked_live_bytes
      << ",\n    \"tracked_peak_bytes\": " << snap.mem_tracked_peak_bytes
      << ",\n    \"bytes_per_state\": " << snap.bytes_per_state();
  out << "\n  },\n  \"phases\": [";
  for (std::size_t i = 0; i < snap.phases.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n    {\"phase\": \"" << json_escape(snap.phases[i].phase)
        << "\", \"ts_us\": " << snap.phases[i].ts_us << "}";
  }
  if (!snap.phases.empty()) out << "\n  ";
  out << "],\n  \"spans_dropped\": " << snap.spans_dropped;
  out << ",\n  \"spans\": [";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanRecord& s = snap.spans[i];
    if (i > 0) out << ",";
    out << "\n    {\"name\": \"" << json_escape(s.name) << "\", \"id\": " << s.id
        << ", \"parent\": " << s.parent << ", \"tid\": " << s.tid
        << ", \"ts_us\": " << s.start_us << ", \"dur_us\": " << s.dur_us << "}";
  }
  if (!snap.spans.empty()) out << "\n  ";
  out << "]\n}\n";
  return out.str();
}

std::string render_chrome_trace(const Snapshot& snap) {
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  sep();
  out << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"opentla\"}}";
  std::uint64_t last_ts = 0;
  for (const SpanRecord& s : snap.spans) {
    last_ts = std::max(last_ts, s.start_us + s.dur_us);
    sep();
    out << "  {\"name\": \"" << json_escape(s.name) << "\", \"cat\": \"opentla\", "
        << "\"ph\": \"X\", \"ts\": " << s.start_us << ", \"dur\": " << s.dur_us
        << ", \"pid\": 1, \"tid\": " << s.tid << ", \"args\": {\"id\": " << s.id
        << ", \"parent\": " << s.parent << "}}";
  }
  for (const PhaseEvent& p : snap.phases) {
    last_ts = std::max(last_ts, p.ts_us);
    sep();
    out << "  {\"name\": \"" << json_escape(p.phase) << "\", \"cat\": \"phase\", "
        << "\"ph\": \"I\", \"ts\": " << p.ts_us << ", \"pid\": 1, \"tid\": 1, "
        << "\"s\": \"p\"}";
  }
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (snap.counters[i] == 0) continue;
    sep();
    out << "  {\"name\": \"" << name(static_cast<Counter>(i)) << "\", \"ph\": \"C\", "
        << "\"ts\": " << last_ts << ", \"pid\": 1, \"args\": {\"value\": "
        << snap.counters[i] << "}}";
  }
  // Memory gauges on the same timeline: one counter track per active
  // domain (live + peak series) plus the headline bytes_per_state.
  for (std::size_t d = 0; d < kNumMemDomains; ++d) {
    const MemDomainSnapshot& ms = snap.mem[d];
    if (ms.peak_bytes == 0 && ms.allocs == 0) continue;
    sep();
    out << "  {\"name\": \"mem_" << name(static_cast<MemDomain>(d))
        << "\", \"ph\": \"C\", \"ts\": " << last_ts
        << ", \"pid\": 1, \"args\": {\"live_bytes\": " << ms.live_bytes
        << ", \"peak_bytes\": " << ms.peak_bytes << "}}";
  }
  if (snap.mem_tracked_peak_bytes > 0) {
    sep();
    out << "  {\"name\": \"mem_tracked\", \"ph\": \"C\", \"ts\": " << last_ts
        << ", \"pid\": 1, \"args\": {\"peak_bytes\": " << snap.mem_tracked_peak_bytes
        << ", \"bytes_per_state\": " << snap.bytes_per_state() << "}}";
  }
  if (snap.spans_dropped > 0) {
    sep();
    out << "  {\"name\": \"spans_dropped\", \"ph\": \"M\", \"pid\": 1, "
        << "\"args\": {\"value\": " << snap.spans_dropped << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

std::string write_bench_json(const std::string& bench_name, const Snapshot& snap) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out) return "";
  out << "{\n  \"schema\": \"opentla-bench-v3\",\n  \"bench\": \""
      << json_escape(bench_name) << "\",\n  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << name(static_cast<Counter>(i)) << "\": " << snap.counters[i];
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << name(static_cast<Gauge>(i)) << "\": " << snap.gauges[i];
  }
  out << "\n  },\n  \"labeled\": {";
  for (std::size_t f = 0; f < kNumLabeledCounters; ++f) {
    if (f > 0) out << ",";
    out << "\n    \"" << name(static_cast<LabeledCounter>(f)) << "\": {";
    bool first = true;
    for (std::size_t l = 0; l < snap.labeled[f].size(); ++l) {
      if (snap.labeled[f][l] == 0) continue;
      if (!first) out << ",";
      first = false;
      out << "\n      \"" << json_escape(snap.labels[l]) << "\": " << snap.labeled[f][l];
    }
    out << (first ? "}" : "\n    }");
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    if (h > 0) out << ",";
    const HistogramSnapshot& hist = snap.hists[h];
    out << "\n    \"" << name(static_cast<Histogram>(h)) << "\": {\"buckets\": [";
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (b > 0) out << ", ";
      out << hist.buckets[b];
    }
    out << "], \"sum\": " << hist.sum << ", \"count\": " << hist.count << "}";
  }
  out << "\n  },\n  \"memory\": {\n    \"domains\": {";
  for (std::size_t d = 0; d < kNumMemDomains; ++d) {
    if (d > 0) out << ",";
    const MemDomainSnapshot& ms = snap.mem[d];
    out << "\n      \"" << name(static_cast<MemDomain>(d))
        << "\": {\"live_bytes\": " << ms.live_bytes
        << ", \"peak_bytes\": " << ms.peak_bytes << ", \"allocs\": " << ms.allocs
        << ", \"alloc_size\": {\"buckets\": [";
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (b > 0) out << ", ";
      out << ms.alloc_size_buckets[b];
    }
    out << "], \"sum\": " << ms.alloc_size_sum << ", \"count\": " << ms.allocs
        << "}}";
  }
  out << "\n    },\n    \"tracked_live_bytes\": " << snap.mem_tracked_live_bytes
      << ",\n    \"tracked_peak_bytes\": " << snap.mem_tracked_peak_bytes
      << ",\n    \"bytes_per_state\": " << snap.bytes_per_state();
  out << "\n  }\n}\n";
  return out ? path : "";
}

}  // namespace opentla::obs
