#include "opentla/obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

namespace opentla::obs {

const char* name(Counter c) {
  switch (c) {
    case Counter::StatesGenerated: return "states_generated";
    case Counter::SuccessorsEnumerated: return "successors_enumerated";
    case Counter::EnabledEvaluations: return "enabled_evaluations";
    case Counter::ConfigsExpanded: return "configs_expanded";
    case Counter::SccPasses: return "scc_passes";
    case Counter::LassoCandidates: return "lasso_candidates";
    case Counter::InclusionPairs: return "inclusion_pairs";
    case Counter::ProductNodes: return "product_nodes";
    case Counter::ProductSteps: return "product_steps";
    case Counter::FreezeSteps: return "freeze_steps";
    case Counter::RefinementEdgesChecked: return "refinement_edges_checked";
    case Counter::OracleEvaluations: return "oracle_evaluations";
    case Counter::ParStatesExpanded: return "par_states_expanded";
    case Counter::ParSteals: return "par_steals";
    case Counter::ParShardContention: return "par_shard_contention";
    case Counter::kCount: break;
  }
  return "?";
}

const char* name(Gauge g) {
  switch (g) {
    case Gauge::PeakConfigurationCount: return "peak_configuration_count";
    case Gauge::PeakGraphStates: return "peak_graph_states";
    case Gauge::PeakProductNodes: return "peak_product_nodes";
    case Gauge::PeakParWorkers: return "peak_par_workers";
    case Gauge::kCount: break;
  }
  return "?";
}

namespace detail {

Bank g_bank;
std::atomic<bool> g_enabled{false};

namespace {

// Completed spans, appended under a mutex. Bounded so pathological runs
// (a span per benchmark iteration) cannot exhaust memory; overflow is
// counted and reported by every renderer.
constexpr std::size_t kMaxSpans = 1u << 17;

std::mutex g_span_mutex;
std::vector<SpanRecord> g_spans;
std::uint64_t g_spans_dropped = 0;

std::atomic<std::uint32_t> g_next_span_id{1};
std::atomic<std::uint32_t> g_next_tid{1};

thread_local std::uint32_t t_current_span = 0;  // innermost open span, 0 = none
thread_local std::uint32_t t_tid = 0;

std::uint32_t thread_tid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

std::uint64_t now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

}  // namespace
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void Span::open(std::string span_name) {
  active_ = true;
  name_ = std::move(span_name);
  id_ = detail::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = detail::t_current_span;
  detail::t_current_span = id_;
  start_us_ = detail::now_us();
}

void Span::close() {
  const std::uint64_t end_us = detail::now_us();
  detail::t_current_span = parent_;
  SpanRecord rec;
  rec.name = std::move(name_);
  rec.id = id_;
  rec.parent = parent_;
  rec.tid = detail::thread_tid();
  rec.start_us = start_us_;
  rec.dur_us = end_us - start_us_;
  std::lock_guard<std::mutex> lock(detail::g_span_mutex);
  if (detail::g_spans.size() < detail::kMaxSpans) {
    detail::g_spans.push_back(std::move(rec));
  } else {
    ++detail::g_spans_dropped;
  }
}

Snapshot snapshot() {
  Snapshot snap;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    snap.counters[i] = detail::g_bank.counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    snap.gauges[i] = detail::g_bank.gauges[i].load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(detail::g_span_mutex);
  snap.spans = detail::g_spans;
  snap.spans_dropped = detail::g_spans_dropped;
  return snap;
}

void reset() {
  for (auto& c : detail::g_bank.counters) c.store(0, std::memory_order_relaxed);
  for (auto& g : detail::g_bank.gauges) g.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(detail::g_span_mutex);
  detail::g_spans.clear();
  detail::g_spans_dropped = 0;
}

ScopedSink::ScopedSink() : prev_enabled_(enabled()) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    base_counters_[i] = detail::g_bank.counters[i].load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(detail::g_span_mutex);
    base_spans_ = detail::g_spans.size();
  }
  set_enabled(true);
}

ScopedSink::~ScopedSink() { set_enabled(prev_enabled_); }

Snapshot ScopedSink::take() const {
  Snapshot snap = snapshot();
  for (std::size_t i = 0; i < kNumCounters; ++i) snap.counters[i] -= base_counters_[i];
  // Gauges are high-water marks, not differences: report them as-is.
  snap.spans.erase(snap.spans.begin(),
                   snap.spans.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(base_spans_, snap.spans.size())));
  return snap;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_human(const Snapshot& snap) {
  std::ostringstream out;
  out << "opentla::obs stats\n";
  out << "  counters:\n";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    char line[96];
    std::snprintf(line, sizeof line, "    %-26s %12llu\n", name(static_cast<Counter>(i)),
                  static_cast<unsigned long long>(snap.counters[i]));
    out << line;
  }
  out << "  gauges:\n";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    char line[96];
    std::snprintf(line, sizeof line, "    %-26s %12llu\n", name(static_cast<Gauge>(i)),
                  static_cast<unsigned long long>(snap.gauges[i]));
    out << line;
  }
  if (!snap.spans.empty()) {
    // Aggregate by name, preserving first-appearance order.
    struct Agg {
      std::uint64_t count = 0;
      std::uint64_t total_us = 0;
    };
    std::vector<std::pair<std::string, Agg>> aggs;
    for (const SpanRecord& s : snap.spans) {
      auto it = std::find_if(aggs.begin(), aggs.end(),
                             [&](const auto& a) { return a.first == s.name; });
      if (it == aggs.end()) {
        aggs.push_back({s.name, {}});
        it = aggs.end() - 1;
      }
      ++it->second.count;
      it->second.total_us += s.dur_us;
    }
    out << "  spans (aggregated):\n";
    for (const auto& [span_name, agg] : aggs) {
      char line[160];
      std::snprintf(line, sizeof line, "    %-26s %8llu x %12.3f ms\n", span_name.c_str(),
                    static_cast<unsigned long long>(agg.count),
                    static_cast<double>(agg.total_us) / 1000.0);
      out << line;
    }
  }
  if (snap.spans_dropped > 0) {
    out << "  (" << snap.spans_dropped << " spans dropped past the recording cap)\n";
  }
  return out.str();
}

std::string render_json(const Snapshot& snap) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << name(static_cast<Counter>(i)) << "\": " << snap.counters[i];
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << name(static_cast<Gauge>(i)) << "\": " << snap.gauges[i];
  }
  out << "\n  },\n  \"spans_dropped\": " << snap.spans_dropped;
  out << ",\n  \"spans\": [";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanRecord& s = snap.spans[i];
    if (i > 0) out << ",";
    out << "\n    {\"name\": \"" << json_escape(s.name) << "\", \"id\": " << s.id
        << ", \"parent\": " << s.parent << ", \"tid\": " << s.tid
        << ", \"ts_us\": " << s.start_us << ", \"dur_us\": " << s.dur_us << "}";
  }
  if (!snap.spans.empty()) out << "\n  ";
  out << "]\n}\n";
  return out.str();
}

std::string render_chrome_trace(const Snapshot& snap) {
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  sep();
  out << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"opentla\"}}";
  std::uint64_t last_ts = 0;
  for (const SpanRecord& s : snap.spans) {
    last_ts = std::max(last_ts, s.start_us + s.dur_us);
    sep();
    out << "  {\"name\": \"" << json_escape(s.name) << "\", \"cat\": \"opentla\", "
        << "\"ph\": \"X\", \"ts\": " << s.start_us << ", \"dur\": " << s.dur_us
        << ", \"pid\": 1, \"tid\": " << s.tid << ", \"args\": {\"id\": " << s.id
        << ", \"parent\": " << s.parent << "}}";
  }
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (snap.counters[i] == 0) continue;
    sep();
    out << "  {\"name\": \"" << name(static_cast<Counter>(i)) << "\", \"ph\": \"C\", "
        << "\"ts\": " << last_ts << ", \"pid\": 1, \"args\": {\"value\": "
        << snap.counters[i] << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

std::string write_bench_json(const std::string& bench_name, const Snapshot& snap) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out) return "";
  out << "{\n  \"schema\": \"opentla-bench-v1\",\n  \"bench\": \""
      << json_escape(bench_name) << "\",\n  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << name(static_cast<Counter>(i)) << "\": " << snap.counters[i];
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << name(static_cast<Gauge>(i)) << "\": " << snap.gauges[i];
  }
  out << "\n  }\n}\n";
  return out ? path : "";
}

}  // namespace opentla::obs
