#include "opentla/obs/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <exception>
#include <mutex>
#include <vector>

#include "opentla/obs/obs.hpp"

namespace opentla::obs {

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::kPhase: return "phase";
    case FlightKind::kProgress: return "progress";
    case FlightKind::kBudget: return "budget";
    case FlightKind::kNote: return "note";
    case FlightKind::kSignal: return "signal";
  }
  return "note";
}

namespace {

struct Slot {
  // seq + 1 once the payload below is fully written; 0 while a writer is
  // in the slot. A dumper copies the payload and re-reads commit: only a
  // stable seq + 1 on both sides means the copy is untorn.
  std::atomic<std::uint64_t> commit{0};
  FlightEvent ev;
};

struct Ring {
  std::vector<Slot> slots;
  std::size_t mask = 0;
  std::atomic<std::uint64_t> head{0};
};

// The ring pointer is set under g_mu and never freed while enabled; the
// record fast path reads it with an acquire load.
std::mutex g_mu;
std::atomic<Ring*> g_ring{nullptr};
std::string g_dump_path;
// The dump path as a plain C array: the signal-context dumper must not
// touch std::string.
char g_dump_path_raw[512] = {};

std::terminate_handler g_prev_terminate = nullptr;
struct SavedSig {
  int signo;
  struct sigaction old;
};
SavedSig g_saved_sigs[8];
int g_saved_sig_count = 0;
bool g_hooks_installed = false;

// --- Async-signal-safe formatting helpers ---

std::size_t format_u64(char* out, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

struct LineBuf {
  char buf[512];
  std::size_t len = 0;
  void raw(const char* s) {
    while (*s != '\0' && len < sizeof buf - 1) buf[len++] = *s++;
  }
  void num(std::uint64_t v) {
    if (len + 20 < sizeof buf) len += format_u64(buf + len, v);
  }
  void nl() {
    if (len < sizeof buf) buf[len++] = '\n';
  }
};

void write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w <= 0) return;
    off += static_cast<std::size_t>(w);
  }
}

void append_event_line(int fd, const FlightEvent& ev) {
  LineBuf line;
  line.raw("{\"type\":\"");
  line.raw(flight_kind_name(ev.kind));
  line.raw("\",\"seq\":");
  line.num(ev.seq);
  line.raw(",\"ts_us\":");
  line.num(ev.ts_us);
  line.raw(",\"label\":\"");
  line.raw(ev.label);
  line.raw("\",\"v0\":");
  line.num(ev.v0);
  line.raw(",\"v1\":");
  line.num(ev.v1);
  line.raw(",\"v2\":");
  line.num(ev.v2);
  line.raw("}");
  line.nl();
  write_all(fd, line.buf, line.len);
}

extern "C" void opentla_flight_fatal_handler(int signo) {
  Ring* ring = g_ring.load(std::memory_order_acquire);
  if (ring != nullptr) {
    // Best effort: record the signal itself, then dump. Recording from a
    // signal handler is safe here because the writer path is lock-free
    // (fetch_add + plain stores into a preallocated slot).
    flight_recorder_record(FlightKind::kSignal, "fatal", static_cast<std::uint64_t>(signo));
    flight_recorder_dump("fatal_signal");
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

void opentla_flight_terminate_handler() {
  flight_recorder_dump("uncaught_exception");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

void install_hooks() {
  if (g_hooks_installed) return;
  g_prev_terminate = std::set_terminate(opentla_flight_terminate_handler);
  g_saved_sig_count = 0;
  for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    struct sigaction sa = {};
    sa.sa_handler = opentla_flight_fatal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    SavedSig saved;
    saved.signo = signo;
    if (sigaction(signo, &sa, &saved.old) == 0) g_saved_sigs[g_saved_sig_count++] = saved;
  }
  g_hooks_installed = true;
}

void remove_hooks() {
  if (!g_hooks_installed) return;
  std::set_terminate(g_prev_terminate);
  for (int i = 0; i < g_saved_sig_count; ++i) {
    sigaction(g_saved_sigs[i].signo, &g_saved_sigs[i].old, nullptr);
  }
  g_saved_sig_count = 0;
  g_hooks_installed = false;
}

}  // namespace

void flight_recorder_enable(std::size_t capacity, std::string dump_path) {
  std::size_t cap = 8;
  while (cap < capacity) cap <<= 1;
  auto* ring = new Ring;
  ring->slots = std::vector<Slot>(cap);
  ring->mask = cap - 1;

  std::lock_guard<std::mutex> lock(g_mu);
  Ring* old = g_ring.exchange(nullptr, std::memory_order_acq_rel);
  delete old;
  g_dump_path = std::move(dump_path);
  std::memset(g_dump_path_raw, 0, sizeof g_dump_path_raw);
  std::strncpy(g_dump_path_raw, g_dump_path.c_str(), sizeof g_dump_path_raw - 1);
  install_hooks();
  g_ring.store(ring, std::memory_order_release);
}

void flight_recorder_disable() {
  std::lock_guard<std::mutex> lock(g_mu);
  Ring* old = g_ring.exchange(nullptr, std::memory_order_acq_rel);
  delete old;
  remove_hooks();
}

bool flight_recorder_enabled() {
  return g_ring.load(std::memory_order_relaxed) != nullptr;
}

void flight_recorder_record(FlightKind kind, const char* label, std::uint64_t v0,
                            std::uint64_t v1, std::uint64_t v2) {
  Ring* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  const std::uint64_t seq = ring->head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring->slots[seq & ring->mask];
  slot.commit.store(0, std::memory_order_release);
  FlightEvent& ev = slot.ev;
  ev.seq = seq;
  ev.ts_us = now_us();
  ev.kind = kind;
  ev.v0 = v0;
  ev.v1 = v1;
  ev.v2 = v2;
  std::size_t n = 0;
  if (label != nullptr) {
    for (; label[n] != '\0' && n < sizeof ev.label - 1; ++n) {
      const char c = label[n];
      // Keep the dump escape-free: anything JSON would need to escape
      // becomes '_'.
      ev.label[n] = (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) ? '_' : c;
    }
  }
  ev.label[n] = '\0';
  slot.commit.store(seq + 1, std::memory_order_release);
}

std::size_t flight_recorder_dump(const char* reason) {
  Ring* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr || g_dump_path_raw[0] == '\0') return 0;
  const int fd = ::open(g_dump_path_raw, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return 0;

  const std::uint64_t head = ring->head.load(std::memory_order_acquire);
  const std::uint64_t cap = static_cast<std::uint64_t>(ring->mask) + 1;
  const std::uint64_t first = head > cap ? head - cap : 0;
  std::size_t written = 0;
  for (std::uint64_t seq = first; seq < head; ++seq) {
    Slot& slot = ring->slots[seq & ring->mask];
    if (slot.commit.load(std::memory_order_acquire) != seq + 1) continue;
    FlightEvent copy = slot.ev;
    if (slot.commit.load(std::memory_order_acquire) != seq + 1) continue;  // torn by a wrap
    append_event_line(fd, copy);
    ++written;
  }

  LineBuf tail;
  tail.raw("{\"type\":\"dump\",\"reason\":\"");
  tail.raw(reason != nullptr ? reason : "unknown");
  tail.raw("\",\"recorded\":");
  tail.num(head);
  tail.raw(",\"written\":");
  tail.num(written);
  tail.raw("}");
  tail.nl();
  write_all(fd, tail.buf, tail.len);
  ::close(fd);
  return written;
}

std::uint64_t flight_recorder_recorded() {
  Ring* ring = g_ring.load(std::memory_order_acquire);
  return ring == nullptr ? 0 : ring->head.load(std::memory_order_relaxed);
}

}  // namespace opentla::obs
