// opentla/obs/flight_recorder.hpp
//
// Always-on crash telemetry: a bounded lock-free ring of recent events —
// phase boundaries, progress heartbeats, budget decisions — kept in fixed
// POD slots so the *last N things the engine did* survive to a dump even
// when the run ends badly. The ring is dumped as JSONL (schema
// tools/flight_schema.json) on a budget breach, an uncaught exception
// (std::terminate), or a fatal signal; the dump path is async-signal-safe
// end to end (open/write/close plus hand-rolled integer formatting, no
// allocation, no stdio). Modeled on cortx-motr's addb2 telemetry ring.
//
// Recording is multi-producer lock-free: a slot is claimed with one
// fetch_add and carries a per-slot commit sequence, so a dump that races
// a wrapping writer detects and skips the torn slot instead of emitting
// garbage.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace opentla::obs {

enum class FlightKind : std::uint8_t {
  kPhase = 0,    // a phase boundary (label = phase name)
  kProgress,     // a heartbeat (v0 = states, v1 = frontier, v2 = rss bytes)
  kBudget,       // a budget decision (label = stop reason, v0 = states, v1 = rss)
  kNote,         // free-form marker from the driver
  kSignal,       // a fatal signal observed (v0 = signo)
};

/// Stable identifier used in the dump's "type" field.
const char* flight_kind_name(FlightKind k);

/// One ring slot's payload. POD on purpose: slots are reused in place and
/// copied out by the (possibly signal-context) dumper. Labels longer than
/// the field are truncated; characters that would need JSON escaping are
/// replaced with '_' at record time so the dumper never has to escape.
struct FlightEvent {
  std::uint64_t seq = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t v0 = 0;
  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;
  FlightKind kind = FlightKind::kNote;
  char label[39] = {};
};

/// Allocates the ring (capacity rounded up to a power of two, min 8),
/// remembers `dump_path`, and installs the crash hooks: a terminate
/// handler and SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT handlers that dump
/// the ring before re-raising. Idempotent; a second call resizes.
void flight_recorder_enable(std::size_t capacity, std::string dump_path);

/// Drops the ring and restores the hooks (tests call this; tlacheck lets
/// process exit clean it up).
void flight_recorder_disable();

bool flight_recorder_enabled();

/// Appends one event. No-op (one branch) while disabled. Lock-free;
/// callable from any thread, NOT from signal handlers (the dump is the
/// only signal-context path).
void flight_recorder_record(FlightKind kind, const char* label, std::uint64_t v0 = 0,
                            std::uint64_t v1 = 0, std::uint64_t v2 = 0);

/// Writes the ring's surviving events (oldest first) to the enable-time
/// path as JSONL, newest-truncating: at most `capacity` event lines plus
/// one trailing {"type":"dump",...} line carrying `reason`, the total
/// recorded count, and how many were written. Async-signal-safe. Returns
/// the number of event lines written (0 when disabled).
std::size_t flight_recorder_dump(const char* reason);

/// Total events recorded since enable (monotonic; may exceed capacity).
std::uint64_t flight_recorder_recorded();

}  // namespace opentla::obs
