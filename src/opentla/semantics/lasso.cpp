#include "opentla/semantics/lasso.hpp"

#include <sstream>
#include <stdexcept>

namespace opentla {

LassoBehavior::LassoBehavior(std::vector<State> states, std::size_t loop_start)
    : states_(std::move(states)), loop_start_(loop_start) {
  if (states_.empty()) throw std::runtime_error("LassoBehavior: empty");
  if (loop_start_ >= states_.size()) {
    throw std::runtime_error("LassoBehavior: loop start out of range");
  }
}

std::string LassoBehavior::to_string(const VarTable& vars) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    os << (i == loop_start_ ? "->[" : "   ") << "state " << i << ": "
       << states_[i].to_string(vars) << "\n";
  }
  os << "   (loops back to state " << loop_start_ << ")\n";
  return os.str();
}

}  // namespace opentla
