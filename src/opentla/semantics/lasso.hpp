// opentla/semantics/lasso.hpp
//
// Ultimately periodic ("lasso") behaviors. Over a finite universe every
// satisfiable omega-regular property is witnessed by a lasso, so exact
// formula evaluation on lassos (semantics/oracle.hpp) yields a brute-force
// validity checker that the production checkers are tested against.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "opentla/state/state.hpp"
#include "opentla/state/var_table.hpp"

namespace opentla {

/// The infinite behavior  states[0], ..., states[n-1], states[loop_start],
/// states[loop_start]+1, ...  (positions >= n wrap into the loop).
class LassoBehavior {
 public:
  LassoBehavior(std::vector<State> states, std::size_t loop_start);

  /// Number of distinct (canonical) positions.
  std::size_t length() const { return states_.size(); }
  std::size_t loop_start() const { return loop_start_; }
  std::size_t loop_length() const { return states_.size() - loop_start_; }

  /// The state at any position i >= 0 (wrapping into the loop).
  const State& at(std::size_t i) const {
    return states_[canonical(i)];
  }

  /// Canonical position of i: itself if i < length(), else its loop image.
  std::size_t canonical(std::size_t i) const {
    if (i < states_.size()) return i;
    return loop_start_ + (i - loop_start_) % loop_length();
  }

  /// The canonical position following i (wraps length()-1 to loop_start()).
  std::size_t successor(std::size_t i) const {
    const std::size_t c = canonical(i);
    return c + 1 < states_.size() ? c + 1 : loop_start_;
  }

  std::string to_string(const VarTable& vars) const;

 private:
  std::vector<State> states_;
  std::size_t loop_start_;
};

}  // namespace opentla
