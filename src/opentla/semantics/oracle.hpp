// opentla/semantics/oracle.hpp
//
// Exact evaluation of temporal formulas on lasso behaviors — the semantic
// ground truth the production checkers are validated against.
//
// Every operator of tla/formula.hpp is supported:
//   - the temporal combinators by position-indexed evaluation with
//     memoization (truth values are determined by the canonical positions);
//   - WF/SF by their loop characterizations;
//   - canonical specs (with hiding and fairness) by fair-path existence in
//     the product of the lasso with the spec's transition system;
//   - C(F), E +> M, E -> M, F_{+v} and E _|_ M by running prefix machines
//     along the lasso until the joint (position, configurations) state
//     repeats, which makes the infinitely many "holds for the first n
//     states" conditions finitely checkable.
//
// Requirement: specs under C / +> / -> / + / _|_ must be machine-closed
// (Proposition 1's syntactic condition) so that prefix satisfaction equals
// safety-prefix satisfaction; the oracle verifies this and throws
// otherwise.

#pragma once

#include <map>
#include <stdexcept>

#include "opentla/obs/memory.hpp"
#include "opentla/semantics/lasso.hpp"
#include "opentla/tla/formula.hpp"
#include "opentla/vm/interp.hpp"

namespace opentla {

class Oracle {
 public:
  explicit Oracle(const VarTable& vars) : vars_(&vars) {}

  /// sigma |= f ?
  bool evaluate(const Formula& f, const LassoBehavior& sigma);

  /// sigma^pos |= f (the suffix starting at position pos).
  bool evaluate_at(const Formula& f, const LassoBehavior& sigma, std::size_t pos);

 private:
  /// Alive flags of prefix machines run jointly along a lasso suffix.
  /// alive(j, k) = machine j alive after reading k+1 states; periodic from
  /// `wrap_from` back to `wrap_to`.
  struct MachineTrace {
    std::vector<std::vector<char>> alive;  // [machine][index]
    std::size_t wrap_from = 0;
    std::size_t wrap_to = 0;

    bool at(std::size_t machine, std::size_t k) const {
      const std::vector<char>& a = alive[machine];
      while (k >= wrap_from) k = wrap_to + (k - wrap_from);
      return a[k] != 0;
    }
    /// Indices 0..horizon() cover every distinct condition instance.
    std::size_t horizon() const { return wrap_from; }
  };

  bool eval(const Formula& f, const LassoBehavior& sigma, std::size_t pos);
  bool eval_spec(const CanonicalSpec& spec, const LassoBehavior& sigma, std::size_t pos);
  MachineTrace run_machines(const std::vector<const CanonicalSpec*>& specs,
                            const LassoBehavior& sigma, std::size_t pos) const;
  /// True iff the subscript tuple v is constant from absolute position
  /// `from` on (along the suffix into the loop).
  static bool tuple_constant_from(const std::vector<VarId>& v, const LassoBehavior& sigma,
                                  std::size_t from);
  void require_machine_closed(const CanonicalSpec& spec) const;

  const VarTable* vars_;
  std::map<std::pair<const FormulaNode*, std::size_t>, bool> memo_;
  const LassoBehavior* memo_sigma_ = nullptr;
  /// Pred atoms lowered to bytecode, keyed by node identity. Like memo_,
  /// only valid within one top-level evaluation: temporary Formulas can
  /// reuse node addresses across calls, so the cache is cleared alongside
  /// memo_. (An Oracle is single-threaded; vm_ctx_ is reused as scratch.)
  std::map<const FormulaNode*, vm::CompiledExpr> pred_cache_;
  vm::VmContext vm_ctx_;
  /// Memory accounting: map-node bytes of memo_ and pred_cache_, charged
  /// per insert and released when the caches clear at evaluate() start.
  /// (pred_cache_ program pools charge vm_pools via CompiledExpr itself.)
  obs::MemTally mem_{obs::MemDomain::Oracle};
};

}  // namespace opentla
