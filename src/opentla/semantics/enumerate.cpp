#include "opentla/semantics/enumerate.hpp"

#include <unordered_map>

#include "opentla/obs/obs.hpp"
#include "opentla/state/state_space.hpp"

namespace opentla {

namespace {
void enumerate_states(const StateSpace& space, std::vector<State>& all) {
  space.for_each_state([&](const State& s) { all.push_back(s); });
}
}  // namespace

bool for_each_lasso(const VarTable& vars, std::size_t len,
                    const std::function<bool(const LassoBehavior&)>& fn) {
  StateSpace space(vars);
  std::vector<State> all;
  enumerate_states(space, all);

  std::vector<std::size_t> idx(len, 0);
  std::vector<State> states(len, all[0]);
  while (true) {
    for (std::size_t i = 0; i < len; ++i) states[i] = all[idx[i]];
    for (std::size_t loop = 0; loop < len; ++loop) {
      if (fn(LassoBehavior(states, loop))) return true;
    }
    std::size_t p = 0;
    for (; p < len; ++p) {
      if (++idx[p] < all.size()) break;
      idx[p] = 0;
    }
    if (p == len) return false;
  }
}

BoundedValidity check_validity_bounded(const VarTable& vars, const Formula& f,
                                       std::size_t max_len) {
  BoundedValidity result;
  Oracle oracle(vars);
  for (std::size_t len = 1; len <= max_len && result.valid; ++len) {
    // The first violation stops the whole enumeration, instead of spinning
    // through the remaining |S|^len * len lassos of this length.
    for_each_lasso(vars, len, [&](const LassoBehavior& sigma) {
      ++result.behaviors_checked;
      OPENTLA_OBS_COUNT(BehaviorsChecked);
      if (!oracle.evaluate(f, sigma)) {
        result.valid = false;
        result.violation = sigma;
        return true;
      }
      return false;
    });
  }
  return result;
}

LassoBehavior random_lasso(const VarTable& vars, std::size_t len, std::mt19937& rng) {
  std::vector<State> states;
  states.reserve(len);
  std::vector<Value> values(vars.size());
  for (std::size_t i = 0; i < len; ++i) {
    for (VarId v = 0; v < vars.size(); ++v) {
      const Domain& d = vars.domain(v);
      values[v] = d[std::uniform_int_distribution<std::size_t>(0, d.size() - 1)(rng)];
    }
    states.emplace_back(values);
  }
  const std::size_t loop = std::uniform_int_distribution<std::size_t>(0, len - 1)(rng);
  return LassoBehavior(std::move(states), loop);
}

LassoBehavior random_graph_lasso(const StateGraph& g, std::mt19937& rng,
                                 std::size_t max_steps) {
  const std::vector<StateId>& inits = g.initial();
  StateId cur = inits[std::uniform_int_distribution<std::size_t>(0, inits.size() - 1)(rng)];
  std::vector<StateId> walk = {cur};
  // Lookup-only: iteration order of this map never influences the walk, so
  // the result is a pure function of (g, rng state).
  std::unordered_map<StateId, std::size_t> first_seen = {{cur, 0}};
  for (std::size_t step = 0; step < max_steps; ++step) {
    const std::vector<StateId>& succ = g.successors(cur);
    if (succ.empty()) break;  // only possible without self-loops
    cur = succ[std::uniform_int_distribution<std::size_t>(0, succ.size() - 1)(rng)];
    auto it = first_seen.find(cur);
    if (it != first_seen.end()) {
      OPENTLA_OBS_HIST(LassoWalkLength, walk.size());
      std::vector<State> states;
      states.reserve(walk.size());
      for (StateId s : walk) states.push_back(g.state(s));
      return LassoBehavior(std::move(states), it->second);
    }
    first_seen.emplace(cur, walk.size());
    walk.push_back(cur);
  }
  // Close on the final state's stuttering self-loop.
  OPENTLA_OBS_HIST(LassoWalkLength, walk.size());
  std::vector<State> states;
  states.reserve(walk.size());
  for (StateId s : walk) states.push_back(g.state(s));
  return LassoBehavior(std::move(states), walk.size() - 1);
}

}  // namespace opentla
