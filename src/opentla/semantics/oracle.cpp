#include "opentla/semantics/oracle.hpp"

#include <algorithm>

#include "opentla/automata/prefix_machine.hpp"
#include "opentla/check/liveness.hpp"
#include "opentla/check/machine_closure.hpp"
#include "opentla/expr/eval.hpp"
#include "opentla/graph/fair_cycle.hpp"
#include "opentla/graph/state_graph.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/state/state_space.hpp"

namespace opentla {

bool Oracle::evaluate(const Formula& f, const LassoBehavior& sigma) {
  return evaluate_at(f, sigma, 0);
}

bool Oracle::evaluate_at(const Formula& f, const LassoBehavior& sigma, std::size_t pos) {
  // The memo is only valid within a single top-level evaluation: callers
  // routinely pass distinct temporary behaviors that reuse the same stack
  // address, so address-based caching across calls would be unsound.
  memo_.clear();
  pred_cache_.clear();
  mem_.release();
  memo_sigma_ = &sigma;
  return eval(f, sigma, pos);
}

void Oracle::require_machine_closed(const CanonicalSpec& spec) const {
  if (spec.fairness.empty()) return;
  MachineClosureResult r = check_prop1_syntactic(spec);
  if (!r) {
    throw std::runtime_error("Oracle: spec '" + spec.name +
                             "' is not (syntactically) machine-closed; prefix semantics "
                             "would be unsound: " + r.detail);
  }
}

bool Oracle::tuple_constant_from(const std::vector<VarId>& v, const LassoBehavior& sigma,
                                 std::size_t from) {
  const std::size_t start = sigma.canonical(from);
  const State& ref = sigma.at(start);
  // Positions >= start (canonically): [start, length) always includes the
  // whole loop when start < loop_start; when start is inside the loop the
  // range [loop_start, length) is what repeats.
  const std::size_t lo = std::min(start, sigma.loop_start());
  for (std::size_t q = lo; q < sigma.length(); ++q) {
    if (q < start && q < sigma.loop_start()) continue;  // strictly before suffix
    if (changes_tuple(v, ref, sigma.at(q))) return false;
  }
  return true;
}

Oracle::MachineTrace Oracle::run_machines(const std::vector<const CanonicalSpec*>& specs,
                                          const LassoBehavior& sigma, std::size_t pos) const {
  std::vector<PrefixMachine> machines;
  machines.reserve(specs.size());
  for (const CanonicalSpec* s : specs) {
    require_machine_closed(*s);
    machines.emplace_back(*vars_, s->safety_part());
  }

  MachineTrace trace;
  trace.alive.resize(machines.size());

  std::vector<Value> configs;
  configs.reserve(machines.size());
  std::size_t position = sigma.canonical(pos);
  for (const PrefixMachine& m : machines) configs.push_back(m.initial(sigma.at(position)));

  std::map<std::pair<std::size_t, Value>, std::size_t> seen;  // (pos, joint cfg) -> index
  std::size_t index = 0;
  constexpr std::size_t kCap = 1 << 20;
  while (true) {
    Value joint = Value::tuple(configs);
    auto [it, inserted] = seen.try_emplace({position, joint}, index);
    if (!inserted) {
      trace.wrap_from = index;
      trace.wrap_to = it->second;
      return trace;
    }
    for (std::size_t j = 0; j < machines.size(); ++j) {
      trace.alive[j].push_back(machines[j].alive(configs[j]) ? 1 : 0);
    }
    const std::size_t next_position = sigma.successor(position);
    for (std::size_t j = 0; j < machines.size(); ++j) {
      configs[j] = machines[j].step(configs[j], sigma.at(position), sigma.at(next_position));
    }
    position = next_position;
    if (++index > kCap) {
      throw std::runtime_error("Oracle: machine run did not become periodic (cap hit)");
    }
  }
}

bool Oracle::eval_spec(const CanonicalSpec& spec, const LassoBehavior& sigma, std::size_t pos) {
  OPENTLA_OBS_SPAN("Oracle.eval_spec");
  // sigma^pos |= EE hidden : Init /\ [][N]_v /\ L  iff the product of the
  // lasso suffix with the spec's hidden-variable transition system has a
  // reachable cycle satisfying all fairness constraints.
  VarTable ext;
  for (VarId v = 0; v < vars_->size(); ++v) {
    ext.declare(vars_->name(v), vars_->domain(v));
  }
  const VarId pos_var =
      ext.declare("__pos", range_domain(0, static_cast<std::int64_t>(sigma.length()) - 1));

  StateSpace ext_space(ext);
  auto extend = [&](const State& base, std::size_t position) {
    std::vector<Value> values = base.values();
    values.push_back(Value::integer(static_cast<std::int64_t>(position)));
    return State(std::move(values));
  };

  const std::size_t start = sigma.canonical(pos);
  std::vector<State> inits;
  {
    const State ext_start = extend(sigma.at(start), start);
    ext_space.for_each_completion(ext_start, spec.hidden, [&](const State& full) {
      if (eval_pred(spec.init, ext, full)) inits.push_back(full);
      return false;
    });
  }

  auto succ = [&](const State& s, const std::function<void(const State&)>& emit) {
    const std::size_t i = static_cast<std::size_t>(s[pos_var].as_int());
    const std::size_t j = sigma.successor(i);
    const State ext_next = extend(sigma.at(j), j);
    ext_space.for_each_completion(ext_next, spec.hidden, [&](const State& t) {
      if (spec.step_ok(ext, s, t)) emit(t);
      return false;
    });
  };

  StateGraph product(ext, inits, succ, /*add_self_loops=*/false,
                     /*max_states=*/1 << 22);
  if (product.initial().empty()) return false;

  FairnessCompiler compiler(product);
  FairCycleQuery query;
  compiler.add_constraints(spec.fairness, query);
  return find_fair_cycle(product, query).has_value();
}

bool Oracle::eval(const Formula& f, const LassoBehavior& sigma, std::size_t pos) {
  OPENTLA_OBS_COUNT(OracleEvaluations);
  pos = sigma.canonical(pos);
  const FormulaNode& n = f.node();
  const std::pair<const FormulaNode*, std::size_t> key{&n, pos};
  if (auto it = memo_.find(key); it != memo_.end()) return it->second;

  // The range of canonical positions occurring at or after `pos`.
  const std::size_t range_lo = std::min(pos, sigma.loop_start());
  auto positions_from = [&](std::size_t p, const std::function<bool(std::size_t)>& pred,
                            bool want) {
    for (std::size_t q = range_lo; q < sigma.length(); ++q) {
      if (q < p && q < sigma.loop_start()) continue;
      if (pred(q) == want) return want;
    }
    return !want;
  };
  auto loop_positions = [&](const std::function<bool(std::size_t)>& pred, bool want) {
    for (std::size_t q = sigma.loop_start(); q < sigma.length(); ++q) {
      if (pred(q) == want) return want;
    }
    return !want;
  };

  bool result = false;
  switch (n.kind) {
    case FormulaKind::Pred: {
      auto [slot, inserted] = pred_cache_.try_emplace(&n);
      if (inserted) {
        slot->second = vm::CompiledExpr(n.expr);
        OPENTLA_OBS_MEM_TALLY_ADD(
            mem_, sizeof(std::pair<const FormulaNode* const, vm::CompiledExpr>) + 48);
      }
      vm_ctx_.vars = vars_;
      vm_ctx_.current = &sigma.at(pos);
      vm_ctx_.next = nullptr;
      result = slot->second.eval_bool(vm_ctx_);
      break;
    }

    case FormulaKind::ActionBox: {
      // [][A]_v from pos: no later step changes v without being an A step.
      result = !positions_from(
          pos,
          [&](std::size_t q) {
            const State& s = sigma.at(q);
            const State& t = sigma.at(sigma.successor(q));
            return changes_tuple(n.sub, s, t) && !eval_action(n.expr, *vars_, s, t);
          },
          /*want=*/true);
      break;
    }

    case FormulaKind::Always:
      result = !positions_from(
          pos, [&](std::size_t q) { return !eval(n.kids[0], sigma, q); }, true);
      break;

    case FormulaKind::Eventually:
      result = positions_from(
          pos, [&](std::size_t q) { return eval(n.kids[0], sigma, q); }, true);
      break;

    case FormulaKind::WeakFair:
    case FormulaKind::StrongFair: {
      // Suffix-invariant: determined by the loop alone.
      const Expr act = action_changing(n.expr, n.sub);
      const bool step_in_loop = loop_positions(
          [&](std::size_t q) {
            return eval_action(act, *vars_, sigma.at(q), sigma.at(sigma.successor(q)));
          },
          true);
      const bool enabled_somewhere = loop_positions(
          [&](std::size_t q) { return eval_enabled(act, *vars_, sigma.at(q)); }, true);
      if (n.kind == FormulaKind::WeakFair) {
        const bool disabled_somewhere = loop_positions(
            [&](std::size_t q) { return !eval_enabled(act, *vars_, sigma.at(q)); }, true);
        result = step_in_loop || disabled_somewhere;
      } else {
        result = step_in_loop || !enabled_somewhere;
      }
      break;
    }

    case FormulaKind::Not:
      result = !eval(n.kids[0], sigma, pos);
      break;
    case FormulaKind::And:
      result = std::all_of(n.kids.begin(), n.kids.end(),
                           [&](const Formula& k) { return eval(k, sigma, pos); });
      break;
    case FormulaKind::Or:
      result = std::any_of(n.kids.begin(), n.kids.end(),
                           [&](const Formula& k) { return eval(k, sigma, pos); });
      break;
    case FormulaKind::Implies:
      result = !eval(n.kids[0], sigma, pos) || eval(n.kids[1], sigma, pos);
      break;
    case FormulaKind::Equiv:
      result = eval(n.kids[0], sigma, pos) == eval(n.kids[1], sigma, pos);
      break;

    case FormulaKind::Spec:
      result = eval_spec(*n.spec_e, sigma, pos);
      break;

    case FormulaKind::Closure: {
      // Alive forever iff alive through every index up to the wrap.
      MachineTrace trace = run_machines({n.spec_e.get()}, sigma, pos);
      result = true;
      for (std::size_t k = 0; k < trace.horizon() && result; ++k) {
        if (!trace.at(0, k)) result = false;
      }
      break;
    }

    case FormulaKind::WhilePlus: {
      // For all n >= 0: (E through n states) => (M through n+1 states);
      // and E => M over the whole behavior.
      MachineTrace trace = run_machines({n.spec_e.get(), n.spec_m.get()}, sigma, pos);
      result = true;
      for (std::size_t cnt = 0; cnt <= trace.horizon() && result; ++cnt) {
        const bool e_ok = (cnt == 0) || trace.at(0, cnt - 1);
        const bool m_ok = trace.at(1, cnt);
        if (e_ok && !m_ok) result = false;
      }
      if (result && eval_spec(*n.spec_e, sigma, pos)) {
        result = eval_spec(*n.spec_m, sigma, pos);
      }
      break;
    }

    case FormulaKind::ArrowWhile: {
      // For all n >= 1: (E through n states) => (M through n states);
      // and E => M over the whole behavior.
      MachineTrace trace = run_machines({n.spec_e.get(), n.spec_m.get()}, sigma, pos);
      result = true;
      for (std::size_t cnt = 1; cnt <= trace.horizon() && result; ++cnt) {
        if (trace.at(0, cnt - 1) && !trace.at(1, cnt - 1)) result = false;
      }
      if (result && eval_spec(*n.spec_e, sigma, pos)) {
        result = eval_spec(*n.spec_m, sigma, pos);
      }
      break;
    }

    case FormulaKind::Plus: {
      // sigma |= F or: F through n states and v constant from (0-indexed)
      // position pos+n on.
      if (eval_spec(*n.spec_e, sigma, pos)) {
        result = true;
        break;
      }
      MachineTrace trace = run_machines({n.spec_e.get()}, sigma, pos);
      // Covers one full period beyond both the recorded trace and the
      // behavior's canonical positions, so every distinct (alive,
      // v-constant-from) combination is inspected.
      const std::size_t bound = sigma.length() + trace.horizon() + 1;
      result = false;
      for (std::size_t cnt = 0; cnt <= bound && !result; ++cnt) {
        const bool f_ok = (cnt == 0) || trace.at(0, cnt - 1);
        if (f_ok && tuple_constant_from(n.sub, sigma, pos + cnt)) result = true;
      }
      break;
    }

    case FormulaKind::Orthogonal: {
      // No n: E and M both hold through n states and both fail through n+1.
      MachineTrace trace = run_machines({n.spec_e.get(), n.spec_m.get()}, sigma, pos);
      result = true;
      for (std::size_t cnt = 0; cnt <= trace.horizon() && result; ++cnt) {
        const bool e_n = (cnt == 0) || trace.at(0, cnt - 1);
        const bool m_n = (cnt == 0) || trace.at(1, cnt - 1);
        const bool e_n1 = trace.at(0, cnt);
        const bool m_n1 = trace.at(1, cnt);
        if (e_n && m_n && !e_n1 && !m_n1) result = false;
      }
      break;
    }
  }
  memo_.emplace(key, result);
  OPENTLA_OBS_MEM_TALLY_ADD(
      mem_, sizeof(std::pair<const std::pair<const FormulaNode*, std::size_t>, bool>) + 48);
  return result;
}

}  // namespace opentla
