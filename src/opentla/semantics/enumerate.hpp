// opentla/semantics/enumerate.hpp
//
// Brute-force validity checking and lasso generation. A TLA formula over a
// finite universe is valid iff no lasso behavior violates it; enumerating
// all lassos up to a length bound yields an (under-approximate but exact-
// per-behavior) refutation engine used to cross-check the production
// checkers, and random lassos drive the property-based test suites.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>

#include "opentla/graph/state_graph.hpp"
#include "opentla/semantics/lasso.hpp"
#include "opentla/semantics/oracle.hpp"
#include "opentla/state/var_table.hpp"
#include "opentla/tla/formula.hpp"

namespace opentla {

/// Invokes `fn` on every lasso of exactly `len` states (all state choices
/// from the full universe, all loop starts). `fn` returns true to stop the
/// enumeration (e.g. once a violation is found); the return value is true
/// iff it stopped. Beware: |S|^len * len lassos.
bool for_each_lasso(const VarTable& vars, std::size_t len,
                    const std::function<bool(const LassoBehavior&)>& fn);

struct BoundedValidity {
  bool valid = true;  // no violation found up to the bound
  std::optional<LassoBehavior> violation;
  std::size_t behaviors_checked = 0;
};

/// Checks |= f over all lassos of length 1..max_len. A found violation is
/// definitive (the formula is invalid); "valid" means only that no lasso up
/// to the bound violates it.
BoundedValidity check_validity_bounded(const VarTable& vars, const Formula& f,
                                       std::size_t max_len);

/// A uniformly random lasso of exactly `len` states over the full universe.
LassoBehavior random_lasso(const VarTable& vars, std::size_t len, std::mt19937& rng);

/// A random behavior of a StateGraph: a random walk from a random initial
/// state that closes its loop at the first repeated state (bounded by
/// `max_steps`; falls back to closing on the stuttering self-loop).
LassoBehavior random_graph_lasso(const StateGraph& g, std::mt19937& rng,
                                 std::size_t max_steps = 256);

}  // namespace opentla
