// opentla/tla/formula.hpp
//
// Temporal formulas. The general TLA combinators ([]F, <>F, boolean
// connectives, [][A]_v, WF/SF) may nest arbitrarily; the paper's open-
// system operators — closure C(F), while-plus E +> M (the paper's
// triangle operator), as-long-as E -> M, the freeze operator F_{+v}, and
// orthogonality E _|_ M — take canonical-form specifications as operands,
// exactly as the paper applies them (their semantics needs a notion of
// "holds for the first n states", which the prefix machines of canonical
// specs provide).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

enum class FormulaKind : std::uint8_t {
  Pred,        // state predicate, evaluated at the first state
  ActionBox,   // [][A]_v
  Always,      // []F
  Eventually,  // <>F
  WeakFair,    // WF_v(A)
  StrongFair,  // SF_v(A)
  Not,
  And,
  Or,
  Implies,
  Equiv,
  Spec,        // a canonical-form specification EE x : Init /\ [][N]_v /\ L
  Closure,     // C(spec)
  WhilePlus,   // specE +> specM   (assumption/guarantee, Section 3)
  ArrowWhile,  // specE -> specM   ("M holds at least as long as E", Section 3)
  Plus,        // spec_{+v}        (Section 4.1)
  Orthogonal,  // specE _|_ specM  (Section 4.2)
};

class Formula;

struct FormulaNode {
  FormulaKind kind;
  Expr expr;                     // Pred; action of ActionBox/WF/SF
  std::vector<VarId> sub;        // subscript of ActionBox/WF/SF; tuple of Plus
  std::vector<Formula> kids;     // temporal children
  std::shared_ptr<const CanonicalSpec> spec_e;  // Spec/Closure/Plus operand, or E
  std::shared_ptr<const CanonicalSpec> spec_m;  // M of WhilePlus/ArrowWhile/Orthogonal
};

/// Value-semantic handle to an immutable temporal formula.
class Formula {
 public:
  Formula() = default;
  explicit Formula(std::shared_ptr<const FormulaNode> node) : node_(std::move(node)) {}

  bool is_null() const { return node_ == nullptr; }
  const FormulaNode& node() const { return *node_; }
  FormulaKind kind() const { return node_->kind; }

  std::string to_string(const VarTable& vars) const;

 private:
  std::shared_ptr<const FormulaNode> node_;
};

namespace tf {

Formula pred(Expr p);
Formula action_box(Expr action, std::vector<VarId> sub);
Formula always(Formula f);
Formula eventually(Formula f);
Formula weak_fair(std::vector<VarId> sub, Expr action);
Formula strong_fair(std::vector<VarId> sub, Expr action);
Formula lnot(Formula f);
Formula land(std::vector<Formula> kids);
Formula land(Formula a, Formula b);
Formula lor(std::vector<Formula> kids);
Formula lor(Formula a, Formula b);
Formula implies(Formula a, Formula b);
Formula equiv(Formula a, Formula b);
Formula spec(CanonicalSpec s);
Formula closure(CanonicalSpec s);
/// E +> M: for every n, if E holds for the first n states then M holds for
/// the first n+1 states; and E => M over the whole behavior.
Formula while_plus(CanonicalSpec e, CanonicalSpec m);
/// E -> M: for every n, if E holds for the first n states then M holds for
/// the first n states; and E => M over the whole behavior.
Formula arrow_while(CanonicalSpec e, CanonicalSpec m);
/// spec_{+v}: either spec holds, or spec held for the first n states and
/// the tuple v never changes from the (n+1)st state on.
Formula plus(CanonicalSpec s, std::vector<VarId> v);
/// E _|_ M: no step falsifies E and M simultaneously.
Formula orthogonal(CanonicalSpec e, CanonicalSpec m);

}  // namespace tf

}  // namespace opentla
