// opentla/tla/disjoint.hpp
//
// The interleaving assumption of Section 2.3:
//
//   Disjoint(v1, ..., vn)  ==  /\_{i # j} [][(vi' = vi) \/ (vj' = vj)]_<<vi, vj>>
//
// i.e. no two of the variable tuples change in the same step. We represent
// it as a canonical-form safety specification (Init = TRUE, N = the pairwise
// disjointness action, subscript = the union of the tuples), which is
// logically equivalent: a step that changes any variable of the union must
// leave one tuple of every pair unchanged.

#pragma once

#include <vector>

#include "opentla/tla/spec.hpp"

namespace opentla {

/// Builds Disjoint(tuples[0], ..., tuples[n-1]) as a canonical safety spec.
CanonicalSpec make_disjoint(const std::vector<std::vector<VarId>>& tuples,
                            std::string name = "Disjoint");

/// True iff the step <s, t> changes variables from at most one tuple.
bool step_disjoint(const std::vector<std::vector<VarId>>& tuples, const State& s,
                   const State& t);

}  // namespace opentla
