#include "opentla/tla/disjoint.hpp"

#include <algorithm>

namespace opentla {

CanonicalSpec make_disjoint(const std::vector<std::vector<VarId>>& tuples, std::string name) {
  std::vector<Expr> pair_conditions;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    for (std::size_t j = i + 1; j < tuples.size(); ++j) {
      pair_conditions.push_back(
          ex::lor(ex::eq(ex::primed_var_tuple(tuples[i]), ex::var_tuple(tuples[i])),
                  ex::eq(ex::primed_var_tuple(tuples[j]), ex::var_tuple(tuples[j]))));
    }
  }
  std::vector<VarId> all;
  for (const auto& t : tuples) all.insert(all.end(), t.begin(), t.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  CanonicalSpec spec;
  spec.name = std::move(name);
  spec.init = ex::top();
  spec.next = ex::land(std::move(pair_conditions));
  spec.sub = std::move(all);
  return spec;
}

bool step_disjoint(const std::vector<std::vector<VarId>>& tuples, const State& s,
                   const State& t) {
  bool one_changed = false;
  for (const auto& tuple : tuples) {
    if (changes_tuple(tuple, s, t)) {
      if (one_changed) return false;
      one_changed = true;
    }
  }
  return true;
}

}  // namespace opentla
