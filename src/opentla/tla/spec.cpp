#include "opentla/tla/spec.hpp"

#include <algorithm>
#include <sstream>

#include "opentla/expr/analysis.hpp"
#include "opentla/expr/eval.hpp"
#include "opentla/expr/substitute.hpp"

namespace opentla {

Expr CanonicalSpec::box_step_action() const {
  return ex::lor(next, ex::unchanged(sub));
}

bool CanonicalSpec::step_ok(const VarTable& vars, const State& s, const State& t) const {
  if (!changes_tuple(sub, s, t)) return true;
  return eval_action(next, vars, s, t);
}

CanonicalSpec CanonicalSpec::safety_part() const {
  CanonicalSpec out = *this;
  out.fairness.clear();
  out.name = name + "_safety";
  return out;
}

CanonicalSpec CanonicalSpec::unhidden() const {
  CanonicalSpec out = *this;
  out.hidden.clear();
  out.name = "I" + name;
  return out;
}

CanonicalSpec CanonicalSpec::renamed(const std::map<VarId, VarId>& renaming,
                                     std::string new_name) const {
  CanonicalSpec out;
  out.name = std::move(new_name);
  out.init = rename_vars(init, renaming);
  out.next = rename_vars(next, renaming);
  auto rename_id = [&](VarId v) {
    auto it = renaming.find(v);
    return it == renaming.end() ? v : it->second;
  };
  out.sub.reserve(sub.size());
  for (VarId v : sub) out.sub.push_back(rename_id(v));
  out.hidden.reserve(hidden.size());
  for (VarId v : hidden) out.hidden.push_back(rename_id(v));
  out.fairness.reserve(fairness.size());
  for (const Fairness& f : fairness) {
    Fairness nf;
    nf.kind = f.kind;
    nf.action = rename_vars(f.action, renaming);
    nf.sub.reserve(f.sub.size());
    for (VarId v : f.sub) nf.sub.push_back(rename_id(v));
    nf.label = f.label;
    out.fairness.push_back(std::move(nf));
  }
  return out;
}

std::string CanonicalSpec::to_string(const VarTable& vars) const {
  std::ostringstream os;
  auto tuple_str = [&](const std::vector<VarId>& t) {
    std::ostringstream ts;
    ts << "<<";
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i != 0) ts << ", ";
      ts << vars.name(t[i]);
    }
    ts << ">>";
    return ts.str();
  };
  os << name << " == ";
  if (has_hidden()) os << "EE " << tuple_str(hidden) << " : ";
  os << "(" << init.to_string(vars) << ")";
  os << " /\\ [][" << next.to_string(vars) << "]_" << tuple_str(sub);
  for (const Fairness& f : fairness) {
    os << " /\\ " << (f.kind == Fairness::Kind::Weak ? "WF_" : "SF_") << tuple_str(f.sub)
       << "(" << f.action.to_string(vars) << ")";
  }
  return os.str();
}

bool changes_tuple(const std::vector<VarId>& tuple, const State& s, const State& t) {
  return std::any_of(tuple.begin(), tuple.end(),
                     [&](VarId v) { return !(s[v] == t[v]); });
}

Expr action_changing(const Expr& action, const std::vector<VarId>& tuple) {
  return ex::land(action,
                  ex::neq(ex::primed_var_tuple(tuple), ex::var_tuple(tuple)));
}

std::set<VarId> spec_variables(const CanonicalSpec& spec) {
  std::set<VarId> out;
  auto add_expr = [&out](const Expr& e) {
    FreeVars fv = free_vars(e);
    out.insert(fv.unprimed.begin(), fv.unprimed.end());
    out.insert(fv.primed.begin(), fv.primed.end());
  };
  add_expr(spec.init);
  add_expr(spec.next);
  for (const Fairness& f : spec.fairness) {
    add_expr(f.action);
    out.insert(f.sub.begin(), f.sub.end());
  }
  out.insert(spec.sub.begin(), spec.sub.end());
  out.insert(spec.hidden.begin(), spec.hidden.end());
  return out;
}

}  // namespace opentla
