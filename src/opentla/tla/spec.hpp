// opentla/tla/spec.hpp
//
// Canonical-form specifications (Section 2.2). A component specification is
//
//     EE x : Init /\ [][N]_v /\ L
//
// where v is the tuple <m, x> of the component's output and internal
// variables, Init constrains their initial values, N is the next-state
// action, and L is a conjunction of WF/SF fairness conditions.
//
// A CanonicalSpec lives in one universe (VarTable) that also contains its
// internal ("hidden") variables; the `hidden` list records which variables
// are EE-bound. The paper's substitution idiom F[z/o, q1/q] is supported by
// `renamed`.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/state/state.hpp"
#include "opentla/state/var_table.hpp"

namespace opentla {

/// One fairness conjunct WF_v(A) or SF_v(A). The subscript is a tuple of
/// variables, as in all of the paper's specifications.
struct Fairness {
  enum class Kind { Weak, Strong };
  Kind kind = Kind::Weak;
  std::vector<VarId> sub;
  Expr action;
  std::string label;  // for reports, e.g. "WF_<<i,o,q>>(QM)"
};

/// A canonical-form specification EE hidden : Init /\ [][Next]_sub /\ L.
struct CanonicalSpec {
  std::string name;
  Expr init;
  Expr next;
  std::vector<VarId> sub;      // the subscript tuple v of [][N]_v
  std::vector<Fairness> fairness;
  std::vector<VarId> hidden;   // EE-bound internal variables (subset of sub)

  bool has_hidden() const { return !hidden.empty(); }
  bool has_fairness() const { return !fairness.empty(); }

  /// The step formula [Next]_sub = Next \/ UNCHANGED <<sub>> as an action.
  Expr box_step_action() const;

  /// True iff <s, t> satisfies [Next]_sub.
  bool step_ok(const VarTable& vars, const State& s, const State& t) const;

  /// The same specification with fairness dropped. If the spec is
  /// machine-closed (Proposition 1), this is its closure C(spec).
  CanonicalSpec safety_part() const;

  /// The spec with hidden variables exposed (no EE): the paper's ISpec.
  CanonicalSpec unhidden() const;

  /// The paper's substitution F[w/v, ...]: renames variables everywhere
  /// (init, next, subscript, fairness, hidden). Ids absent from the map are
  /// unchanged.
  CanonicalSpec renamed(const std::map<VarId, VarId>& renaming, std::string new_name) const;

  /// Human-readable rendering of the full formula.
  std::string to_string(const VarTable& vars) const;
};

/// True iff the step <s, t> changes the value of some variable in `tuple`.
bool changes_tuple(const std::vector<VarId>& tuple, const State& s, const State& t);

/// All variables a specification mentions (init, next, subscript, fairness).
std::set<VarId> spec_variables(const CanonicalSpec& spec);

/// The action A /\ (<<tuple>>' # <<tuple>>): an A step that changes the
/// subscript. This is the step WF/SF count as "the action happening".
Expr action_changing(const Expr& action, const std::vector<VarId>& tuple);

}  // namespace opentla
