#include "opentla/tla/formula.hpp"

#include <sstream>

namespace opentla {
namespace tf {

namespace {
Formula make(FormulaNode n) {
  return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}
}  // namespace

Formula pred(Expr p) {
  FormulaNode n;
  n.kind = FormulaKind::Pred;
  n.expr = std::move(p);
  return make(std::move(n));
}

Formula action_box(Expr action, std::vector<VarId> sub) {
  FormulaNode n;
  n.kind = FormulaKind::ActionBox;
  n.expr = std::move(action);
  n.sub = std::move(sub);
  return make(std::move(n));
}

Formula always(Formula f) {
  FormulaNode n;
  n.kind = FormulaKind::Always;
  n.kids = {std::move(f)};
  return make(std::move(n));
}

Formula eventually(Formula f) {
  FormulaNode n;
  n.kind = FormulaKind::Eventually;
  n.kids = {std::move(f)};
  return make(std::move(n));
}

Formula weak_fair(std::vector<VarId> sub, Expr action) {
  FormulaNode n;
  n.kind = FormulaKind::WeakFair;
  n.sub = std::move(sub);
  n.expr = std::move(action);
  return make(std::move(n));
}

Formula strong_fair(std::vector<VarId> sub, Expr action) {
  FormulaNode n;
  n.kind = FormulaKind::StrongFair;
  n.sub = std::move(sub);
  n.expr = std::move(action);
  return make(std::move(n));
}

Formula lnot(Formula f) {
  FormulaNode n;
  n.kind = FormulaKind::Not;
  n.kids = {std::move(f)};
  return make(std::move(n));
}

Formula land(std::vector<Formula> kids) {
  FormulaNode n;
  n.kind = FormulaKind::And;
  n.kids = std::move(kids);
  return make(std::move(n));
}

Formula land(Formula a, Formula b) { return land(std::vector<Formula>{std::move(a), std::move(b)}); }

Formula lor(std::vector<Formula> kids) {
  FormulaNode n;
  n.kind = FormulaKind::Or;
  n.kids = std::move(kids);
  return make(std::move(n));
}

Formula lor(Formula a, Formula b) { return lor(std::vector<Formula>{std::move(a), std::move(b)}); }

Formula implies(Formula a, Formula b) {
  FormulaNode n;
  n.kind = FormulaKind::Implies;
  n.kids = {std::move(a), std::move(b)};
  return make(std::move(n));
}

Formula equiv(Formula a, Formula b) {
  FormulaNode n;
  n.kind = FormulaKind::Equiv;
  n.kids = {std::move(a), std::move(b)};
  return make(std::move(n));
}

Formula spec(CanonicalSpec s) {
  FormulaNode n;
  n.kind = FormulaKind::Spec;
  n.spec_e = std::make_shared<const CanonicalSpec>(std::move(s));
  return make(std::move(n));
}

Formula closure(CanonicalSpec s) {
  FormulaNode n;
  n.kind = FormulaKind::Closure;
  n.spec_e = std::make_shared<const CanonicalSpec>(std::move(s));
  return make(std::move(n));
}

Formula while_plus(CanonicalSpec e, CanonicalSpec m) {
  FormulaNode n;
  n.kind = FormulaKind::WhilePlus;
  n.spec_e = std::make_shared<const CanonicalSpec>(std::move(e));
  n.spec_m = std::make_shared<const CanonicalSpec>(std::move(m));
  return make(std::move(n));
}

Formula arrow_while(CanonicalSpec e, CanonicalSpec m) {
  FormulaNode n;
  n.kind = FormulaKind::ArrowWhile;
  n.spec_e = std::make_shared<const CanonicalSpec>(std::move(e));
  n.spec_m = std::make_shared<const CanonicalSpec>(std::move(m));
  return make(std::move(n));
}

Formula plus(CanonicalSpec s, std::vector<VarId> v) {
  FormulaNode n;
  n.kind = FormulaKind::Plus;
  n.spec_e = std::make_shared<const CanonicalSpec>(std::move(s));
  n.sub = std::move(v);
  return make(std::move(n));
}

Formula orthogonal(CanonicalSpec e, CanonicalSpec m) {
  FormulaNode n;
  n.kind = FormulaKind::Orthogonal;
  n.spec_e = std::make_shared<const CanonicalSpec>(std::move(e));
  n.spec_m = std::make_shared<const CanonicalSpec>(std::move(m));
  return make(std::move(n));
}

}  // namespace tf

namespace {
std::string tuple_str(const VarTable& vars, const std::vector<VarId>& t) {
  std::ostringstream os;
  os << "<<";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i != 0) os << ", ";
    os << vars.name(t[i]);
  }
  os << ">>";
  return os.str();
}
}  // namespace

std::string Formula::to_string(const VarTable& vars) const {
  if (is_null()) return "<null>";
  const FormulaNode& n = node();
  std::ostringstream os;
  switch (n.kind) {
    case FormulaKind::Pred:
      return n.expr.to_string(vars);
    case FormulaKind::ActionBox:
      os << "[][" << n.expr.to_string(vars) << "]_" << tuple_str(vars, n.sub);
      return os.str();
    case FormulaKind::Always:
      return "[](" + n.kids[0].to_string(vars) + ")";
    case FormulaKind::Eventually:
      return "<>(" + n.kids[0].to_string(vars) + ")";
    case FormulaKind::WeakFair:
      os << "WF_" << tuple_str(vars, n.sub) << "(" << n.expr.to_string(vars) << ")";
      return os.str();
    case FormulaKind::StrongFair:
      os << "SF_" << tuple_str(vars, n.sub) << "(" << n.expr.to_string(vars) << ")";
      return os.str();
    case FormulaKind::Not:
      return "~(" + n.kids[0].to_string(vars) + ")";
    case FormulaKind::And: {
      for (std::size_t i = 0; i < n.kids.size(); ++i) {
        if (i != 0) os << " /\\ ";
        os << "(" << n.kids[i].to_string(vars) << ")";
      }
      return n.kids.empty() ? "TRUE" : os.str();
    }
    case FormulaKind::Or: {
      for (std::size_t i = 0; i < n.kids.size(); ++i) {
        if (i != 0) os << " \\/ ";
        os << "(" << n.kids[i].to_string(vars) << ")";
      }
      return n.kids.empty() ? "FALSE" : os.str();
    }
    case FormulaKind::Implies:
      return "(" + n.kids[0].to_string(vars) + ") => (" + n.kids[1].to_string(vars) + ")";
    case FormulaKind::Equiv:
      return "(" + n.kids[0].to_string(vars) + ") <=> (" + n.kids[1].to_string(vars) + ")";
    case FormulaKind::Spec:
      return n.spec_e->name;
    case FormulaKind::Closure:
      return "C(" + n.spec_e->name + ")";
    case FormulaKind::WhilePlus:
      return n.spec_e->name + " +> " + n.spec_m->name;
    case FormulaKind::ArrowWhile:
      return n.spec_e->name + " -> " + n.spec_m->name;
    case FormulaKind::Plus:
      return n.spec_e->name + "_{+" + tuple_str(vars, n.sub) + "}";
    case FormulaKind::Orthogonal:
      return n.spec_e->name + " _|_ " + n.spec_m->name;
  }
  return "?";
}

}  // namespace opentla
