#include "opentla/compose/compose.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "opentla/expr/analysis.hpp"
#include "opentla/graph/successor.hpp"

namespace opentla {

CanonicalSpec conjunction_as_spec(const std::vector<CanonicalSpec>& parts, std::string name) {
  CanonicalSpec out;
  out.name = std::move(name);

  std::vector<Expr> inits;
  std::vector<Expr> steps;
  std::vector<VarId> sub;
  for (const CanonicalSpec& p : parts) {
    inits.push_back(p.init);
    steps.push_back(p.box_step_action());
    sub.insert(sub.end(), p.sub.begin(), p.sub.end());
    out.hidden.insert(out.hidden.end(), p.hidden.begin(), p.hidden.end());
    out.fairness.insert(out.fairness.end(), p.fairness.begin(), p.fairness.end());
  }
  std::sort(sub.begin(), sub.end());
  sub.erase(std::unique(sub.begin(), sub.end()), sub.end());
  std::sort(out.hidden.begin(), out.hidden.end());
  out.hidden.erase(std::unique(out.hidden.begin(), out.hidden.end()), out.hidden.end());

  out.init = ex::land(std::move(inits));
  // /\_j [N_j]_{v_j}, expanded so successor generation and prefix machines
  // get executable disjuncts with assignments.
  out.next = to_dnf(ex::land(std::move(steps)));
  out.sub = std::move(sub);
  return out;
}

std::vector<Fairness> all_fairness(const std::vector<CanonicalSpec>& parts) {
  std::vector<Fairness> out;
  for (const CanonicalSpec& p : parts) {
    out.insert(out.end(), p.fairness.begin(), p.fairness.end());
  }
  return out;
}

CanonicalSpec make_pin(const VarTable& vars, const std::vector<VarId>& tuple,
                       std::string name) {
  CanonicalSpec pin;
  pin.name = std::move(name);
  std::vector<Expr> init;
  for (VarId v : tuple) init.push_back(ex::eq(ex::var(v), ex::constant(vars.domain(v)[0])));
  pin.init = ex::land(std::move(init));
  pin.next = ex::bottom();  // [FALSE]_tuple: the tuple never changes
  pin.sub = tuple;
  return pin;
}

StateGraph build_composite_graph(const VarTable& vars, const std::vector<CompositePart>& parts,
                                 const std::vector<std::vector<VarId>>& free_tuples,
                                 const std::vector<VarId>& pinned, std::size_t max_states) {
  ExploreOptions opts;
  opts.max_states = max_states;
  return build_composite_graph(vars, parts, free_tuples, pinned, opts);
}

StateGraph build_composite_graph(const VarTable& vars, const std::vector<CompositePart>& parts,
                                 const std::vector<std::vector<VarId>>& free_tuples,
                                 const std::vector<VarId>& pinned, const ExploreOptions& opts) {
  // Coverage check: a variable outside every subscript is unconstrained.
  std::vector<char> covered(vars.size(), 0);
  for (const CompositePart& p : parts) {
    for (VarId v : p.spec.sub) covered[v] = 1;
  }
  for (VarId v = 0; v < vars.size(); ++v) {
    if (!covered[v]) {
      throw std::runtime_error("build_composite_graph: variable '" + vars.name(v) +
                               "' is in no part's subscript");
    }
  }

  std::vector<Expr> inits;
  std::vector<ActionSuccessors> movers;
  for (const CompositePart& p : parts) {
    inits.push_back(p.spec.init);
    if (!p.mover) continue;
    std::vector<VarId> part_pinned = pinned;
    part_pinned.insert(part_pinned.end(), p.extra_pinned.begin(), p.extra_pinned.end());
    movers.emplace_back(vars, p.spec.next, std::move(part_pinned));
    // Per-action coverage attributes each mover's emissions to its spec.
    movers.back().set_label(p.spec.name.empty() ? "part_" + std::to_string(movers.size())
                                                : p.spec.name);
  }
  for (const std::vector<VarId>& tuple : free_tuples) {
    // Everything outside the tuple is pinned by assignment; the tuple's
    // variables range over their domains.
    std::vector<VarId> complement;
    for (VarId v = 0; v < vars.size(); ++v) {
      if (std::find(tuple.begin(), tuple.end(), v) == tuple.end()) complement.push_back(v);
    }
    movers.emplace_back(vars, ex::unchanged(complement));
  }

  const std::vector<State> init_states =
      ActionSuccessors::states_satisfying(vars, ex::land(std::move(inits)), pinned);

  // Determinism contract (relied on by the parallel engine's canonical
  // renumbering): for a fixed state `s`, this lambda emits successors in a
  // fixed order — movers in construction order, each walking its residual
  // schedule's enumeration order (see graph/successor.cpp). Pruning only
  // skips completions whose residual conjuncts already failed; it never
  // reorders survivors, so the emitted sequence is the naive odometer order
  // restricted to actual successors. The unordered `seen` set is
  // membership-only dedup; it never drives emission order. The lambda is
  // safe to call concurrently on distinct states: all captures are
  // read-only and `seen` is per-call.
  auto succ = [&vars, &parts, movers = std::move(movers)](
                  const State& s, const std::function<void(const State&)>& emit) {
    std::unordered_set<State, StateHash> seen;
    for (const ActionSuccessors& mover : movers) {
      mover.for_each_successor(s, [&](const State& t) {
        if (!seen.insert(t).second) return;
        for (const CompositePart& p : parts) {
          if (!p.spec.step_ok(vars, s, t)) return;
        }
        emit(t);
      });
    }
  };

  return StateGraph(vars, init_states, succ, opts);
}

std::vector<analysis::ActionUnit> composite_action_units(
    const VarTable& vars, const std::vector<CompositePart>& parts,
    const std::vector<std::vector<VarId>>& free_tuples, const std::vector<VarId>& pinned) {
  std::vector<analysis::ActionUnit> units;
  std::size_t mover_ordinal = 0;
  for (const CompositePart& p : parts) {
    if (!p.mover) continue;
    ++mover_ordinal;
    const std::string label =
        p.spec.name.empty() ? "part_" + std::to_string(mover_ordinal) : p.spec.name;
    // The mover's generator enumerates every unpinned universe variable its
    // action leaves unconstrained; that is the unit's frame scope.
    std::vector<char> is_pinned(vars.size(), 0);
    for (VarId v : pinned) is_pinned[v] = 1;
    for (VarId v : p.extra_pinned) is_pinned[v] = 1;
    std::vector<VarId> scope;
    for (VarId v = 0; v < vars.size(); ++v) {
      if (!is_pinned[v]) scope.push_back(v);
    }
    CanonicalSpec scoped = p.spec;
    scoped.name = label;
    scoped.sub = std::move(scope);
    std::vector<analysis::ActionUnit> part_units = analysis::spec_action_units(scoped, label);
    units.insert(units.end(), std::make_move_iterator(part_units.begin()),
                 std::make_move_iterator(part_units.end()));
  }
  for (std::size_t k = 0; k < free_tuples.size(); ++k) {
    // A free-tuple mover sets the tuple to arbitrary domain values and
    // frames everything else: it writes the tuple and reads nothing.
    analysis::ActionUnit u;
    u.name = "free_" + std::to_string(k + 1);
    std::vector<VarId> complement;
    for (VarId v = 0; v < vars.size(); ++v) {
      const std::vector<VarId>& tuple = free_tuples[k];
      if (std::find(tuple.begin(), tuple.end(), v) == tuple.end()) complement.push_back(v);
    }
    u.action = ex::unchanged(complement);
    u.fp = analysis::action_footprint(u.action, vars.all_vars());
    units.push_back(std::move(u));
  }
  return units;
}

}  // namespace opentla
