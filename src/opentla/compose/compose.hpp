// opentla/compose/compose.hpp
//
// Composition is conjunction (Section 1). This module builds the explicit
// complete system denoted by a conjunction of canonical specifications
// over one universe:
//
//   - `conjunction_as_spec` realizes the paper's observation (Section 5)
//     that P /\ /\_j Q_j is itself a canonical-form complete-system
//     specification: Init = conjunction of Inits, N = /\_j [N_j]_{v_j}
//     (expanded to DNF so it stays executable), v = the union of the
//     subscripts, L = the union of the fairness conditions.
//
//   - `build_composite_graph` explores the conjunction directly: candidate
//     steps are the union of the parts' next-state actions (every step
//     allowed by the conjunction that changes a subscript variable of some
//     part is an action step of that part), filtered by every part's
//     [N_j]_{v_j}. Hidden variables are explored explicitly (hiding on the
//     left of an implication is free).

#pragma once

#include <vector>

#include "opentla/analysis/footprint.hpp"
#include "opentla/graph/state_graph.hpp"
#include "opentla/tla/spec.hpp"

namespace opentla {

/// The conjunction of `parts` as one canonical complete-system spec.
/// All parts' hidden variables become hidden variables of the result (the
/// caller must ensure they are distinct, which renaming guarantees).
CanonicalSpec conjunction_as_spec(const std::vector<CanonicalSpec>& parts, std::string name);

/// One conjunct of an explicit composition.
struct CompositePart {
  CanonicalSpec spec;
  /// Whether the part's next-state action generates candidate steps. Parts
  /// whose actions have no executable assignments (e.g. Disjoint, or a
  /// variable-pinning frame) should be filter-only; candidate steps they
  /// would allow must then come from other movers or `free_tuples`.
  bool mover = true;
  /// Extra variables this part's generator keeps at their current value
  /// when its action leaves them unconstrained (on top of the graph-wide
  /// `pinned` list). Used by the interleaving optimization: under a
  /// Disjoint conjunct, a part's candidates need only vary its own
  /// outputs and state.
  std::vector<VarId> extra_pinned;

  CompositePart(CanonicalSpec s, bool is_mover = true, std::vector<VarId> pinned = {})
      : spec(std::move(s)), mover(is_mover), extra_pinned(std::move(pinned)) {}
};

/// Explores the complete system /\_j parts[j] with hidden variables
/// explicit. `free_tuples` adds, for each tuple, candidate steps that set
/// the tuple's variables to arbitrary domain values and leave every other
/// variable unchanged — the "unconstrained environment" moves that a
/// composition without an environment conjunct permits (within Disjoint).
/// Throws if some universe variable is in no part's subscript (such a
/// variable could change arbitrarily at every step; cover it with a part
/// or pin it).
/// `pinned` variables are excluded from successor enumeration when a
/// part's action leaves them unconstrained (use for variables a filter-only
/// part pins anyway, e.g. a make_pin frame — the enumeration would generate
/// candidates the pin rejects).
StateGraph build_composite_graph(const VarTable& vars, const std::vector<CompositePart>& parts,
                                 const std::vector<std::vector<VarId>>& free_tuples = {},
                                 const std::vector<VarId>& pinned = {},
                                 std::size_t max_states = 2'000'000);

/// Same composition, explored per `opts` (serial or parallel; see
/// ExploreOptions). The graph is identical for every opts.threads value.
StateGraph build_composite_graph(const VarTable& vars, const std::vector<CompositePart>& parts,
                                 const std::vector<std::vector<VarId>>& free_tuples,
                                 const std::vector<VarId>& pinned, const ExploreOptions& opts);

/// The static-analysis view of the same composition: one ActionUnit per
/// NEXT disjunct of each mover part (labeled the way build_composite_graph
/// labels its movers — the spec name, or "part_N" for the N-th unnamed
/// mover — with "#i" appended when a mover has several disjuncts), plus
/// one "free_K" unit per free tuple. Each unit's footprint uses the frame
/// scope its candidate generator actually enumerates: every universe
/// variable except the ones pinned for that mover. Feeding these units to
/// analysis::compute_independence yields the composed system's
/// independence matrix (OTL012, `tlacheck analyze`, the POR precompute).
std::vector<analysis::ActionUnit> composite_action_units(
    const VarTable& vars, const std::vector<CompositePart>& parts,
    const std::vector<std::vector<VarId>>& free_tuples = {},
    const std::vector<VarId>& pinned = {});

/// A canonical frame spec pinning `tuple` to its initial values: init sets
/// each variable to its first domain value, and no step may change them.
/// Used to close a composition over variables none of its parts constrain
/// (e.g. the goal specification's hidden variable in hypothesis 2(b)).
CanonicalSpec make_pin(const VarTable& vars, const std::vector<VarId>& tuple, std::string name);

/// All fairness conditions of the parts, concatenated.
std::vector<Fairness> all_fairness(const std::vector<CanonicalSpec>& parts);

}  // namespace opentla
