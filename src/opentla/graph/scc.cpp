#include "opentla/graph/scc.hpp"

#include <algorithm>

#include "opentla/obs/obs.hpp"

namespace opentla {

std::vector<std::vector<StateId>> strongly_connected_components(
    const StateGraph& g, const std::vector<StateId>& roots, const SubgraphFilter& filter) {
  OPENTLA_OBS_COUNT(SccPasses);
  const std::size_t n = g.num_states();
  constexpr std::uint32_t kUnvisited = UINT32_MAX;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<StateId> stack;
  std::vector<std::vector<StateId>> components;
  std::uint32_t next_index = 0;

  struct Frame {
    StateId node;
    std::size_t child = 0;
  };
  std::vector<Frame> dfs;

  for (StateId root : roots) {
    if (!filter.node(root) || index[root] != kUnvisited) continue;
    dfs.push_back({root});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const StateId u = frame.node;
      const std::vector<StateId>& adj = g.successors(u);
      bool descended = false;
      while (frame.child < adj.size()) {
        const StateId v = adj[frame.child++];
        if (!filter.node(v) || !filter.edge(u, v)) continue;
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back({v});
          descended = true;
          break;
        }
        if (on_stack[v]) lowlink[u] = std::min(lowlink[u], index[v]);
      }
      if (descended) continue;

      if (lowlink[u] == index[u]) {
        std::vector<StateId> comp;
        StateId w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp.push_back(w);
        } while (w != u);
        components.push_back(std::move(comp));
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        const StateId parent = dfs.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }
  return components;
}

bool component_has_cycle(const StateGraph& g, const std::vector<StateId>& component,
                         const SubgraphFilter& filter) {
  if (component.empty()) return false;
  std::vector<StateId> sorted = component;
  std::sort(sorted.begin(), sorted.end());
  for (StateId u : component) {
    for (StateId v : g.successors(u)) {
      if (!std::binary_search(sorted.begin(), sorted.end(), v)) continue;
      if (filter.node(v) && filter.edge(u, v)) return true;
    }
  }
  return false;
}

}  // namespace opentla
