#include "opentla/graph/fair_cycle.hpp"

#include <algorithm>
#include <stdexcept>

#include "opentla/obs/obs.hpp"

namespace opentla {

namespace {

// Membership-restricted view of the query's subgraph.
struct Region {
  const FairCycleQuery* query;
  std::vector<char> member;  // indexed by StateId

  SubgraphFilter filter() const {
    SubgraphFilter f;
    f.node_ok = [this](StateId s) { return member[s] && query->filter.node(s); };
    f.edge_ok = [this](StateId s, StateId t) { return query->filter.edge(s, t); };
    return f;
  }
};

// An edge witness inside a component.
struct EdgeWitness {
  StateId from;
  StateId to;
};

// Checks one SCC; recurses after Streett trigger removal. On success fills
// `cycle_out` with a closed walk satisfying every obligation.
bool check_component(const StateGraph& g, const FairCycleQuery& q,
                     const std::vector<StateId>& comp, std::vector<StateId>& cycle_out) {
  OPENTLA_OBS_COUNT(LassoCandidates);
  Region region{&q, std::vector<char>(g.num_states(), 0)};
  for (StateId s : comp) region.member[s] = 1;
  const SubgraphFilter in_comp = region.filter();

  if (!component_has_cycle(g, comp, in_comp)) return false;

  // --- Streett pass ---
  std::vector<char> needs_discharge(q.streett.size(), 0);
  std::vector<EdgeWitness> discharge(q.streett.size());
  for (std::size_t i = 0; i < q.streett.size(); ++i) {
    const StreettObligation& ob = q.streett[i];
    bool has_trigger = std::any_of(comp.begin(), comp.end(),
                                   [&](StateId s) { return ob.trigger(s); });
    if (!has_trigger) continue;
    bool found = false;
    for (StateId u : comp) {
      for (StateId v : g.successors(u)) {
        if (!region.member[v] || !q.filter.edge(u, v)) continue;
        if (ob.step_ok(u, v)) {
          discharge[i] = {u, v};
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (found) {
      needs_discharge[i] = 1;
      continue;
    }
    // The pair's triggers cannot be discharged inside this SCC: remove them
    // and re-decompose.
    std::vector<StateId> remaining;
    for (StateId s : comp) {
      if (!ob.trigger(s)) remaining.push_back(s);
    }
    if (remaining.empty()) return false;
    Region sub{&q, std::vector<char>(g.num_states(), 0)};
    for (StateId s : remaining) sub.member[s] = 1;
    for (const std::vector<StateId>& c :
         strongly_connected_components(g, remaining, sub.filter())) {
      if (check_component(g, q, c, cycle_out)) return true;
    }
    return false;
  }

  // --- Buechi pass ---
  // Witnesses to visit: a node (to == kNone) or an edge.
  std::vector<EdgeWitness> witnesses;
  for (const BuchiObligation& ob : q.buchi) {
    bool satisfied = false;
    if (ob.state_ok) {
      for (StateId s : comp) {
        if (ob.state_ok(s)) {
          witnesses.push_back({s, StateStore::kNone});
          satisfied = true;
          break;
        }
      }
    }
    if (!satisfied && ob.step_ok) {
      for (StateId u : comp) {
        for (StateId v : g.successors(u)) {
          if (!region.member[v] || !q.filter.edge(u, v)) continue;
          if (ob.step_ok(u, v)) {
            witnesses.push_back({u, v});
            satisfied = true;
            break;
          }
        }
        if (satisfied) break;
      }
    }
    // Shrinking the SCC cannot create a Buechi witness, so fail outright.
    if (!satisfied) return false;
  }
  for (std::size_t i = 0; i < q.streett.size(); ++i) {
    if (needs_discharge[i]) witnesses.push_back(discharge[i]);
  }

  // --- Cycle construction: stitch witnesses into a closed walk ---
  if (witnesses.empty()) {
    // Any cycle in the SCC will do; find one allowed edge and close it.
    for (StateId u : comp) {
      for (StateId v : g.successors(u)) {
        if (!region.member[v] || !q.filter.edge(u, v)) continue;
        witnesses.push_back({u, v});
        break;
      }
      if (!witnesses.empty()) break;
    }
  }

  std::vector<StateId> walk;
  const StateId anchor = witnesses.front().from;
  walk.push_back(anchor);
  auto extend_to = [&](StateId target) {
    if (walk.back() == target) return;
    std::vector<StateId> leg =
        g.path(walk.back(), [&](StateId s) { return s == target; }, in_comp.node_ok);
    if (leg.empty()) {
      throw std::logic_error("fair_cycle: SCC members not mutually reachable");
    }
    walk.insert(walk.end(), leg.begin() + 1, leg.end());
  };
  for (const EdgeWitness& w : witnesses) {
    extend_to(w.from);
    if (w.to != StateStore::kNone) walk.push_back(w.to);
  }
  // Close the cycle back to the anchor.
  if (walk.back() != anchor) {
    extend_to(anchor);
    walk.pop_back();  // anchor repeats at the wrap-around
  } else if (walk.size() > 1) {
    walk.pop_back();
  }
  // A single-node walk denotes the self-loop on the anchor; if the anchor
  // has no allowed self-loop, route the cycle through a neighbor (the SCC
  // is strongly connected, so a round trip exists).
  if (walk.size() == 1) {
    bool self_loop = false;
    for (StateId v : g.successors(anchor)) {
      if (v == anchor && q.filter.edge(anchor, anchor)) {
        self_loop = true;
        break;
      }
    }
    if (!self_loop) {
      for (StateId v : g.successors(anchor)) {
        if (v != anchor && region.member[v] && q.filter.edge(anchor, v)) {
          walk.push_back(v);
          break;
        }
      }
      if (walk.size() == 1) return false;  // no outgoing edge at all
      extend_to(anchor);
      walk.pop_back();
    }
  }
  cycle_out = std::move(walk);
  return true;
}

}  // namespace

bool component_hosts_fair_cycle(const StateGraph& g, const FairCycleQuery& q,
                                const std::vector<StateId>& component,
                                std::vector<StateId>& cycle) {
  return check_component(g, q, component, cycle);
}

std::optional<Lasso> find_fair_cycle(const StateGraph& g, const FairCycleQuery& q) {
  OPENTLA_OBS_SPAN("find_fair_cycle");
  // Every node of a StateGraph is reachable from an initial state by
  // construction, and only the *cycle* must satisfy the query's subgraph
  // restriction (the prefix runs on the unrestricted graph). So the SCC
  // decomposition of the restricted subgraph is rooted at every node.
  std::vector<StateId> roots(g.num_states());
  for (std::size_t i = 0; i < roots.size(); ++i) roots[i] = static_cast<StateId>(i);
  std::vector<std::vector<StateId>> components =
      strongly_connected_components(g, roots, q.filter);
  for (const std::vector<StateId>& comp : components) {
    std::vector<StateId> cycle;
    if (!check_component(g, q, comp, cycle)) continue;
    Lasso lasso;
    lasso.cycle = std::move(cycle);
    const StateId anchor = lasso.cycle.front();
    lasso.prefix = g.shortest_path_to([&](StateId s) { return s == anchor; });
    return lasso;
  }
  return std::nullopt;
}

}  // namespace opentla
