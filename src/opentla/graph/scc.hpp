// opentla/graph/scc.hpp
//
// Strongly connected components (iterative Tarjan) over filtered subgraphs
// of a StateGraph. The fair-cycle search repeatedly recomputes SCCs of
// shrinking subgraphs, so the interface takes node and edge filters rather
// than materializing subgraphs.

#pragma once

#include <functional>
#include <vector>

#include "opentla/graph/state_graph.hpp"

namespace opentla {

/// Filters; a null function means "allow everything".
struct SubgraphFilter {
  std::function<bool(StateId)> node_ok;
  std::function<bool(StateId, StateId)> edge_ok;

  bool node(StateId s) const { return !node_ok || node_ok(s); }
  bool edge(StateId s, StateId t) const { return !edge_ok || edge_ok(s, t); }
};

/// SCCs of the subgraph of `g` induced by `filter`, restricted to nodes
/// reachable from `roots` (roots failing the node filter are skipped).
/// Components are returned in reverse topological order (Tarjan order).
/// Trivial components (single node without an allowed self-loop) are
/// included; callers that need cycles must check nontriviality.
std::vector<std::vector<StateId>> strongly_connected_components(
    const StateGraph& g, const std::vector<StateId>& roots, const SubgraphFilter& filter);

/// True iff the component (a set of nodes of `g`) contains at least one
/// allowed edge between its members — i.e. can host an infinite run.
bool component_has_cycle(const StateGraph& g, const std::vector<StateId>& component,
                         const SubgraphFilter& filter);

}  // namespace opentla
