// opentla/graph/fair_cycle.hpp
//
// Fair-cycle (emptiness) search. Finds a reachable cycle satisfying a set
// of generalized-Buechi obligations ("visit this state set or take this
// step set infinitely often") and Streett obligations ("if these trigger
// states are visited infinitely often, these steps must be taken
// infinitely often"), within a filtered subgraph.
//
// The two obligation shapes are exactly what TLA fairness compiles to on a
// lasso (see check/liveness):
//   WF_v(A) holds on a cycle  iff  the cycle takes an <A>_v step or visits
//                                  a state where <A>_v is disabled
//                                  (a Buechi obligation);
//   SF_v(A) holds on a cycle  iff  it takes an <A>_v step or visits no
//                                  state where <A>_v is enabled
//                                  (a Streett obligation).
//
// The Streett pairs are handled by the classical SCC-refinement algorithm:
// an SCC that contains trigger states but no discharging edge cannot host
// a fair cycle through those triggers, so the triggers are removed and the
// remainder re-decomposed.

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "opentla/graph/scc.hpp"
#include "opentla/graph/state_graph.hpp"

namespace opentla {

struct BuchiObligation {
  std::function<bool(StateId)> state_ok;            // may be null
  std::function<bool(StateId, StateId)> step_ok;    // may be null
  std::string label;
};

struct StreettObligation {
  std::function<bool(StateId)> trigger;
  std::function<bool(StateId, StateId)> step_ok;
  std::string label;
};

/// A reachable ultimately-periodic run: prefix from an initial state to the
/// cycle's anchor (prefix.back() == cycle.front()), then the cycle nodes in
/// order (the closing edge cycle.back() -> cycle.front() is implicit).
/// A one-node cycle denotes the self-loop on that node.
struct Lasso {
  std::vector<StateId> prefix;
  std::vector<StateId> cycle;
};

struct FairCycleQuery {
  SubgraphFilter filter;
  std::vector<BuchiObligation> buchi;
  std::vector<StreettObligation> streett;
};

/// Searches for a reachable fair cycle; nullopt when none exists (the
/// verified outcome for liveness proofs).
std::optional<Lasso> find_fair_cycle(const StateGraph& g, const FairCycleQuery& q);

/// Tests whether `component` (an SCC of the query's filtered subgraph)
/// hosts a cycle satisfying all obligations; fills `cycle` on success.
/// Used by machine-closure checking to find all fairness-supporting SCCs.
bool component_hosts_fair_cycle(const StateGraph& g, const FairCycleQuery& q,
                                const std::vector<StateId>& component,
                                std::vector<StateId>& cycle);

}  // namespace opentla
