// opentla/graph/successor.hpp
//
// TLC-style successor generation. Given an action A over a finite-domain
// universe, enumerates all states t with A(s, t) for a given s, using the
// guard/assignment decomposition of expr/analysis: guards prune disjuncts
// without touching the next state, assignments determine most primed
// variables by evaluation, and only genuinely unconstrained primed
// variables are enumerated over their domains.
//
// TLA actions have no frame condition: a primed variable that does not
// occur in a disjunct is unconstrained and is enumerated over its domain.
// Successor generation therefore produces exactly the A-successors within
// the declared finite space.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "opentla/expr/analysis.hpp"
#include "opentla/expr/expr.hpp"
#include "opentla/state/state.hpp"
#include "opentla/state/state_space.hpp"
#include "opentla/state/var_table.hpp"
#include "opentla/vm/interp.hpp"

namespace opentla {

class ActionSuccessors {
 public:
  /// `pinned` variables are never enumerated: if a disjunct leaves one
  /// unconstrained, it keeps its current value instead of ranging over its
  /// domain. Callers use this for variables whose successor values are
  /// tracked elsewhere (e.g. other components' hidden variables in a
  /// product exploration). A pinned variable that occurs primed in a
  /// residual constraint is still enumerated, so pinning never loses
  /// genuine constraints.
  ActionSuccessors(const VarTable& vars, Expr action, std::vector<VarId> pinned = {});

  const Expr& action() const { return action_; }

  /// Attributes this generator's emissions to `label` in the obs
  /// labeled-counter families: every emitted successor counts toward
  /// ActionFired{action=label} and every run() with at least one
  /// emission counts toward ActionEnabled{action=label}. Cold path
  /// (interns the label) — call once at construction time.
  void set_label(const std::string& label);

  /// Calls `fn` for every state t with action(s, t), without duplicates.
  void for_each_successor(const State& s, const std::function<void(const State&)>& fn) const;

  /// Convenience: the successor list of s.
  std::vector<State> successors(const State& s) const;

  /// True iff s has at least one successor (= ENABLED action at s).
  bool enabled(const State& s) const;

  /// True iff some disjunct's guards (the primed-free conjuncts) hold at s.
  /// Weaker than enabled(): guards may pass while every completion fails
  /// the residual or an assignment leaves the declared space. Coverage
  /// reporting uses this to distinguish "the precondition held but the
  /// action could not fire" from "the precondition never held".
  bool guards_enabled(const State& s) const;

  /// Test hook: when set, run() enumerates completions with the flat
  /// odometer and tests the full residual at every leaf (the historical
  /// enumerate-and-test path) instead of the pruned search. The two paths
  /// must produce identical emissions in identical order — the
  /// differential tests toggle this to prove it. Global; not for
  /// concurrent use with live generators.
  static void set_naive_enumeration_for_test(bool naive);

  /// Enumerates all states satisfying a state predicate, by treating the
  /// primed predicate as an action from an arbitrary base state. Used to
  /// enumerate initial states. `pinned` variables not constrained by the
  /// predicate keep the first value of their domain instead of being
  /// enumerated (for variables whose value the caller normalizes anyway).
  static std::vector<State> states_satisfying(const VarTable& vars, const Expr& predicate,
                                              std::vector<VarId> pinned = {});

 private:
  struct CompiledDisjunct {
    ActionDisjunct parts;
    std::vector<VarId> free_vars;  // all variables with no assignment
    /// Pruned-search schedules, precompiled once: `full_sched` orders
    /// free_vars (full successor generation), `existential_sched` orders
    /// only unassigned_primed (enabled() queries). Residual checks fire at
    /// the shallowest depth where their variables are bound.
    ResidualSchedule full_sched;
    ResidualSchedule existential_sched;
    /// Bytecode for the disjunct's pieces, lowered once at construction:
    /// guards[i] / rhs[i] / residual[i] pair with parts.guards[i] /
    /// parts.assignments[i].second / parts.residual[i]. Each dispatches on
    /// vm::set_tree_eval_for_test at evaluation time, so every run() is
    /// re-runnable through the tree evaluator with identical results.
    std::vector<vm::CompiledExpr> guards;
    std::vector<vm::CompiledExpr> rhs;
    std::vector<vm::CompiledExpr> residual;
  };

  /// `existential_only`: enumerate only the residual-constrained primed
  /// variables (sufficient for the EXISTENCE of a successor — any other
  /// variable can keep its current value); full generation enumerates
  /// every unassigned variable.
  bool run(const State& s, bool existential_only,
           const std::function<bool(const State&)>& fn) const;

  const VarTable* vars_;
  Expr action_;
  StateSpace space_;
  std::vector<CompiledDisjunct> disjuncts_;
  /// Obs attribution label (see set_label); 0 = unlabeled.
  std::uint32_t label_ = 0;
  bool has_label_ = false;
};

}  // namespace opentla
