// opentla/graph/state_graph.hpp
//
// Explicit reachable-state graphs. A StateGraph is built from a set of
// initial states and a successor provider by breadth-first exploration.
// Because every canonical-form specification's [][N]_v admits stuttering,
// each node carries an implicit self-loop; they are materialized so that
// liveness analysis sees the stuttering behaviors.
//
// Exploration can run on one thread (the classic BFS) or on a worker pool
// (opentla/par). The parallel engine renumbers its result canonically, so
// the graph — state ids, adjacency order, initial() order — is bit-identical
// to the serial BFS regardless of thread count; downstream SCC, fair-cycle,
// and trace code never observes which engine ran.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "opentla/run/budget.hpp"
#include "opentla/state/state.hpp"
#include "opentla/state/var_table.hpp"

namespace opentla {

/// How to explore a state space. Threaded through the checking stack
/// (compose, composition_theorem, tlacheck --threads).
struct ExploreOptions {
  /// Worker threads: 1 = the serial BFS (default), 0 = hardware
  /// concurrency, N > 1 = a pool of N workers with work stealing. With
  /// threads != 1 the successor function must be safe to call concurrently
  /// on distinct states (the engine's ActionSuccessors-based providers are:
  /// they evaluate immutable expression trees with per-call scratch state).
  unsigned threads = 1;
  /// Cap on reached states. Hitting the cap is not an error: exploration
  /// stops gracefully with StopReason::kStateBudget and the graph holds
  /// exactly min(reachable, max_states) states — the same count for the
  /// serial and parallel engines at the same bound.
  std::size_t max_states = 2'000'000;
  /// Materialize the stuttering self-loop on every node.
  bool add_self_loops = true;
  /// Seen-set stripes for the parallel engine (0 = default, 64). Rounded
  /// up to a power of two. Ignored by the serial path.
  std::size_t shards = 0;
  /// Optional run budget (deadline / RSS ceiling / signal stop). Polled
  /// during exploration; a breach halts expansion and surfaces as
  /// StateGraph::stop_reason(). Not owned.
  run::RunBudget* budget = nullptr;
};

class StateGraph {
 public:
  using SuccessorFn = std::function<void(const State&, const std::function<void(const State&)>&)>;

  /// Explores from `init_states` using `succ`; `add_self_loops` materializes
  /// the stuttering step on every node. Reaching `max_states` stops
  /// exploration gracefully (see stop_reason()).
  StateGraph(const VarTable& vars, const std::vector<State>& init_states, const SuccessorFn& succ,
             bool add_self_loops = true, std::size_t max_states = 2'000'000);

  /// Same exploration, configured by `opts` (serial or parallel). The
  /// resulting graph is identical for every opts.threads value.
  StateGraph(const VarTable& vars, const std::vector<State>& init_states, const SuccessorFn& succ,
             const ExploreOptions& opts);

  const VarTable& vars() const { return *vars_; }
  const StateStore& store() const { return store_; }
  std::size_t num_states() const { return adjacency_.size(); }
  std::size_t num_edges() const { return num_edges_; }
  const std::vector<StateId>& initial() const { return init_; }
  const std::vector<StateId>& successors(StateId s) const { return adjacency_[s]; }
  const State& state(StateId s) const { return store_.get(s); }

  /// Why exploration ended. kCompleted means the full reachable space is
  /// here; anything else marks a graceful partial graph (state budget,
  /// deadline, memory ceiling, or an interrupt signal).
  run::StopReason stop_reason() const { return stop_reason_; }

  /// Shortest path (as a state-id sequence, inclusive of both ends) from an
  /// initial state to any state satisfying `goal`; empty if unreachable.
  std::vector<StateId> shortest_path_to(const std::function<bool(StateId)>& goal) const;

  /// Shortest path from `from` to any state satisfying `goal`, restricted to
  /// states allowed by `filter` (null = all). Empty if unreachable.
  std::vector<StateId> path(StateId from, const std::function<bool(StateId)>& goal,
                            const std::function<bool(StateId)>& filter) const;

 private:
  void explore_serial(const std::vector<State>& init_states, const SuccessorFn& succ,
                      bool add_self_loops, std::size_t max_states, run::RunBudget* budget);
  /// Re-measure the adjacency structure into the state-graph memory
  /// domain (one O(states) capacity walk after construction).
  void account_adjacency();

  const VarTable* vars_;
  StateStore store_;
  std::vector<StateId> init_;
  std::vector<std::vector<StateId>> adjacency_;
  std::size_t num_edges_ = 0;
  run::StopReason stop_reason_ = run::StopReason::kCompleted;
  obs::MemTally adj_mem_{obs::MemDomain::StateGraph};
};

}  // namespace opentla
