#include "opentla/graph/successor.hpp"

#include <atomic>
#include <unordered_set>

#include "opentla/expr/eval.hpp"
#include "opentla/expr/substitute.hpp"
#include "opentla/obs/obs.hpp"

namespace opentla {

namespace {
std::atomic<bool> g_naive_enumeration{false};
}  // namespace

void ActionSuccessors::set_naive_enumeration_for_test(bool naive) {
  g_naive_enumeration.store(naive, std::memory_order_relaxed);
}

ActionSuccessors::ActionSuccessors(const VarTable& vars, Expr action, std::vector<VarId> pinned)
    : vars_(&vars), action_(std::move(action)), space_(vars) {
  std::vector<bool> is_pinned(vars.size(), false);
  for (VarId v : pinned) is_pinned[v] = true;
  for (ActionDisjunct& d : decompose_action(action_)) {
    CompiledDisjunct cd;
    cd.parts = std::move(d);
    std::vector<bool> assigned(vars.size(), false);
    for (const auto& [v, rhs] : cd.parts.assignments) assigned[v] = true;
    std::vector<bool> in_residual(vars.size(), false);
    for (VarId v : cd.parts.unassigned_primed) in_residual[v] = true;
    for (VarId v = 0; v < vars.size(); ++v) {
      if (assigned[v]) continue;
      if (is_pinned[v] && !in_residual[v]) continue;  // keeps current value
      cd.free_vars.push_back(v);
    }
    cd.full_sched = schedule_residual(cd.parts.residual_needs, cd.free_vars);
    cd.existential_sched =
        schedule_residual(cd.parts.residual_needs, cd.parts.unassigned_primed);
    for (const Expr& g : cd.parts.guards) cd.guards.emplace_back(g);
    for (const auto& [v, rhs] : cd.parts.assignments) cd.rhs.emplace_back(rhs);
    for (const Expr& r : cd.parts.residual) cd.residual.emplace_back(r);
    disjuncts_.push_back(std::move(cd));
  }
}

void ActionSuccessors::set_label(const std::string& label) {
  label_ = obs::intern_label(label);
  has_label_ = true;
}

bool ActionSuccessors::run(const State& s, bool existential_only,
                           const std::function<bool(const State&)>& fn) const {
  // `fn` returns true to stop early; the enumeration stops immediately —
  // no odometer keeps spinning past the caller's exit. Duplicates across
  // disjuncts are filtered here so callers see each successor once.
  //
  // Determinism contract: for a fixed `s`, successors are visited in a
  // fixed order — disjuncts in decompose_action order, completions in the
  // order of the precompiled ResidualSchedule (the pruned search visits
  // exactly the surviving leaves of the flat odometer over
  // reversed(sched.order), in that odometer's order — pruning only skips,
  // it never reorders). The unordered `seen` set only suppresses repeats.
  // The parallel engine's canonical renumbering (opentla/par/explore.hpp)
  // depends on this. `run` is also safe to call concurrently on distinct
  // states: it mutates no member data.
  std::unordered_set<State, StateHash> seen;
  // Per-run attribution for coverage: `fired` counts emissions;
  // `guard_enabled` records that some disjunct's guards held at s, even
  // when the residual or a domain check then rejected every completion.
  // Both are local, so the concurrency guarantee above is unaffected.
  std::uint64_t fired = 0;
  bool guard_enabled = false;
  const auto note_run = [&] {
    if (!has_label_) return;
    if (fired > 0) OPENTLA_OBS_COUNT_LABELED(ActionFired, label_, fired);
    if (guard_enabled) OPENTLA_OBS_COUNT_LABELED(ActionEnabled, label_, 1);
  };
  // One scratch context for the whole run: guards, right-hand sides, and
  // residual checks all evaluate through it — the VM's register file (or
  // the tree fallback's EvalContext) is reused across every check.
  vm::VmContext ctx;
  ctx.vars = vars_;
  ctx.current = &s;
  for (const CompiledDisjunct& cd : disjuncts_) {
    ctx.next = nullptr;

    bool feasible = true;
    for (const vm::CompiledExpr& g : cd.guards) {
      if (!g.eval_bool(ctx)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    guard_enabled = true;

    State base = s;
    for (std::size_t i = 0; i < cd.parts.assignments.size(); ++i) {
      const VarId v = cd.parts.assignments[i].first;
      Value val = cd.rhs[i].eval(ctx);
      if (!vars_->domain(v).contains(val)) {
        feasible = false;  // successor falls outside the declared space
        break;
      }
      base[v] = std::move(val);
    }
    if (!feasible) continue;

    const ResidualSchedule& sched =
        existential_only ? cd.existential_sched : cd.full_sched;
    const auto emit = [&](const State& t) {
      if (!seen.insert(t).second) return false;
      OPENTLA_OBS_COUNT(SuccessorsEnumerated);
      ++fired;
      return fn(t);
    };
    bool stopped;
    if (g_naive_enumeration.load(std::memory_order_relaxed)) {
      // Historical enumerate-and-test path, kept behind the test hook: a
      // flat odometer over reversed(sched.order) (the same total order the
      // pruned search walks) with the full residual tested at every leaf.
      const std::vector<VarId> naive(sched.order.rbegin(), sched.order.rend());
      stopped = space_.for_each_completion(base, naive, [&](const State& t) {
        ctx.next = &t;
        for (const vm::CompiledExpr& r : cd.residual) {
          if (!r.eval_bool(ctx)) return false;
        }
        return emit(t);
      });
    } else {
      stopped = space_.for_each_completion_pruned(
          base, sched,
          [&](std::size_t i, const State& t) {
            ctx.next = &t;
            return cd.residual[i].eval_bool(ctx);
          },
          emit);
    }
    if (stopped) {
      note_run();
      return true;
    }
  }
  note_run();
  return false;
}

bool ActionSuccessors::guards_enabled(const State& s) const {
  vm::VmContext ctx;
  ctx.vars = vars_;
  ctx.current = &s;
  for (const CompiledDisjunct& cd : disjuncts_) {
    bool ok = true;
    for (const vm::CompiledExpr& g : cd.guards) {
      if (!g.eval_bool(ctx)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

void ActionSuccessors::for_each_successor(
    const State& s, const std::function<void(const State&)>& fn) const {
  run(s, /*existential_only=*/false, [&](const State& t) {
    fn(t);
    return false;
  });
}

std::vector<State> ActionSuccessors::successors(const State& s) const {
  std::vector<State> out;
  for_each_successor(s, [&](const State& t) { out.push_back(t); });
  return out;
}

bool ActionSuccessors::enabled(const State& s) const {
  OPENTLA_OBS_COUNT(EnabledEvaluations);
  return run(s, /*existential_only=*/true, [](const State&) { return true; });
}

std::vector<State> ActionSuccessors::states_satisfying(const VarTable& vars,
                                                       const Expr& predicate,
                                                       std::vector<VarId> pinned) {
  ActionSuccessors gen(vars, prime(predicate), std::move(pinned));
  StateSpace space(vars);
  return gen.successors(space.first_state());
}

}  // namespace opentla
