#include "opentla/graph/successor.hpp"

#include <unordered_set>

#include "opentla/expr/eval.hpp"
#include "opentla/expr/substitute.hpp"
#include "opentla/obs/obs.hpp"

namespace opentla {

ActionSuccessors::ActionSuccessors(const VarTable& vars, Expr action, std::vector<VarId> pinned)
    : vars_(&vars), action_(std::move(action)), space_(vars) {
  std::vector<bool> is_pinned(vars.size(), false);
  for (VarId v : pinned) is_pinned[v] = true;
  for (ActionDisjunct& d : decompose_action(action_)) {
    CompiledDisjunct cd;
    cd.parts = std::move(d);
    std::vector<bool> assigned(vars.size(), false);
    for (const auto& [v, rhs] : cd.parts.assignments) assigned[v] = true;
    std::vector<bool> in_residual(vars.size(), false);
    for (VarId v : cd.parts.unassigned_primed) in_residual[v] = true;
    for (VarId v = 0; v < vars.size(); ++v) {
      if (assigned[v]) continue;
      if (is_pinned[v] && !in_residual[v]) continue;  // keeps current value
      cd.free_vars.push_back(v);
    }
    disjuncts_.push_back(std::move(cd));
  }
}

void ActionSuccessors::set_label(const std::string& label) {
  label_ = obs::intern_label(label);
  has_label_ = true;
}

bool ActionSuccessors::run(const State& s, bool existential_only,
                           const std::function<bool(const State&)>& fn) const {
  // `fn` returns true to stop early. Duplicates across disjuncts are
  // filtered here so callers see each successor once.
  //
  // Determinism contract: for a fixed `s`, successors are visited in a
  // fixed order — disjuncts in decompose_action order, completions in
  // StateSpace's odometer order over `enumerate` (a VarId-ordered list).
  // The unordered `seen` set only suppresses repeats; it never reorders
  // emissions. The parallel engine's canonical renumbering
  // (opentla/par/explore.hpp) depends on this. `run` is also safe to call
  // concurrently on distinct states: it mutates no member data.
  std::unordered_set<State, StateHash> seen;
  // Per-run emission count for the coverage attribution below; local, so
  // the concurrency and determinism guarantees above are unaffected.
  std::uint64_t fired = 0;
  const auto note_run = [&] {
    if (has_label_ && fired > 0) {
      OPENTLA_OBS_COUNT_LABELED(ActionFired, label_, fired);
      OPENTLA_OBS_COUNT_LABELED(ActionEnabled, label_, 1);
    }
  };
  for (const CompiledDisjunct& cd : disjuncts_) {
    EvalContext ctx;
    ctx.vars = vars_;
    ctx.current = &s;

    bool feasible = true;
    for (const Expr& g : cd.parts.guards) {
      if (!eval_bool(g, ctx)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    State base = s;
    for (const auto& [v, rhs] : cd.parts.assignments) {
      Value val = eval(rhs, ctx);
      if (!vars_->domain(v).contains(val)) {
        feasible = false;  // successor falls outside the declared space
        break;
      }
      base[v] = val;
    }
    if (!feasible) continue;

    bool stop = false;
    const std::vector<VarId>& enumerate =
        existential_only ? cd.parts.unassigned_primed : cd.free_vars;
    space_.for_each_completion(base, enumerate, [&](const State& t) {
      if (stop) return;
      EvalContext actx;
      actx.vars = vars_;
      actx.current = &s;
      actx.next = &t;
      for (const Expr& r : cd.parts.residual) {
        if (!eval_bool(r, actx)) return;
      }
      if (!seen.insert(t).second) return;
      OPENTLA_OBS_COUNT(SuccessorsEnumerated);
      ++fired;
      if (fn(t)) stop = true;
    });
    if (stop) {
      note_run();
      return true;
    }
  }
  note_run();
  return false;
}

void ActionSuccessors::for_each_successor(
    const State& s, const std::function<void(const State&)>& fn) const {
  run(s, /*existential_only=*/false, [&](const State& t) {
    fn(t);
    return false;
  });
}

std::vector<State> ActionSuccessors::successors(const State& s) const {
  std::vector<State> out;
  for_each_successor(s, [&](const State& t) { out.push_back(t); });
  return out;
}

bool ActionSuccessors::enabled(const State& s) const {
  OPENTLA_OBS_COUNT(EnabledEvaluations);
  return run(s, /*existential_only=*/true, [](const State&) { return true; });
}

std::vector<State> ActionSuccessors::states_satisfying(const VarTable& vars,
                                                       const Expr& predicate,
                                                       std::vector<VarId> pinned) {
  ActionSuccessors gen(vars, prime(predicate), std::move(pinned));
  StateSpace space(vars);
  return gen.successors(space.first_state());
}

}  // namespace opentla
