#include "opentla/graph/state_graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <thread>

#include "opentla/obs/memory.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/par/explore.hpp"

namespace opentla {

StateGraph::StateGraph(const VarTable& vars, const std::vector<State>& init_states,
                       const SuccessorFn& succ, bool add_self_loops, std::size_t max_states)
    : vars_(&vars) {
  explore_serial(init_states, succ, add_self_loops, max_states, nullptr);
}

StateGraph::StateGraph(const VarTable& vars, const std::vector<State>& init_states,
                       const SuccessorFn& succ, const ExploreOptions& opts)
    : vars_(&vars) {
  unsigned threads = opts.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads <= 1) {
    explore_serial(init_states, succ, opts.add_self_loops, opts.max_states, opts.budget);
    return;
  }
  par::ExploreResult r = par::explore(init_states, succ, opts, threads);
  store_ = std::move(r.store);
  init_ = std::move(r.init);
  adjacency_ = std::move(r.adjacency);
  num_edges_ = r.num_edges;
  stop_reason_ = r.stop_reason;
  account_adjacency();
}

void StateGraph::account_adjacency() {
  if (!obs::enabled()) return;
  std::uint64_t bytes = adjacency_.capacity() * sizeof(std::vector<StateId>);
  for (const std::vector<StateId>& out : adjacency_) {
    bytes += out.capacity() * sizeof(StateId);
  }
  adj_mem_.set(bytes);
}

void StateGraph::explore_serial(const std::vector<State>& init_states, const SuccessorFn& succ,
                                bool add_self_loops, std::size_t max_states,
                                run::RunBudget* budget) {
  OPENTLA_OBS_SPAN("StateGraph.explore");
  // The BFS frontier charges the frontier memory domain as it grows.
  std::deque<StateId, obs::CountingAllocator<StateId>> frontier{
      obs::CountingAllocator<StateId>(obs::MemDomain::Frontier)};
  for (const State& s : init_states) {
    // Capacity check BEFORE interning: a state past the cap is never added,
    // so the graph holds exactly min(reachable, max_states) states — the
    // same count the parallel engine produces at the same bound.
    if (store_.size() >= max_states) {
      const StateId known = store_.find(s);
      if (known == StateStore::kNone) {
        stop_reason_ = run::StopReason::kStateBudget;
        continue;
      }
      init_.push_back(known);
      continue;
    }
    const std::size_t before = store_.size();
    const StateId id = store_.intern(s);
    if (store_.size() > before) {
      OPENTLA_OBS_COUNT(StatesGenerated);
      frontier.push_back(id);
      adjacency_.emplace_back();
    }
    init_.push_back(id);
  }
  std::sort(init_.begin(), init_.end());
  init_.erase(std::unique(init_.begin(), init_.end()), init_.end());

  while (!frontier.empty()) {
    // A capped run stops at the first expansion that overflowed rather than
    // draining the frontier: the budget asked for "no more than N states",
    // not "N states plus every edge among them".
    if (stop_reason_ != run::StopReason::kCompleted) break;
    if (budget != nullptr && budget->should_stop()) {
      stop_reason_ = budget->reason();
      break;
    }
    OPENTLA_OBS_LEVEL_SET(FrontierSize, frontier.size());
    const StateId id = frontier.front();
    frontier.pop_front();
    // Copy: store_ may reallocate while successors are interned.
    const State s = store_.get(id);
    // Collected locally: the callback may grow adjacency_ (invalidating
    // references into it) while new successors are interned.
    std::vector<StateId> out;
    succ(s, [&](const State& t) {
      if (store_.size() >= max_states) {
        const StateId known = store_.find(t);
        if (known == StateStore::kNone) {
          stop_reason_ = run::StopReason::kStateBudget;
          return;
        }
        out.push_back(known);
        return;
      }
      const std::size_t before = store_.size();
      const StateId tid = store_.intern(t);
      if (store_.size() > before) {
        OPENTLA_OBS_COUNT(StatesGenerated);
        frontier.push_back(tid);
        adjacency_.emplace_back();
      }
      out.push_back(tid);
    });
    if (add_self_loops) out.push_back(id);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    // Fanout = final deduped out-degree (incl. any stuttering self-loop);
    // the parallel engine observes the same quantity after renumbering,
    // so the histogram is engine-independent for a given spec.
    OPENTLA_OBS_HIST(SuccessorFanout, out.size());
    num_edges_ += out.size();
    adjacency_[id] = std::move(out);
  }
  OPENTLA_OBS_LEVEL_SET(FrontierSize, 0);
  OPENTLA_OBS_GAUGE_MAX(PeakGraphStates, store_.size());
  account_adjacency();
  if (stop_reason_ != run::StopReason::kCompleted && budget != nullptr) {
    // Latch the breach into the budget so obs counters and the flight
    // recorder see state-budget stops the same way they see deadline ones.
    budget->request_stop(stop_reason_);
  }
}

std::vector<StateId> StateGraph::shortest_path_to(
    const std::function<bool(StateId)>& goal) const {
  for (StateId s : init_) {
    if (goal(s)) return {s};
  }
  // Multi-source BFS.
  std::vector<StateId> parent(num_states(), StateStore::kNone);
  std::deque<StateId> queue;
  std::vector<bool> visited(num_states(), false);
  for (StateId s : init_) {
    visited[s] = true;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    const StateId u = queue.front();
    queue.pop_front();
    for (StateId v : adjacency_[u]) {
      if (visited[v]) continue;
      visited[v] = true;
      parent[v] = u;
      if (goal(v)) {
        std::vector<StateId> path = {v};
        for (StateId p = u; p != StateStore::kNone; p = parent[p]) path.push_back(p);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(v);
    }
  }
  return {};
}

std::vector<StateId> StateGraph::path(StateId from, const std::function<bool(StateId)>& goal,
                                      const std::function<bool(StateId)>& filter) const {
  if (goal(from)) return {from};
  std::vector<StateId> parent(num_states(), StateStore::kNone);
  std::vector<bool> visited(num_states(), false);
  std::deque<StateId> queue = {from};
  visited[from] = true;
  while (!queue.empty()) {
    const StateId u = queue.front();
    queue.pop_front();
    for (StateId v : adjacency_[u]) {
      if (visited[v]) continue;
      if (filter && !filter(v)) continue;
      visited[v] = true;
      parent[v] = u;
      if (goal(v)) {
        std::vector<StateId> path = {v};
        for (StateId p = u; p != StateStore::kNone && p != from; p = parent[p]) {
          path.push_back(p);
        }
        path.push_back(from);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(v);
    }
  }
  return {};
}

}  // namespace opentla
