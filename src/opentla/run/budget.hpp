// opentla/run/budget.hpp
//
// Run budgets and graceful stop. A RunBudget carries the resource limits
// of one checking run — wall-clock deadline, RSS ceiling, and (via the
// explorers' ExploreOptions::max_states) a state budget — plus an
// optional SIGINT/SIGTERM watch. Exploration loops poll should_stop()
// once per expansion; the first breach latches a machine-readable
// StopReason, every engine then unwinds cooperatively, and the caller
// gets a *partial result* (a prefix of the reachable graph, a
// partially-checked obligation) instead of a throw or a silent
// truncation. The ROADMAP's multi-tenant checking service hangs its
// per-job quotas on exactly this: a breached job must come back with
// whatever it learned, tagged with why it stopped.
//
// Thread-safety: should_stop()/request_stop()/stopped()/reason() may be
// called concurrently from any number of worker threads. The stop latch
// is first-wins: the reason reported is the first breach observed.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace opentla::run {

/// Why a run ended. kCompleted means the run was never cut short; every
/// other value names the budget that was breached first.
enum class StopReason : int {
  kCompleted = 0,
  kStateBudget,  // ExploreOptions::max_states / max_nodes reached
  kDeadline,     // wall-clock deadline passed
  kMemory,       // resident set size crossed the ceiling
  kInterrupted,  // SIGINT/SIGTERM requested a graceful stop
};

/// Stable snake_case identifier ("completed", "state_budget", "deadline",
/// "memory", "interrupted") used by verdicts, the run ledger, the flight
/// recorder, and the CLI's partial-result output.
const char* to_string(StopReason r);

/// tlacheck exit code for a budget-stopped run with no definite verdict.
constexpr int kBudgetExitCode = 3;

/// Limits a RunBudget enforces; zero/false means "no limit".
struct BudgetLimits {
  std::uint64_t deadline_ms = 0;     // wall clock from construction
  std::uint64_t max_rss_bytes = 0;   // resident-set ceiling
  bool watch_signals = false;        // SIGINT/SIGTERM => kInterrupted
};

/// True while a watched stop signal is pending for this process. Reset
/// whenever a signal-watching RunBudget is constructed.
bool signal_stop_requested();

/// One run's budget. Construct before exploring, hand a pointer to the
/// explorers via ExploreOptions::budget (and CompositionOptions::budget),
/// and inspect stopped()/reason() afterwards. Not copyable; outlives
/// every exploration that polls it.
class RunBudget {
 public:
  /// An unlimited budget: should_stop() stays false until request_stop().
  RunBudget() = default;
  /// Arms `limits`: the deadline counts from now; when watch_signals is
  /// set, SIGINT/SIGTERM handlers are installed (and restored by the
  /// destructor) that request a graceful kInterrupted stop.
  explicit RunBudget(const BudgetLimits& limits);
  ~RunBudget();
  RunBudget(const RunBudget&) = delete;
  RunBudget& operator=(const RunBudget&) = delete;

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// The first breach observed, or kCompleted while the run is healthy.
  StopReason reason() const {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

  /// Latch a stop. The first caller wins; later calls (including from
  /// other threads) keep the original reason. Counts Counter::BudgetStops
  /// and records a flight-recorder event when the recorder is enabled.
  void request_stop(StopReason r);

  /// Fast cooperative poll for exploration inner loops: one relaxed load
  /// on the happy path, a deadline/signal check per call, and an RSS read
  /// every kRssPollStride calls (procfs reads are microseconds, not
  /// nanoseconds). Returns true once the run should unwind.
  bool should_stop();

 private:
  BudgetLimits limits_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  bool watching_ = false;

  std::atomic<bool> stopped_{false};
  std::atomic<int> reason_{static_cast<int>(StopReason::kCompleted)};
  std::atomic<std::uint64_t> tick_{0};

  static constexpr std::uint64_t kRssPollStride = 256;
};

}  // namespace opentla::run
