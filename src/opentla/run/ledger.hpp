// opentla/run/ledger.hpp
//
// The run ledger: one crash-safe JSONL line appended per tlacheck run,
// recording what was checked (a content hash of the input specs), how
// (the option string), how it ended (stop reason + exit code), and the
// final headline counters. A fleet of runs accumulates an auditable
// trajectory; the line schema is pinned in tools/ledger_schema.json.
// Crash safety: the line is built fully in memory and written with a
// single O_APPEND write, so a run killed mid-append corrupts at most its
// own line, never a neighbor's.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace opentla::run {

/// FNV-1a 64-bit over `n` bytes, chainable via `seed` (pass the previous
/// hash to fold several files into one spec hash).
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t seed = 14695981039346656037ULL);

struct RunRecord {
  std::string command;         // tlacheck subcommand
  std::string spec_hash;       // hex FNV-1a 64 of all input file contents
  std::string options;         // canonicalized flag string
  std::string stop_reason;     // run::to_string(StopReason)
  int exit_code = 0;
  std::uint64_t states = 0;           // Counter::StatesGenerated at exit
  std::uint64_t budget_stops = 0;     // Counter::BudgetStops at exit
  std::uint64_t elapsed_us = 0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t tracked_peak_bytes = 0;  // peak accounted bytes, all domains
  std::uint64_t bytes_per_state = 0;     // tracked_peak_bytes / peak states
};

/// Appends `rec` to `path` as one JSONL line. Returns false on I/O
/// failure (callers warn; a failed ledger append never fails the run).
bool append_run_ledger(const std::string& path, const RunRecord& rec);

}  // namespace opentla::run
