#include "opentla/run/ledger.hpp"

#include <fcntl.h>
#include <unistd.h>

#include "opentla/obs/obs.hpp"

namespace opentla::run {

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

bool append_run_ledger(const std::string& path, const RunRecord& rec) {
  std::string line = "{\"schema\": \"opentla-run-ledger-v2\"";
  line += ", \"command\": \"" + obs::json_escape(rec.command) + "\"";
  line += ", \"spec_hash\": \"" + obs::json_escape(rec.spec_hash) + "\"";
  line += ", \"options\": \"" + obs::json_escape(rec.options) + "\"";
  line += ", \"stop_reason\": \"" + obs::json_escape(rec.stop_reason) + "\"";
  line += ", \"exit_code\": " + std::to_string(rec.exit_code);
  line += ", \"states\": " + std::to_string(rec.states);
  line += ", \"budget_stops\": " + std::to_string(rec.budget_stops);
  line += ", \"elapsed_us\": " + std::to_string(rec.elapsed_us);
  line += ", \"peak_rss_bytes\": " + std::to_string(rec.peak_rss_bytes);
  line += ", \"tracked_peak_bytes\": " + std::to_string(rec.tracked_peak_bytes);
  line += ", \"bytes_per_state\": " + std::to_string(rec.bytes_per_state);
  line += "}\n";

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t w = ::write(fd, line.data() + off, line.size() - off);
    if (w <= 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  ::close(fd);
  return true;
}

}  // namespace opentla::run
