#include "opentla/run/budget.hpp"

#include <csignal>

#include "opentla/obs/flight_recorder.hpp"
#include "opentla/obs/memory.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/obs/progress.hpp"

namespace opentla::run {

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kStateBudget: return "state_budget";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kMemory: return "memory";
    case StopReason::kInterrupted: return "interrupted";
  }
  return "unknown";
}

namespace {

// Set from the signal handler; read with a relaxed load from should_stop.
// sig_atomic_t writes are the only async-signal-safe operation needed.
volatile std::sig_atomic_t g_signal_requested = 0;

extern "C" void opentla_stop_signal_handler(int) { g_signal_requested = 1; }

struct SavedAction {
  int signo;
  struct sigaction old;
};
SavedAction g_saved[2];
int g_saved_count = 0;

void install_stop_handlers() {
  g_signal_requested = 0;
  g_saved_count = 0;
  for (int signo : {SIGINT, SIGTERM}) {
    struct sigaction sa = {};
    sa.sa_handler = opentla_stop_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    SavedAction saved;
    saved.signo = signo;
    if (sigaction(signo, &sa, &saved.old) == 0) g_saved[g_saved_count++] = saved;
  }
}

void restore_stop_handlers() {
  for (int i = 0; i < g_saved_count; ++i) {
    sigaction(g_saved[i].signo, &g_saved[i].old, nullptr);
  }
  g_saved_count = 0;
}

}  // namespace

bool signal_stop_requested() { return g_signal_requested != 0; }

RunBudget::RunBudget(const BudgetLimits& limits) : limits_(limits) {
  if (limits_.deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
  }
  if (limits_.watch_signals) {
    install_stop_handlers();
    watching_ = true;
  }
}

RunBudget::~RunBudget() {
  if (watching_) restore_stop_handlers();
}

void RunBudget::request_stop(StopReason r) {
  if (r == StopReason::kCompleted) return;
  // The reason slot is the latch (first CAS wins), and stopped_ is only
  // raised afterwards: a thread that observes stopped() == true is
  // guaranteed to read the winning reason, never a half-published one.
  int expected = static_cast<int>(StopReason::kCompleted);
  if (!reason_.compare_exchange_strong(expected, static_cast<int>(r),
                                       std::memory_order_acq_rel)) {
    return;  // a breach was already latched; first reason wins
  }
  stopped_.store(true, std::memory_order_release);
  OPENTLA_OBS_COUNT(BudgetStops);
  if (obs::flight_recorder_enabled()) {
    obs::flight_recorder_record(obs::FlightKind::kBudget, to_string(r),
                                obs::counter_value(obs::Counter::StatesGenerated),
                                obs::read_rss_bytes(), 0);
  }
}

bool RunBudget::should_stop() {
  if (stopped_.load(std::memory_order_relaxed)) return true;
  if (watching_ && g_signal_requested != 0) {
    request_stop(StopReason::kInterrupted);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    request_stop(StopReason::kDeadline);
    return true;
  }
  if (limits_.max_rss_bytes > 0) {
    const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed);
    if (tick % kRssPollStride == 0) {
      const std::uint64_t rss = obs::read_rss_bytes();
      if (rss > limits_.max_rss_bytes) {
        request_stop(StopReason::kMemory);
        return true;
      }
    }
  }
  return false;
}

}  // namespace opentla::run
