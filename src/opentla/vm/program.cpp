#include "opentla/vm/program.hpp"

#include <cstdio>

namespace opentla::vm {

const char* to_string(Op op) {
  switch (op) {
    case Op::LoadConst: return "LoadConst";
    case Op::LoadVar: return "LoadVar";
    case Op::LoadLocal: return "LoadLocal";
    case Op::UnboundLocal: return "UnboundLocal";
    case Op::NullExpr: return "NullExpr";
    case Op::Jump: return "Jump";
    case Op::JumpIfFalse: return "JumpIfFalse";
    case Op::JumpIfTrue: return "JumpIfTrue";
    case Op::Not: return "Not";
    case Op::TestBool: return "TestBool";
    case Op::Equiv: return "Equiv";
    case Op::Eq: return "Eq";
    case Op::Lt: return "Lt";
    case Op::Le: return "Le";
    case Op::Gt: return "Gt";
    case Op::Ge: return "Ge";
    case Op::Add: return "Add";
    case Op::Sub: return "Sub";
    case Op::Mul: return "Mul";
    case Op::Mod: return "Mod";
    case Op::Neg: return "Neg";
    case Op::MakeTuple: return "MakeTuple";
    case Op::Head: return "Head";
    case Op::Tail: return "Tail";
    case Op::Len: return "Len";
    case Op::Concat: return "Concat";
    case Op::Append: return "Append";
    case Op::Index: return "Index";
    case Op::Unchanged: return "Unchanged";
    case Op::TupleEq: return "TupleEq";
    case Op::CmpVarVar: return "CmpVarVar";
    case Op::CmpVarConst: return "CmpVarConst";
    case Op::LenVar: return "LenVar";
    case Op::VarCheck: return "VarCheck";
    case Op::EqVarReg: return "EqVarReg";
    case Op::Exists: return "Exists";
    case Op::Forall: return "Forall";
    case Op::Enabled: return "Enabled";
  }
  return "?";
}

namespace {

std::string reg_name(std::uint16_t r) { return "r" + std::to_string(r); }

std::string var_name(std::uint16_t v, bool primed) {
  return "v" + std::to_string(v) + (primed ? "'" : "");
}

const char* cmp_sym(CmpKind k) {
  switch (k) {
    case CmpKind::Eq: return "=";
    case CmpKind::Neq: return "/=";
    case CmpKind::Lt: return "<";
    case CmpKind::Le: return "<=";
    case CmpKind::Gt: return ">";
    case CmpKind::Ge: return ">=";
  }
  return "?";
}

std::string reg_range(std::uint16_t first, std::uint32_t n) {
  if (n == 0) return "<< >>";
  return "<<" + reg_name(first) + ".." +
         reg_name(static_cast<std::uint16_t>(first + n - 1)) + ">>";
}

std::string operands(const Program& p, const Instr& in) {
  const std::string dst = reg_name(in.dst);
  switch (in.op) {
    case Op::LoadConst:
      return dst + " <- " + p.consts[in.imm].to_string();
    case Op::LoadVar:
      return dst + " <- " + var_name(in.a, in.flags & kPrimedA);
    case Op::LoadLocal:
      return dst + " <- l" + std::to_string(in.a);
    case Op::UnboundLocal:
      return "trap unbound local '" + p.names[in.imm] + "'";
    case Op::NullExpr:
      return "trap null expression";
    case Op::Jump: {
      char buf[16];
      std::snprintf(buf, sizeof buf, "-> %04u", in.imm);
      return buf;
    }
    case Op::JumpIfFalse:
    case Op::JumpIfTrue: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "if %sr%u -> %04u",
                    in.op == Op::JumpIfFalse ? "!" : "", in.a, in.imm);
      return buf;
    }
    case Op::Not:
      return dst + " <- !" + reg_name(in.a);
    case Op::TestBool:
      return dst + " <- bool " + reg_name(in.a);
    case Op::Equiv:
      return dst + " <- " + reg_name(in.a) + " <=> " + reg_name(in.b);
    case Op::Eq:
      return dst + " <- " + reg_name(in.a) + ((in.flags & kNegate) ? " /= " : " = ") +
             reg_name(in.b);
    case Op::Lt:
      return dst + " <- " + reg_name(in.a) + " < " + reg_name(in.b);
    case Op::Le:
      return dst + " <- " + reg_name(in.a) + " <= " + reg_name(in.b);
    case Op::Gt:
      return dst + " <- " + reg_name(in.a) + " > " + reg_name(in.b);
    case Op::Ge:
      return dst + " <- " + reg_name(in.a) + " >= " + reg_name(in.b);
    case Op::Add:
      return dst + " <- " + reg_name(in.a) + " + " + reg_name(in.b);
    case Op::Sub:
      return dst + " <- " + reg_name(in.a) + " - " + reg_name(in.b);
    case Op::Mul:
      return dst + " <- " + reg_name(in.a) + " * " + reg_name(in.b);
    case Op::Mod:
      return dst + " <- " + reg_name(in.a) + " % " + reg_name(in.b);
    case Op::Neg:
      return dst + " <- -" + reg_name(in.a);
    case Op::MakeTuple:
      return dst + " <- " + reg_range(in.a, in.b);
    case Op::Head:
      return dst + " <- Head " + reg_name(in.a);
    case Op::Tail:
      return dst + " <- Tail " + reg_name(in.a);
    case Op::Len:
      return dst + " <- Len " + reg_name(in.a);
    case Op::LenVar:
      return dst + " <- Len " + var_name(in.a, in.flags & kPrimedA);
    case Op::VarCheck:
      return "check " + var_name(in.a, in.flags & kPrimedA);
    case Op::EqVarReg:
      return dst + " <- " + var_name(in.a, in.flags & kPrimedA) +
             ((in.flags & kNegate) ? " /= " : " = ") + reg_name(in.b);
    case Op::Concat:
      return dst + " <- " + reg_name(in.a) + " \\o " + reg_name(in.b);
    case Op::Append:
      return dst + " <- Append(" + reg_name(in.a) + ", " + reg_name(in.b) + ")";
    case Op::Index:
      return dst + " <- " + reg_name(in.a) + "[" + reg_name(in.b) + "]";
    case Op::Unchanged: {
      std::string vs;
      for (VarId v : p.var_lists[in.imm]) {
        if (!vs.empty()) vs += ", ";
        vs += "v" + std::to_string(v);
      }
      return dst + " <- UNCHANGED <<" + vs + ">>";
    }
    case Op::TupleEq:
      return dst + " <- " + reg_range(in.a, in.imm) +
             ((in.flags & kNegate) ? " /= " : " = ") + reg_range(in.b, in.imm);
    case Op::CmpVarVar:
      return dst + " <- " + var_name(in.a, in.flags & kPrimedA) + " " +
             cmp_sym(static_cast<CmpKind>(in.flags & kCmpMask)) + " " +
             var_name(in.b, in.flags & kPrimedB);
    case Op::CmpVarConst: {
      const std::string v = var_name(in.a, in.flags & kPrimedA);
      const std::string c = p.consts[in.imm].to_string();
      const std::string sym = cmp_sym(static_cast<CmpKind>(in.flags & kCmpMask));
      if (in.flags & kSwapped) return dst + " <- " + c + " " + sym + " " + v;
      return dst + " <- " + v + " " + sym + " " + c;
    }
    case Op::Exists:
    case Op::Forall:
      return dst + " <- " + (in.op == Op::Exists ? "\\E" : "\\A") + " l" +
             std::to_string(in.a) + " in d" + std::to_string(in.imm_hi()) +
             ": body " + reg_name(in.b) + " len " + std::to_string(in.imm_lo());
    case Op::Enabled:
      return dst + " <- ENABLED e" + std::to_string(in.imm);
  }
  return "?";
}

}  // namespace

std::uint64_t program_bytes(const Program& p) {
  std::uint64_t bytes = sizeof(Program);
  bytes += p.instrs.capacity() * sizeof(Instr);
  for (const Value& v : p.consts) bytes += value_deep_bytes(v);
  for (const Domain& d : p.domains) {
    bytes += sizeof(Domain);
    for (const Value& v : d.values()) bytes += value_deep_bytes(v);
  }
  for (const std::vector<VarId>& vl : p.var_lists) {
    bytes += sizeof(std::vector<VarId>) + vl.capacity() * sizeof(VarId);
  }
  for (const std::string& n : p.names) {
    bytes += sizeof(std::string);
    if (n.capacity() > sizeof(std::string) - 1) bytes += n.capacity() + 1;
  }
  // ENABLED sites hold expression subtrees; count their fixed footprint
  // only (the tree bytes belong to the parser domain that built them).
  bytes += p.enabled_sites.capacity() * sizeof(EnabledSite);
  return bytes;
}

std::string disassemble(const Program& p) {
  std::string out = "program: " + std::to_string(p.instrs.size()) + " instrs, " +
                    std::to_string(p.num_regs) + " regs, " +
                    std::to_string(p.num_locals) + " locals\n";
  for (std::size_t i = 0; i < p.instrs.size(); ++i) {
    char head[64];
    std::snprintf(head, sizeof head, "%04zu %-12s ", i, to_string(p.instrs[i].op));
    out += head;
    out += operands(p, p.instrs[i]);
    out += "\n";
  }
  return out;
}

}  // namespace opentla::vm
