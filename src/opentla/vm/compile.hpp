// opentla/vm/compile.hpp
//
// Lowering `Expr` trees to vm::Program bytecode. Compilation is total on
// the expression language except for static resource caps (register file,
// instruction count, quantifier-body length); exceeding a cap throws
// CompileLimit and the caller keeps the tree evaluator for that
// expression (see vm::CompiledExpr in interp.hpp).
//
// Compilation is deterministic: the same tree always lowers to the same
// instruction sequence and pool contents (tests/test_vm.cpp pins this),
// so programs can be compared and their disassembly used as goldens.
//
// Programs are compiled with an empty bound-variable scope: a free Local
// lowers to an UnboundLocal trap that throws the tree evaluator's exact
// "unbound local" error if (and only if) it is reached. Callers therefore
// use the VM for *closed* expressions — guards, assignment right-hand
// sides, residual conjuncts, invariants, oracle atoms — which is every
// hot evaluation site in the engine.

#pragma once

#include "opentla/expr/expr.hpp"
#include "opentla/vm/program.hpp"

#include <stdexcept>

namespace opentla::vm {

/// Thrown when an expression exceeds the VM's static resource caps. The
/// tree evaluator has no such caps, so callers fall back to it.
class CompileLimit : public std::runtime_error {
 public:
  explicit CompileLimit(const std::string& what) : std::runtime_error(what) {}
};

// Static caps. Registers and locals index with 16 bits; quantifier body
// lengths pack into 16 bits of the immediate.
inline constexpr std::size_t kMaxRegs = 4096;
inline constexpr std::size_t kMaxLocals = 4096;
inline constexpr std::size_t kMaxInstrs = 1u << 20;
inline constexpr std::size_t kMaxQuantBody = 0xffff;
// Nesting cap: the compiler recurses once per expression level, and
// sanitizer builds multiply frame sizes, so the bound must leave ample
// stack headroom there too. Deeper expressions fall back to the tree.
inline constexpr std::size_t kMaxDepth = 512;

/// Lowers `e` (result in register 0). Throws CompileLimit past the caps
/// above; never throws on well-formed inputs otherwise. Counts one
/// VmProgramsCompiled observation per successful lowering.
Program compile(const Expr& e);

}  // namespace opentla::vm
