// opentla/vm/interp.hpp
//
// The bytecode interpreter and the engine-facing dispatch wrapper.
//
// `run` executes a compiled Program against the same (vars, current,
// next) triple the tree evaluator's EvalContext carries, with a register
// file and a slot-indexed locals array reused across calls. It is
// observationally identical to `eval` on the source tree: same values,
// same verdicts, and byte-identical `std::runtime_error` messages on
// every failing input (the pinned contract at the top of expr/eval.cpp).
//
// `CompiledExpr` is what the engine integrates: it lowers an expression
// at construction (falling back to the tree on CompileLimit) and
// dispatches each evaluation on the global runtime switch below, so
// differential tests flip one flag to re-run identical workloads through
// the other evaluator — exactly the set_naive_enumeration_for_test
// pattern in opentla/graph/successor.hpp.

#pragma once

#include <cstdint>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/state/state.hpp"
#include "opentla/state/var_table.hpp"
#include "opentla/value/value.hpp"
#include "opentla/vm/program.hpp"

namespace opentla::vm {

/// Execution context: the EvalContext state triple plus reusable scratch.
/// `regs` and `locals` grow to each program's requirements and are reused
/// across calls — hot callers keep one VmContext per run, not per eval.
struct VmContext {
  const VarTable* vars = nullptr;
  const State* current = nullptr;
  const State* next = nullptr;
  std::vector<Value> regs;
  std::vector<Value> locals;
};

/// Executes `p`, returning the value left in register 0. Throws the tree
/// evaluator's exact errors on failing inputs. Counts every retired
/// instruction toward Counter::VmInstrsExecuted (flushed once per call,
/// including on the throwing paths).
Value run(const Program& p, VmContext& ctx);

/// `run` + the tree's boolean check ("eval: expected a boolean, got ...").
bool run_bool(const Program& p, VmContext& ctx);

/// Test/CLI hook, exactly like ActionSuccessors::set_naive_enumeration_-
/// for_test: when set, every CompiledExpr dispatches to the tree
/// evaluator instead of its bytecode. The two paths must agree on every
/// observable — the differential tests toggle this to prove it. Global;
/// not for concurrent use with live evaluations.
void set_tree_eval_for_test(bool tree);

/// True when the switch above forces tree evaluation.
bool tree_eval_forced();

/// One engine expression, lowered once, dispatched per evaluation.
///
/// For *closed* expressions only (no free quantifier-bound variables):
/// programs compile with an empty scope, so a free Local traps with the
/// tree's empty-environment "unbound local" error. Every integration site
/// (guards, assignment RHS, residual conjuncts, invariants, oracle
/// atoms) evaluates closed expressions.
class CompiledExpr {
 public:
  CompiledExpr() = default;
  /// Lowers `e`; on CompileLimit the instance stays valid and evaluates
  /// through the tree unconditionally.
  explicit CompiledExpr(Expr e);

  const Expr& expr() const { return expr_; }
  bool compiled() const { return has_prog_; }
  const Program& program() const { return prog_; }

  /// Evaluates via bytecode, or via the tree when the runtime switch
  /// forces it (or compilation hit a limit). `ctx` supplies the state
  /// triple and scratch; its locals are not an environment (closed-
  /// expression contract above).
  Value eval(VmContext& ctx) const;
  bool eval_bool(VmContext& ctx) const;

 private:
  Expr expr_;
  Program prog_;
  bool has_prog_ = false;
  /// Memory accounting: the lowered program's pool bytes, charged at
  /// construction and released with the instance.
  obs::MemTally mem_{obs::MemDomain::VmPools};
};

}  // namespace opentla::vm
