#include "opentla/vm/compile.hpp"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "opentla/obs/obs.hpp"

namespace opentla::vm {

namespace {

[[noreturn]] void limit(const std::string& what) { throw CompileLimit("vm: " + what); }

/// True iff the pair <l, r> is exactly <v', v> for some flexible variable
/// v — the operand shape of one UNCHANGED conjunct.
bool unchanged_eq_parts(const Expr& l, const Expr& r, VarId* v) {
  if (l.is_null() || r.is_null()) return false;
  if (l.kind() != ExprKind::Var || !l.node().primed) return false;
  if (r.kind() != ExprKind::Var || r.node().primed) return false;
  if (l.node().var != r.node().var) return false;
  *v = l.node().var;
  return true;
}

/// True iff `e` is exactly v' = v for some flexible variable v — one
/// conjunct of an UNCHANGED frame (ex::unchanged builds this shape).
bool unchanged_eq(const Expr& e, VarId* v) {
  if (e.is_null() || e.kind() != ExprKind::Eq) return false;
  return unchanged_eq_parts(e.kids()[0], e.kids()[1], v);
}

/// True when the expression can only evaluate to a boolean, making the
/// And/Or tail TestBool a provable no-op (TestBool's sole observable effect
/// is the "expected a boolean" error on non-boolean values).
bool always_bool(const Expr& e) {
  if (e.is_null()) return false;
  switch (e.kind()) {
    case ExprKind::Not:
    case ExprKind::And:
    case ExprKind::Or:
    case ExprKind::Implies:
    case ExprKind::Equiv:
    case ExprKind::Eq:
    case ExprKind::Neq:
    case ExprKind::Lt:
    case ExprKind::Le:
    case ExprKind::Gt:
    case ExprKind::Ge:
    case ExprKind::ExistsVal:
    case ExprKind::ForallVal:
    case ExprKind::Enabled:
      return true;
    case ExprKind::Const:
      return e.node().value.is_bool();
    default:
      return false;
  }
}

class Compiler {
 public:
  Program take(const Expr& e) {
    compile_into(e, 0);
    return std::move(prog_);
  }

 private:
  // --- Pools ---
  std::uint32_t intern_const(const Value& v) {
    auto [it, inserted] = const_ids_.try_emplace(v, prog_.consts.size());
    if (inserted) prog_.consts.push_back(v);
    return static_cast<std::uint32_t>(it->second);
  }
  std::uint32_t intern_name(const std::string& s) {
    auto [it, inserted] = name_ids_.try_emplace(s, prog_.names.size());
    if (inserted) prog_.names.push_back(s);
    return static_cast<std::uint32_t>(it->second);
  }
  std::uint32_t add_domain(const Domain& d) {
    prog_.domains.push_back(d);
    return static_cast<std::uint32_t>(prog_.domains.size() - 1);
  }

  static std::uint16_t var16(VarId v) {
    if (v > 0xffff) limit("variable id exceeds 65535");
    return static_cast<std::uint16_t>(v);
  }

  // --- Registers / instructions ---
  std::uint16_t reg(std::size_t r) {
    if (r >= kMaxRegs) limit("register file exhausted");
    if (r + 1 > prog_.num_regs) prog_.num_regs = static_cast<std::uint16_t>(r + 1);
    return static_cast<std::uint16_t>(r);
  }
  std::size_t emit(Instr in) {
    if (prog_.instrs.size() >= kMaxInstrs) limit("instruction limit exceeded");
    prog_.instrs.push_back(in);
    return prog_.instrs.size() - 1;
  }
  std::size_t here() const { return prog_.instrs.size(); }
  void patch_target(std::size_t at, std::size_t target) {
    prog_.instrs[at].imm = static_cast<std::uint32_t>(target);
  }

  // --- Scope ---
  // Returns the slot of `name` if bound, or -1. Innermost binding wins.
  int lookup_local(const std::string& name) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return -1;
  }

  // --- Lowering. compile_into(e, dst) leaves the value of `e` in r[dst]
  // and may clobber any register >= dst. Operands are compiled left to
  // right (the pinned contract at the top of expr/eval.cpp). ---
  void compile_into(const Expr& e, std::size_t dst) {
    // One frame per expression level; cap it so neither this recursion
    // nor the tree fallback's can overflow the stack (kMaxDepth doc).
    if (depth_ >= kMaxDepth) limit("expression nested too deeply");
    ++depth_;
    struct DepthPop {
      std::size_t& d;
      ~DepthPop() { --d; }
    } pop{depth_};
    if (e.is_null()) {
      // The tree evaluator throws "eval: null expression" when *reached*;
      // preserve the laziness (e.g. a short-circuited And child).
      emit({Op::NullExpr, 0, reg(dst), 0, 0, 0});
      return;
    }
    const ExprNode& n = e.node();
    switch (n.kind) {
      case ExprKind::Const:
        emit({Op::LoadConst, 0, reg(dst), 0, 0, intern_const(n.value)});
        return;

      case ExprKind::Var:
        emit({Op::LoadVar, static_cast<std::uint8_t>(n.primed ? kPrimedA : 0),
              reg(dst), var16(n.var), 0, 0});
        return;

      case ExprKind::Local: {
        const int slot = lookup_local(n.local);
        if (slot >= 0) {
          emit({Op::LoadLocal, 0, reg(dst), static_cast<std::uint16_t>(slot), 0, 0});
        } else {
          emit({Op::UnboundLocal, 0, reg(dst), 0, 0, intern_name(n.local)});
        }
        return;
      }

      case ExprKind::Not: {
        compile_into(n.kids[0], dst);
        emit({Op::Not, 0, reg(dst), reg(dst), 0, 0});
        return;
      }

      case ExprKind::And:
      case ExprKind::Or: {
        const bool conj = (n.kind == ExprKind::And);
        if (n.kids.empty()) {
          emit({Op::LoadConst, 0, reg(dst), 0, 0, intern_const(Value::boolean(conj))});
          return;
        }
        // Each child lands in dst and short-circuits past the rest; runs
        // of v' = v conjuncts fuse into one Unchanged frame.
        std::vector<std::size_t> exits;
        std::size_t i = 0;
        while (i < n.kids.size()) {
          VarId v = 0;
          bool known_bool = false;
          if (conj && unchanged_eq(n.kids[i], &v)) {
            std::vector<VarId> frame{v};
            while (i + 1 < n.kids.size() && unchanged_eq(n.kids[i + 1], &v)) {
              frame.push_back(v);
              ++i;
            }
            prog_.var_lists.push_back(std::move(frame));
            emit({Op::Unchanged, 0, reg(dst), 0, 0,
                  static_cast<std::uint32_t>(prog_.var_lists.size() - 1)});
            known_bool = true;  // Unchanged always yields a boolean
          } else {
            compile_into(n.kids[i], dst);
            known_bool = always_bool(n.kids[i]);
          }
          ++i;
          if (i < n.kids.size()) {
            exits.push_back(emit({conj ? Op::JumpIfFalse : Op::JumpIfTrue, 0, 0,
                                  reg(dst), 0, 0}));
          } else if (!known_bool) {
            // Last child: its boolean (checked) is the result.
            emit({Op::TestBool, 0, reg(dst), reg(dst), 0, 0});
          }
        }
        for (std::size_t at : exits) patch_target(at, here());
        return;
      }

      case ExprKind::Implies: {
        // !a || b, evaluating a first: if a is FALSE the result is TRUE
        // without touching b (the tree's `!eval_bool(a) || eval_bool(b)`).
        compile_into(n.kids[0], dst);
        emit({Op::Not, 0, reg(dst), reg(dst), 0, 0});
        const std::size_t skip = emit({Op::JumpIfTrue, 0, 0, reg(dst), 0, 0});
        compile_into(n.kids[1], dst);
        emit({Op::TestBool, 0, reg(dst), reg(dst), 0, 0});
        patch_target(skip, here());
        return;
      }

      case ExprKind::Equiv: {
        compile_into(n.kids[0], dst);
        compile_into(n.kids[1], dst + 1);
        emit({Op::Equiv, 0, reg(dst), reg(dst), reg(dst + 1), 0});
        return;
      }

      case ExprKind::Eq:
      case ExprKind::Neq:
        compile_eq(n, dst, /*negate=*/n.kind == ExprKind::Neq);
        return;

      case ExprKind::Lt:
        compile_cmp(n, dst, Op::Lt, CmpKind::Lt);
        return;
      case ExprKind::Le:
        compile_cmp(n, dst, Op::Le, CmpKind::Le);
        return;
      case ExprKind::Gt:
        compile_cmp(n, dst, Op::Gt, CmpKind::Gt);
        return;
      case ExprKind::Ge:
        compile_cmp(n, dst, Op::Ge, CmpKind::Ge);
        return;

      case ExprKind::Add:
        compile_binop(n, dst, Op::Add);
        return;
      case ExprKind::Sub:
        compile_binop(n, dst, Op::Sub);
        return;
      case ExprKind::Mul:
        compile_binop(n, dst, Op::Mul);
        return;
      case ExprKind::Mod:
        compile_binop(n, dst, Op::Mod);
        return;
      case ExprKind::Neg: {
        compile_into(n.kids[0], dst);
        emit({Op::Neg, 0, reg(dst), reg(dst), 0, 0});
        return;
      }

      case ExprKind::IfThenElse: {
        compile_into(n.kids[0], dst);
        const std::size_t to_else = emit({Op::JumpIfFalse, 0, 0, reg(dst), 0, 0});
        compile_into(n.kids[1], dst);
        const std::size_t to_end = emit({Op::Jump, 0, 0, 0, 0, 0});
        patch_target(to_else, here());
        compile_into(n.kids[2], dst);
        patch_target(to_end, here());
        return;
      }

      case ExprKind::MakeTuple: {
        if (n.kids.size() > 0xffff) limit("tuple arity exceeds 65535");
        for (std::size_t i = 0; i < n.kids.size(); ++i) {
          compile_into(n.kids[i], dst + i);
        }
        emit({Op::MakeTuple, 0, reg(dst), reg(dst),
              static_cast<std::uint16_t>(n.kids.size()), 0});
        return;
      }

      case ExprKind::Head:
        compile_unop(n, dst, Op::Head);
        return;
      case ExprKind::Tail:
        compile_unop(n, dst, Op::Tail);
        return;
      case ExprKind::Len: {
        // Len(v) fuses to LenVar: the length is read off the state's value
        // in place instead of copying the sequence through a register.
        const Expr& k = n.kids[0];
        if (!k.is_null() && k.kind() == ExprKind::Var) {
          emit({Op::LenVar,
                static_cast<std::uint8_t>(k.node().primed ? kPrimedA : 0),
                reg(dst), var16(k.node().var), 0, 0});
          return;
        }
        compile_unop(n, dst, Op::Len);
        return;
      }
      case ExprKind::Concat:
        compile_binop(n, dst, Op::Concat);
        return;
      case ExprKind::Append:
        compile_binop(n, dst, Op::Append);
        return;
      case ExprKind::Index:
        compile_binop(n, dst, Op::Index);
        return;

      case ExprKind::ExistsVal:
      case ExprKind::ForallVal: {
        if (scope_.size() >= kMaxLocals) limit("local slots exhausted");
        if (prog_.domains.size() > 0xffff) limit("domain pool exhausted");
        const std::uint16_t slot = static_cast<std::uint16_t>(scope_.size());
        if (slot + 1 > prog_.num_locals) {
          prog_.num_locals = static_cast<std::uint16_t>(slot + 1);
        }
        const std::uint32_t dom = add_domain(n.domain);
        const std::size_t head = emit(
            {n.kind == ExprKind::ExistsVal ? Op::Exists : Op::Forall, 0, reg(dst),
             slot, reg(dst + 1), 0});
        scope_.emplace_back(n.local, slot);
        compile_into(n.kids[0], dst + 1);
        scope_.pop_back();
        const std::size_t body_len = here() - head - 1;
        if (body_len > kMaxQuantBody) limit("quantifier body too long");
        prog_.instrs[head].imm =
            static_cast<std::uint32_t>((dom << 16) | body_len);
        return;
      }

      case ExprKind::Enabled: {
        prog_.enabled_sites.push_back({n.kids[0], scope_});
        emit({Op::Enabled, 0, reg(dst), 0, 0,
              static_cast<std::uint32_t>(prog_.enabled_sites.size() - 1)});
        return;
      }
    }
    limit("unknown node kind");
  }

  // Eq / Neq: Unchanged for v' = v, TupleEq for literal tuple compares,
  // fused CmpVar* when an operand pair is variables/constants, else the
  // generic register compare.
  void compile_eq(const ExprNode& n, std::size_t dst, bool negate) {
    const std::uint8_t neg = negate ? kNegate : 0;
    const Expr& l = n.kids[0];
    const Expr& r = n.kids[1];
    VarId v = 0;
    if (!negate && unchanged_eq_parts(l, r, &v)) {
      prog_.var_lists.push_back({v});
      emit({Op::Unchanged, 0, reg(dst), 0, 0,
            static_cast<std::uint32_t>(prog_.var_lists.size() - 1)});
      return;
    }
    if (!l.is_null() && !r.is_null() && l.kind() == ExprKind::MakeTuple &&
        r.kind() == ExprKind::MakeTuple && l.kids().size() == r.kids().size()) {
      const std::size_t k = l.kids().size();
      if (k <= 0xffff) {
        for (std::size_t i = 0; i < k; ++i) compile_into(l.kids()[i], dst + i);
        for (std::size_t i = 0; i < k; ++i) compile_into(r.kids()[i], dst + k + i);
        // Touch the high-water mark even for arity 0.
        reg(dst);
        if (k > 0) reg(dst + 2 * k - 1);
        emit({Op::TupleEq, neg, static_cast<std::uint16_t>(dst),
              static_cast<std::uint16_t>(dst), static_cast<std::uint16_t>(dst + k),
              static_cast<std::uint32_t>(k)});
        return;
      }
    }
    if (fuse_cmp(l, r, dst, negate ? CmpKind::Neq : CmpKind::Eq)) return;
    if (!l.is_null() && l.kind() == ExprKind::Var) {
      // x' = <rhs>: compare the variable's state value in place instead of
      // copying it through a register — the dominant residual shape when
      // the rhs is sequence-valued (q' = Append(q, v)). The VarCheck keeps
      // the tree's error order: the lhs state lookup fails before the rhs
      // evaluates.
      const std::uint8_t pf =
          static_cast<std::uint8_t>(l.node().primed ? kPrimedA : 0);
      emit({Op::VarCheck, pf, 0, var16(l.node().var), 0, 0});
      compile_into(r, dst);
      emit({Op::EqVarReg, static_cast<std::uint8_t>(neg | pf), reg(dst),
            var16(l.node().var), reg(dst), 0});
      return;
    }
    if (!r.is_null() && r.kind() == ExprKind::Var) {
      // <lhs> = x: the lhs evaluates first and the variable reads second —
      // already the tree's order, so no check instruction is needed.
      const std::uint8_t pf =
          static_cast<std::uint8_t>(r.node().primed ? kPrimedA : 0);
      compile_into(l, dst);
      emit({Op::EqVarReg, static_cast<std::uint8_t>(neg | pf), reg(dst),
            var16(r.node().var), reg(dst), 0});
      return;
    }
    compile_into(l, dst);
    compile_into(r, dst + 1);
    emit({Op::Eq, neg, reg(dst), reg(dst), reg(dst + 1), 0});
  }

  void compile_cmp(const ExprNode& n, std::size_t dst, Op op, CmpKind kind) {
    if (fuse_cmp(n.kids[0], n.kids[1], dst, kind)) return;
    compile_into(n.kids[0], dst);
    compile_into(n.kids[1], dst + 1);
    emit({op, 0, reg(dst), reg(dst), reg(dst + 1), 0});
  }

  // Emits CmpVarVar / CmpVarConst when both operands are leaves the fused
  // forms cover; returns false to use the generic lowering. Evaluation
  // order and failure modes are identical either way (the interpreter
  // reads/converts operand a before operand b, const-on-the-left uses
  // kSwapped to keep the source order).
  bool fuse_cmp(const Expr& l, const Expr& r, std::size_t dst, CmpKind kind) {
    const auto is_var = [](const Expr& e) {
      return !e.is_null() && e.kind() == ExprKind::Var;
    };
    const auto is_const = [](const Expr& e) {
      return !e.is_null() && e.kind() == ExprKind::Const;
    };
    const std::uint8_t kindf = static_cast<std::uint8_t>(kind);
    if (is_var(l) && is_var(r)) {
      std::uint8_t flags = kindf;
      if (l.node().primed) flags |= kPrimedA;
      if (r.node().primed) flags |= kPrimedB;
      emit({Op::CmpVarVar, flags, reg(dst), var16(l.node().var),
            var16(r.node().var), 0});
      return true;
    }
    if (is_var(l) && is_const(r)) {
      std::uint8_t flags = kindf;
      if (l.node().primed) flags |= kPrimedA;
      emit({Op::CmpVarConst, flags, reg(dst), var16(l.node().var), 0,
            intern_const(r.node().value)});
      return true;
    }
    if (is_const(l) && is_var(r)) {
      std::uint8_t flags = static_cast<std::uint8_t>(kindf | kSwapped);
      if (r.node().primed) flags |= kPrimedA;
      emit({Op::CmpVarConst, flags, reg(dst), var16(r.node().var), 0,
            intern_const(l.node().value)});
      return true;
    }
    return false;
  }

  void compile_unop(const ExprNode& n, std::size_t dst, Op op) {
    compile_into(n.kids[0], dst);
    emit({op, 0, reg(dst), reg(dst), 0, 0});
  }

  void compile_binop(const ExprNode& n, std::size_t dst, Op op) {
    compile_into(n.kids[0], dst);
    compile_into(n.kids[1], dst + 1);
    emit({op, 0, reg(dst), reg(dst), reg(dst + 1), 0});
  }

  Program prog_;
  std::map<Value, std::size_t> const_ids_;
  std::map<std::string, std::size_t> name_ids_;
  std::vector<std::pair<std::string, std::uint16_t>> scope_;
  std::size_t depth_ = 0;  // current compile_into recursion depth
};

}  // namespace

Program compile(const Expr& e) {
  Compiler c;
  Program p = c.take(e);
  OPENTLA_OBS_COUNT(VmProgramsCompiled);
  return p;
}

}  // namespace opentla::vm
