#include "opentla/vm/interp.hpp"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "opentla/expr/eval.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/vm/compile.hpp"

namespace opentla::vm {

namespace {

std::atomic<bool> g_tree_eval{false};

// Every error below reproduces the tree evaluator's message byte for byte
// (expr/eval.cpp's eval_error adds the same "eval: " prefix). Value kind
// mismatches go through the same Value accessors, so those messages match
// without duplication.
[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("eval: " + msg);
}

const Value& var_read(const VmContext& ctx, std::uint16_t v, bool primed) {
  if (primed) {
    if (ctx.next == nullptr) fail("primed variable in a state-function context");
    return (*ctx.next)[v];
  }
  if (ctx.current == nullptr) fail("no current state");
  return (*ctx.current)[v];
}

bool bool_of(const Value& v) {
  if (!v.is_bool()) fail("expected a boolean, got " + v.to_string());
  return v.as_bool();
}

bool ord_cmp(CmpKind k, std::int64_t a, std::int64_t b) {
  switch (k) {
    case CmpKind::Lt: return a < b;
    case CmpKind::Le: return a <= b;
    case CmpKind::Gt: return a > b;
    case CmpKind::Ge: return a >= b;
    default: break;
  }
  fail("unknown comparison kind");
}

// Flushes the retired-instruction tally once per run(), including when an
// eval error unwinds mid-program.
struct CountFlush {
  std::uint64_t n = 0;
  ~CountFlush() { OPENTLA_OBS_COUNT_N(VmInstrsExecuted, n); }
};

// Superinstruction bodies shared by the dispatch loop and the
// single-instruction fast paths in run()/run_bool(). Error order matches
// the tree's left-to-right evaluation (see the comments at each site).
bool cmp_var_var(const VmContext& ctx, const Instr& in) {
  const CmpKind k = static_cast<CmpKind>(in.flags & kCmpMask);
  const Value& va = var_read(ctx, in.a, in.flags & kPrimedA);
  if (k == CmpKind::Eq || k == CmpKind::Neq) {
    const Value& vb = var_read(ctx, in.b, in.flags & kPrimedB);
    return (va == vb) != (k == CmpKind::Neq);
  }
  // Operand a converts before operand b is even read — the order of
  // errors the tree's left-to-right evaluation produces.
  const std::int64_t a = va.as_int();
  const Value& vb = var_read(ctx, in.b, in.flags & kPrimedB);
  return ord_cmp(k, a, vb.as_int());
}

bool cmp_var_const(const Program& p, const VmContext& ctx, const Instr& in) {
  const CmpKind k = static_cast<CmpKind>(in.flags & kCmpMask);
  const Value& c = p.consts[in.imm];
  if (k == CmpKind::Eq || k == CmpKind::Neq) {
    const Value& va = var_read(ctx, in.a, in.flags & kPrimedA);
    return (va == c) != (k == CmpKind::Neq);
  }
  if (in.flags & kSwapped) {
    // Source order was <const> op <var>: the constant converts first.
    const std::int64_t a = c.as_int();
    return ord_cmp(k, a, var_read(ctx, in.a, in.flags & kPrimedA).as_int());
  }
  const std::int64_t a = var_read(ctx, in.a, in.flags & kPrimedA).as_int();
  return ord_cmp(k, a, c.as_int());
}

bool unchanged_all(const Program& p, const VmContext& ctx, const Instr& in) {
  for (VarId v : p.var_lists[in.imm]) {
    const Value& nv = var_read(ctx, static_cast<std::uint16_t>(v), true);
    const Value& cv = var_read(ctx, static_cast<std::uint16_t>(v), false);
    if (!(nv == cv)) return false;
  }
  return true;
}

// Executes instrs[pc, end). Quantifier bodies recurse with their
// sub-range; everything else is a flat dispatch loop.
void exec(const Program& p, VmContext& ctx, std::size_t pc, std::size_t end,
          std::uint64_t& count) {
  std::vector<Value>& regs = ctx.regs;
  while (pc < end) {
    const Instr& in = p.instrs[pc];
    ++count;
    switch (in.op) {
      case Op::LoadConst:
        regs[in.dst] = p.consts[in.imm];
        break;
      case Op::LoadVar:
        regs[in.dst] = var_read(ctx, in.a, in.flags & kPrimedA);
        break;
      case Op::LoadLocal:
        regs[in.dst] = ctx.locals[in.a];
        break;
      case Op::UnboundLocal:
        fail("unbound local '" + p.names[in.imm] + "'");
      case Op::NullExpr:
        fail("null expression");

      case Op::Jump:
        pc = in.imm;
        continue;
      case Op::JumpIfFalse:
        if (!bool_of(regs[in.a])) {
          pc = in.imm;
          continue;
        }
        break;
      case Op::JumpIfTrue:
        if (bool_of(regs[in.a])) {
          pc = in.imm;
          continue;
        }
        break;

      case Op::Not:
        regs[in.dst] = Value::boolean(!bool_of(regs[in.a]));
        break;
      case Op::TestBool:
        bool_of(regs[in.a]);
        if (in.dst != in.a) regs[in.dst] = regs[in.a];
        break;
      case Op::Equiv: {
        const bool a = bool_of(regs[in.a]);
        const bool b = bool_of(regs[in.b]);
        regs[in.dst] = Value::boolean(a == b);
        break;
      }

      case Op::Eq: {
        const bool eq = (regs[in.a] == regs[in.b]);
        regs[in.dst] = Value::boolean(eq != ((in.flags & kNegate) != 0));
        break;
      }
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge: {
        const std::int64_t a = regs[in.a].as_int();
        const std::int64_t b = regs[in.b].as_int();
        const CmpKind k = in.op == Op::Lt   ? CmpKind::Lt
                          : in.op == Op::Le ? CmpKind::Le
                          : in.op == Op::Gt ? CmpKind::Gt
                                            : CmpKind::Ge;
        regs[in.dst] = Value::boolean(ord_cmp(k, a, b));
        break;
      }

      case Op::Add: {
        const std::int64_t a = regs[in.a].as_int();
        const std::int64_t b = regs[in.b].as_int();
        std::int64_t r = 0;
        if (__builtin_add_overflow(a, b, &r)) fail("integer overflow in +");
        regs[in.dst] = Value::integer(r);
        break;
      }
      case Op::Sub: {
        const std::int64_t a = regs[in.a].as_int();
        const std::int64_t b = regs[in.b].as_int();
        std::int64_t r = 0;
        if (__builtin_sub_overflow(a, b, &r)) fail("integer overflow in -");
        regs[in.dst] = Value::integer(r);
        break;
      }
      case Op::Mul: {
        const std::int64_t a = regs[in.a].as_int();
        const std::int64_t b = regs[in.b].as_int();
        std::int64_t r = 0;
        if (__builtin_mul_overflow(a, b, &r)) fail("integer overflow in *");
        regs[in.dst] = Value::integer(r);
        break;
      }
      case Op::Mod: {
        const std::int64_t a = regs[in.a].as_int();
        const std::int64_t b = regs[in.b].as_int();
        if (b <= 0) fail("mod requires b > 0");
        const std::int64_t r = a % b;
        regs[in.dst] = Value::integer(r < 0 ? r + b : r);
        break;
      }
      case Op::Neg: {
        const std::int64_t a = regs[in.a].as_int();
        if (a == INT64_MIN) fail("integer overflow in unary -");
        regs[in.dst] = Value::integer(-a);
        break;
      }

      case Op::MakeTuple: {
        Value::Tuple elems;
        elems.reserve(in.b);
        for (std::size_t i = 0; i < in.b; ++i) elems.push_back(regs[in.a + i]);
        regs[in.dst] = Value::tuple(std::move(elems));
        break;
      }
      case Op::Head:
        regs[in.dst] = seq_head(regs[in.a]);
        break;
      case Op::Tail:
        regs[in.dst] = seq_tail(regs[in.a]);
        break;
      case Op::Len:
        regs[in.dst] = Value::integer(static_cast<std::int64_t>(regs[in.a].length()));
        break;
      case Op::LenVar:
        regs[in.dst] = Value::integer(static_cast<std::int64_t>(
            var_read(ctx, in.a, in.flags & kPrimedA).length()));
        break;
      case Op::VarCheck:
        var_read(ctx, in.a, in.flags & kPrimedA);
        break;
      case Op::EqVarReg: {
        const bool eq = (var_read(ctx, in.a, in.flags & kPrimedA) == regs[in.b]);
        regs[in.dst] = Value::boolean(eq != ((in.flags & kNegate) != 0));
        break;
      }
      case Op::Concat:
        regs[in.dst] = seq_concat(regs[in.a], regs[in.b]);
        break;
      case Op::Append:
        regs[in.dst] = seq_append(regs[in.a], regs[in.b]);
        break;
      case Op::Index: {
        // The index converts before the base's tuple check, like the tree.
        const std::int64_t i = regs[in.b].as_int();
        const Value& s = regs[in.a];
        const Value::Tuple& t = s.as_tuple();
        if (i < 1 || static_cast<std::size_t>(i) > t.size()) {
          fail("sequence index " + std::to_string(i) + " out of range for " +
               s.to_string());
        }
        // Copy out before assigning: dst may be the base register itself,
        // and assigning it destroys the tuple t points into.
        Value out = t[static_cast<std::size_t>(i) - 1];
        regs[in.dst] = std::move(out);
        break;
      }

      case Op::Unchanged:
        regs[in.dst] = Value::boolean(unchanged_all(p, ctx, in));
        break;
      case Op::TupleEq: {
        bool eq = true;
        for (std::size_t i = 0; i < in.imm; ++i) {
          if (!(regs[in.a + i] == regs[in.b + i])) {
            eq = false;
            break;
          }
        }
        regs[in.dst] = Value::boolean(eq != ((in.flags & kNegate) != 0));
        break;
      }
      case Op::CmpVarVar:
        regs[in.dst] = Value::boolean(cmp_var_var(ctx, in));
        break;
      case Op::CmpVarConst:
        regs[in.dst] = Value::boolean(cmp_var_const(p, ctx, in));
        break;

      case Op::Exists:
      case Op::Forall: {
        const bool is_exists = (in.op == Op::Exists);
        const Domain& dom = p.domains[in.imm_hi()];
        const std::size_t body_len = in.imm_lo();
        bool result = !is_exists;
        for (const Value& v : dom.values()) {
          ctx.locals[in.a] = v;
          exec(p, ctx, pc + 1, pc + 1 + body_len, count);
          if (bool_of(regs[in.b]) == is_exists) {
            result = is_exists;
            break;
          }
        }
        regs[in.dst] = Value::boolean(result);
        pc += body_len;  // skip the body range
        break;
      }

      case Op::Enabled: {
        if (ctx.vars == nullptr || ctx.current == nullptr) {
          fail("ENABLED requires a VarTable and a current state");
        }
        const EnabledSite& site = p.enabled_sites[in.imm];
        // The tree evaluates ENABLED under the outer bound-variable
        // environment; rebuild it from the compile-time scope's slots.
        EvalContext ectx;
        ectx.vars = ctx.vars;
        ectx.current = ctx.current;
        ectx.next = ctx.next;
        ectx.locals.reserve(site.scope.size());
        for (const auto& [local_name, slot] : site.scope) {
          ectx.locals.emplace_back(local_name, ctx.locals[slot]);
        }
        regs[in.dst] = Value::boolean(enabled_with_locals(site.action, ectx));
        break;
      }
    }
    ++pc;
  }
}

}  // namespace

void set_tree_eval_for_test(bool tree) {
  g_tree_eval.store(tree, std::memory_order_relaxed);
}

bool tree_eval_forced() { return g_tree_eval.load(std::memory_order_relaxed); }

namespace {

// Engine call sites build a fresh VmContext per run (successors,
// guards_enabled, hidden_successors are const and run concurrently), so
// a program that needs the register file would pay one allocation per
// call. This per-thread pool lends its arrays to such a context for the
// duration of one program: exec never re-enters run() on the same
// thread (Op::Enabled delegates to the tree-side search), so the lease
// is exclusive; the busy flag keeps a hypothetical future nested run()
// correct by falling back to the context's own arrays.
struct TlsScratch {
  std::vector<Value> regs;
  std::vector<Value> locals;
  bool busy = false;
};

TlsScratch& tls_scratch() {
  static thread_local TlsScratch s;
  return s;
}

// Swaps the pool's arrays into `ctx` when the context has never grown
// its own (the per-call case), and swaps them back — keeping the grown
// capacity — on destruction, including when an eval error unwinds.
class ScratchLease {
 public:
  explicit ScratchLease(VmContext& ctx) : ctx_(ctx) {
    TlsScratch& s = tls_scratch();
    if (!s.busy && ctx.regs.capacity() == 0 && ctx.locals.capacity() == 0) {
      s.busy = true;
      borrowed_ = true;
      ctx.regs.swap(s.regs);
      ctx.locals.swap(s.locals);
    }
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;
  ~ScratchLease() {
    if (borrowed_) {
      TlsScratch& s = tls_scratch();
      ctx_.regs.swap(s.regs);
      ctx_.locals.swap(s.locals);
      s.busy = false;
    }
  }

 private:
  VmContext& ctx_;
  bool borrowed_ = false;
};

// The general path: size the scratch arrays, dispatch, leave the result
// in register 0. Shared by run()/run_bool() below, under a ScratchLease
// held by the caller.
void exec_program(const Program& p, VmContext& ctx) {
  if (ctx.regs.size() < std::size_t{p.num_regs} + 1) {
    ctx.regs.resize(std::size_t{p.num_regs} + 1);
  }
  if (ctx.locals.size() < p.num_locals) ctx.locals.resize(p.num_locals);
  CountFlush tally;
  exec(p, ctx, 0, p.instrs.size(), tally.n);
}

}  // namespace

// Single-instruction programs — fused guard compares, residual conjuncts,
// UNCHANGED frames, and bare-variable right-hand sides — dominate the
// engine's evaluation mix, so both entry points execute them without
// touching the register file: no resize, no Value copies through regs,
// and (for run_bool) no Value materialized at all. The tally still counts
// the instruction even when it throws, matching the dispatch loop, which
// counts an instruction before executing it.

Value run(const Program& p, VmContext& ctx) {
  if (p.instrs.size() == 1) {
    const Instr& in = p.instrs[0];
    CountFlush tally;
    switch (in.op) {
      case Op::LoadVar:
        tally.n = 1;
        return var_read(ctx, in.a, in.flags & kPrimedA);
      case Op::LoadConst:
        tally.n = 1;
        return p.consts[in.imm];
      case Op::CmpVarVar:
        tally.n = 1;
        return Value::boolean(cmp_var_var(ctx, in));
      case Op::CmpVarConst:
        tally.n = 1;
        return Value::boolean(cmp_var_const(p, ctx, in));
      case Op::Unchanged:
        tally.n = 1;
        return Value::boolean(unchanged_all(p, ctx, in));
      case Op::LenVar:
        tally.n = 1;
        return Value::integer(static_cast<std::int64_t>(
            var_read(ctx, in.a, in.flags & kPrimedA).length()));
      default:
        break;  // fall through to the dispatch loop
    }
  }
  ScratchLease lease(ctx);
  exec_program(p, ctx);
  // Moving out is safe: programs write every register before reading it,
  // so the moved-from slot can't leak into the next run over this context.
  return std::move(ctx.regs[0]);
}

bool run_bool(const Program& p, VmContext& ctx) {
  if (p.instrs.size() == 1) {
    const Instr& in = p.instrs[0];
    CountFlush tally;
    switch (in.op) {
      case Op::LoadVar:
        tally.n = 1;
        return bool_of(var_read(ctx, in.a, in.flags & kPrimedA));
      case Op::LoadConst:
        tally.n = 1;
        return bool_of(p.consts[in.imm]);
      case Op::CmpVarVar:
        tally.n = 1;
        return cmp_var_var(ctx, in);
      case Op::CmpVarConst:
        tally.n = 1;
        return cmp_var_const(p, ctx, in);
      case Op::Unchanged:
        tally.n = 1;
        return unchanged_all(p, ctx, in);
      default:
        break;
    }
  }
  ScratchLease lease(ctx);
  exec_program(p, ctx);
  const Value& v = ctx.regs[0];
  if (!v.is_bool()) fail("expected a boolean, got " + v.to_string());
  return v.as_bool();
}

CompiledExpr::CompiledExpr(Expr e) : expr_(std::move(e)) {
  try {
    prog_ = compile(expr_);
    has_prog_ = true;
    OPENTLA_OBS_MEM_TALLY_ADD(mem_, program_bytes(prog_));
  } catch (const CompileLimit&) {
    has_prog_ = false;  // evaluate through the tree unconditionally
  }
}

Value CompiledExpr::eval(VmContext& ctx) const {
  if (has_prog_ && !tree_eval_forced()) return run(prog_, ctx);
  EvalContext ectx;
  ectx.vars = ctx.vars;
  ectx.current = ctx.current;
  ectx.next = ctx.next;
  return opentla::eval(expr_, ectx);
}

bool CompiledExpr::eval_bool(VmContext& ctx) const {
  if (has_prog_ && !tree_eval_forced()) return run_bool(prog_, ctx);
  EvalContext ectx;
  ectx.vars = ctx.vars;
  ectx.current = ctx.current;
  ectx.next = ctx.next;
  return opentla::eval_bool(expr_, ectx);
}

}  // namespace opentla::vm
