// opentla/vm/program.hpp
//
// Flat register-based bytecode for expression evaluation (ROADMAP item 1).
// A `Program` is the lowered form of one `Expr`: a flat instruction array
// over a register file, with interned-value immediates (the deduplicated
// constant pool), slot-indexed bound-variable access (no name lookups at
// eval time), and superinstructions for the fig-spec idioms — UNCHANGED
// frames, tuple compare, fused variable/constant comparisons, and bounded
// \E / \A loops that short-circuit exactly like the tree evaluator.
//
// The VM exists for speed only: `vm::run` on a compiled program and
// `eval` on the source tree must be observationally identical — same
// values, same verdicts, and the same `std::runtime_error` text on every
// failing input. The pinned left-to-right evaluation-order contract both
// evaluators follow is documented at the top of opentla/expr/eval.cpp;
// tests/test_differential.cpp's VM axis enforces it.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "opentla/expr/expr.hpp"
#include "opentla/state/var_table.hpp"
#include "opentla/value/domain.hpp"
#include "opentla/value/value.hpp"

namespace opentla::vm {

enum class Op : std::uint8_t {
  // --- Leaves ---
  LoadConst,     // r[dst] = consts[imm]
  LoadVar,       // r[dst] = current[a]; kPrimed flag reads next[a] instead
  LoadLocal,     // r[dst] = locals[a] (slot-indexed, bound by Exists/Forall)
  UnboundLocal,  // throw "eval: unbound local '<names[imm]>'" — a Local with
                 // no enclosing binder errors only if reached, like the tree
  NullExpr,      // throw "eval: null expression" — a null kid errors only
                 // if reached, like the tree
  // --- Control flow (targets are absolute instruction indices in imm) ---
  Jump,          // pc = imm
  JumpIfFalse,   // bool-check r[a]; if false, pc = imm
  JumpIfTrue,    // bool-check r[a]; if true, pc = imm
  // --- Boolean ---
  Not,           // r[dst] = !bool(r[a])
  TestBool,      // bool-check r[a]; r[dst] = r[a]
  Equiv,         // r[dst] = bool(r[a]) == bool(r[b]), a checked first
  // --- Comparison / arithmetic (a evaluated before b, like the tree) ---
  Eq,            // r[dst] = (r[a] == r[b]); kNegate gives /=
  Lt,            // r[dst] = int(r[a]) < int(r[b])
  Le, Gt, Ge,
  Add,           // r[dst] = r[a] + r[b], checked ("eval: integer overflow in +")
  Sub, Mul,
  Mod,           // TLC floored modulo; b <= 0 throws "eval: mod requires b > 0"
  Neg,           // r[dst] = -int(r[a]), checked
  // --- Conditional is compiled to jumps; no opcode ---
  // --- Tuples / sequences ---
  MakeTuple,     // r[dst] = << r[a], ..., r[a+b-1] >>
  Head, Tail, Len,
  Concat,        // r[dst] = r[a] \o r[b]
  Append,
  Index,         // r[dst] = r[a][int(r[b])], 1-based
  // --- Superinstructions ---
  // UNCHANGED <<v...>>: r[dst] = /\ next[v] = current[v] over varlists[imm].
  // Requires a next state (first primed read errors like the tree's).
  Unchanged,
  // Tuple compare without materializing tuples: both element lists are
  // already in registers r[a..a+imm) (lhs) and r[b..b+imm) (rhs);
  // r[dst] = pairwise equality. kNegate gives /=.
  TupleEq,
  // Fused comparisons — the residual-conjunct shapes (x' = e, d' < c')
  // that dominate pruned successor search. flags carry the comparison kind
  // (kCmpMask) plus kPrimedA/kPrimedB; `a` (and `b` for CmpVarVar) are
  // VarIds, CmpVarConst compares against consts[imm]. Order/type errors
  // are identical to LoadVar + LoadConst + compare.
  CmpVarVar,
  CmpVarConst,
  // Len(v) without copying the sequence into a register: r[dst] =
  // Len(current[a]) (kPrimedA reads next[a]). The tree walker pays a full
  // sequence copy here; error order (state-lookup, then kind check) is
  // identical to LoadVar + Len.
  LenVar,
  // State-lookup check with no copy and no register write: reads
  // current[a] (kPrimedA: next[a]) and discards it. Emitted before an
  // EqVarReg whose variable is the *left* operand, so the variable's
  // state-lookup error still fires before the right-hand side evaluates
  // — the tree's order.
  VarCheck,
  // r[dst] = (var a == r[b]), compared against the state's value in
  // place — the `x' = <rhs>` residual shape with a sequence-valued rhs
  // never copies the variable through a register. kNegate gives /=,
  // kPrimedA reads next[a]. Value equality never converts, so operand
  // order carries no error-order obligation beyond VarCheck above.
  EqVarReg,
  // --- Bounded quantifiers (structured: the body is the instruction range
  // (pc, pc + imm_lo], result lands in r[b]) ---
  // r[dst] = \E/\A locals[a] \in domains[imm_hi] : body. Short-circuits in
  // domain order exactly like the tree evaluator.
  Exists,
  Forall,
  // ENABLED A: delegates to the tree-side decomposition-driven search
  // (enabled_with_locals) with the compile-time scope rebuilt from local
  // slots — verdict-identical to the tree by construction.
  Enabled,       // r[dst] = ENABLED enabled_sites[imm].action
};

const char* to_string(Op op);

// Instr.flags bits.
inline constexpr std::uint8_t kCmpMask = 0x07;  // CmpKind for CmpVar*
inline constexpr std::uint8_t kPrimedA = 0x08;  // operand a reads next state
inline constexpr std::uint8_t kPrimedB = 0x10;  // operand b reads next state
inline constexpr std::uint8_t kNegate = 0x20;   // Eq/TupleEq: invert result
inline constexpr std::uint8_t kSwapped = 0x40;  // CmpVarConst: const is lhs

/// Comparison kind carried in the low flag bits of CmpVarVar/CmpVarConst.
enum class CmpKind : std::uint8_t { Eq = 0, Neq = 1, Lt = 2, Le = 3, Gt = 4, Ge = 5 };

/// One fixed-width instruction: op + flags + three register/id operands +
/// a 32-bit immediate (pool index, jump target, or packed pair).
struct Instr {
  Op op;
  std::uint8_t flags = 0;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t imm = 0;

  // Exists/Forall pack (body length, domain index) into imm.
  std::uint32_t imm_lo() const { return imm & 0xffff; }
  std::uint32_t imm_hi() const { return imm >> 16; }

  friend bool operator==(const Instr& x, const Instr& y) = default;
};

/// One ENABLED occurrence: the action subtree (evaluated by the tree-side
/// search) plus the bound-variable scope visible at that program point,
/// outermost first, as (name, local slot) pairs.
struct EnabledSite {
  Expr action;
  std::vector<std::pair<std::string, std::uint16_t>> scope;
};

/// A compiled expression. The result of executing `instrs` lands in
/// register 0. All pools are deduplicated where cheap (consts, names), so
/// compiling the same tree twice yields structurally identical programs —
/// tests/test_vm.cpp pins this (determinism) and the disassembly text.
struct Program {
  std::vector<Instr> instrs;
  std::vector<Value> consts;                // interned: one slot per distinct value
  std::vector<Domain> domains;              // quantifier domains
  std::vector<std::vector<VarId>> var_lists;  // Unchanged frames
  std::vector<std::string> names;           // UnboundLocal diagnostic names
  std::vector<EnabledSite> enabled_sites;
  std::uint16_t num_regs = 0;
  std::uint16_t num_locals = 0;
};

/// Approximate bytes retained by a program's pools — instruction array,
/// constant pool (deep), quantifier domains, UNCHANGED var lists, name
/// pool, and ENABLED sites. Feeds the vm_pools memory domain.
std::uint64_t program_bytes(const Program& p);

/// Stable, line-per-instruction rendering used by the golden tests:
/// "0003 CmpVarVar r2 <- v1' < v0" style. Registers print as rN, flexible
/// variables as vK (primed with '), locals as lS, pools by index.
std::string disassemble(const Program& p);

}  // namespace opentla::vm
