// queue_composition: the full Appendix A study. Builds the double-queue
// system of Figure 7 out of one queue specification by the paper's
// substitutions, proves CDQ => CQ^dbl with a refinement mapping (Section
// A.4), then discharges the Composition Theorem instance (4) of Section
// A.5 — and exhibits the counterexample that makes the unconditioned
// formula (3) invalid.

#include <iostream>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/check/refinement.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/double_queue.hpp"

using namespace opentla;

int main(int argc, char** argv) {
  const int capacity = argc > 1 ? std::atoi(argv[1]) : 1;
  const int values = argc > 2 ? std::atoi(argv[2]) : 2;
  std::cout << "Double queue study: N = " << capacity << ", values 0.." << values - 1
            << " (big queue capacity " << 2 * capacity + 1 << ")\n\n";

  DoubleQueueSystem sys = make_double_queue(capacity, values);
  std::cout << "Component specifications (by substitution from one queue):\n"
            << "  " << sys.qm1.to_string(sys.vars) << "\n\n"
            << "  " << sys.qm2.to_string(sys.vars) << "\n\n"
            << "Interleaving side condition:\n  G == Disjoint(<i.snd, o.ack>, "
               "<z.snd, i.ack>, <o.snd, z.ack>)\n\n";

  // --- Section A.4: CDQ => CQ^dbl by refinement mapping ---
  CanonicalSpec cdq = make_cdq(sys);
  StateGraph low = build_composite_graph(
      sys.vars,
      {{cdq.unhidden(), true}, {make_pin(sys.vars, {sys.q}, "PinQ"), false}},
      /*free_tuples=*/{}, /*pinned=*/{sys.q});
  RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
  RefinementResult refinement = check_refinement(low, cdq.fairness, sys.dbl.complete, mapping);
  std::cout << "CDQ => CQ^dbl (refinement mapping q |-> q2 \\o buffer(z) \\o q1):\n"
            << "  " << (refinement.holds ? "PROVED" : "FAILED") << "  (" << refinement.states
            << " states, " << refinement.edges << " edges)\n\n";

  // --- Section A.5: the Composition Theorem instance (4) ---
  CompositionOptions opts;
  opts.goal_witness = {{"q", sys.qbar}};
  std::cout << "Composition Theorem, formula (4):\n";
  ProofReport proof = verify_composition(sys.vars, sys.components(), sys.goal(), opts);
  std::cout << proof.to_string() << "\n";

  // --- The unconditioned formula (3) is invalid ---
  std::cout << "Without G — formula (3):\n";
  ProofReport no_g = verify_composition(
      sys.vars, {{sys.qe1, sys.qm1}, {sys.qe2, sys.qm2}}, sys.goal(), opts);
  std::cout << no_g.to_string() << "\n";

  const bool ok = refinement.holds && proof.all_discharged() && !no_g.all_discharged();
  std::cout << (ok ? "All Appendix-A claims reproduced.\n" : "MISMATCH with the paper!\n");
  return ok ? 0 : 1;
}
