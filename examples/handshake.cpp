// handshake: the two-phase handshake protocol of Figure 2, explored
// explicitly. Reproduces the paper's state table for a sample value
// sequence, then model-checks the protocol's invariants and liveness on
// the complete single-queue system (Figures 5-6).

#include <iomanip>
#include <iostream>

#include "opentla/check/invariant.hpp"
#include "opentla/check/liveness.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/queue/queue_spec.hpp"

using namespace opentla;

int main() {
  // --- Figure 2: the protocol trace for sending 37, 4, 19 ---
  VarTable cvars;
  Channel ch = declare_channel(cvars, "c", range_domain(0, 99));
  std::vector<State> trace;
  trace.push_back(ActionSuccessors::states_satisfying(cvars, channel_init(ch), {ch.val})[0]);
  const std::vector<std::int64_t> payload = {37, 4, 19};
  for (std::int64_t v : payload) {
    ActionSuccessors send(cvars, send_action(ex::integer(v), ch));
    trace.push_back(send.successors(trace.back()).at(0));
    ActionSuccessors ack(cvars, ack_action(ch));
    if (v != payload.back()) trace.push_back(ack.successors(trace.back()).at(0));
  }
  std::cout << "Figure 2: the two-phase handshake protocol for a channel c\n\n  ";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::cout << std::setw(7)
              << (i == 0 ? "init" : (i % 2 == 1 ? "sent" : "acked"));
  }
  std::cout << "\n";
  for (const auto& [label, var] : {std::pair{"c.ack:", ch.ack},
                                   std::pair{"c.sig:", ch.sig},
                                   std::pair{"c.val:", ch.val}}) {
    std::cout << label;
    for (const State& s : trace) std::cout << std::setw(7) << s[var].as_int();
    std::cout << "\n";
  }

  // --- Figures 5-6: the complete queue system ---
  std::cout << "\nComplete queue system CQ (N = 3, values 0..2):\n";
  QueueSystem sys = make_queue_system(/*capacity=*/3, /*num_values=*/3);
  StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
  std::cout << "  reachable states: " << g.num_states() << ", edges: " << g.num_edges()
            << "\n";

  InvariantResult bound =
      check_invariant(g, ex::le(ex::len(ex::var(sys.q)), ex::integer(sys.capacity)));
  std::cout << "  invariant |q| <= N: " << (bound.holds ? "holds" : "VIOLATED") << "\n";

  FairnessCompiler compiler(g);
  FairCycleQuery q;
  compiler.add_constraints(sys.specs.complete.fairness, q);
  q.filter.node_ok = [&](StateId s) {
    return g.state(s)[sys.in.sig].as_int() != g.state(s)[sys.in.ack].as_int() &&
           static_cast<int>(g.state(s)[sys.q].length()) < sys.capacity;
  };
  const bool stall = find_fair_cycle(g, q).has_value();
  std::cout << "  liveness (pending input with space is eventually accepted): "
            << (stall ? "VIOLATED" : "holds") << "\n";

  // A sample behavior: the shortest path that fills the buffer.
  std::vector<StateId> path = g.shortest_path_to([&](StateId s) {
    return static_cast<int>(g.state(s)[sys.q].length()) == sys.capacity;
  });
  std::cout << "\nShortest run filling the buffer (" << path.size() << " states):\n";
  for (StateId s : path) std::cout << "  " << g.state(s).to_string(sys.vars) << "\n";

  return (bound.holds && !stall) ? 0 : 1;
}
