// arbiter: an assumption/guarantee study beyond the paper's queue — two
// peer processes maintaining mutual exclusion over a shared resource.
//
// Process j's guarantee M_j: "I enter the critical section only when my
// peer is out, and I pin my peer's flag during my own steps" (the
// interleaving component style of Section 2.2: N implies e' = e). Its
// assumption is exactly the peer's guarantee — a circular A/G pair like
// Section 1's, but with a liveness goal on top: the composed system keeps
// making progress (someone enters or leaves infinitely often) thanks to
// each process's weak fairness.
//
// The Composition Theorem discharges:
//   (M2 +> M1) /\ (M1 +> M2)  =>  TRUE +> (Mutex /\ WF(change))

#include <iostream>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/compose/compose.hpp"

using namespace opentla;

namespace {

CanonicalSpec process(VarId mine, VarId peer, std::string name) {
  CanonicalSpec s;
  s.name = std::move(name);
  s.init = ex::eq(ex::var(mine), ex::integer(0));
  Expr enter = ex::land({ex::eq(ex::var(peer), ex::integer(0)),
                         ex::eq(ex::primed_var(mine), ex::integer(1)),
                         ex::unchanged({peer})});
  Expr leave = ex::land(ex::eq(ex::primed_var(mine), ex::integer(0)),
                        ex::unchanged({peer}));
  s.next = ex::lor(enter, leave);
  s.sub = {mine};
  Fairness wf;
  wf.kind = Fairness::Kind::Weak;
  wf.sub = {mine};
  wf.action = s.next;
  wf.label = "WF(" + s.name + ")";
  s.fairness.push_back(std::move(wf));
  return s;
}

}  // namespace

int main() {
  VarTable vars;
  const VarId c1 = vars.declare("c1", range_domain(0, 1));
  const VarId c2 = vars.declare("c2", range_domain(0, 1));

  CanonicalSpec p1 = process(c1, c2, "P1");
  CanonicalSpec p2 = process(c2, c1, "P2");

  // The goal guarantee: mutual exclusion plus global progress.
  CanonicalSpec mutex;
  mutex.name = "MutexLive";
  mutex.init = ex::lnot(ex::land(ex::eq(ex::var(c1), ex::integer(1)),
                                 ex::eq(ex::var(c2), ex::integer(1))));
  mutex.next = ex::lnot(ex::land(ex::eq(ex::primed_var(c1), ex::integer(1)),
                                 ex::eq(ex::primed_var(c2), ex::integer(1))));
  mutex.sub = {c1, c2};
  Fairness progress;
  progress.kind = Fairness::Kind::Weak;
  progress.sub = {c1, c2};
  progress.action = mutex.next;
  progress.label = "WF(change)";
  mutex.fairness.push_back(std::move(progress));

  std::cout << "Peer-to-peer mutual exclusion, assumption/guarantee style:\n"
            << "  " << p1.to_string(vars) << "\n"
            << "  " << p2.to_string(vars) << "\n"
            << "  goal: " << mutex.to_string(vars) << "\n\n";

  // Each process assumes exactly its peer's guarantee (safety part).
  std::vector<AGSpec> components = {{p2.safety_part(), p1}, {p1.safety_part(), p2}};
  AGSpec goal = property_as_ag(mutex, /*mover=*/false);

  CompositionOptions opts;
  ProofReport report = verify_composition(vars, components, goal, opts);
  std::cout << report.to_string() << "\n";

  // Cross-check on the closed system: explore P1 /\ P2 and verify the
  // invariant and the absence of deadlock directly.
  StateGraph g = build_composite_graph(vars, {{p1, true}, {p2, true}});
  InvariantResult inv = check_invariant(
      g, ex::lnot(ex::land(ex::eq(ex::var(c1), ex::integer(1)),
                           ex::eq(ex::var(c2), ex::integer(1)))));
  std::cout << "closed system: " << g.num_states() << " states, mutual exclusion "
            << (inv.holds ? "holds" : "VIOLATED") << "\n";

  return report.all_discharged() && inv.holds ? 0 : 1;
}
