// alternating_bit: the alternating-bit protocol over lossy wires — a case
// study beyond the paper showing the machinery at work on a classic
// protocol: despite a wire that may drop any message, the sender/receiver
// pair implements a reliable 2-place queue between handshake interfaces,
// PROVIDED reception is strongly fair (weak fairness provably does not
// survive loss — the counterexample is printed).

#include <iostream>

#include "opentla/abp/abp.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/check/refinement.hpp"
#include "opentla/compose/compose.hpp"

using namespace opentla;

int main() {
  AbpSystem sys = make_abp_system(/*num_values=*/2);
  StateGraph g = build_composite_graph(
      sys.vars, {{sys.system, true}, {make_pin(sys.vars, {sys.q}, "PinQ"), false}},
      /*free_tuples=*/{}, /*pinned=*/{sys.q});
  std::cout << "Alternating-bit protocol over lossy wires\n"
            << "  reachable: " << g.num_states() << " states, " << g.num_edges()
            << " edges\n\n";

  InvariantResult tags = check_invariant(
      g, ex::implies(ex::land(ex::eq(ex::var(sys.d_full), ex::boolean(true)),
                              ex::eq(ex::var(sys.d_bit), ex::var(sys.s_bit))),
                     ex::eq(ex::var(sys.d_val), ex::head(ex::var(sys.s_buf)))));
  std::cout << "tag discipline invariant: " << (tags.holds ? "holds" : "VIOLATED") << "\n";

  RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
  RefinementResult full = check_refinement(g, sys.system.fairness, sys.queue.queue, mapping);
  std::cout << "refines 2-place queue (safety + WF(QM)):  "
            << (full.holds ? "PROVED" : "FAILED") << "\n";

  CanonicalSpec weak = sys.system_with_weak_fairness_only();
  RefinementResult wf_only = check_refinement(g, weak.fairness, sys.queue.queue, mapping);
  std::cout << "same, with SF weakened to WF:             "
            << (wf_only.holds ? "unexpectedly proved?!" : "FAILS (as it must)") << "\n";
  if (!wf_only.holds) {
    std::cout << "\nthe loss-beats-weak-fairness lasso (" << wf_only.failed_part << "):\n";
    std::cout << "prefix:\n" << format_trace(sys.vars, wf_only.counterexample_prefix);
    std::cout << "cycle (repeats forever):\n"
              << format_trace(sys.vars, wf_only.counterexample_cycle);
  }
  return (tags.holds && full.holds && !wf_only.holds) ? 0 : 1;
}
