// chain: the Composition Theorem at n = 4 — three handshake queues in
// series (plus the interleaving condition G) implement a (3N+2)-element
// queue. Demonstrates the n-ary use of the theorem and the opt-in
// interleaving optimization (candidate moves restricted to each
// component's own outputs, sound because G is among the conjuncts).

#include <chrono>
#include <iostream>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/queue/double_queue.hpp"

using namespace opentla;

int main(int argc, char** argv) {
  const int capacity = argc > 1 ? std::atoi(argv[1]) : 1;
  TripleQueueSystem sys = make_triple_queue(capacity, 2);
  std::cout << "Three queues in series: i -> z1 -> z2 -> o, N = " << capacity
            << " each, big queue capacity " << 3 * capacity + 2 << "\n\n";

  CompositionOptions opts;
  opts.goal_witness = {{"q", sys.qbar}};
  opts.env_outputs = {sys.i.sig, sys.i.val, sys.o.ack};
  opts.component_outputs = {{},  // G3 (constraint only)
                            {sys.z1.sig, sys.z1.val, sys.i.ack},
                            {sys.z2.sig, sys.z2.val, sys.z1.ack},
                            {sys.o.sig, sys.o.val, sys.z2.ack}};

  const auto t0 = std::chrono::steady_clock::now();
  ProofReport report = verify_composition(sys.vars, sys.components(), sys.goal(), opts);
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << report.to_string();
  std::cout << "\nwall time: "
            << std::chrono::duration<double, std::milli>(t1 - t0).count() << " ms\n";
  return report.all_discharged() ? 0 : 1;
}
