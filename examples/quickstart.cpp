// quickstart: the Section 1 circular examples in ~80 lines of API.
//
// Two components, c and d. Each guarantees "my wire is always 0" assuming
// the other's wire is always 0 — a circular assumption/guarantee pair. The
// paper's +> operator makes the circle sound for safety properties; this
// program (1) states the two A/G specs, (2) checks the composition claim
// semantically by brute force, and (3) proves it with the Composition
// Theorem. It then repeats the exercise with the liveness guarantees
// "eventually 1", which the method must — and does — reject.

#include <iostream>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/semantics/enumerate.hpp"

using namespace opentla;

namespace {

CanonicalSpec always_zero(VarId v, std::string name) {
  CanonicalSpec s;
  s.name = std::move(name);
  s.init = ex::eq(ex::var(v), ex::integer(0));
  s.next = ex::bottom();  // [][FALSE]_v: v never changes
  s.sub = {v};
  return s;
}

CanonicalSpec eventually_one(VarId v, std::string name) {
  CanonicalSpec s;
  s.name = std::move(name);
  s.init = ex::top();
  s.next = ex::land(ex::eq(ex::var(v), ex::integer(0)),
                    ex::eq(ex::primed_var(v), ex::integer(1)));
  s.sub = {v};
  Fairness wf;
  wf.kind = Fairness::Kind::Weak;
  wf.sub = {v};
  wf.action = s.next;
  wf.label = "WF(" + s.name + ")";
  s.fairness.push_back(std::move(wf));
  return s;
}

}  // namespace

int main() {
  VarTable vars;
  const VarId c = vars.declare("c", range_domain(0, 1));
  const VarId d = vars.declare("d", range_domain(0, 1));

  std::cout << "== Safety: M_c = \"c always 0\", M_d = \"d always 0\" ==\n\n";
  CanonicalSpec mc = always_zero(c, "Mc");
  CanonicalSpec md = always_zero(d, "Md");

  // (1) The claim, as a formula: (Md +> Mc) /\ (Mc +> Md) => Mc /\ Md.
  Formula claim = tf::implies(tf::land(tf::while_plus(md, mc), tf::while_plus(mc, md)),
                              tf::land(tf::spec(mc), tf::spec(md)));
  BoundedValidity semantic = check_validity_bounded(vars, claim, 3);
  std::cout << "brute-force check over " << semantic.behaviors_checked
            << " lasso behaviors: " << (semantic.valid ? "VALID" : "INVALID") << "\n\n";

  // (2) The same claim via the Composition Theorem.
  std::vector<AGSpec> components = {{md, mc}, {mc, md}};
  AGSpec goal = property_as_ag(conjunction_as_spec({mc, md}, "McAndMd"));
  ProofReport report = verify_composition(vars, components, goal);
  std::cout << report.to_string() << "\n";

  std::cout << "== Liveness: M_c = \"eventually c = 1\" (and symmetrically) ==\n\n";
  CanonicalSpec mc1 = eventually_one(c, "Mc1");
  CanonicalSpec md1 = eventually_one(d, "Md1");
  Formula live_claim =
      tf::implies(tf::land(tf::while_plus(md1, mc1), tf::while_plus(mc1, md1)),
                  tf::land(tf::spec(mc1), tf::spec(md1)));
  BoundedValidity live = check_validity_bounded(vars, live_claim, 2);
  std::cout << "brute-force check: " << (live.valid ? "VALID" : "INVALID") << "\n";
  if (live.violation) {
    std::cout << "counterexample (the do-nothing composition):\n"
              << live.violation->to_string(vars);
  }
  ProofReport rejected =
      verify_composition(vars, {{md1, mc1}, {mc1, md1}},
                         property_as_ag(conjunction_as_spec({mc1, md1}, "Both")));
  std::cout << "\nComposition Theorem verdict:\n" << rejected.to_string();
  return report.all_discharged() && !live.valid && !rejected.all_discharged() ? 0 : 1;
}
