// module_check: the textual front-end. Parses a mini-TLA module (from a
// file given on the command line, or a built-in demo), builds its
// canonical specification, explores it, and checks an invariant plus
// machine closure — the workflow a user starts with before moving to the
// assumption/guarantee API.

#include <fstream>
#include <iostream>
#include <sstream>

#include "opentla/check/invariant.hpp"
#include "opentla/check/machine_closure.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/parser/parser.hpp"

using namespace opentla;

namespace {

constexpr const char* kDemoModule = R"(
MODULE BoundedCounter
\* A counter that a producer increments and a consumer resets, with a
\* hidden "credit" the producer consumes.
VARIABLE x \in 0..4
HIDDEN credit \in 0..4

DEFINE CanBump == x < 4 /\ credit > 0

INIT x = 0 /\ credit = 4
ACTION Bump == CanBump /\ x' = x + 1 /\ credit' = credit - 1
ACTION Reset == x = 4 /\ x' = 0 /\ credit' = 4
NEXT Bump \/ Reset
SUBSCRIPT <<x>>
FAIRNESS WF Bump \/ Reset
)";

constexpr const char* kDemoInvariant = "x <= 4 /\\ (x = 4 => ~ENABLED(Bump))";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemoModule;
  std::string invariant_src = kDemoInvariant;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
    invariant_src = argc > 2 ? argv[2] : "TRUE";
  }

  ParsedModule mod = parse_module(source);
  std::cout << "module " << mod.name << ": " << mod.vars->size() << " variables, "
            << mod.definitions.size() << " definitions\n";
  std::cout << "spec: " << mod.spec.to_string(*mod.vars) << "\n\n";

  MachineClosureResult mc = check_prop1_syntactic(mod.spec);
  std::cout << "machine closure (Proposition 1): " << (mc ? "yes" : "NO") << " — "
            << mc.detail << "\n";

  StateGraph g = build_composite_graph(*mod.vars, {{mod.spec.unhidden(), true}});
  std::cout << "reachable: " << g.num_states() << " states, " << g.num_edges()
            << " edges\n";

  Expr invariant = parse_expression(invariant_src, *mod.vars, &mod.definitions);
  InvariantResult r = check_invariant(g, invariant);
  std::cout << "invariant " << invariant_src << ": " << (r.holds ? "holds" : "VIOLATED")
            << "\n";
  if (!r.holds) std::cout << format_trace(*mod.vars, r.counterexample);
  return r.holds ? 0 : 1;
}
