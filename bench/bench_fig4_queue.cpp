// FIG3/FIG4 — Figures 3-4: the queue process.
//
// Artifact: the queue component's reachable state space and transition
// counts as capacity N and the value domain grow — the explicit footprint
// of the process of Figure 4 composed with its environment.
//
// Benchmarks: graph construction (successor-generation throughput) over
// the same sweep.

#include <iomanip>

#include "bench_common.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/queue/queue_spec.hpp"

using namespace opentla;

namespace {

StateGraph explore(const QueueSystem& sys) {
  return build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
}

void artifact() {
  std::cout << "=== FIG4: queue process state space (queue + environment) ===\n";
  std::cout << std::setw(4) << "N" << std::setw(8) << "values" << std::setw(10) << "states"
            << std::setw(10) << "edges" << std::setw(14) << "q-domain\n";
  for (int n : {1, 2, 3, 4}) {
    for (int v : {2, 3}) {
      QueueSystem sys = make_queue_system(n, v);
      StateGraph g = explore(sys);
      std::cout << std::setw(4) << n << std::setw(8) << v << std::setw(10) << g.num_states()
                << std::setw(10) << g.num_edges() << std::setw(13)
                << sys.vars.domain(sys.q).size() << "\n";
    }
  }
  std::cout << "\n";
}

void BM_QueueGraph(benchmark::State& state) {
  QueueSystem sys = make_queue_system(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
  std::size_t states = 0, edges = 0;
  for (auto _ : state) {
    StateGraph g = explore(sys);
    states = g.num_states();
    edges = g.num_edges();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["edges/s"] = benchmark::Counter(static_cast<double>(edges),
                                                 benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_QueueGraph)
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({3, 3})
    ->Unit(benchmark::kMillisecond);

void BM_EnqDeqSuccessors(benchmark::State& state) {
  QueueSystem sys = make_queue_system(3, 3);
  ActionSuccessors gen(sys.vars, sys.specs.qm);
  const State s =
      ActionSuccessors::states_satisfying(sys.vars, sys.specs.complete.init, {sys.in.val, sys.out.val})[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.successors(s).size());
  }
}
BENCHMARK(BM_EnqDeqSuccessors);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
