// EXT-LEADSTO — extension study: the P ~> Q checker on two classics.
//
// Artifact: Peterson's algorithm (from specs/peterson.tla semantics,
// rebuilt here in C++) — mutual exclusion plus starvation freedom under
// plain weak fairness of each process; and the queue's acceptance
// liveness as a leads-to property.
//
// Benchmarks: leads-to over graph size (queue capacity sweep) and the
// Peterson check.

#include "bench_common.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/check/liveness.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/queue_spec.hpp"

using namespace opentla;

namespace {

struct Peterson {
  VarTable vars;
  VarId pc1, pc2, flag1, flag2, turn;
  CanonicalSpec spec;
  Expr proc1, proc2;
};

Peterson make_peterson() {
  Peterson p;
  p.pc1 = p.vars.declare("pc1", range_domain(0, 3));
  p.pc2 = p.vars.declare("pc2", range_domain(0, 3));
  p.flag1 = p.vars.declare("flag1", bool_domain());
  p.flag2 = p.vars.declare("flag2", bool_domain());
  p.turn = p.vars.declare("turn", range_domain(1, 2));

  auto process = [&](VarId pc, VarId my_flag, VarId other_flag, std::int64_t my_turn,
                     std::int64_t other_turn) {
    const std::vector<VarId> all = {p.pc1, p.pc2, p.flag1, p.flag2, p.turn};
    auto pin_rest = [&](std::vector<VarId> changed) {
      std::vector<VarId> rest;
      for (VarId v : all) {
        if (std::find(changed.begin(), changed.end(), v) == changed.end()) {
          rest.push_back(v);
        }
      }
      return ex::unchanged(rest);
    };
    Expr request = ex::land({ex::eq(ex::var(pc), ex::integer(0)),
                             ex::eq(ex::primed_var(pc), ex::integer(1)),
                             ex::eq(ex::primed_var(my_flag), ex::boolean(true)),
                             pin_rest({pc, my_flag})});
    Expr yield = ex::land({ex::eq(ex::var(pc), ex::integer(1)),
                           ex::eq(ex::primed_var(pc), ex::integer(2)),
                           ex::eq(ex::primed_var(p.turn), ex::integer(other_turn)),
                           pin_rest({pc, p.turn})});
    Expr enter = ex::land({ex::eq(ex::var(pc), ex::integer(2)),
                           ex::lor(ex::eq(ex::var(other_flag), ex::boolean(false)),
                                   ex::eq(ex::var(p.turn), ex::integer(my_turn))),
                           ex::eq(ex::primed_var(pc), ex::integer(3)),
                           pin_rest({pc})});
    Expr exit = ex::land({ex::eq(ex::var(pc), ex::integer(3)),
                          ex::eq(ex::primed_var(pc), ex::integer(0)),
                          ex::eq(ex::primed_var(my_flag), ex::boolean(false)),
                          pin_rest({pc, my_flag})});
    return ex::lor({request, yield, enter, exit});
  };
  p.proc1 = process(p.pc1, p.flag1, p.flag2, 1, 2);
  p.proc2 = process(p.pc2, p.flag2, p.flag1, 2, 1);

  p.spec.name = "Peterson";
  p.spec.init = ex::land({ex::eq(ex::var(p.pc1), ex::integer(0)),
                          ex::eq(ex::var(p.pc2), ex::integer(0)),
                          ex::eq(ex::var(p.flag1), ex::boolean(false)),
                          ex::eq(ex::var(p.flag2), ex::boolean(false)),
                          ex::eq(ex::var(p.turn), ex::integer(1))});
  p.spec.next = ex::lor(p.proc1, p.proc2);
  p.spec.sub = p.vars.all_vars();
  for (const auto& [action, label] :
       {std::pair{p.proc1, "WF(Proc1)"}, std::pair{p.proc2, "WF(Proc2)"}}) {
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = p.spec.sub;
    wf.action = action;
    wf.label = label;
    p.spec.fairness.push_back(std::move(wf));
  }
  return p;
}

void artifact() {
  std::cout << "=== EXT-LEADSTO: P ~> Q on Peterson and the queue ===\n";
  Peterson p = make_peterson();
  StateGraph g = build_composite_graph(p.vars, {{p.spec, true}});
  InvariantResult mutex = check_invariant(
      g, ex::lnot(ex::land(ex::eq(ex::var(p.pc1), ex::integer(3)),
                           ex::eq(ex::var(p.pc2), ex::integer(3)))));
  LeadsToResult starvation1 = check_leads_to(
      g, p.spec.fairness, ex::eq(ex::var(p.pc1), ex::integer(1)),
      ex::eq(ex::var(p.pc1), ex::integer(3)));
  LeadsToResult no_fair = check_leads_to(
      g, {}, ex::eq(ex::var(p.pc1), ex::integer(1)), ex::eq(ex::var(p.pc1), ex::integer(3)));
  std::cout << "Peterson (" << g.num_states() << " states): mutual exclusion "
            << (mutex.holds ? "holds" : "VIOLATED") << "; requesting ~> critical "
            << (starvation1.holds ? "holds under WF" : "VIOLATED") << "; without fairness "
            << (no_fair.holds ? "holds?!" : "fails (as expected)") << "\n";

  QueueSystem q = make_queue_system(2, 2);
  StateGraph qg = build_composite_graph(q.vars, {{q.specs.complete.unhidden(), true}});
  LeadsToResult accept = check_leads_to(
      qg, q.specs.complete.fairness,
      ex::land(ex::neq(ex::var(q.in.sig), ex::var(q.in.ack)),
               ex::lt(ex::len(ex::var(q.q)), ex::integer(q.capacity))),
      ex::eq(ex::var(q.in.sig), ex::var(q.in.ack)));
  std::cout << "Queue (" << qg.num_states() << " states): pending-with-space ~> accepted "
            << (accept.holds ? "holds" : "VIOLATED") << "\n\n";
}

void BM_PetersonLeadsTo(benchmark::State& state) {
  Peterson p = make_peterson();
  StateGraph g = build_composite_graph(p.vars, {{p.spec, true}});
  for (auto _ : state) {
    LeadsToResult r = check_leads_to(g, p.spec.fairness,
                                     ex::eq(ex::var(p.pc1), ex::integer(1)),
                                     ex::eq(ex::var(p.pc1), ex::integer(3)));
    benchmark::DoNotOptimize(r.holds);
  }
}
BENCHMARK(BM_PetersonLeadsTo)->Unit(benchmark::kMicrosecond);

void BM_QueueLeadsTo(benchmark::State& state) {
  QueueSystem q = make_queue_system(static_cast<int>(state.range(0)), 2);
  StateGraph g = build_composite_graph(q.vars, {{q.specs.complete.unhidden(), true}});
  Expr from = ex::land(ex::neq(ex::var(q.in.sig), ex::var(q.in.ack)),
                       ex::lt(ex::len(ex::var(q.q)), ex::integer(q.capacity)));
  Expr to = ex::eq(ex::var(q.in.sig), ex::var(q.in.ack));
  for (auto _ : state) {
    LeadsToResult r = check_leads_to(g, q.specs.complete.fairness, from, to);
    benchmark::DoNotOptimize(r.holds);
  }
  state.counters["states"] = static_cast<double>(g.num_states());
}
BENCHMARK(BM_QueueLeadsTo)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
