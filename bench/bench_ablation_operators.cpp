// OP-ABL — Sections 3-4: the three candidate assumption/guarantee forms.
//
// Artifact: a comparison of E => M (implication), E -> M (as-long-as), and
// E +> M (while-plus) on the circular safety example, plus the Section 4.2
// identity (E +> M) = (E -> M) /\ (E _|_ M) verified by exhaustive lasso
// enumeration. This is why the paper picks +>: it is the weakest of the
// three that still composes.
//
// Benchmarks: oracle evaluation cost per operator, and identity-sweep cost.

#include "bench_common.hpp"
#include "opentla/semantics/enumerate.hpp"
#include "opentla/semantics/oracle.hpp"

using namespace opentla;

namespace {

struct TwoWires {
  VarTable vars;
  VarId x, y;
  CanonicalSpec ex_, my_;  // E watches x, M watches y

  TwoWires() {
    x = vars.declare("x", range_domain(0, 1));
    y = vars.declare("y", range_domain(0, 1));
    ex_.name = "Ex";
    ex_.init = ex::eq(ex::var(x), ex::integer(0));
    ex_.next = ex::bottom();
    ex_.sub = {x};
    my_.name = "My";
    my_.init = ex::eq(ex::var(y), ex::integer(0));
    my_.next = ex::bottom();
    my_.sub = {y};
  }
};

void artifact() {
  std::cout << "=== OP-ABL: E => M  vs  E -> M  vs  E +> M (Sections 3-4) ===\n";
  TwoWires w;
  Oracle oracle(w.vars);

  // The circular composition claim under each operator.
  auto circular = [&](auto combine) {
    return tf::implies(tf::land(combine(w.my_, w.ex_), combine(w.ex_, w.my_)),
                       tf::land(tf::spec(w.ex_), tf::spec(w.my_)));
  };
  struct Row {
    const char* name;
    Formula claim;
  };
  std::vector<Row> rows = {
      {"E => M ", circular([](const CanonicalSpec& e, const CanonicalSpec& m) {
         return tf::implies(tf::spec(e), tf::spec(m));
       })},
      {"E -> M ", circular([](const CanonicalSpec& e, const CanonicalSpec& m) {
         return tf::arrow_while(e, m);
       })},
      {"E +> M ", circular([](const CanonicalSpec& e, const CanonicalSpec& m) {
         return tf::while_plus(e, m);
       })},
  };
  std::cout << "circular composition  (E_a # M_b watch different wires):\n";
  for (const Row& row : rows) {
    BoundedValidity r = check_validity_bounded(w.vars, row.claim, 3);
    std::cout << "  " << row.name << ": " << (r.valid ? "composes (VALID)" : "does NOT compose")
              << "\n";
  }

  // Section 4.2: (E +> M) = (E -> M) /\ (E _|_ M).
  Formula lhs = tf::while_plus(w.ex_, w.my_);
  Formula rhs = tf::land(tf::arrow_while(w.ex_, w.my_), tf::orthogonal(w.ex_, w.my_));
  std::size_t checked = 0, agree = 0;
  for (std::size_t len = 1; len <= 3; ++len) {
    for_each_lasso(w.vars, len, [&](const LassoBehavior& b) {
      ++checked;
      if (oracle.evaluate(lhs, b) == oracle.evaluate(rhs, b)) ++agree;
      return false;
    });
  }
  std::cout << "identity (E +> M) = (E -> M) /\\ (E _|_ M): " << agree << "/" << checked
            << " lassos agree" << (agree == checked ? "  [HOLDS]" : "  [BROKEN]") << "\n";

  // Same-implementations claim (Section 3): every behavior of a process
  // that satisfies E +> M also satisfies E => M and E -> M (the converse
  // fails, which is exactly the extra freedom the paper discusses).
  std::size_t wp_true = 0, wp_implies_rest = 0;
  for (std::size_t len = 1; len <= 3; ++len) {
    for_each_lasso(w.vars, len, [&](const LassoBehavior& b) {
      if (!oracle.evaluate(lhs, b)) return false;
      ++wp_true;
      if (oracle.evaluate(tf::arrow_while(w.ex_, w.my_), b) &&
          oracle.evaluate(tf::implies(tf::spec(w.ex_), tf::spec(w.my_)), b)) {
        ++wp_implies_rest;
      }
      return false;
    });
  }
  std::cout << "E +> M strongest: implies the other two on " << wp_implies_rest << "/"
            << wp_true << " satisfying lassos\n\n";
}

void BM_OracleOperator(benchmark::State& state) {
  TwoWires w;
  Oracle oracle(w.vars);
  Formula f;
  switch (state.range(0)) {
    case 0:
      f = tf::implies(tf::spec(w.ex_), tf::spec(w.my_));
      break;
    case 1:
      f = tf::arrow_while(w.ex_, w.my_);
      break;
    default:
      f = tf::while_plus(w.ex_, w.my_);
      break;
  }
  std::mt19937 rng(11);
  std::vector<LassoBehavior> lassos;
  for (int i = 0; i < 64; ++i) lassos.push_back(random_lasso(w.vars, 6, rng));
  for (auto _ : state) {
    for (const LassoBehavior& b : lassos) {
      benchmark::DoNotOptimize(oracle.evaluate(f, b));
    }
  }
  state.SetLabel(state.range(0) == 0 ? "implies" : state.range(0) == 1 ? "arrow" : "while-plus");
}
BENCHMARK(BM_OracleOperator)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_IdentitySweep(benchmark::State& state) {
  TwoWires w;
  Oracle oracle(w.vars);
  Formula lhs = tf::while_plus(w.ex_, w.my_);
  Formula rhs = tf::land(tf::arrow_while(w.ex_, w.my_), tf::orthogonal(w.ex_, w.my_));
  for (auto _ : state) {
    bool all = true;
    for_each_lasso(w.vars, static_cast<std::size_t>(state.range(0)),
                   [&](const LassoBehavior& b) {
                     all = all && (oracle.evaluate(lhs, b) == oracle.evaluate(rhs, b));
                     return false;
                   });
    benchmark::DoNotOptimize(all);
  }
}
BENCHMARK(BM_IdentitySweep)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
