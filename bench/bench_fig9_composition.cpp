// FIG9 — Figure 9: the mechanical proof of formula (4),
//
//   G /\ (QE^1 +> QM^1) /\ (QE^2 +> QM^2)  =>  (QE^dbl +> QM^dbl),
//
// with the per-hypothesis breakdown the paper sketches, plus the refutation
// of the unconditioned formula (3).
//
// Benchmarks: each hypothesis class in isolation (product inclusion for H1,
// the freeze product for H2a, complete-system refinement for H2b) and the
// full proof, over N.

#include "bench_common.hpp"
#include "opentla/ag/composition_theorem.hpp"
#include "opentla/obs/flight_recorder.hpp"
#include "opentla/queue/double_queue.hpp"

using namespace opentla;

namespace {

CompositionOptions options(const DoubleQueueSystem& sys) {
  CompositionOptions opts;
  opts.goal_witness = {{"q", sys.qbar}};
  return opts;
}

void artifact() {
  std::cout << "=== FIG9: the Composition Theorem proof of formula (4) ===\n\n";
  DoubleQueueSystem sys = make_double_queue(1, 2);
  ProofReport proof = verify_composition(sys.vars, sys.components(), sys.goal(), options(sys));
  std::cout << proof.to_string();
  std::cout << "\ntotal: " << proof.total_millis() << " ms\n\n";

  std::cout << "--- formula (3): the same implication without G ---\n";
  ProofReport no_g = verify_composition(
      sys.vars, {{sys.qe1, sys.qm1}, {sys.qe2, sys.qm2}}, sys.goal(), options(sys));
  for (const Obligation& ob : no_g.obligations) {
    if (!ob.discharged) {
      std::cout << "FAILED " << ob.id << " (" << ob.method << ")\n" << ob.detail << "\n";
      break;
    }
  }
  std::cout << (no_g.all_discharged() ? "unexpectedly proved?!" : "=> formula (3) is INVALID")
            << "\n\n";

  // The abstract's remark: with a NONINTERLEAVING representation, (3) holds.
  DoubleQueueSystem ni = make_double_queue_ni(1, 2);
  CompositionOptions ni_opts;
  ni_opts.goal_witness = {{"q", ni.qbar}};
  ProofReport ni_proof = verify_composition(
      ni.vars, {{ni.qe1, ni.qm1}, {ni.qe2, ni.qm2}}, ni.goal(), ni_opts);
  std::cout << "--- formula (3), noninterleaving representation ---\n"
            << (ni_proof.all_discharged() ? "Q.E.D. (no G needed)" : "NOT PROVED?!")
            << "  (" << ni_proof.total_millis() << " ms)\n\n";

  // H2a by the paper's own route (Figure 9 steps 2.1/2.2, Propositions 3/4)
  // versus the direct freeze product.
  Prop3Route route;
  route.env_outputs = sys.env_out;
  route.guarantee_outputs = {sys.i.ack, sys.o.sig, sys.o.val};
  std::vector<Obligation> via_prop3 =
      discharge_h2a_via_prop3(sys.vars, sys.components(), sys.goal(), route, options(sys));
  double prop3_ms = 0;
  bool prop3_ok = true;
  for (const Obligation& ob : via_prop3) {
    prop3_ms += ob.millis;
    prop3_ok = prop3_ok && ob.discharged;
  }
  std::cout << "--- H2a discharge routes ---\n"
            << "via Propositions 3/4 (steps 2.1 + 2.2): "
            << (prop3_ok ? "discharged" : "FAILED") << " in " << prop3_ms << " ms\n"
            << "(the direct freeze-product time appears in the H2a row above)\n\n";
}

void BM_H2aViaProp3(benchmark::State& state) {
  DoubleQueueSystem sys = make_double_queue(static_cast<int>(state.range(0)), 2);
  CompositionOptions opts = options(sys);
  Prop3Route route;
  route.env_outputs = sys.env_out;
  route.guarantee_outputs = {sys.i.ack, sys.o.sig, sys.o.val};
  for (auto _ : state) {
    std::vector<Obligation> obs =
        discharge_h2a_via_prop3(sys.vars, sys.components(), sys.goal(), route, opts);
    benchmark::DoNotOptimize(obs.back().discharged);
  }
}
BENCHMARK(BM_H2aViaProp3)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_NonInterleavingProof(benchmark::State& state) {
  DoubleQueueSystem sys = make_double_queue_ni(static_cast<int>(state.range(0)), 2);
  CompositionOptions opts;
  opts.goal_witness = {{"q", sys.qbar}};
  std::vector<AGSpec> components = {{sys.qe1, sys.qm1}, {sys.qe2, sys.qm2}};
  for (auto _ : state) {
    ProofReport proof = verify_composition(sys.vars, components, sys.goal(), opts);
    benchmark::DoNotOptimize(proof.all_discharged());
  }
}
BENCHMARK(BM_NonInterleavingProof)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FullProof(benchmark::State& state) {
  DoubleQueueSystem sys = make_double_queue(static_cast<int>(state.range(0)), 2);
  CompositionOptions opts = options(sys);
  for (auto _ : state) {
    ProofReport proof = verify_composition(sys.vars, sys.components(), sys.goal(), opts);
    benchmark::DoNotOptimize(proof.all_discharged());
  }
}
BENCHMARK(BM_FullProof)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_FullProofFlightRecorder(benchmark::State& state) {
  // The same full proof with the flight recorder ring live: the pair with
  // BM_FullProof is the WATCHDOG experiment's recorder-overhead number
  // (EXPERIMENTS.md demands < 2%).
  DoubleQueueSystem sys = make_double_queue(static_cast<int>(state.range(0)), 2);
  CompositionOptions opts = options(sys);
  obs::flight_recorder_enable(4096, "/dev/null");
  for (auto _ : state) {
    ProofReport proof = verify_composition(sys.vars, sys.components(), sys.goal(), opts);
    benchmark::DoNotOptimize(proof.all_discharged());
  }
  state.counters["flight_events"] =
      static_cast<double>(obs::flight_recorder_recorded());
  obs::flight_recorder_disable();
}
BENCHMARK(BM_FullProofFlightRecorder)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_FullProofInterleaved(benchmark::State& state) {
  // The interleaving optimization (sound because G is among the
  // components): each mover varies only its own outputs and buffer.
  DoubleQueueSystem sys = make_double_queue(static_cast<int>(state.range(0)), 2);
  CompositionOptions opts = options(sys);
  opts.env_outputs = sys.env_out;
  opts.component_outputs = {{}, sys.q1_out, sys.q2_out};
  for (auto _ : state) {
    ProofReport proof = verify_composition(sys.vars, sys.components(), sys.goal(), opts);
    benchmark::DoNotOptimize(proof.all_discharged());
  }
}
BENCHMARK(BM_FullProofInterleaved)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_RefutationWithoutG(benchmark::State& state) {
  DoubleQueueSystem sys = make_double_queue(static_cast<int>(state.range(0)), 2);
  CompositionOptions opts = options(sys);
  std::vector<AGSpec> components = {{sys.qe1, sys.qm1}, {sys.qe2, sys.qm2}};
  for (auto _ : state) {
    ProofReport proof = verify_composition(sys.vars, components, sys.goal(), opts);
    benchmark::DoNotOptimize(proof.all_discharged());
  }
}
BENCHMARK(BM_RefutationWithoutG)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
