// MEMORY — the obs v4 memory-accounting acceptance artifact.
//
// For the paper's three exploration workloads (the Figure 6 complete
// queue, the Figure 8 double-queue composition, the Figure 9 CDQ space)
// the artifact measures bytes_per_state = tracked peak bytes / peak graph
// states, three times each, and reports:
//
//   - stability: the max-min spread across the three runs must be <= 5%
//     (exploration is deterministic, so the tracked peak is too);
//   - attribution: the share of the tracked peak that named domains
//     (everything but "other") account for must be >= 90%;
//   - overhead: paired medians of the fig9 wall-clock with accounting
//     enabled vs runtime-disabled (the <= 2% acceptance number).
//
// The google-benchmark timings then re-run the same builds for the
// counter export (BENCH_bench_memory_accounting.json, schema v3 with the
// per-domain memory section).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/graph/state_graph.hpp"
#include "opentla/obs/memory.hpp"
#include "opentla/queue/double_queue.hpp"
#include "opentla/queue/queue_spec.hpp"

using namespace opentla;

namespace {

// OPENTLA_MEM_LARGE=1 is the EXPERIMENTS.md MEMORY measurement: each
// space is scaled so its reachable set exceeds 10^5 states and the
// exploration is capped at exactly 10^5 (the unified max_states budget
// stops gracefully), so bytes_per_state is measured at 10^5 states. The
// default sizes keep the per-commit artifact under a couple of seconds.
bool large_mode() {
  const char* env = std::getenv("OPENTLA_MEM_LARGE");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

constexpr std::size_t kLargeStateCap = 100'000;

StateGraph build_fig6() {
  QueueSystem sys = large_mode() ? make_queue_system(/*capacity=*/6, /*num_values=*/6)
                                 : make_queue_system(/*capacity=*/3, /*num_values=*/3);
  return build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}}, {},
                               {}, large_mode() ? kLargeStateCap : 2'000'000);
}

StateGraph build_double_queue_space(int capacity, int num_values,
                                    std::size_t max_states) {
  DoubleQueueSystem sys = make_double_queue(capacity, num_values);
  std::vector<CompositePart> parts = {{make_cdq(sys).unhidden(), true},
                                      {make_pin(sys.vars, {sys.q}, "PinQ"), false}};
  return build_composite_graph(sys.vars, parts, {}, {sys.q}, max_states);
}

StateGraph build_fig8() {
  return large_mode()
             ? build_double_queue_space(/*capacity=*/3, /*num_values=*/3, kLargeStateCap)
             : build_double_queue_space(/*capacity=*/2, /*num_values=*/2, 2'000'000);
}

StateGraph build_fig9() {
  return large_mode()
             ? build_double_queue_space(/*capacity=*/2, /*num_values=*/4, kLargeStateCap)
             : build_double_queue_space(/*capacity=*/1, /*num_values=*/3, 2'000'000);
}

struct SpaceMeasure {
  std::uint64_t states = 0;
  std::uint64_t tracked_peak = 0;
  std::uint64_t bytes_per_state = 0;
  double attributed_pct = 0;  // named (non-"other") domain peaks / tracked peak
};

template <typename Builder>
SpaceMeasure measure_space(Builder build) {
  obs::reset();
  obs::set_enabled(true);
  SpaceMeasure m;
  {
    StateGraph g = build();
    m.states = g.num_states();
    const obs::Snapshot snap = obs::snapshot();
    m.tracked_peak = snap.mem_tracked_peak_bytes;
    m.bytes_per_state = snap.bytes_per_state();
    std::uint64_t named = 0;
    for (std::size_t d = 0; d < obs::kNumMemDomains; ++d) {
      if (static_cast<obs::MemDomain>(d) != obs::MemDomain::Other) {
        named += snap.mem[d].peak_bytes;
      }
    }
    m.attributed_pct =
        m.tracked_peak == 0 ? 0 : 100.0 * static_cast<double>(named) /
                                      static_cast<double>(m.tracked_peak);
  }
  obs::set_enabled(false);
  obs::reset();
  return m;
}

template <typename Builder>
void report_space(const char* name, Builder build) {
  // Large mode is a single measurement per space (the runs take tens of
  // seconds each); the ±5% stability check runs at the default sizes,
  // where exploration determinism makes the spread exactly 0.
  if (large_mode()) {
    const SpaceMeasure m = measure_space(build);
    std::printf("%-6s %8llu states  tracked peak %10llu B  bytes/state %6llu"
                "  attribution %.1f%% %s\n",
                name, static_cast<unsigned long long>(m.states),
                static_cast<unsigned long long>(m.tracked_peak),
                static_cast<unsigned long long>(m.bytes_per_state),
                m.attributed_pct, m.attributed_pct >= 90.0 ? "PASS" : "FAIL");
    return;
  }
  SpaceMeasure runs[3];
  for (SpaceMeasure& m : runs) m = measure_space(build);
  std::uint64_t lo = runs[0].bytes_per_state, hi = runs[0].bytes_per_state;
  for (const SpaceMeasure& m : runs) {
    lo = std::min(lo, m.bytes_per_state);
    hi = std::max(hi, m.bytes_per_state);
  }
  const double spread_pct =
      lo == 0 ? (hi == 0 ? 0 : 100.0)
              : 100.0 * static_cast<double>(hi - lo) / static_cast<double>(lo);
  const SpaceMeasure& m = runs[0];
  std::printf("%-6s %8llu states  tracked peak %10llu B  bytes/state %6llu"
              "  (runs: %llu/%llu/%llu, spread %.2f%% %s)  attribution %.1f%% %s\n",
              name, static_cast<unsigned long long>(m.states),
              static_cast<unsigned long long>(m.tracked_peak),
              static_cast<unsigned long long>(m.bytes_per_state),
              static_cast<unsigned long long>(runs[0].bytes_per_state),
              static_cast<unsigned long long>(runs[1].bytes_per_state),
              static_cast<unsigned long long>(runs[2].bytes_per_state),
              spread_pct, spread_pct <= 5.0 ? "PASS" : "FAIL",
              m.attributed_pct, m.attributed_pct >= 90.0 ? "PASS" : "FAIL");
}

double median_ms(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

void report_overhead() {
  // Paired runs of the fig9 build pricing the accounting layer alone:
  // both sides run with the obs layer live (counters, spans, gauges); the
  // "off" side suspends only mem_account_alloc via the runtime sub-gate.
  // Pairs are interleaved so thermal drift hits both sides equally.
  constexpr int kPairs = 5;
  std::vector<double> on_ms, off_ms;
  for (int i = 0; i < kPairs; ++i) {
    for (const bool accounting : {true, false}) {
      obs::reset();
      obs::set_enabled(true);
      obs::set_mem_accounting_suspended(!accounting);
      const auto start = std::chrono::steady_clock::now();
      StateGraph g = build_fig9();
      benchmark::DoNotOptimize(g.num_states());
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      (accounting ? on_ms : off_ms).push_back(ms);
      obs::set_mem_accounting_suspended(false);
      obs::set_enabled(false);
      obs::reset();
    }
  }
  const double on = median_ms(on_ms), off = median_ms(off_ms);
  const double overhead_pct = off == 0 ? 0 : 100.0 * (on - off) / off;
  std::printf("fig9 accounting overhead: accounting %.2f ms vs suspended %.2f ms"
              "  -> %+.2f%% (paired medians of %d runs, acceptance <= 2%%)\n",
              on, off, overhead_pct, kPairs);
}

void artifact() {
  std::printf("=== MEMORY: per-domain accounting on the paper's exploration spaces ===\n\n");
  if (!obs::compile_time_enabled() || !opentla::bench::obs_requested()) {
    std::printf("(instrumentation compiled out or OPENTLA_OBS=0 — no accounting to report)\n\n");
    return;
  }
  report_space("fig6", build_fig6);
  report_space("fig8", build_fig8);
  report_space("fig9", build_fig9);
  std::printf("\n");
  if (!large_mode()) {
    report_overhead();
    std::printf("\n");
  }
}

void BM_Fig6GraphAccounted(benchmark::State& state) {
  for (auto _ : state) {
    StateGraph g = build_fig6();
    benchmark::DoNotOptimize(g.num_states());
  }
}
BENCHMARK(BM_Fig6GraphAccounted)->Unit(benchmark::kMillisecond);

void BM_Fig8GraphAccounted(benchmark::State& state) {
  for (auto _ : state) {
    StateGraph g = build_fig8();
    benchmark::DoNotOptimize(g.num_states());
  }
}
BENCHMARK(BM_Fig8GraphAccounted)->Unit(benchmark::kMillisecond);

void BM_Fig9GraphAccounted(benchmark::State& state) {
  for (auto _ : state) {
    StateGraph g = build_fig9();
    benchmark::DoNotOptimize(g.num_states());
  }
}
BENCHMARK(BM_Fig9GraphAccounted)->Unit(benchmark::kMillisecond);

void BM_Fig9GraphAccountingSuspended(benchmark::State& state) {
  // The paired timing for the overhead number: the same build with only
  // the accounting sub-gate closed (obs otherwise live on both sides).
  obs::set_mem_accounting_suspended(true);
  for (auto _ : state) {
    StateGraph g = build_fig9();
    benchmark::DoNotOptimize(g.num_states());
  }
  obs::set_mem_accounting_suspended(false);
}
BENCHMARK(BM_Fig9GraphAccountingSuspended)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
