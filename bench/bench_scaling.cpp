// SCALE — engineering benchmarks for the explicit-state engine itself:
// successor generation, prefix-machine stepping (subset construction),
// fair-cycle search, and the freeze-product exploration behind hypothesis
// 2(a). No paper artifact; prints the configuration table.

#include <iomanip>

#include "bench_common.hpp"
#include "opentla/automata/freeze.hpp"
#include "opentla/automata/prefix_machine.hpp"
#include "opentla/check/liveness.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/graph/fair_cycle.hpp"
#include "opentla/queue/double_queue.hpp"
#include "opentla/queue/queue_spec.hpp"

using namespace opentla;

namespace {

void artifact() {
  std::cout << "=== SCALE: engine micro/meso benchmarks (see rows below) ===\n";
  std::cout << "subset-construction width on the queue (max config sizes):\n";
  for (int n : {1, 2, 3}) {
    QueueSystem sys = make_queue_system(n, 2);
    PrefixMachine m(sys.vars, sys.specs.queue);
    StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
    // Drive the machine along every edge of the reachable graph.
    std::vector<Value> configs(g.num_states());
    std::vector<char> seen(g.num_states(), 0);
    std::vector<StateId> frontier;
    for (StateId s : g.initial()) {
      configs[s] = m.initial(g.state(s));
      seen[s] = 1;
      frontier.push_back(s);
    }
    while (!frontier.empty()) {
      StateId u = frontier.back();
      frontier.pop_back();
      for (StateId v : g.successors(u)) {
        if (seen[v]) continue;
        configs[v] = m.step(configs[u], g.state(u), g.state(v));
        seen[v] = 1;
        frontier.push_back(v);
      }
    }
    std::cout << "  N = " << n << ": max |config| = " << m.max_config_size() << " over "
              << g.num_states() << " states\n";
  }
  std::cout << "\n";
}

void BM_SuccessorGeneration(benchmark::State& state) {
  QueueSystem sys = make_queue_system(static_cast<int>(state.range(0)), 3);
  CanonicalSpec spec = sys.specs.complete.unhidden();
  ActionSuccessors gen(sys.vars, spec.next);
  std::vector<State> states = ActionSuccessors::states_satisfying(sys.vars, spec.init, {});
  StateGraph g = build_composite_graph(sys.vars, {{spec, true}});
  std::size_t visited = 0;
  for (auto _ : state) {
    for (StateId s = 0; s < g.num_states(); ++s) {
      gen.for_each_successor(g.state(s), [&](const State&) { ++visited; });
    }
  }
  benchmark::DoNotOptimize(visited);
  state.counters["succ/s"] =
      benchmark::Counter(static_cast<double>(visited), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SuccessorGeneration)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_PrefixMachineStep(benchmark::State& state) {
  QueueSystem sys = make_queue_system(static_cast<int>(state.range(0)), 2);
  PrefixMachine m(sys.vars, sys.specs.queue);
  StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
  const State& s0 = g.state(g.initial()[0]);
  Value cfg = m.initial(s0);
  std::size_t steps = 0;
  for (auto _ : state) {
    // Walk the first edge chain repeatedly.
    StateId u = g.initial()[0];
    Value c = cfg;
    for (int i = 0; i < 32; ++i) {
      StateId v = g.successors(u).front();
      c = m.step(c, g.state(u), g.state(v));
      u = v;
      ++steps;
    }
    benchmark::DoNotOptimize(c);
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PrefixMachineStep)->Arg(1)->Arg(2)->Arg(3);

void BM_FairCycleSearch(benchmark::State& state) {
  QueueSystem sys = make_queue_system(static_cast<int>(state.range(0)), 2);
  StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
  for (auto _ : state) {
    FairnessCompiler compiler(g);
    FairCycleQuery q;
    compiler.add_constraints(sys.specs.complete.fairness, q);
    q.filter.node_ok = [&](StateId s) {
      return g.state(s)[sys.in.sig].as_int() != g.state(s)[sys.in.ack].as_int() &&
             static_cast<int>(g.state(s)[sys.q].length()) < sys.capacity;
    };
    benchmark::DoNotOptimize(find_fair_cycle(g, q).has_value());
  }
  state.counters["states"] = static_cast<double>(g.num_states());
}
BENCHMARK(BM_FairCycleSearch)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FreezeProduct(benchmark::State& state) {
  // The H2a-style product: freeze(C(E)) x C(M) walked over the complete
  // queue graph's edges.
  QueueSystem sys = make_queue_system(static_cast<int>(state.range(0)), 2);
  auto env = std::make_shared<PrefixMachine>(sys.vars, sys.specs.env);
  std::vector<VarId> visible = {sys.in.sig,  sys.in.ack,  sys.in.val,
                                sys.out.sig, sys.out.ack, sys.out.val};
  FreezeMachine freeze(env, visible);
  PrefixMachine queue(sys.vars, sys.specs.queue);
  StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
  for (auto _ : state) {
    std::size_t alive = 0;
    for (StateId u = 0; u < g.num_states(); ++u) {
      Value fe = freeze.initial(g.state(u));
      Value fq = queue.initial(g.state(u));
      for (StateId v : g.successors(u)) {
        Value fe2 = freeze.step(fe, g.state(u), g.state(v));
        Value fq2 = queue.step(fq, g.state(u), g.state(v));
        alive += freeze.alive(fe2) && queue.alive(fq2);
      }
    }
    benchmark::DoNotOptimize(alive);
  }
}
BENCHMARK(BM_FreezeProduct)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
