// FIG5/FIG6 — Figures 5-6: the complete queue system CQ.
//
// Artifact: the checks the paper's Figure 6 discussion rests on —
//   * ICQ is machine-closed (Proposition 1, syntactic and on-graph);
//   * the buffer bound |q| <= N and the handshake discipline hold;
//   * WF(QM) is equivalent to WF(Enq) /\ WF(Deq) (the figure's remark).
//
// Benchmarks: invariant checking, machine-closure analysis, and the
// fairness-equivalence queries over N.

#include "bench_common.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/check/liveness.hpp"
#include "opentla/check/machine_closure.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/queue_spec.hpp"

using namespace opentla;

namespace {

StateGraph explore(const QueueSystem& sys) {
  return build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
}

Fairness wf_of(const QueueSystem& sys, Expr action, const char* label) {
  Fairness f;
  f.kind = Fairness::Kind::Weak;
  f.sub = sys.specs.complete.sub;
  f.action = std::move(action);
  f.label = label;
  return f;
}

bool fairness_violates(const StateGraph& g, const std::vector<Fairness>& holds,
                       const Fairness& broken) {
  FairnessCompiler compiler(g);
  FairCycleQuery q;
  compiler.add_constraints(holds, q);
  compiler.restrict_to_violation(broken, q);
  return find_fair_cycle(g, q).has_value();
}

void artifact() {
  std::cout << "=== FIG6: the complete queue system CQ (N = 3, values 0..2) ===\n";
  QueueSystem sys = make_queue_system(3, 3);
  StateGraph g = explore(sys);
  std::cout << "reachable: " << g.num_states() << " states, " << g.num_edges() << " edges\n";

  MachineClosureResult syn = check_prop1_syntactic(sys.specs.complete);
  MachineClosureResult sem = check_machine_closure_on_graph(g, sys.specs.complete.unhidden());
  std::cout << "Proposition 1 (syntactic): " << (syn ? "machine-closed" : "NOT CLOSED") << "\n";
  std::cout << "machine closure (on graph): " << (sem ? "confirmed" : "REFUTED") << "\n";

  InvariantResult bound =
      check_invariant(g, ex::le(ex::len(ex::var(sys.q)), ex::integer(sys.capacity)));
  std::cout << "invariant |q| <= N: " << (bound.holds ? "holds" : "VIOLATED") << "\n";

  const Fairness wf_qm = wf_of(sys, sys.specs.qm, "WF(QM)");
  const Fairness wf_enq = wf_of(sys, sys.specs.enq, "WF(Enq)");
  const Fairness wf_deq = wf_of(sys, sys.specs.deq, "WF(Deq)");
  const bool equivalent = !fairness_violates(g, {wf_qm}, wf_enq) &&
                          !fairness_violates(g, {wf_qm}, wf_deq) &&
                          !fairness_violates(g, {wf_enq, wf_deq}, wf_qm);
  std::cout << "WF(QM) equivalent to WF(Enq) /\\ WF(Deq): " << (equivalent ? "yes" : "NO")
            << "\n\n";
}

void BM_InvariantCheck(benchmark::State& state) {
  QueueSystem sys = make_queue_system(static_cast<int>(state.range(0)), 2);
  StateGraph g = explore(sys);
  Expr inv = ex::le(ex::len(ex::var(sys.q)), ex::integer(sys.capacity));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_invariant(g, inv).holds);
  }
  state.counters["states"] = static_cast<double>(g.num_states());
}
BENCHMARK(BM_InvariantCheck)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_MachineClosureOnGraph(benchmark::State& state) {
  QueueSystem sys = make_queue_system(static_cast<int>(state.range(0)), 2);
  StateGraph g = explore(sys);
  CanonicalSpec spec = sys.specs.complete.unhidden();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_machine_closure_on_graph(g, spec).machine_closed);
  }
}
BENCHMARK(BM_MachineClosureOnGraph)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_FairnessEquivalence(benchmark::State& state) {
  QueueSystem sys = make_queue_system(static_cast<int>(state.range(0)), 2);
  StateGraph g = explore(sys);
  const Fairness wf_qm = wf_of(sys, sys.specs.qm, "WF(QM)");
  const Fairness wf_enq = wf_of(sys, sys.specs.enq, "WF(Enq)");
  const Fairness wf_deq = wf_of(sys, sys.specs.deq, "WF(Deq)");
  for (auto _ : state) {
    bool eq = !fairness_violates(g, {wf_qm}, wf_enq) &&
              !fairness_violates(g, {wf_qm}, wf_deq) &&
              !fairness_violates(g, {wf_enq, wf_deq}, wf_qm);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_FairnessEquivalence)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
