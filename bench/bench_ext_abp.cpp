// EXT-ABP — extension study (not a paper figure): the alternating-bit
// protocol over lossy wires. Artifact: the verification summary (reachable
// states, invariants, the SF-vs-WF liveness boundary). Benchmarks: graph
// construction and the two refinement checks (the SF one exercises the
// Streett machinery end to end).

#include "bench_common.hpp"
#include "opentla/abp/abp.hpp"
#include "opentla/check/refinement.hpp"
#include "opentla/compose/compose.hpp"

using namespace opentla;

namespace {

StateGraph build(const AbpSystem& sys) {
  return build_composite_graph(
      sys.vars, {{sys.system, true}, {make_pin(sys.vars, {sys.q}, "PinQ"), false}},
      /*free_tuples=*/{}, /*pinned=*/{sys.q});
}

void artifact() {
  std::cout << "=== EXT-ABP: alternating-bit protocol (extension study) ===\n";
  for (int v : {2, 3}) {
    AbpSystem sys = make_abp_system(v);
    StateGraph g = build(sys);
    RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
    RefinementResult full =
        check_refinement(g, sys.system.fairness, sys.queue.queue, mapping);
    CanonicalSpec weak = sys.system_with_weak_fairness_only();
    RefinementResult wf = check_refinement(g, weak.fairness, sys.queue.queue, mapping);
    std::cout << "values=" << v << ": " << g.num_states() << " states; queue refinement "
              << (full.holds ? "PROVED" : "FAILED") << " with SF, "
              << (wf.holds ? "proved?!" : "fails") << " with WF only\n";
  }
  std::cout << "\n";
}

void BM_AbpGraph(benchmark::State& state) {
  AbpSystem sys = make_abp_system(static_cast<int>(state.range(0)));
  std::size_t states = 0;
  for (auto _ : state) {
    StateGraph g = build(sys);
    states = g.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_AbpGraph)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_AbpRefinementSF(benchmark::State& state) {
  AbpSystem sys = make_abp_system(2);
  StateGraph g = build(sys);
  RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
  for (auto _ : state) {
    RefinementResult r = check_refinement(g, sys.system.fairness, sys.queue.queue, mapping);
    benchmark::DoNotOptimize(r.holds);
  }
}
BENCHMARK(BM_AbpRefinementSF)->Unit(benchmark::kMillisecond);

void BM_AbpRefutationWF(benchmark::State& state) {
  AbpSystem sys = make_abp_system(2);
  StateGraph g = build(sys);
  RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
  CanonicalSpec weak = sys.system_with_weak_fairness_only();
  for (auto _ : state) {
    RefinementResult r = check_refinement(g, weak.fairness, sys.queue.queue, mapping);
    benchmark::DoNotOptimize(r.holds);
  }
}
BENCHMARK(BM_AbpRefutationWF)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
