// PRUNING — successor-generation completion enumeration: pruned residual
// search vs the historical enumerate-and-test path.
//
// Artifact: for the fig6/fig8/fig9 workloads, the completion-enumeration
// counters of a fully pruned run — successors_enumerated (identical to the
// naive path by the determinism contract), completions_pruned (completions
// the flat odometer would have visited but the residual schedule cut), and
// residual_early_cuts — plus a naive-vs-pruned cross-check that both paths
// build bit-identical graphs.
//
// Benchmarks: graph construction and enabled() queries, naive vs pruned,
// on the composite queue systems and on a synthetic residual-heavy action
// where subtree cutting dominates.

#include <cstdint>
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "opentla/check/machine_closure.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/ag/composition_theorem.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/queue/double_queue.hpp"
#include "opentla/queue/queue_spec.hpp"
#include "opentla/value/domain.hpp"
#include "opentla/vm/interp.hpp"

using namespace opentla;

namespace {

struct Counts {
  std::uint64_t enumerated = 0;
  std::uint64_t pruned = 0;
  std::uint64_t cuts = 0;
};

template <class Fn>
Counts measure(Fn&& fn) {
  obs::reset();
  obs::set_enabled(true);
  fn();
  obs::set_enabled(false);
  const obs::Snapshot snap = obs::snapshot();
  Counts c;
  c.enumerated = snap.counters[static_cast<std::size_t>(obs::Counter::SuccessorsEnumerated)];
  c.pruned = snap.counters[static_cast<std::size_t>(obs::Counter::CompletionsPruned)];
  c.cuts = snap.counters[static_cast<std::size_t>(obs::Counter::ResidualEarlyCuts)];
  return c;
}

StateGraph fig6_graph() {
  QueueSystem sys = make_queue_system(3, 3);
  return build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
}

void fig6_workload() {
  QueueSystem sys = make_queue_system(3, 3);
  StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
  // Machine closure walks the prefix machine of the hidden-variable spec —
  // the pruned hidden-completion path.
  benchmark::DoNotOptimize(
      check_machine_closure_on_graph(g, sys.specs.complete.unhidden()).machine_closed);
  benchmark::DoNotOptimize(check_prop1_syntactic(sys.specs.complete).machine_closed);
}

StateGraph fig8_graph() {
  DoubleQueueSystem sys = make_double_queue(1, 2);
  CanonicalSpec cdq = make_cdq(sys);
  return build_composite_graph(
      sys.vars,
      {{cdq.unhidden(), true}, {make_pin(sys.vars, {sys.q}, "PinQ"), false}},
      /*free_tuples=*/{}, /*pinned=*/{sys.q});
}

void fig8_workload() { benchmark::DoNotOptimize(fig8_graph().num_states()); }

void fig9_workload() {
  DoubleQueueSystem sys = make_double_queue(1, 2);
  CompositionOptions opts;
  opts.goal_witness = {{"q", sys.qbar}};
  ProofReport proof = verify_composition(sys.vars, sys.components(), sys.goal(), opts);
  benchmark::DoNotOptimize(proof.all_discharged());
}

/// Synthetic residual-heavy action over a 4-variable universe: two
/// variables assigned, two enumerated under mutually constraining residual
/// conjuncts, so most subtrees die at depth 1.
struct Synthetic {
  VarTable vars;
  VarId a, b, c, d;
  Expr action;
  Synthetic() {
    a = vars.declare("a", range_domain(0, 7));
    b = vars.declare("b", range_domain(0, 7));
    c = vars.declare("c", range_domain(0, 7));
    d = vars.declare("d", range_domain(0, 7));
    action = ex::land({ex::eq(ex::primed_var(a), ex::var(a)),
                       ex::eq(ex::primed_var(b), ex::var(b)),
                       ex::eq(ex::primed_var(c), ex::var(a)),          // kills 7/8 of c'
                       ex::lt(ex::primed_var(d), ex::primed_var(c))}); // then bounds d'
  }
  State first() const { return StateSpace(vars).first_state(); }
};

void artifact() {
  std::cout << "=== PRUNING: completion enumeration, pruned vs enumerate-and-test ===\n";
  if (!obs::compile_time_enabled()) {
    std::cout << "(OPENTLA_OBS=OFF build: counters unavailable, cross-checks only)\n";
  }

  // Cross-check first: naive and pruned runs must build identical graphs.
  ActionSuccessors::set_naive_enumeration_for_test(true);
  StateGraph n6 = fig6_graph();
  StateGraph n8 = fig8_graph();
  ActionSuccessors::set_naive_enumeration_for_test(false);
  StateGraph p6 = fig6_graph();
  StateGraph p8 = fig8_graph();
  const bool identical = n6.num_states() == p6.num_states() &&
                         n6.num_edges() == p6.num_edges() &&
                         n6.initial() == p6.initial() &&
                         n8.num_states() == p8.num_states() &&
                         n8.num_edges() == p8.num_edges() &&
                         n8.initial() == p8.initial();
  std::cout << "naive/pruned graph identity (fig6, fig8): "
            << (identical ? "identical" : "MISMATCH") << "\n";

  // Same cross-check for the expression evaluator: the graphs a tree-eval
  // run builds must be bit-identical to the bytecode-VM run's.
  vm::set_tree_eval_for_test(true);
  StateGraph t6 = fig6_graph();
  StateGraph t8 = fig8_graph();
  vm::set_tree_eval_for_test(false);
  const bool eval_identical = t6.num_states() == p6.num_states() &&
                              t6.num_edges() == p6.num_edges() &&
                              t6.initial() == p6.initial() &&
                              t8.num_states() == p8.num_states() &&
                              t8.num_edges() == p8.num_edges() &&
                              t8.initial() == p8.initial();
  std::cout << "tree/vm graph identity (fig6, fig8): "
            << (eval_identical ? "identical" : "MISMATCH") << "\n\n";

  std::cout << std::setw(10) << "workload" << std::setw(14) << "successors"
            << std::setw(16) << "compl_pruned" << std::setw(12) << "cuts" << "\n";
  struct Row {
    const char* name;
    void (*fn)();
  };
  const Row rows[] = {{"fig6", fig6_workload}, {"fig8", fig8_workload},
                      {"fig9", fig9_workload}};
  for (const Row& row : rows) {
    const Counts c = measure(row.fn);
    std::cout << std::setw(10) << row.name << std::setw(14) << c.enumerated
              << std::setw(16) << c.pruned << std::setw(12) << c.cuts << "\n";
  }

  Synthetic syn;
  ActionSuccessors gen(syn.vars, syn.action);
  const Counts sc = measure([&] { benchmark::DoNotOptimize(gen.successors(syn.first())); });
  std::cout << std::setw(10) << "synthetic" << std::setw(14) << sc.enumerated
            << std::setw(16) << sc.pruned << std::setw(12) << sc.cuts << "\n";
  std::cout << "(compl_pruned = completions enumerate-and-test would visit that the\n"
            << " residual schedule skipped; > 0 means strictly fewer leaves touched)\n\n";
}

void BM_GraphBuildFig6(benchmark::State& state) {
  ActionSuccessors::set_naive_enumeration_for_test(state.range(0) == 0);
  QueueSystem sys = make_queue_system(static_cast<int>(state.range(1)), 2);
  for (auto _ : state) {
    StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
    benchmark::DoNotOptimize(g.num_states());
  }
  ActionSuccessors::set_naive_enumeration_for_test(false);
  state.SetLabel(state.range(0) == 0 ? "naive" : "pruned");
}
BENCHMARK(BM_GraphBuildFig6)
    ->Args({0, 2})->Args({1, 2})->Args({0, 3})->Args({1, 3})
    ->Unit(benchmark::kMillisecond);

void BM_GraphBuildFig8(benchmark::State& state) {
  ActionSuccessors::set_naive_enumeration_for_test(state.range(0) == 0);
  for (auto _ : state) {
    StateGraph g = fig8_graph();
    benchmark::DoNotOptimize(g.num_states());
  }
  ActionSuccessors::set_naive_enumeration_for_test(false);
  state.SetLabel(state.range(0) == 0 ? "naive" : "pruned");
}
BENCHMARK(BM_GraphBuildFig8)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EnabledSynthetic(benchmark::State& state) {
  ActionSuccessors::set_naive_enumeration_for_test(state.range(0) == 0);
  Synthetic syn;
  // d' < 0 can never hold, so enabled() must reject every completion —
  // the worst case for enumerate-and-test.
  Expr hard = ex::land({ex::eq(ex::primed_var(syn.a), ex::var(syn.a)),
                        ex::neq(ex::primed_var(syn.c), ex::primed_var(syn.d)),
                        ex::lt(ex::primed_var(syn.d), ex::integer(0))});
  ActionSuccessors gen(syn.vars, hard);
  const State s = syn.first();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.enabled(s));
  }
  ActionSuccessors::set_naive_enumeration_for_test(false);
  state.SetLabel(state.range(0) == 0 ? "naive" : "pruned");
}
BENCHMARK(BM_EnabledSynthetic)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_SuccessorsSynthetic(benchmark::State& state) {
  ActionSuccessors::set_naive_enumeration_for_test(state.range(0) == 0);
  Synthetic syn;
  ActionSuccessors gen(syn.vars, syn.action);
  const State s = syn.first();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.successors(s));
  }
  ActionSuccessors::set_naive_enumeration_for_test(false);
  state.SetLabel(state.range(0) == 0 ? "naive" : "pruned");
}
BENCHMARK(BM_SuccessorsSynthetic)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// --- Evaluator axis: identical pruned workloads, tree walker vs bytecode
// VM (vm::set_tree_eval_for_test). Successor sets and emission order are
// bit-identical either way; only per-conjunct evaluation cost changes.

void BM_SuccessorsSyntheticEval(benchmark::State& state) {
  vm::set_tree_eval_for_test(state.range(0) == 0);
  Synthetic syn;
  ActionSuccessors gen(syn.vars, syn.action);
  const State s = syn.first();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.successors(s));
  }
  vm::set_tree_eval_for_test(false);
  state.SetLabel(state.range(0) == 0 ? "tree" : "vm");
}
BENCHMARK(BM_SuccessorsSyntheticEval)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_GraphBuildFig6Eval(benchmark::State& state) {
  vm::set_tree_eval_for_test(state.range(0) == 0);
  QueueSystem sys = make_queue_system(3, 2);
  for (auto _ : state) {
    StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
    benchmark::DoNotOptimize(g.num_states());
  }
  vm::set_tree_eval_for_test(false);
  state.SetLabel(state.range(0) == 0 ? "tree" : "vm");
}
BENCHMARK(BM_GraphBuildFig6Eval)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_GraphBuildFig8Eval(benchmark::State& state) {
  vm::set_tree_eval_for_test(state.range(0) == 0);
  for (auto _ : state) {
    StateGraph g = fig8_graph();
    benchmark::DoNotOptimize(g.num_states());
  }
  vm::set_tree_eval_for_test(false);
  state.SetLabel(state.range(0) == 0 ? "tree" : "vm");
}
BENCHMARK(BM_GraphBuildFig8Eval)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
