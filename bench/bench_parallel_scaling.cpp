// PARALLEL — scaling of the work-sharing parallel exploration engine
// (opentla/par) against the serial BFS on the paper's larger spaces.
//
// Artifact: a serial-vs-N-threads wall-clock table on the Figure 6
// complete-queue space and the Figure 9 double-queue composition, with the
// per-configuration speedup and a determinism cross-check (every run must
// produce the serial graph bit for bit). On a single-core host the
// speedups hover at or below 1.0x — the table reports whatever the
// hardware gives, it does not assume cores.
//
// Benchmarks: BM_ExploreQueue / BM_ExploreDoubleQueue parameterized by
// worker count (1 = the serial engine, 2/4 = the parallel engine), so the
// exported BENCH_bench_parallel_scaling.json carries the par.* counters
// (steals, shard contention, per-pool expansions) for the same series.

#include <chrono>
#include <iomanip>

#include "bench_common.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/double_queue.hpp"
#include "opentla/queue/queue_spec.hpp"

using namespace opentla;

namespace {

ExploreOptions with_threads(unsigned threads) {
  ExploreOptions opts;
  opts.threads = threads;
  return opts;
}

struct Space {
  std::string label;
  VarTable* vars;
  std::vector<CompositePart> parts;
  std::vector<VarId> pinned;
};

StateGraph explore(const Space& space, unsigned threads) {
  return build_composite_graph(*space.vars, space.parts, {}, space.pinned,
                               with_threads(threads));
}

void artifact() {
  std::cout << "=== PARALLEL: serial vs N-thread exploration (identical graphs) ===\n";

  QueueSystem queue = make_queue_system(/*capacity=*/3, /*num_values=*/3);
  DoubleQueueSystem dbl = make_double_queue(/*capacity=*/1, /*num_values=*/3);
  std::vector<Space> spaces;
  spaces.push_back({"CQ (fig 6), N=3, 3 values",
                    &queue.vars,
                    {{queue.specs.complete.unhidden(), true}},
                    {}});
  spaces.push_back({"CDQ (fig 9), N=1, 3 values",
                    &dbl.vars,
                    {{make_cdq(dbl).unhidden(), true},
                     {make_pin(dbl.vars, {dbl.q}, "PinQ"), false}},
                    {dbl.q}});

  std::cout << std::left << std::setw(28) << "space" << std::right << std::setw(9)
            << "states" << std::setw(10) << "threads" << std::setw(12) << "time"
            << std::setw(10) << "speedup" << "   identical\n";
  for (const Space& space : spaces) {
    double serial_ms = 0.0;
    StateGraph reference = explore(space, 1);
    for (unsigned threads : {1u, 2u, 4u}) {
      const auto t0 = std::chrono::steady_clock::now();
      StateGraph g = explore(space, threads);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (threads == 1) serial_ms = ms;

      bool identical = g.num_states() == reference.num_states() &&
                       g.num_edges() == reference.num_edges() &&
                       g.initial() == reference.initial();
      for (StateId s = 0; identical && s < reference.num_states(); ++s) {
        identical = g.state(s) == reference.state(s) &&
                    g.successors(s) == reference.successors(s);
      }
      std::cout << std::left << std::setw(28) << space.label << std::right
                << std::setw(9) << g.num_states() << std::setw(10) << threads
                << std::setw(10) << std::fixed << std::setprecision(1) << ms << " ms"
                << std::setw(9) << std::setprecision(2) << (serial_ms / ms) << "x"
                << "   " << (identical ? "yes" : "NO!") << "\n";
    }
  }
  std::cout << "\n";
}

void BM_ExploreQueue(benchmark::State& state) {
  QueueSystem sys = make_queue_system(/*capacity=*/3, /*num_values=*/2);
  const std::vector<CompositePart> parts = {{sys.specs.complete.unhidden(), true}};
  const unsigned threads = static_cast<unsigned>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    StateGraph g = build_composite_graph(sys.vars, parts, {}, {}, with_threads(threads));
    states = g.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ExploreQueue)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ExploreDoubleQueue(benchmark::State& state) {
  DoubleQueueSystem sys = make_double_queue(/*capacity=*/1, /*num_values=*/2);
  const std::vector<CompositePart> parts = {
      {make_cdq(sys).unhidden(), true}, {make_pin(sys.vars, {sys.q}, "PinQ"), false}};
  const unsigned threads = static_cast<unsigned>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    StateGraph g =
        build_composite_graph(sys.vars, parts, {}, {sys.q}, with_threads(threads));
    states = g.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ExploreDoubleQueue)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
