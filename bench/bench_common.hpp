// Shared benchmark plumbing: every bench binary first prints the paper
// artifact it regenerates (the "figure"), then runs its google-benchmark
// timings, and finally exports the engine counters it accumulated as
// BENCH_<name>.json (see tools/bench_schema.json).
//
// Set OPENTLA_OBS=0 in the environment to keep instrumentation disabled
// (no counter collection, no JSON written) — e.g. when measuring the
// disabled-mode overhead itself.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "opentla/obs/obs.hpp"

namespace opentla::bench {

inline std::string bench_name_from_argv0(const char* argv0) {
  std::string s = argv0 ? argv0 : "bench";
  const std::size_t slash = s.find_last_of("/\\");
  if (slash != std::string::npos) s = s.substr(slash + 1);
  const std::size_t dot = s.rfind('.');
  if (dot != std::string::npos && dot > 0) s = s.substr(0, dot);
  return s;
}

inline bool obs_requested() {
  const char* env = std::getenv("OPENTLA_OBS");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

}  // namespace opentla::bench

#define OPENTLA_BENCH_MAIN(print_artifact)                              \
  int main(int argc, char** argv) {                                     \
    const std::string bench_name =                                      \
        ::opentla::bench::bench_name_from_argv0(argc > 0 ? argv[0]      \
                                                         : nullptr);    \
    const bool collect = ::opentla::obs::compile_time_enabled() &&      \
                         ::opentla::bench::obs_requested();             \
    print_artifact();                                                   \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {         \
      return 1;                                                         \
    }                                                                   \
    if (collect) {                                                      \
      ::opentla::obs::reset();                                          \
      ::opentla::obs::set_enabled(true);                                \
    }                                                                   \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    if (collect) {                                                      \
      ::opentla::obs::set_enabled(false);                               \
      const ::opentla::obs::Snapshot snap = ::opentla::obs::snapshot(); \
      const std::string path =                                          \
          ::opentla::obs::write_bench_json(bench_name, snap);           \
      if (!path.empty()) {                                              \
        std::cerr << "counters exported to " << path << "\n";           \
      }                                                                 \
    }                                                                   \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }
