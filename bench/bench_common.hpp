// Shared benchmark plumbing: every bench binary first prints the paper
// artifact it regenerates (the "figure"), then runs its google-benchmark
// timings.

#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#define OPENTLA_BENCH_MAIN(print_artifact)                        \
  int main(int argc, char** argv) {                               \
    print_artifact();                                             \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }
