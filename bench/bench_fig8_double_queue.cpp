// FIG7/FIG8 — Figures 7-8: the double-queue system CDQ and the refinement
// CDQ => CQ^dbl.
//
// Artifact: the refinement result (Section A.4) for a sweep of N, with the
// state counts of the composite system, checked under the mapping
// q |-> q2 \o buffer(z) \o q1.
//
// Benchmarks: graph construction and full refinement (safety + liveness)
// over N.

#include <iomanip>

#include "bench_common.hpp"
#include "opentla/check/refinement.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/double_queue.hpp"

using namespace opentla;

namespace {

StateGraph low_graph(const DoubleQueueSystem& sys, const CanonicalSpec& cdq) {
  return build_composite_graph(
      sys.vars,
      {{cdq.unhidden(), true}, {make_pin(sys.vars, {sys.q}, "PinQ"), false}},
      /*free_tuples=*/{}, /*pinned=*/{sys.q});
}

void artifact() {
  std::cout << "=== FIG8: CDQ => CQ^dbl by refinement mapping ===\n";
  std::cout << std::setw(4) << "N" << std::setw(8) << "values" << std::setw(9) << "states"
            << std::setw(9) << "edges" << std::setw(12) << "verdict\n";
  for (int n : {1, 2}) {
    DoubleQueueSystem sys = make_double_queue(n, 2);
    CanonicalSpec cdq = make_cdq(sys);
    StateGraph low = low_graph(sys, cdq);
    RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
    RefinementResult r = check_refinement(low, cdq.fairness, sys.dbl.complete, mapping);
    std::cout << std::setw(4) << n << std::setw(8) << 2 << std::setw(9) << r.states
              << std::setw(9) << r.edges << std::setw(12) << (r.holds ? "PROVED" : "FAILED")
              << "\n";
  }
  std::cout << "\n";
}

void BM_CdqGraph(benchmark::State& state) {
  DoubleQueueSystem sys = make_double_queue(static_cast<int>(state.range(0)), 2);
  CanonicalSpec cdq = make_cdq(sys);
  std::size_t states = 0;
  for (auto _ : state) {
    StateGraph g = low_graph(sys, cdq);
    states = g.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_CdqGraph)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_Refinement(benchmark::State& state) {
  DoubleQueueSystem sys = make_double_queue(static_cast<int>(state.range(0)), 2);
  CanonicalSpec cdq = make_cdq(sys);
  StateGraph low = low_graph(sys, cdq);
  RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
  for (auto _ : state) {
    RefinementResult r = check_refinement(low, cdq.fairness, sys.dbl.complete, mapping);
    benchmark::DoNotOptimize(r.holds);
  }
}
BENCHMARK(BM_Refinement)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
