// INDEPENDENCE — the static independence matrix on the largest composed
// ag_queue product: the H2b complete-system product of Figure 9's
// composition instance (QE^dbl environment, G, QM^1, QM^2 over one shared
// universe). The artifact prints the matrix summary and enforces the
// budget the analysis is designed around: computing footprints and the
// full N x N matrix must cost less than 1% of exploring the same product
// (the matrix is a precomputation for exploration-time reductions, so it
// must be ~free by comparison).

#include <chrono>
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "opentla/analysis/independence.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/double_queue.hpp"

using namespace opentla;

namespace {

/// The H2b product of the fig9 instance: every component guarantee
/// unhidden next to the goal's environment, with whatever no part
/// constrains pinned (the goal's hidden buffer; the witness supplies it).
struct Product {
  DoubleQueueSystem sys;
  std::vector<CompositePart> parts;
  std::vector<VarId> pin;
};

/// With `interleaved`, each mover is pinned to its own outputs and state —
/// the optimization verify_composition enables under a Disjoint conjunct
/// (opts.component_outputs). The default product leaves every mover free
/// to enumerate the whole unpinned universe, which the footprint analysis
/// must treat as writes: its matrix is fully dependent, while the
/// interleaved product's matrix recovers the declared disjointness.
Product make_product(bool interleaved) {
  Product p{make_double_queue(1, 2), {}, {}};
  const AGSpec goal = p.sys.goal();
  const std::vector<std::vector<VarId>> outputs = {{}, p.sys.q1_out, p.sys.q2_out};
  auto pinned_for = [&](const std::vector<VarId>& own_out, const std::vector<VarId>& hidden) {
    std::vector<VarId> pinned;
    if (!interleaved || own_out.empty()) return pinned;
    std::set<VarId> own(own_out.begin(), own_out.end());
    own.insert(hidden.begin(), hidden.end());
    for (VarId v = 0; v < p.sys.vars.size(); ++v) {
      if (!own.contains(v)) pinned.push_back(v);
    }
    return pinned;
  };
  p.parts.push_back(
      {goal.assumption, /*mover=*/true, pinned_for(p.sys.env_out, goal.assumption.hidden)});
  const std::vector<AGSpec> components = p.sys.components();
  for (std::size_t j = 0; j < components.size(); ++j) {
    const AGSpec& c = components[j];
    p.parts.push_back({c.guarantee.unhidden(), c.guarantee_is_mover,
                       pinned_for(outputs[j], c.guarantee.hidden)});
  }
  std::set<VarId> covered;
  for (const CompositePart& part : p.parts) {
    covered.insert(part.spec.sub.begin(), part.spec.sub.end());
  }
  for (VarId v = 0; v < p.sys.vars.size(); ++v) {
    if (!covered.contains(v)) p.pin.push_back(v);
  }
  if (!p.pin.empty()) {
    p.parts.push_back({make_pin(p.sys.vars, p.pin, "PinUnconstrained"), /*mover=*/false});
  }
  return p;
}

void print_matrix(const analysis::IndependenceMatrix& m) {
  std::printf("independent pairs: %zu / %zu (density %.3f)\n", m.independent_pairs(),
              m.independent_pairs() + m.dependent_pairs(), m.density());
  for (std::size_t i = 0; i < m.size(); ++i) {
    std::printf("  %-12s ", m.units()[i].name.c_str());
    for (std::size_t j = 0; j < m.size(); ++j) {
      std::putchar(m.independent(i, j) ? '.' : 'X');
    }
    std::putchar('\n');
  }
}

void artifact() {
  std::printf("=== INDEPENDENCE: static matrix on the fig9 H2b product ===\n\n");
  Product p = make_product(/*interleaved=*/false);

  const std::vector<analysis::ActionUnit> units =
      composite_action_units(p.sys.vars, p.parts, {}, p.pin);
  const analysis::IndependenceMatrix m = analysis::compute_independence(p.sys.vars, units);
  std::printf("units: %zu action disjuncts across %zu movers\n", m.size(), p.parts.size());
  std::printf("-- default product (every mover enumerates the whole universe) --\n");
  print_matrix(m);

  Product pi = make_product(/*interleaved=*/true);
  const analysis::IndependenceMatrix mi = analysis::compute_independence(
      pi.sys.vars, composite_action_units(pi.sys.vars, pi.parts, {}, pi.pin));
  std::printf("-- interleaved product (movers pinned to their own outputs) --\n");
  print_matrix(mi);

  // The budget assertion: matrix cost < 1% of exploring the same product.
  // Exploration is timed once (it dominates); the matrix is averaged over
  // enough repetitions to measure reliably.
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  StateGraph g = build_composite_graph(p.sys.vars, p.parts, {}, p.pin);
  const auto t1 = clock::now();
  const double explore_us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() / 1e3;

  constexpr int kReps = 200;
  const auto t2 = clock::now();
  std::size_t sink = 0;
  for (int r = 0; r < kReps; ++r) {
    std::vector<analysis::ActionUnit> us = composite_action_units(p.sys.vars, p.parts, {}, p.pin);
    const analysis::IndependenceMatrix mm =
        analysis::compute_independence(p.sys.vars, std::move(us));
    sink += mm.independent_pairs();
  }
  const auto t3 = clock::now();
  const double analysis_us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t2).count() / 1e3 / kReps;

  std::printf("\nexploration: %.0f us (%zu states, %zu edges)\n", explore_us, g.num_states(),
              g.num_edges());
  std::printf("footprints + matrix: %.1f us (avg of %d; checksum %zu)\n", analysis_us, kReps,
              sink);
  std::printf("analysis / exploration = %.4f%%\n\n", 100.0 * analysis_us / explore_us);
  if (analysis_us >= 0.01 * explore_us) {
    std::fprintf(stderr,
                 "FAIL: independence analysis (%.1f us) exceeds 1%% of product "
                 "exploration (%.0f us)\n",
                 analysis_us, explore_us);
    std::exit(1);
  }
}

void BM_CompositeActionUnits(benchmark::State& state) {
  Product p = make_product(/*interleaved=*/false);
  for (auto _ : state) {
    std::vector<analysis::ActionUnit> units =
        composite_action_units(p.sys.vars, p.parts, {}, p.pin);
    benchmark::DoNotOptimize(units.size());
  }
}
BENCHMARK(BM_CompositeActionUnits)->Unit(benchmark::kMicrosecond);

void BM_IndependenceMatrix(benchmark::State& state) {
  Product p = make_product(/*interleaved=*/false);
  const std::vector<analysis::ActionUnit> units =
      composite_action_units(p.sys.vars, p.parts, {}, p.pin);
  for (auto _ : state) {
    analysis::IndependenceMatrix m = analysis::compute_independence(p.sys.vars, units);
    benchmark::DoNotOptimize(m.dependent_pairs());
  }
}
BENCHMARK(BM_IndependenceMatrix)->Unit(benchmark::kMicrosecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
