// VMEVAL — per-expression evaluation cost: recursive tree walker vs the
// flat bytecode VM (opentla/vm) on the expression shapes the engine
// actually runs hot — guards, UNCHANGED frames, tuple compares, residual
// conjuncts, bounded quantifiers, and a fig-style composite invariant.
//
// Artifact: for each shape, the compiled program size (instructions,
// registers) and a tree/VM agreement check on a sample state; then the
// vm_programs_compiled / vm_instrs_executed counters for one pass over
// every shape.
//
// Benchmarks: one tree/vm pair per shape. The two rows of a pair evaluate
// the identical expression on the identical state triple; only the
// evaluator changes (the vm::set_tree_eval_for_test dispatch that every
// engine integration site uses).

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "opentla/expr/eval.hpp"
#include "opentla/expr/expr.hpp"
#include "opentla/state/var_table.hpp"
#include "opentla/vm/compile.hpp"
#include "opentla/vm/interp.hpp"

using namespace opentla;

namespace {

/// A 6-variable universe shaped like the composite queue systems: two
/// counters, two bits, and two short sequences.
struct Universe {
  VarTable vars;
  VarId a, b, s1, s2, q1, q2;
  State cur, nxt;

  Universe() {
    a = vars.declare("a", range_domain(0, 7));
    b = vars.declare("b", range_domain(0, 7));
    s1 = vars.declare("s1", range_domain(0, 1));
    s2 = vars.declare("s2", range_domain(0, 1));
    q1 = vars.declare("q1", seq_domain(range_domain(0, 1), 2));
    q2 = vars.declare("q2", seq_domain(range_domain(0, 1), 2));
    cur = State({Value::integer(3), Value::integer(5), Value::integer(1),
                 Value::integer(0), Value::tuple({Value::integer(1)}),
                 Value::tuple({Value::integer(0), Value::integer(1)})});
    nxt = State({Value::integer(4), Value::integer(5), Value::integer(1),
                 Value::integer(1), Value::tuple({Value::integer(1)}),
                 Value::tuple({Value::integer(0), Value::integer(1)})});
  }
};

struct Shape {
  const char* name;
  Expr expr;
  bool action;  // needs the next state
};

std::vector<Shape> shapes(const Universe& u) {
  std::vector<Shape> out;
  // Guard: the fused-compare fast path.
  out.push_back({"guard", ex::land(ex::eq(ex::var(u.s1), ex::integer(1)),
                                   ex::lt(ex::var(u.a), ex::var(u.b))),
                 false});
  // UNCHANGED frame over four variables — one superinstruction.
  out.push_back({"unchanged", ex::unchanged({u.b, u.s2, u.q1, u.q2}), true});
  // Tuple compare: <<a', s1'>> = <<b, s2>> without materializing tuples.
  out.push_back({"tuple_eq",
                 ex::eq(ex::make_tuple({ex::primed_var(u.a), ex::primed_var(u.s1)}),
                        ex::make_tuple({ex::var(u.b), ex::var(u.s2)})),
                 true});
  // Residual conjunct: the shape for_each_completion_pruned evaluates at
  // every bind point.
  out.push_back({"residual", ex::land(ex::le(ex::primed_var(u.a), ex::var(u.b)),
                                      ex::neq(ex::primed_var(u.a), ex::var(u.a))),
                 true});
  // Bounded quantifier cooperating with short-circuit exit.
  out.push_back({"exists",
                 ex::exists_val("i", range_domain(0, 7),
                                ex::eq(ex::add(ex::var(u.a), ex::local("i")),
                                       ex::var(u.b))),
                 false});
  // Composite invariant: arithmetic, sequence ops, and nesting — the
  // check_invariant workload.
  out.push_back(
      {"invariant",
       ex::land({ex::le(ex::len(ex::var(u.q1)), ex::integer(2)),
                 ex::le(ex::len(ex::var(u.q2)), ex::integer(2)),
                 ex::implies(ex::eq(ex::var(u.s1), ex::var(u.s2)),
                             ex::le(ex::var(u.a), ex::add(ex::var(u.b),
                                                          ex::integer(2)))),
                 ex::forall_val(
                     "i", range_domain(1, 2),
                     ex::implies(
                         ex::le(ex::local("i"), ex::len(ex::var(u.q2))),
                         ex::le(ex::index(ex::var(u.q2), ex::local("i")),
                                ex::integer(1))))}),
       false});
  return out;
}

void artifact() {
  std::cout << "=== VMEVAL: expression evaluation, tree walker vs bytecode VM ===\n";
  Universe u;
  const std::vector<Shape> ss = shapes(u);

  std::cout << std::setw(11) << "shape" << std::setw(8) << "instrs"
            << std::setw(7) << "regs" << std::setw(10) << "agree" << "\n";
  for (const Shape& sh : ss) {
    const vm::Program p = vm::compile(sh.expr);
    EvalContext tctx;
    tctx.vars = &u.vars;
    tctx.current = &u.cur;
    tctx.next = sh.action ? &u.nxt : nullptr;
    vm::VmContext vctx;
    vctx.vars = &u.vars;
    vctx.current = &u.cur;
    vctx.next = sh.action ? &u.nxt : nullptr;
    const bool agree = eval(sh.expr, tctx) == vm::run(p, vctx);
    std::cout << std::setw(11) << sh.name << std::setw(8) << p.instrs.size()
              << std::setw(7) << p.num_regs << std::setw(10)
              << (agree ? "yes" : "MISMATCH") << "\n";
  }

  if (obs::compile_time_enabled()) {
    obs::reset();
    obs::set_enabled(true);
    vm::VmContext vctx;
    vctx.vars = &u.vars;
    vctx.current = &u.cur;
    for (const Shape& sh : ss) {
      const vm::CompiledExpr ce(sh.expr);
      vctx.next = sh.action ? &u.nxt : nullptr;
      benchmark::DoNotOptimize(ce.eval(vctx));
    }
    obs::set_enabled(false);
    const obs::Snapshot snap = obs::snapshot();
    std::cout << "\none pass over all shapes: vm_programs_compiled = "
              << snap.counter(obs::Counter::VmProgramsCompiled)
              << ", vm_instrs_executed = "
              << snap.counter(obs::Counter::VmInstrsExecuted) << "\n\n";
  } else {
    std::cout << "\n(OPENTLA_OBS=OFF build: vm counters unavailable)\n\n";
  }
}

/// One benchmark over all shapes; range(0) picks the evaluator. Evaluating
/// through CompiledExpr measures the same dispatch the engine pays.
void BM_EvalShapes(benchmark::State& state) {
  vm::set_tree_eval_for_test(state.range(0) == 0);
  Universe u;
  const std::vector<Shape> ss = shapes(u);
  std::vector<vm::CompiledExpr> compiled;
  compiled.reserve(ss.size());
  for (const Shape& sh : ss) compiled.emplace_back(sh.expr);
  vm::VmContext ctx;
  ctx.vars = &u.vars;
  ctx.current = &u.cur;
  for (auto _ : state) {
    for (std::size_t i = 0; i < ss.size(); ++i) {
      ctx.next = ss[i].action ? &u.nxt : nullptr;
      benchmark::DoNotOptimize(compiled[i].eval(ctx));
    }
  }
  vm::set_tree_eval_for_test(false);
  state.SetLabel(state.range(0) == 0 ? "tree" : "vm");
}
BENCHMARK(BM_EvalShapes)->Arg(0)->Arg(1)->Unit(benchmark::kNanosecond);

/// Per-shape pairs so the artifact tables in EXPERIMENTS.md can report
/// which idioms gain the most.
void BM_EvalOneShape(benchmark::State& state) {
  vm::set_tree_eval_for_test(state.range(1) == 0);
  Universe u;
  const std::vector<Shape> ss = shapes(u);
  const Shape& sh = ss[static_cast<std::size_t>(state.range(0))];
  const vm::CompiledExpr ce(sh.expr);
  vm::VmContext ctx;
  ctx.vars = &u.vars;
  ctx.current = &u.cur;
  ctx.next = sh.action ? &u.nxt : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ce.eval(ctx));
  }
  vm::set_tree_eval_for_test(false);
  state.SetLabel(std::string(sh.name) + "/" +
                 (state.range(1) == 0 ? "tree" : "vm"));
}
BENCHMARK(BM_EvalOneShape)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1}})
    ->Unit(benchmark::kNanosecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
