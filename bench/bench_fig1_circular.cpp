// FIG1 — Section 1 / Figure 1: circular assumption/guarantee composition.
//
// Artifact: the two verdicts the paper's introduction builds on —
//   safety guarantees ("always 0"):      composition VALID
//   liveness guarantees ("eventually 1"): composition INVALID
// both established semantically (brute force over lassos) and through the
// Composition Theorem.
//
// Benchmarks: theorem verification and brute-force validity cost as the
// wire domain grows.

#include "bench_common.hpp"
#include "opentla/ag/composition_theorem.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/semantics/enumerate.hpp"

using namespace opentla;

namespace {

struct Circular {
  VarTable vars;
  VarId c, d;
  CanonicalSpec mc0, md0, mc1, md1;
};

CanonicalSpec always_zero(VarId v, std::string name) {
  CanonicalSpec s;
  s.name = std::move(name);
  s.init = ex::eq(ex::var(v), ex::integer(0));
  s.next = ex::bottom();
  s.sub = {v};
  return s;
}

CanonicalSpec eventually_one(VarId v, std::string name) {
  CanonicalSpec s;
  s.name = std::move(name);
  s.init = ex::top();
  s.next = ex::land(ex::eq(ex::var(v), ex::integer(0)),
                    ex::eq(ex::primed_var(v), ex::integer(1)));
  s.sub = {v};
  Fairness wf;
  wf.kind = Fairness::Kind::Weak;
  wf.sub = {v};
  wf.action = s.next;
  wf.label = "WF";
  s.fairness.push_back(std::move(wf));
  return s;
}

Circular make(int domain_top) {
  Circular sys;
  sys.c = sys.vars.declare("c", range_domain(0, domain_top));
  sys.d = sys.vars.declare("d", range_domain(0, domain_top));
  sys.mc0 = always_zero(sys.c, "Mc0");
  sys.md0 = always_zero(sys.d, "Md0");
  sys.mc1 = eventually_one(sys.c, "Mc1");
  sys.md1 = eventually_one(sys.d, "Md1");
  return sys;
}

void artifact() {
  std::cout << "=== FIG1: circular A/G composition (Section 1, Figure 1) ===\n";
  Circular sys = make(1);

  Formula safety = tf::implies(
      tf::land(tf::while_plus(sys.md0, sys.mc0), tf::while_plus(sys.mc0, sys.md0)),
      tf::land(tf::spec(sys.mc0), tf::spec(sys.md0)));
  BoundedValidity s = check_validity_bounded(sys.vars, safety, 3);
  std::cout << "safety   (Md0 +> Mc0) /\\ (Mc0 +> Md0) => Mc0 /\\ Md0 : "
            << (s.valid ? "VALID" : "INVALID") << "  [" << s.behaviors_checked
            << " behaviors]\n";

  Formula liveness = tf::implies(
      tf::land(tf::while_plus(sys.md1, sys.mc1), tf::while_plus(sys.mc1, sys.md1)),
      tf::land(tf::spec(sys.mc1), tf::spec(sys.md1)));
  BoundedValidity l = check_validity_bounded(sys.vars, liveness, 2);
  std::cout << "liveness (Md1 +> Mc1) /\\ (Mc1 +> Md1) => Mc1 /\\ Md1 : "
            << (l.valid ? "VALID" : "INVALID") << "  [" << l.behaviors_checked
            << " behaviors]\n";

  ProofReport proof = verify_composition(
      sys.vars, {{sys.md0, sys.mc0}, {sys.mc0, sys.md0}},
      property_as_ag(conjunction_as_spec({sys.mc0, sys.md0}, "Both")));
  std::cout << "Composition Theorem, safety instance: "
            << (proof.all_discharged() ? "Q.E.D." : "NOT PROVED") << " ("
            << proof.obligations.size() << " obligations, " << proof.total_millis()
            << " ms)\n\n";
}

void BM_TheoremSafety(benchmark::State& state) {
  Circular sys = make(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ProofReport proof = verify_composition(
        sys.vars, {{sys.md0, sys.mc0}, {sys.mc0, sys.md0}},
        property_as_ag(conjunction_as_spec({sys.mc0, sys.md0}, "Both")));
    benchmark::DoNotOptimize(proof.all_discharged());
  }
}
BENCHMARK(BM_TheoremSafety)->Arg(1)->Arg(3)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_BruteForceValidity(benchmark::State& state) {
  Circular sys = make(1);
  Formula safety = tf::implies(
      tf::land(tf::while_plus(sys.md0, sys.mc0), tf::while_plus(sys.mc0, sys.md0)),
      tf::land(tf::spec(sys.mc0), tf::spec(sys.md0)));
  for (auto _ : state) {
    BoundedValidity r =
        check_validity_bounded(sys.vars, safety, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(r.valid);
  }
}
BENCHMARK(BM_BruteForceValidity)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

OPENTLA_BENCH_MAIN(artifact)
