#!/usr/bin/env bash
# End-to-end check of the `tlacheck analyze` subcommand:
#
#   1. analyze on specs/counter.tla emits schema-valid JSON with the known
#      golden facts: units [Incr, Wrap], both footprints {x}, a fully
#      dependent 2x2 matrix, and the provenance reason "both write 'x'";
#   2. --footprints / --independence select exactly their section;
#   3. a multi-file run over all seven ag_queue modules shares one
#      variable universe, finds cross-module independent pairs, and is
#      byte-for-byte deterministic across two runs;
#   4. exit codes follow the CLI contract: 0 on success, 2 on a missing
#      file and on an unknown flag;
#   5. in an obs-on build, `analyze --stats` surfaces the
#      analysis_pairs_independent / analysis_pairs_dependent counters; in
#      --obs-off mode (binary built with -DOPENTLA_OBS=OFF) the analysis
#      still works and only the counter probe is skipped.
#
# Usage: tools/check_analyze_cli.sh <tlacheck-binary> [--obs-off]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
tlacheck="${1:?usage: check_analyze_cli.sh <tlacheck-binary> [--obs-off]}"
obs_off=0
[ "${2:-}" = "--obs-off" ] && obs_off=1
specs="${repo_root}/specs"
schema="${repo_root}/tools/analyze_schema.json"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "check_analyze_cli: FAIL: $*" >&2
  exit 1
}

validate_schema() {
  python3 - "$schema" "$1" <<'PY'
import json, sys

schema = json.load(open(sys.argv[1]))
data = json.load(open(sys.argv[2]))

def check(value, shape, path):
    if "const" in shape:
        assert value == shape["const"], f"{path}: {value!r} != {shape['const']!r}"
        return
    t = shape.get("type")
    if t == "object":
        assert isinstance(value, dict), f"{path}: not an object"
        for key in shape.get("required", []):
            assert key in value, f"{path}: missing required '{key}'"
        props = shape.get("properties", {})
        if shape.get("additionalProperties") is False:
            for key in value:
                assert key in props, f"{path}: unexpected key '{key}'"
        for key, sub in props.items():
            if key in value:
                check(value[key], sub, f"{path}.{key}")
    elif t == "array":
        assert isinstance(value, list), f"{path}: not an array"
        items = shape.get("items")
        if items:
            for i, elem in enumerate(value):
                check(elem, items, f"{path}[{i}]")
    elif t == "string":
        assert isinstance(value, str), f"{path}: not a string"
    elif t == "integer":
        assert isinstance(value, int) and not isinstance(value, bool), f"{path}: not an integer"
        if "minimum" in shape:
            assert value >= shape["minimum"], f"{path}: {value} < minimum"
    elif t == "number":
        assert isinstance(value, (int, float)) and not isinstance(value, bool), f"{path}: not a number"
    elif t == "boolean":
        assert isinstance(value, bool), f"{path}: not a boolean"

check(data, schema, "$")
print(f"  schema-valid: {sys.argv[2].rsplit('/', 1)[-1]}")
PY
}

# --- 1. Golden facts for counter.tla. ---

"$tlacheck" analyze "$specs/counter.tla" --format json > "$workdir/counter.json" \
  || fail "analyze counter.tla: expected exit 0, got $?"
validate_schema "$workdir/counter.json"
python3 - "$workdir/counter.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data["schema"] == "opentla-analyze-v1", data["schema"]
assert data["modules"] == ["Counter"], data["modules"]
assert [u["name"] for u in data["units"]] == ["Incr", "Wrap"], data["units"]
for fp in data["footprints"]:
    assert fp["reads"] == ["x"] and fp["writes"] == ["x"], fp
    assert not fp["conservative"], fp
ind = data["independence"]
assert ind["matrix"] == [[0, 0], [0, 0]], ind["matrix"]
assert ind["independent_pairs"] == 0 and ind["dependent_pairs"] == 1, ind
assert ind["dependent"] == [
    {"a": "Incr", "b": "Wrap", "reason": "both write 'x'"}
], ind["dependent"]
PY
echo "ok: counter.tla golden facts (units, footprints, matrix, provenance)"

# Human format names both units and prints the pair summary.
out="$("$tlacheck" analyze "$specs/counter.tla")"
grep -q "Incr" <<<"$out" || fail "human output does not name Incr"
grep -q "independence:" <<<"$out" || fail "human output lacks the independence summary"

# --- 2. Section flags select exactly their section. ---

"$tlacheck" analyze "$specs/counter.tla" --format json --footprints \
  > "$workdir/fp_only.json"
python3 - "$workdir/fp_only.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert "footprints" in data and "independence" not in data, sorted(data)
PY
"$tlacheck" analyze "$specs/counter.tla" --format json --independence \
  > "$workdir/ind_only.json"
python3 - "$workdir/ind_only.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert "independence" in data and "footprints" not in data, sorted(data)
PY
validate_schema "$workdir/fp_only.json"
validate_schema "$workdir/ind_only.json"
echo "ok: --footprints / --independence select their section"

# --- 3. Multi-file ag_queue run: shared universe, determinism. ---

ag_files=("$specs"/ag_queue/g.tla "$specs"/ag_queue/qe1.tla \
          "$specs"/ag_queue/qm1.tla "$specs"/ag_queue/qe2.tla \
          "$specs"/ag_queue/qm2.tla "$specs"/ag_queue/qedbl.tla \
          "$specs"/ag_queue/qmdbl.tla)
"$tlacheck" analyze "${ag_files[@]}" --format json > "$workdir/ag1.json" \
  || fail "analyze over ag_queue modules failed with $?"
"$tlacheck" analyze "${ag_files[@]}" --format json > "$workdir/ag2.json" \
  || fail "second analyze over ag_queue modules failed with $?"
cmp -s "$workdir/ag1.json" "$workdir/ag2.json" \
  || fail "analyze output is not deterministic across runs"
validate_schema "$workdir/ag1.json"
python3 - "$workdir/ag1.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert len(data["modules"]) == 7, data["modules"]
ind = data["independence"]
# Modules over disjoint channels (e.g. QE1's i1/z1 vs QE2's i2/z2) must
# show up as statically independent pairs across the shared universe.
assert ind["independent_pairs"] > 0, ind
assert ind["dependent_pairs"] > 0, ind
n = len(data["units"])
m = ind["matrix"]
assert len(m) == n and all(len(row) == n for row in m), "matrix not NxN"
assert all(m[i][j] == m[j][i] for i in range(n) for j in range(n)), "matrix not symmetric"
assert all(m[i][i] == 0 for i in range(n)), "diagonal must be dependent"
PY
echo "ok: ag_queue multi-file run (7 modules, deterministic, symmetric matrix)"

# --- 4. Exit codes. ---

rc=0
"$tlacheck" analyze "$specs/no_such_spec.tla" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "missing file: expected exit 2, got $rc"
rc=0
"$tlacheck" analyze "$specs/counter.tla" --no-such-flag > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "unknown flag: expected exit 2, got $rc"
rc=0
"$tlacheck" analyze > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "no input files: expected exit 2, got $rc"
echo "ok: exit codes (0 success, 2 missing file / bad flag / no input)"

# --- 5. Obs counters (obs-on builds only; analysis itself needs no obs). ---

if [ "$obs_off" -eq 1 ]; then
  echo "ok: --obs-off build analyzed everything above without the obs registry"
  echo "check_analyze_cli: all checks passed (--obs-off mode)"
  exit 0
fi

out="$("$tlacheck" analyze "$specs/counter.tla" --stats)"
grep -q "analysis_pairs_independent" <<<"$out" \
  || fail "--stats lacks analysis_pairs_independent"
grep -q "analysis_pairs_dependent" <<<"$out" \
  || fail "--stats lacks analysis_pairs_dependent"
echo "ok: analysis_pairs_* counters surface via --stats"

echo "check_analyze_cli: all checks passed"
