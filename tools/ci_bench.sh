#!/usr/bin/env bash
# Smoke-run every bench binary with a tiny min-time and validate the
# BENCH_<name>.json counter export each one writes against the checked-in
# schema (tools/bench_schema.json). Then repeat the run in the sanitized
# configuration so the instrumented hot paths get ASan/UBSan coverage too.
#
# Usage: tools/ci_bench.sh [build-dir [sanitize-build-dir]]
#   (defaults: build, build-sanitize — both are configured+built if needed)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
san_dir="${2:-${repo_root}/build-sanitize}"
schema="${repo_root}/tools/bench_schema.json"

# google-benchmark in this toolchain takes a plain double (seconds).
min_time="--benchmark_min_time=0.01"

validate() {
  # validate <json-file>: structural check against tools/bench_schema.json.
  # Hand-rolled (no jsonschema module dependency); the schema file is the
  # single source of truth for the required key sets.
  python3 - "$schema" "$1" <<'PY'
import json, re, sys

schema_path, data_path = sys.argv[1], sys.argv[2]
schema = json.load(open(schema_path))
data = json.load(open(data_path))

errors = []

def need(cond, msg):
    if not cond:
        errors.append(msg)

need(isinstance(data, dict), "top level is not an object")
for key in schema["required"]:
    need(key in data, f"missing top-level key '{key}'")
need(data.get("schema") == schema["properties"]["schema"]["const"],
     f"schema tag is {data.get('schema')!r}")
need(isinstance(data.get("bench"), str) and data.get("bench"),
     "bench name missing or empty")
def nonneg_int(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0

for section in ("counters", "gauges"):
    block = data.get(section)
    need(isinstance(block, dict), f"'{section}' is not an object")
    if not isinstance(block, dict):
        continue
    for key in schema["properties"][section]["required"]:
        need(key in block, f"missing {section} key '{key}'")
    for key, value in block.items():
        need(re.fullmatch(r"[a-z][a-z0-9_]*", key),
             f"{section} key '{key}' is not snake_case")
        need(nonneg_int(value),
             f"{section}['{key}'] = {value!r} is not a non-negative integer")

# labeled: {family: {label: count}}; label values are free-form spec names.
labeled = data.get("labeled")
need(isinstance(labeled, dict), "'labeled' is not an object")
if isinstance(labeled, dict):
    for key in schema["properties"]["labeled"]["required"]:
        need(key in labeled, f"missing labeled family '{key}'")
    for family, counts in labeled.items():
        need(re.fullmatch(r"[a-z][a-z0-9_]*", family),
             f"labeled family '{family}' is not snake_case")
        need(isinstance(counts, dict),
             f"labeled['{family}'] is not an object")
        if isinstance(counts, dict):
            for label, value in counts.items():
                need(nonneg_int(value),
                     f"labeled['{family}']['{label}'] = {value!r} is not a "
                     "non-negative integer")

# histograms: {name: {buckets: [32 ints], sum, count}}.
hist_schema = schema["properties"]["histograms"]
hists = data.get("histograms")
need(isinstance(hists, dict), "'histograms' is not an object")
if isinstance(hists, dict):
    for key in hist_schema["required"]:
        need(key in hists, f"missing histogram '{key}'")
    n_buckets = hist_schema["patternProperties"][
        "^[a-z][a-z0-9_]*$"]["properties"]["buckets"]["minItems"]
    for name, hist in hists.items():
        need(re.fullmatch(r"[a-z][a-z0-9_]*", name),
             f"histogram name '{name}' is not snake_case")
        need(isinstance(hist, dict), f"histograms['{name}'] is not an object")
        if not isinstance(hist, dict):
            continue
        buckets = hist.get("buckets")
        need(isinstance(buckets, list) and len(buckets) == n_buckets
             and all(nonneg_int(b) for b in buckets),
             f"histograms['{name}'].buckets is not a list of "
             f"{n_buckets} non-negative integers")
        need(nonneg_int(hist.get("sum")),
             f"histograms['{name}'].sum is not a non-negative integer")
        need(nonneg_int(hist.get("count")),
             f"histograms['{name}'].count is not a non-negative integer")
        if isinstance(buckets, list) and all(nonneg_int(b) for b in buckets):
            need(sum(buckets) == hist.get("count"),
                 f"histograms['{name}']: bucket total {sum(buckets)} != "
                 f"count {hist.get('count')!r}")
        for key in hist:
            need(key in ("buckets", "sum", "count"),
                 f"histograms['{name}'] has unexpected key '{key}'")

# memory: per-domain gauges + alloc-size histograms + tracked totals (v3).
mem_schema = schema["properties"]["memory"]
mem = data.get("memory")
need(isinstance(mem, dict), "'memory' is not an object")
if isinstance(mem, dict):
    for key in mem_schema["required"]:
        need(key in mem, f"missing memory key '{key}'")
    for key in ("tracked_live_bytes", "tracked_peak_bytes", "bytes_per_state"):
        need(nonneg_int(mem.get(key)),
             f"memory['{key}'] = {mem.get(key)!r} is not a non-negative integer")
    dom_schema = mem_schema["properties"]["domains"]
    domains = mem.get("domains")
    need(isinstance(domains, dict), "memory.domains is not an object")
    if isinstance(domains, dict):
        for key in dom_schema["required"]:
            need(key in domains, f"missing memory domain '{key}'")
        n_buckets = dom_schema["patternProperties"][
            "^[a-z][a-z0-9_]*$"]["properties"]["alloc_size"][
            "properties"]["buckets"]["minItems"]
        for dname, dom in domains.items():
            need(re.fullmatch(r"[a-z][a-z0-9_]*", dname),
                 f"memory domain '{dname}' is not snake_case")
            need(isinstance(dom, dict), f"memory.domains['{dname}'] is not an object")
            if not isinstance(dom, dict):
                continue
            for key in ("live_bytes", "peak_bytes", "allocs"):
                need(nonneg_int(dom.get(key)),
                     f"memory.domains['{dname}'].{key} = {dom.get(key)!r} is not "
                     "a non-negative integer")
            alloc = dom.get("alloc_size")
            need(isinstance(alloc, dict),
                 f"memory.domains['{dname}'].alloc_size is not an object")
            if isinstance(alloc, dict):
                buckets = alloc.get("buckets")
                need(isinstance(buckets, list) and len(buckets) == n_buckets
                     and all(nonneg_int(b) for b in buckets),
                     f"memory.domains['{dname}'].alloc_size.buckets is not a list "
                     f"of {n_buckets} non-negative integers")
                need(nonneg_int(alloc.get("sum")),
                     f"memory.domains['{dname}'].alloc_size.sum is not a "
                     "non-negative integer")
                need(nonneg_int(alloc.get("count")),
                     f"memory.domains['{dname}'].alloc_size.count is not a "
                     "non-negative integer")
                if isinstance(buckets, list) and all(nonneg_int(b) for b in buckets):
                    need(sum(buckets) == alloc.get("count"),
                         f"memory.domains['{dname}'].alloc_size: bucket total "
                         f"{sum(buckets)} != count {alloc.get('count')!r}")
            for key in dom:
                need(key in ("live_bytes", "peak_bytes", "allocs", "alloc_size"),
                     f"memory.domains['{dname}'] has unexpected key '{key}'")
    for key in mem:
        need(key in mem_schema["properties"],
             f"memory has unexpected key '{key}'")

for key in data:
    need(key in schema["properties"], f"unexpected top-level key '{key}'")

if errors:
    print(f"{data_path}: SCHEMA VIOLATION", file=sys.stderr)
    for e in errors:
        print(f"  - {e}", file=sys.stderr)
    sys.exit(1)
print(f"{data_path}: ok")
PY
}

run_config() {
  # run_config <build-dir> <extra cmake flags...>. With record_history=1
  # (the regular configuration only — sanitized timings would skew the
  # series), every run is also appended to bench/history.jsonl via
  # tools/bench_history.sh, which warns on a >20% wall-time regression
  # against the previous entry.
  local dir="$1"
  shift
  cmake -B "$dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "$dir" -j"$(nproc)"

  local outdir="$dir/bench-json"
  rm -rf "$outdir"
  mkdir -p "$outdir"

  local found=0
  local bench
  for bench in "$dir"/bench/bench_*; do
    [ -x "$bench" ] || continue
    found=1
    local name
    name="$(basename "$bench")"
    echo "== $name =="
    (cd "$outdir" && "$bench" "$min_time" \
       "--benchmark_out=${name}.gbench.json" --benchmark_out_format=json \
       >/dev/null)
    local json="$outdir/BENCH_${name}.json"
    if [ ! -f "$json" ]; then
      echo "error: $name did not write BENCH_${name}.json" >&2
      exit 1
    fi
    validate "$json"
    if [ "${record_history:-0}" -eq 1 ]; then
      "$repo_root/tools/bench_history.sh" "$json"
    fi
  done
  if [ "$found" -eq 0 ]; then
    echo "error: no bench binaries found under $dir/bench" >&2
    exit 1
  fi

  # The parallel-scaling bench once more, pinned to the 1- and 2-worker
  # series (serial engine + the smallest real worker pool), so both engines
  # demonstrably run and the re-written export still validates.
  local pbench="$dir/bench/bench_parallel_scaling"
  if [ ! -x "$pbench" ]; then
    echo "error: bench_parallel_scaling missing under $dir/bench" >&2
    exit 1
  fi
  echo "== bench_parallel_scaling (1 and 2 threads) =="
  (cd "$outdir" && "$pbench" "$min_time" '--benchmark_filter=/(1|2)$' >/dev/null)
  validate "$outdir/BENCH_bench_parallel_scaling.json"

  # The successor-pruning microbench must exist and have produced its
  # export above (its artifact carries the enumerated-vs-pruned counts the
  # PRUNING experiment records).
  if [ ! -x "$dir/bench/bench_successor_pruning" ]; then
    echo "error: bench_successor_pruning missing under $dir/bench" >&2
    exit 1
  fi
  if [ ! -f "$outdir/BENCH_bench_successor_pruning.json" ]; then
    echo "error: bench_successor_pruning did not export its counters" >&2
    exit 1
  fi

  # The independence microbench carries its own hard budget (the artifact
  # exits 1 if the static matrix costs >= 1% of exploring the fig9 H2b
  # product), so its export existing above means the budget held.
  if [ ! -x "$dir/bench/bench_independence" ]; then
    echo "error: bench_independence missing under $dir/bench" >&2
    exit 1
  fi
  if [ ! -f "$outdir/BENCH_bench_independence.json" ]; then
    echo "error: bench_independence did not export its counters" >&2
    exit 1
  fi

  # The memory-accounting microbench pins the headline bytes_per_state
  # (stability across runs + per-domain attribution; the MEMORY experiment
  # records its numbers).
  if [ ! -x "$dir/bench/bench_memory_accounting" ]; then
    echo "error: bench_memory_accounting missing under $dir/bench" >&2
    exit 1
  fi
  if [ ! -f "$outdir/BENCH_bench_memory_accounting.json" ]; then
    echo "error: bench_memory_accounting did not export its counters" >&2
    exit 1
  fi

  # The VM evaluation microbench pins the tree-vs-bytecode comparison the
  # VMEVAL experiment records (its artifact also cross-checks tree/VM
  # agreement per shape and the vm_* counters).
  if [ ! -x "$dir/bench/bench_vm_eval" ]; then
    echo "error: bench_vm_eval missing under $dir/bench" >&2
    exit 1
  fi
  if [ ! -f "$outdir/BENCH_bench_vm_eval.json" ]; then
    echo "error: bench_vm_eval did not export its counters" >&2
    exit 1
  fi

  # The analyze JSON surface: run the multi-module ag_queue analysis and
  # validate it against tools/analyze_schema.json (hand-rolled, same
  # no-jsonschema-dependency policy as validate()).
  echo "== tlacheck analyze (ag_queue, schema check) =="
  "$dir/tools/tlacheck" analyze \
    "$repo_root"/specs/ag_queue/g.tla \
    "$repo_root"/specs/ag_queue/qe1.tla "$repo_root"/specs/ag_queue/qm1.tla \
    "$repo_root"/specs/ag_queue/qe2.tla "$repo_root"/specs/ag_queue/qm2.tla \
    "$repo_root"/specs/ag_queue/qedbl.tla "$repo_root"/specs/ag_queue/qmdbl.tla \
    --format json > "$outdir/analyze_ag_queue.json"
  python3 - "$repo_root/tools/analyze_schema.json" \
    "$outdir/analyze_ag_queue.json" <<'PY'
import json, sys

schema = json.load(open(sys.argv[1]))
data = json.load(open(sys.argv[2]))

def check(value, shape, path):
    if "const" in shape:
        assert value == shape["const"], f"{path}: {value!r} != {shape['const']!r}"
        return
    t = shape.get("type")
    if t == "object":
        assert isinstance(value, dict), f"{path}: not an object"
        for key in shape.get("required", []):
            assert key in value, f"{path}: missing required '{key}'"
        props = shape.get("properties", {})
        if shape.get("additionalProperties") is False:
            for key in value:
                assert key in props, f"{path}: unexpected key '{key}'"
        for key, sub in props.items():
            if key in value:
                check(value[key], sub, f"{path}.{key}")
    elif t == "array":
        assert isinstance(value, list), f"{path}: not an array"
        if "items" in shape:
            for i, elem in enumerate(value):
                check(elem, shape["items"], f"{path}[{i}]")
    elif t == "string":
        assert isinstance(value, str), f"{path}: not a string"
    elif t == "integer":
        assert isinstance(value, int) and not isinstance(value, bool), f"{path}: not an integer"
    elif t == "number":
        assert isinstance(value, (int, float)) and not isinstance(value, bool), f"{path}: not a number"
    elif t == "boolean":
        assert isinstance(value, bool), f"{path}: not a boolean"

check(data, schema, "$")
ind = data["independence"]
assert ind["independent_pairs"] > 0 and ind["dependent_pairs"] > 0, ind
print(f"{sys.argv[2]}: ok "
      f"({ind['independent_pairs']}/{ind['independent_pairs'] + ind['dependent_pairs']} "
      "pairs independent)")
PY
}

echo "--- bench smoke: regular configuration ($build_dir) ---"
record_history=1
run_config "$build_dir"
record_history=0

echo "--- bench smoke: sanitized configuration ($san_dir) ---"
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
run_config "$san_dir" -DOPENTLA_SANITIZE=ON

echo "all bench exports validated against $(basename "$schema")"
