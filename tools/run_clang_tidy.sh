#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over all first-party
# sources, using the compile database from an existing CMake build directory.
#
# Usage: tools/run_clang_tidy.sh [build-dir]   (default: build)
#
# Degrades gracefully: exits 0 with a notice when clang-tidy is not installed,
# so CI images without LLVM tooling don't fail the pipeline.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

tidy_bin="$(command -v clang-tidy || true)"
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (not an error)." >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy: no compile_commands.json in ${build_dir}; configuring..." >&2
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tools" -name '*.cpp' | sort)

status=0
for f in "${sources[@]}"; do
  echo "== clang-tidy ${f#${repo_root}/}"
  "${tidy_bin}" -p "${build_dir}" --quiet "$f" || status=1
done
exit "${status}"
