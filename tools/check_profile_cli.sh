#!/usr/bin/env bash
# End-to-end check of the obs v4 profiling surface on `tlacheck profile`:
#
#   1. the human profile render carries the top-N span table (--top) with
#      the self/total/count columns and the per-domain memory-accounting
#      section (tracked_peak_bytes, bytes_per_state);
#   2. --format folded emits the collapsed-stack format flamegraph.pl
#      consumes ("name[;name...] <count>" per line, nothing else), both
#      with a live sampler (--sample-hz) and from recorded spans alone;
#   3. --format trace carries the memory gauges as Chrome trace_event
#      "ph":"C" counter series (mem_<domain>, mem_tracked);
#   4. the wrapped subcommand's exit code is forwarded, and bad --top /
#      --sample-hz values are usage errors (exit 2);
#   5. in --obs-off mode (binary built with -DOPENTLA_OBS=OFF), profile
#      still runs (empty profile, exit 0) but --sample-hz is rejected
#      with exit 2 and a message naming OPENTLA_OBS=ON — steps 1-3 are
#      replaced by this probe.
#
# Usage: tools/check_profile_cli.sh <tlacheck-binary> [--obs-off]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
tlacheck="${1:?usage: check_profile_cli.sh <tlacheck-binary> [--obs-off]}"
obs_off=0
[ "${2:-}" = "--obs-off" ] && obs_off=1
specs="${repo_root}/specs"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "check_profile_cli: FAIL: $*" >&2
  exit 1
}

# --- 4 (shared). Bad option values are usage errors in every build. ---

rc=0
"$tlacheck" profile states "$specs/counter.tla" --top 0 > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "--top 0: expected exit 2, got $rc"
rc=0
"$tlacheck" profile states "$specs/counter.tla" --sample-hz 0 > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "--sample-hz 0: expected exit 2, got $rc"
echo "ok: non-positive --top / --sample-hz rejected as usage errors"

# --- 5 (--obs-off). The OFF binary rejects the sampler, keeps profile. ---

if [ "$obs_off" -eq 1 ]; then
  rc=0
  "$tlacheck" profile states "$specs/counter.tla" --sample-hz 100 \
    > /dev/null 2> "$workdir/off.stderr" || rc=$?
  [ "$rc" -eq 2 ] || fail "OFF build: --sample-hz expected exit 2, got $rc"
  grep -q "OPENTLA_OBS=ON" "$workdir/off.stderr" \
    || fail "OFF build: rejection message does not name OPENTLA_OBS=ON"
  # Without the sampler, profile still wraps the subcommand (empty render).
  "$tlacheck" profile states "$specs/counter.tla" --format folded \
    --out "$workdir/off.folded" > /dev/null \
    || fail "OFF build: plain profile run failed with $?"
  echo "ok: OPENTLA_OBS=OFF binary rejects --sample-hz cleanly (exit 2)"
  echo "check_profile_cli: all checks passed (--obs-off mode)"
  exit 0
fi

# --- 1. Human render: top-N table + memory-accounting section. ---

out="$("$tlacheck" profile check "$specs/peterson.tla" \
        --invariant '~(pc1 = 3 /\ pc2 = 3)' --top 3)" \
  || fail "profile check on peterson.tla failed with $?"
grep -q "profile (top" <<<"$out" || fail "human render lacks the top-N table header"
grep -q "self ms" <<<"$out" || fail "top-N table lacks the self-time column"
grep -q "total ms" <<<"$out" || fail "top-N table lacks the total-time column"
grep -q "StateGraph.explore" <<<"$out" || fail "top-N table lacks StateGraph.explore"
grep -q "memory (tracked bytes by domain):" <<<"$out" \
  || fail "human render lacks the memory-accounting section"
grep -q "state_store" <<<"$out" || fail "memory section lacks the state_store domain"
grep -q "tracked_peak_bytes" <<<"$out" || fail "memory section lacks tracked_peak_bytes"
grep -q "bytes_per_state" <<<"$out" || fail "memory section lacks bytes_per_state"
echo "ok: human render has the top-N span table and memory section"

# --- 2. Folded format: flamegraph.pl's collapsed-stack contract. ---

check_folded() {
  local folded="$1" label="$2"
  [ -s "$folded" ] || fail "$label: wrote no folded output"
  # Every line is "frame[;frame...] <count>" — flamegraph.pl's entire input
  # grammar. Anything else (headers, blank lines) would break rendering.
  grep -vqE '^[^ ;][^ ]*( [0-9]+)$' "$folded" \
    && fail "$label: non-collapsed line: $(grep -vE '^[^ ;][^ ]*( [0-9]+)$' "$folded" | head -1)"
  grep -q "StateGraph.explore" "$folded" \
    || fail "$label: folded stacks lack StateGraph.explore"
}

"$tlacheck" profile states "$specs/peterson.tla" --format folded \
  --sample-hz 500 --out "$workdir/sampled.folded" > /dev/null \
  || fail "folded run with --sample-hz failed with $?"
check_folded "$workdir/sampled.folded" "--sample-hz 500"

"$tlacheck" profile states "$specs/peterson.tla" --format folded \
  --out "$workdir/spans.folded" > /dev/null \
  || fail "folded run without sampler failed with $?"
check_folded "$workdir/spans.folded" "span-derived"
echo "ok: folded output is pure collapsed-stack format (sampled and span-derived)"

# --- 3. Trace format: memory gauges ride along as counter events. ---

"$tlacheck" profile states "$specs/counter.tla" --format trace \
  --out "$workdir/trace.json" > /dev/null \
  || fail "trace run failed with $?"
python3 - "$workdir/trace.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
counters = {e["name"] for e in data["traceEvents"] if e.get("ph") == "C"}
for want in ("mem_tracked", "mem_state_store", "mem_parser"):
    assert want in counters, f"missing counter series {want!r} (have {sorted(counters)})"
mem = [e for e in data["traceEvents"]
       if e.get("ph") == "C" and e["name"].startswith("mem_")]
for e in mem:
    if e["name"] == "mem_tracked":
        assert set(e["args"]) == {"peak_bytes", "bytes_per_state"}, e
        assert e["args"]["peak_bytes"] >= 0 and e["args"]["bytes_per_state"] >= 0, e
    else:
        assert set(e["args"]) == {"live_bytes", "peak_bytes"}, e
        assert e["args"]["peak_bytes"] >= e["args"]["live_bytes"] >= 0, e
PY
echo "ok: trace output carries mem_* counter events with live/peak args"

# --- 4. Exit-code forwarding with the profile renders active. ---

rc=0
"$tlacheck" profile check "$specs/counter.tla" --invariant 'x < 4' \
  --format folded --out "$workdir/violated.folded" > /dev/null || rc=$?
[ "$rc" -eq 1 ] || fail "violated invariant under profile: expected exit 1, got $rc"
[ -s "$workdir/violated.folded" ] || fail "folded output missing after violation exit"
echo "ok: wrapped exit code forwarded, folded output still written"

echo "check_profile_cli: all checks passed"
