#!/usr/bin/env bash
# Build the whole tree with AddressSanitizer + UndefinedBehaviorSanitizer and
# run the full ctest suite. Uses a dedicated build directory so it never
# pollutes (or is polluted by) the regular build/.
#
# Usage: tools/ci_sanitize.sh [build-dir]   (default: build-sanitize)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-sanitize}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DOPENTLA_SANITIZE=ON
cmake --build "${build_dir}" -j"$(nproc)"

# halt_on_error: fail the test (and hence CI) on the first sanitizer report
# instead of continuing with a poisoned process.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"
