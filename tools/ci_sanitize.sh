#!/usr/bin/env bash
# Build the whole tree with AddressSanitizer + UndefinedBehaviorSanitizer and
# run the full ctest suite; then build a ThreadSanitizer configuration
# (TSan excludes ASan, hence its own build dir) and run the concurrency
# suites under it. Dedicated build directories keep both from polluting
# (or being polluted by) the regular build/.
#
# Usage: tools/ci_sanitize.sh [build-dir [tsan-build-dir]]
#   (defaults: build-sanitize, build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-sanitize}"
tsan_dir="${2:-${repo_root}/build-tsan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DOPENTLA_SANITIZE=ON
cmake --build "${build_dir}" -j"$(nproc)"

# halt_on_error: fail the test (and hence CI) on the first sanitizer report
# instead of continuing with a poisoned process.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"

echo "--- ThreadSanitizer: parallel exploration suites (${tsan_dir}) ---"
cmake -B "${tsan_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DOPENTLA_TSAN=ON
cmake --build "${tsan_dir}" -j"$(nproc)" \
  --target test_parallel_explore test_differential test_vm

export TSAN_OPTIONS="halt_on_error=1"
ctest --test-dir "${tsan_dir}" --output-on-failure \
  -R 'test_parallel_explore|test_differential|test_vm'
