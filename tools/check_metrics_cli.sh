#!/usr/bin/env bash
# End-to-end check of the embedded metrics endpoint (ISSUE: obs v3):
#
#   1. during a live fig9 `tlacheck compose --serve-metrics 0` run
#      (ephemeral port, read back from the [serve] stderr line, held open
#      past the verdict by --serve-hold-ms), GET /metrics answers with the
#      OpenMetrics content-type, parseable `opentla_*` samples, and the
#      `# EOF` terminator;
#   2. GET /progress on the same run answers one JSON object with the
#      heartbeat fields plus the peak_rss_bytes high-water gauge;
#   3. unknown paths answer 404 and the run still exits 0;
#   4. in --obs-off mode (binary built with -DOPENTLA_OBS=OFF),
#      --serve-metrics is rejected with exit 2 and a clear message —
#      steps 1-3 are replaced by this probe.
#
# Usage: tools/check_metrics_cli.sh <tlacheck-binary> [--obs-off]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
tlacheck="$(readlink -f "${1:?usage: check_metrics_cli.sh <tlacheck-binary> [--obs-off]}")"
obs_off=0
[ "${2:-}" = "--obs-off" ] && obs_off=1
specs="${repo_root}/specs"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

fail() {
  echo "check_metrics_cli: FAIL: $*" >&2
  exit 1
}

command -v curl >/dev/null || fail "curl not available"

if [ "$obs_off" -eq 1 ]; then
  rc=0
  "$tlacheck" states "$specs/counter.tla" --serve-metrics 0 >/dev/null 2>err.txt || rc=$?
  [ "$rc" -eq 2 ] || fail "obs-off: --serve-metrics expected exit 2, got $rc"
  grep -q "OPENTLA_OBS=ON" err.txt || fail "obs-off: error message lacks the hint"
  echo "check_metrics_cli: PASS (obs-off)"
  exit 0
fi

# --- Launch a fig9 run that keeps serving for a scrape window. ---

"$tlacheck" compose \
  --constraint "$specs/ag_queue/g.tla" \
  --component "$specs/ag_queue/qe1.tla,$specs/ag_queue/qm1.tla" \
  --component "$specs/ag_queue/qe2.tla,$specs/ag_queue/qm2.tla" \
  --goal "$specs/ag_queue/qedbl.tla,$specs/ag_queue/qmdbl.tla" \
  --witness 'q=q2 \o (IF z.sig # z.ack THEN <<z.val>> ELSE <<>>) \o q1' \
  --serve-metrics 0 --serve-hold-ms 8000 \
  > run_out.txt 2> run_err.txt &
pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's#.*\[serve\] http://127\.0\.0\.1:\([0-9]*\).*#\1#p' run_err.txt | head -1)"
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || fail "run died before announcing a port: $(cat run_err.txt)"
  sleep 0.1
done
[ -n "$port" ] || fail "no [serve] port line on stderr: $(cat run_err.txt)"
echo "ok: server announced port $port"

# --- 1. /metrics: content-type, parseable samples, # EOF terminator. ---

curl -sS -D headers.txt "http://127.0.0.1:$port/metrics" -o metrics.txt \
  || fail "curl /metrics failed"
grep -qi '^content-type: application/openmetrics-text' headers.txt \
  || fail "/metrics content-type wrong: $(cat headers.txt)"
python3 - metrics.txt <<'PY'
import re, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "empty exposition"
assert lines[-1] == "# EOF", f"missing # EOF terminator, got {lines[-1]!r}"
samples = 0
for line in lines:
    if not line or line.startswith("#"):
        assert not line or re.match(r"^# (TYPE|HELP|UNIT|EOF)", line), line
        continue
    m = re.fullmatch(r"(opentla_[a-z0-9_]+)(\{[^}]*\})? ([0-9.eE+-]+)", line)
    assert m, f"unparseable sample line: {line!r}"
    samples += 1
assert samples > 0, "no samples"
assert any(l.startswith("opentla_peak_rss_bytes ") for l in lines), \
    "peak_rss_bytes gauge missing from the exposition"
print(f"metrics.txt: ok ({samples} samples)")
PY
echo "ok: /metrics is OpenMetrics with peak_rss_bytes"

# --- 2. /progress: one JSON heartbeat object. ---

curl -sS "http://127.0.0.1:$port/progress" -o progress.json \
  || fail "curl /progress failed"
python3 - progress.json <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
for key in ("have_sample", "seq", "final", "ts_us", "elapsed_us", "states",
            "frontier", "states_per_sec", "rss_bytes", "peak_rss_bytes"):
    assert key in data, f"/progress missing {key}: {data}"
assert data["have_sample"] is True, data
assert data["peak_rss_bytes"] >= data["rss_bytes"] >= 0, data
print("progress.json: ok")
PY
echo "ok: /progress is a live JSON heartbeat"

# --- 3. Unknown paths 404; the run exits 0. ---

status="$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$port/nope")"
[ "$status" = "404" ] || fail "/nope: expected 404, got $status"

rc=0
wait "$pid" || rc=$?
[ "$rc" -eq 0 ] || fail "served fig9 run: expected exit 0, got $rc ($(cat run_err.txt))"
grep -q "Q.E.D." run_out.txt || fail "served run did not prove the theorem"
echo "ok: 404 on unknown paths, run exits 0"

echo "check_metrics_cli: PASS"
