// tlacheck — command-line model checker for mini-TLA modules.
//
//   tlacheck info   SPEC.tla [--format json]    parse and summarize
//   tlacheck states SPEC.tla [--format json]    explore; print state count
//                     [--dump]                  ... and every state
//   tlacheck check  SPEC.tla [--invariant EXPR] check [](EXPR); without
//                                               --invariant, checks TRUE
//                                               (i.e. just explores)
//   tlacheck closure SPEC.tla                   machine closure (Prop 1 +
//                                               on-graph validation)
//   tlacheck deadlock SPEC.tla                  any reachable state with no
//                                               non-stuttering successor?
//   tlacheck refine LOW.tla HIGH.tla            check LOW => HIGH under a
//                     [--witness VAR=EXPR]...   refinement mapping (by-name
//                                               plus the given witnesses;
//                                               EXPR is over LOW's variables)
//   tlacheck leadsto SPEC.tla --from P --to Q   check P ~> Q under the
//                                               module's FAIRNESS
//   tlacheck simulate SPEC.tla                  print a random run
//                     [--steps N] [--seed S]
//   tlacheck compose --goal ENV.tla,GUAR.tla    verify the Composition
//            [--component ENV.tla,GUAR.tla]...  Theorem instance
//            [--constraint FILE.tla]...           /\_j (E_j +> M_j) => (E +> M)
//            [--witness VAR=EXPR]...            (constraints are TRUE +> G
//                                               conjuncts, e.g. DISJOINT
//                                               modules; all modules share
//                                               one universe by name)
//   tlacheck coverage SPEC.tla                  per-action coverage over the
//                   [--format human|json]       reachable states: how often
//                                               each ACTION was enabled and
//                                               fired; exits 1 and names the
//                                               action if any never fires
//   tlacheck lint SPEC.tla [SPEC2.tla ...]      static analysis (OTL001-012)
//                   [--format json] [--werror]  without state exploration;
//                   [--state-bound N]           several files share one
//                                               universe and are also
//                                               checked pairwise (OTL006,
//                                               OTL012)
//   tlacheck analyze SPEC.tla [SPEC2.tla ...]   whole-spec dataflow: action
//                   [--format human|json]       footprints (reads/writes/
//                   [--independence]            guard reads per NEXT
//                   [--footprints]              disjunct) and the N x N
//                                               static independence matrix
//                                               with per-pair provenance;
//                                               with neither section flag,
//                                               both sections are emitted.
//                                               JSON follows
//                                               tools/analyze_schema.json
//                                               and is deterministic.
//   tlacheck profile SUBCOMMAND ARGS...         run any subcommand under
//                   [--format human|json|trace] full opentla::obs
//                   [--out FILE]                instrumentation and render
//                                               the counters and spans
//                                               (trace = Chrome trace_event,
//                                               loadable in chrome://tracing
//                                               and Perfetto)
//
// Global flags: --stats appends an opentla::obs stats block to any
// subcommand's output (most useful with check/refine/compose); --threads N
// explores on N workers (default 1 = serial, 0 = hardware concurrency) —
// the explored graph, and so every verdict and counterexample, is
// bit-identical for every N.
//
// Run budgets (work in every build, including OPENTLA_OBS=OFF): each
// breach stops exploration gracefully, the run prints whatever partial
// result it has plus a machine-readable `stop_reason: "..."` line, and
// exits 3:
//   --deadline-ms N     wall-clock budget for the whole run
//   --rss-limit-mb N    resident-set ceiling (polled during exploration)
//   --max-states N      state budget (serial and parallel runs stop at the
//                       same state count; no longer an error)
// A SIGINT/SIGTERM during a budgeted run requests the same graceful stop
// (stop_reason: "interrupted").
//
// Live observability (require a build with OPENTLA_OBS=ON; an
// -DOPENTLA_OBS=OFF binary rejects them with exit 2 instead of emitting
// empty files):
//   --progress[=MS]     heartbeat lines on stderr every MS milliseconds
//                       (default 250): elapsed time, states interned,
//                       frontier size, states/sec, RSS. stdout is
//                       untouched, so `--format json` stays parseable.
//   --events FILE       append-only JSONL event stream (phase events +
//                       progress samples; schema tools/events_schema.json)
//   --metrics-out FILE  OpenMetrics/Prometheus text exposition of the
//                       run's final counters/gauges/histograms
//   --flight-recorder[=N]  bounded in-memory ring of the last N (default
//                       4096) phase/progress/budget events, dumped as
//                       JSONL (schema tools/flight_schema.json) on budget
//                       breach, uncaught exception, or fatal signal
//   --flight-out FILE   flight-recorder dump path (default
//                       flight_recorder.jsonl)
//   --serve-metrics PORT  embedded HTTP server on 127.0.0.1:PORT (0 =
//                       ephemeral; the chosen port is printed to stderr):
//                       GET /metrics (OpenMetrics), GET /progress (JSON)
//   --serve-hold-ms MS  keep serving MS milliseconds after the verdict
//                       (scrape window for tests/collectors)
//   --run-ledger FILE   append one JSONL line per run: spec content hash,
//                       options, stop reason, exit code, final counters
//                       (schema tools/ledger_schema.json)
//
// Exit codes (uniform across subcommands; `profile` returns the wrapped
// subcommand's code):
//   0  info/states/simulate printed; check/closure/deadlock/refine/
//      leadsto/compose: the property holds; lint: clean; coverage: every
//      action fired
//   1  check/closure/deadlock/refine/leadsto/compose: the property is
//      violated; lint: any Error finding (or any finding with --werror);
//      coverage: some action never fired
//   2  usage error or unreadable/unparseable input
//   3  a run budget stopped the run before a definite verdict: partial
//      result printed with `stop_reason: "state_budget"|"deadline"|
//      "memory"|"interrupted"` (a violation found before the stop still
//      exits 1 — counterexamples on partial graphs are real)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/analysis/independence.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/check/liveness.hpp"
#include "opentla/check/machine_closure.hpp"
#include "opentla/check/refinement.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/lint/checks.hpp"
#include "opentla/obs/export.hpp"
#include "opentla/obs/flight_recorder.hpp"
#include "opentla/obs/metrics_server.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/obs/profiler.hpp"
#include "opentla/obs/progress.hpp"
#include "opentla/parser/parser.hpp"
#include "opentla/run/budget.hpp"
#include "opentla/run/ledger.hpp"
#include "opentla/vm/interp.hpp"

using namespace opentla;

namespace {

int usage() {
  std::cerr
      << "usage: tlacheck info|states|check|closure|deadlock|simulate|coverage SPEC.tla\n"
         "                [options]\n"
         "       tlacheck refine LOW.tla HIGH.tla [--witness VAR=EXPR]...\n"
         "       tlacheck leadsto SPEC.tla --from EXPR --to EXPR\n"
         "       tlacheck compose --goal ENV.tla,GUAR.tla [--component ENV.tla,GUAR.tla]...\n"
         "                [--constraint FILE.tla]... [--witness VAR=EXPR]...\n"
         "       tlacheck lint SPEC.tla [SPEC2.tla ...] [--format json] [--werror]\n"
         "                [--state-bound N]\n"
         "       tlacheck analyze SPEC.tla [SPEC2.tla ...] [--format human|json]\n"
         "                [--independence] [--footprints]\n"
         "       tlacheck profile SUBCOMMAND ARGS... [--format human|json|trace|folded]\n"
         "                [--out FILE] [--top N] [--sample-hz N]\n"
         "options: --invariant EXPR   --dump   --max-states N   --steps N   --seed S\n"
         "         --threads N (exploration workers; 1 = serial, 0 = hardware\n"
         "         concurrency; the graph is identical for every N)\n"
         "         --format json (info|states|lint|coverage)   --stats (any subcommand)\n"
         "         --deadline-ms N   --rss-limit-mb N (run budgets: graceful stop,\n"
         "         partial result with stop_reason, exit 3; work in every build)\n"
         "         --progress[=MS] (heartbeats on stderr)   --events FILE (JSONL)\n"
         "         --metrics-out FILE (OpenMetrics)\n"
         "         --flight-recorder[=N] (crash/budget event ring; dump is JSONL)\n"
         "         --flight-out FILE (dump path, default flight_recorder.jsonl)\n"
         "         --serve-metrics PORT (live /metrics + /progress on 127.0.0.1)\n"
         "         --serve-hold-ms MS (keep serving after the verdict)\n"
         "         --tree-eval (force the tree evaluator instead of the bytecode\n"
         "         VM; verdicts and graphs are identical either way)\n"
         "         --run-ledger FILE (append one JSONL line per run)\n"
         "         --sample-hz N (span-stack sampling profiler; `profile --format\n"
         "         folded` emits collapsed stacks for flamegraph.pl/speedscope)\n"
         "         --top N (profile: rows in the self-time table, default 10)\n"
         "         (the live-observability flags need OPENTLA_OBS=ON)\n"
         "exit codes (all subcommands; profile forwards the wrapped one's):\n"
         "  0  printed / property holds / lint clean\n"
         "  1  property violated (check, closure, deadlock, refine, leadsto,\n"
         "     compose) or lint errors (any finding with --werror)\n"
         "  2  usage or input error\n"
         "  3  run budget stopped the run (partial result, stop_reason printed)\n";
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

StateGraph explore(const ParsedModule& mod, const ExploreOptions& eopts) {
  // An open module (one whose subscript does not cover every declared
  // variable — e.g. an environment assumption like QE1) leaves the rest
  // unconstrained: explore them as free environment moves, exactly like
  // the composition verifier's EnvFrame.
  CanonicalSpec spec = mod.spec.unhidden();
  std::vector<char> covered(mod.vars->size(), 0);
  for (VarId v : spec.sub) covered[v] = 1;
  std::vector<VarId> env_free;
  for (VarId v = 0; v < mod.vars->size(); ++v) {
    if (!covered[v]) env_free.push_back(v);
  }
  std::vector<CompositePart> parts = {{spec, /*mover=*/true}};
  std::vector<std::vector<VarId>> free_tuples;
  if (!env_free.empty()) {
    CanonicalSpec frame;
    frame.name = "EnvFrame";
    frame.init = ex::top();
    frame.next = ex::top();
    frame.sub = env_free;
    parts.push_back({frame, /*mover=*/false});
    free_tuples.push_back(env_free);
  }
  return build_composite_graph(*mod.vars, parts, free_tuples, {}, eopts);
}

/// Uniform partial-result trailer for budget-stopped runs. The
/// `stop_reason: "..."` line is the machine-readable contract scripts and
/// the budget tests grep for; the return value is the CLI exit code.
int partial_result(run::StopReason r, std::size_t states) {
  std::cout << "PARTIAL RESULT: run budget stopped exploration after " << states
            << " states\nstop_reason: \"" << run::to_string(r) << "\"\n";
  return run::kBudgetExitCode;
}

// JSON emission follows the lint renderer's conventions: compact objects,
// two-space indent, escaped strings, always-valid output.
int cmd_info(const ParsedModule& mod, const std::string& format) {
  if (format == "json") {
    std::cout << "{\n  \"module\": \"" << obs::json_escape(mod.name) << "\",\n"
              << "  \"variables\": [";
    for (VarId v = 0; v < mod.vars->size(); ++v) {
      const bool hidden = std::find(mod.spec.hidden.begin(), mod.spec.hidden.end(), v) !=
                          mod.spec.hidden.end();
      if (v > 0) std::cout << ",";
      std::cout << "\n    {\"name\": \"" << obs::json_escape(mod.vars->name(v))
                << "\", \"hidden\": " << (hidden ? "true" : "false")
                << ", \"domain_size\": " << mod.vars->domain(v).size() << "}";
    }
    if (mod.vars->size() > 0) std::cout << "\n  ";
    std::cout << "],\n  \"definitions\": [";
    bool first = true;
    for (const auto& [name, def] : mod.definitions) {
      if (!first) std::cout << ",";
      first = false;
      std::cout << "\n    {\"name\": \"" << obs::json_escape(name) << "\", \"expr\": \""
                << obs::json_escape(def.to_string(*mod.vars)) << "\"}";
    }
    if (!first) std::cout << "\n  ";
    std::cout << "],\n  \"spec\": \"" << obs::json_escape(mod.spec.to_string(*mod.vars))
              << "\"\n}\n";
    return 0;
  }
  std::cout << "module " << mod.name << "\n";
  for (VarId v = 0; v < mod.vars->size(); ++v) {
    const bool hidden = std::find(mod.spec.hidden.begin(), mod.spec.hidden.end(), v) !=
                        mod.spec.hidden.end();
    std::cout << "  " << (hidden ? "hidden " : "var    ") << mod.vars->name(v) << " : "
              << mod.vars->domain(v).size() << " values\n";
  }
  for (const auto& [name, def] : mod.definitions) {
    std::cout << "  def    " << name << " == " << def.to_string(*mod.vars) << "\n";
  }
  std::cout << "  spec   " << mod.spec.to_string(*mod.vars) << "\n";
  return 0;
}

int cmd_states(const ParsedModule& mod, bool dump, const ExploreOptions& eopts,
               const std::string& format) {
  StateGraph g = explore(mod, eopts);
  const bool partial = g.stop_reason() != run::StopReason::kCompleted;
  if (format == "json") {
    std::cout << "{\n  \"module\": \"" << obs::json_escape(mod.name) << "\",\n"
              << "  \"states\": " << g.num_states() << ",\n  \"edges\": " << g.num_edges()
              << ",\n  \"initial\": " << g.initial().size();
    if (partial) {
      std::cout << ",\n  \"stop_reason\": \"" << run::to_string(g.stop_reason()) << "\"";
    }
    if (dump) {
      std::cout << ",\n  \"state_list\": [";
      for (StateId s = 0; s < g.num_states(); ++s) {
        if (s > 0) std::cout << ",";
        std::cout << "\n    \"" << obs::json_escape(g.state(s).to_string(*mod.vars)) << "\"";
      }
      if (g.num_states() > 0) std::cout << "\n  ";
      std::cout << "]";
    }
    std::cout << "\n}\n";
    return partial ? run::kBudgetExitCode : 0;
  }
  std::cout << g.num_states() << " states, " << g.num_edges() << " edges, "
            << g.initial().size() << " initial\n";
  if (dump) {
    for (StateId s = 0; s < g.num_states(); ++s) {
      std::cout << "  " << s << ": " << g.state(s).to_string(*mod.vars) << "\n";
    }
  }
  if (partial) return partial_result(g.stop_reason(), g.num_states());
  return 0;
}

int cmd_check(const ParsedModule& mod, const std::string& invariant_src,
              const ExploreOptions& eopts) {
  // Without --invariant, check TRUE: the graph is still fully explored
  // (useful under `profile`), and the invariant trivially holds.
  Expr invariant = invariant_src.empty()
                       ? ex::top()
                       : parse_expression(invariant_src, *mod.vars, &mod.definitions);
  StateGraph g = explore(mod, eopts);
  InvariantResult r = check_invariant(g, invariant);
  if (!r.holds) {
    // A violation on a partial graph is still a real violation: every
    // state in the graph is genuinely reachable.
    std::cout << "INVARIANT VIOLATED:\n" << format_trace(*mod.vars, r.counterexample);
    return 1;
  }
  if (r.stop_reason != run::StopReason::kCompleted) {
    std::cout << "invariant holds over the " << r.states_checked
              << " states explored before the budget stop\n";
    return partial_result(r.stop_reason, r.states_checked);
  }
  std::cout << "invariant holds over " << r.states_checked << " states\n";
  return 0;
}

int cmd_closure(const ParsedModule& mod, const ExploreOptions& eopts) {
  MachineClosureResult syn = check_prop1_syntactic(mod.spec);
  std::cout << "Proposition 1 (syntactic): " << (syn ? "applies" : "does NOT apply") << " — "
            << syn.detail << "\n";
  StateGraph g = explore(mod, eopts);
  if (g.stop_reason() != run::StopReason::kCompleted) {
    // On-graph validation needs the complete graph (a missing successor
    // would look like a closure failure), so a budget stop leaves it
    // unevaluated; the syntactic refutation above still stands.
    std::cout << "on-graph machine closure: not evaluated (run budget stop)\n";
    if (!syn) return 1;
    return partial_result(g.stop_reason(), g.num_states());
  }
  MachineClosureResult sem = check_machine_closure_on_graph(g, mod.spec.unhidden());
  std::cout << "on-graph machine closure: " << (sem ? "confirmed" : "REFUTED") << " — "
            << sem.detail << "\n";
  return (syn && sem) ? 0 : 1;
}

int cmd_deadlock(const ParsedModule& mod, const ExploreOptions& eopts) {
  // A deadlock is a reachable state whose only successor is itself
  // (stuttering); canonical specs always allow stuttering, so "no real
  // step" is the meaningful notion.
  StateGraph g = explore(mod, eopts);
  if (g.stop_reason() != run::StopReason::kCompleted) {
    // A budget-truncated graph can show spurious deadlocks (a state whose
    // real successors were cut by the budget), so no verdict either way.
    return partial_result(g.stop_reason(), g.num_states());
  }
  for (StateId s = 0; s < g.num_states(); ++s) {
    const std::vector<StateId>& succ = g.successors(s);
    const bool stuck = succ.size() == 1 && succ[0] == s;
    if (stuck) {
      std::vector<StateId> path = g.shortest_path_to([&](StateId t) { return t == s; });
      std::cout << "DEADLOCK (no non-stuttering step):\n";
      std::vector<State> states;
      for (StateId p : path) states.push_back(g.state(p));
      std::cout << format_trace(*mod.vars, states);
      return 1;
    }
  }
  std::cout << "no deadlock over " << g.num_states() << " states\n";
  return 0;
}

int cmd_refine(const ParsedModule& low, const ParsedModule& high,
               const std::vector<std::pair<std::string, std::string>>& witness_srcs,
               const ExploreOptions& eopts) {
  std::vector<std::pair<std::string, Expr>> witnesses;
  for (const auto& [name, src] : witness_srcs) {
    witnesses.emplace_back(name, parse_expression(src, *low.vars, &low.definitions));
  }
  StateGraph g = explore(low, eopts);
  if (g.stop_reason() != run::StopReason::kCompleted) {
    // Refinement (with its liveness side) is only sound on the complete
    // low graph.
    return partial_result(g.stop_reason(), g.num_states());
  }
  RefinementMapping mapping = mapping_by_name(*low.vars, *high.vars, witnesses);
  RefinementResult r = check_refinement(g, low.spec.fairness, high.spec, mapping);
  if (r.holds) {
    std::cout << low.name << " refines " << high.name << " (" << r.states << " states, "
              << r.edges << " edges)\n";
    return 0;
  }
  std::cout << "REFINEMENT FAILS at " << r.failed_part << ":\n"
            << format_trace(*low.vars, r.counterexample_prefix);
  if (!r.counterexample_cycle.empty()) {
    std::cout << "cycle:\n" << format_trace(*low.vars, r.counterexample_cycle);
  }
  return 1;
}

int cmd_leadsto(const ParsedModule& mod, const std::string& from_src,
                const std::string& to_src, const ExploreOptions& eopts) {
  Expr p = parse_expression(from_src, *mod.vars, &mod.definitions);
  Expr q = parse_expression(to_src, *mod.vars, &mod.definitions);
  StateGraph g = explore(mod, eopts);
  if (g.stop_reason() != run::StopReason::kCompleted) {
    // Leads-to needs the complete graph: both a "holds" and a lasso
    // counterexample depend on successors the budget may have cut.
    return partial_result(g.stop_reason(), g.num_states());
  }
  LeadsToResult r = check_leads_to(g, mod.spec.fairness, p, q);
  if (r.holds) {
    std::cout << from_src << "  ~>  " << to_src << "  holds over " << g.num_states()
              << " states\n";
    return 0;
  }
  std::cout << "LEADS-TO VIOLATED: " << from_src << " ~> " << to_src << "\n"
            << "prefix:\n" << format_trace(*mod.vars, r.counterexample_prefix)
            << "cycle (repeats forever):\n"
            << format_trace(*mod.vars, r.counterexample_cycle);
  return 1;
}

int cmd_simulate(const ParsedModule& mod, std::size_t steps, unsigned seed,
                 const ExploreOptions& eopts) {
  StateGraph g = explore(mod, eopts);
  if (g.stop_reason() != run::StopReason::kCompleted) {
    return partial_result(g.stop_reason(), g.num_states());
  }
  std::mt19937 rng(seed);
  StateId cur = g.initial()[std::uniform_int_distribution<std::size_t>(
      0, g.initial().size() - 1)(rng)];
  std::cout << "   0: " << g.state(cur).to_string(*mod.vars) << "\n";
  for (std::size_t i = 1; i <= steps; ++i) {
    // Prefer non-stuttering steps when available.
    std::vector<StateId> moves;
    for (StateId t : g.successors(cur)) {
      if (t != cur) moves.push_back(t);
    }
    if (moves.empty()) {
      std::cout << "   (only stuttering steps remain)\n";
      break;
    }
    cur = moves[std::uniform_int_distribution<std::size_t>(0, moves.size() - 1)(rng)];
    std::cout << std::setw(4) << i << ": " << g.state(cur).to_string(*mod.vars) << "\n";
  }
  return 0;
}

int cmd_coverage(const ParsedModule& mod, const std::string& format,
                 const ExploreOptions& eopts) {
  // The coverage units are the module's ACTION definitions; a module
  // written without them (bare NEXT) is covered per top-level disjunct.
  struct Unit {
    std::string name;
    Expr action;
  };
  std::vector<Unit> units;
  for (const std::string& name : mod.action_names) {
    units.push_back({name, mod.definitions.at(name)});
  }
  if (units.empty()) {
    std::vector<Expr> disjuncts = flatten_or(mod.spec.next);
    for (std::size_t i = 0; i < disjuncts.size(); ++i) {
      units.push_back({"disjunct_" + std::to_string(i + 1), disjuncts[i]});
    }
  }

  StateGraph g = explore(mod, eopts);

  // Exact per-action tallies over the reachable states, computed directly
  // (independent of the obs registry, so `coverage` works in
  // OPENTLA_OBS=OFF builds too). The generators are still labeled, so a
  // `profile coverage` run sees the same attribution in action_fired /
  // action_enabled.
  struct Row {
    std::string name;
    std::uint64_t enabled_states = 0;  // reachable states where the guards hold
    std::uint64_t fired = 0;           // successor emissions over all reachable states
  };
  std::vector<Row> rows;
  for (const Unit& u : units) {
    ActionSuccessors gen(*mod.vars, u.action);
    gen.set_label(u.name);
    Row row;
    row.name = u.name;
    for (StateId s = 0; s < g.num_states(); ++s) {
      std::uint64_t here = 0;
      gen.for_each_successor(g.state(s), [&](const State&) { ++here; });
      // Guard-based attribution: a state counts as enabled when the
      // action's precondition held, even if the residual or a domain check
      // then rejected every completion. fired == 0 with enabled_states > 0
      // pinpoints exactly those "guard passes, action can't step" states.
      if (gen.guards_enabled(g.state(s))) ++row.enabled_states;
      row.fired += here;
    }
    rows.push_back(std::move(row));
  }

  std::vector<std::string> never_fired;
  for (const Row& r : rows) {
    if (r.fired == 0) never_fired.push_back(r.name);
  }

  if (format == "json") {
    std::cout << "{\n  \"module\": \"" << obs::json_escape(mod.name) << "\",\n"
              << "  \"states\": " << g.num_states() << ",\n  \"actions\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      if (i > 0) std::cout << ",";
      std::cout << "\n    {\"name\": \"" << obs::json_escape(r.name)
                << "\", \"enabled_states\": " << r.enabled_states
                << ", \"fired\": " << r.fired
                << ", \"never_fired\": " << (r.fired == 0 ? "true" : "false") << "}";
    }
    if (!rows.empty()) std::cout << "\n  ";
    std::cout << "],\n  \"never_fired\": [";
    for (std::size_t i = 0; i < never_fired.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << "\"" << obs::json_escape(never_fired[i]) << "\"";
    }
    std::cout << "]\n}\n";
  } else {
    std::cout << "coverage of " << mod.name << " over " << g.num_states()
              << " reachable states\n";
    std::size_t width = 6;
    for (const Row& r : rows) width = std::max(width, r.name.size());
    std::cout << "  " << std::left << std::setw(static_cast<int>(width)) << "action"
              << std::right << std::setw(16) << "enabled-states" << std::setw(12)
              << "fired" << "\n";
    for (const Row& r : rows) {
      std::cout << "  " << std::left << std::setw(static_cast<int>(width)) << r.name
                << std::right << std::setw(16) << r.enabled_states << std::setw(12)
                << r.fired << (r.fired == 0 ? "   NEVER FIRED" : "") << "\n";
    }
    for (const std::string& name : never_fired) {
      std::cout << "action " << name << " never fired in the explored space\n";
    }
  }
  if (g.stop_reason() != run::StopReason::kCompleted) {
    // The tallies above cover the explored prefix; "never fired" over a
    // truncated space is inconclusive, so the budget exit wins.
    return partial_result(g.stop_reason(), g.num_states());
  }
  return never_fired.empty() ? 0 : 1;
}

int cmd_compose(const std::vector<std::pair<std::string, std::string>>& component_files,
                const std::vector<std::string>& constraint_files,
                const std::pair<std::string, std::string>& goal_files,
                const std::vector<std::pair<std::string, std::string>>& witness_srcs,
                std::size_t max_states, unsigned threads, run::RunBudget* budget) {
  // All modules share one universe, merged by variable name.
  auto universe = std::make_shared<VarTable>();
  std::vector<AGSpec> components;
  for (const std::string& file : constraint_files) {
    ParsedModule mod = parse_module(slurp(file), universe);
    components.push_back(property_as_ag(mod.spec, /*mover=*/false));
  }
  for (const auto& [env_file, guar_file] : component_files) {
    ParsedModule env = parse_module(slurp(env_file), universe);
    ParsedModule guar = parse_module(slurp(guar_file), universe);
    components.push_back({env.spec, guar.spec});
  }
  ParsedModule goal_env = parse_module(slurp(goal_files.first), universe);
  ParsedModule goal_guar = parse_module(slurp(goal_files.second), universe);
  AGSpec goal{goal_env.spec, goal_guar.spec};

  CompositionOptions opts;
  opts.max_states = max_states;
  opts.max_nodes = max_states;
  opts.threads = threads;
  opts.budget = budget;
  for (const auto& [name, src] : witness_srcs) {
    opts.goal_witness.emplace_back(name, parse_expression(src, *universe));
  }
  ProofReport report = verify_composition(*universe, components, goal, opts);
  std::cout << report.to_string();
  if (report.all_discharged()) return 0;
  // A definitively refuted hypothesis beats any budget noise; only a run
  // where every undischarged obligation is inconclusive exits as partial.
  for (const Obligation& ob : report.obligations) {
    if (!ob.discharged && !ob.inconclusive) return 1;
  }
  const run::StopReason reason =
      budget != nullptr && budget->stopped() ? budget->reason() : run::StopReason::kDeadline;
  std::cout << "stop_reason: \"" << run::to_string(reason) << "\"\n";
  return run::kBudgetExitCode;
}

int cmd_lint(const std::vector<std::string>& files, const std::string& format, bool werror,
             const lint::LintOptions& opts) {
  // Several files share one universe (merged by variable name, like
  // `compose`), so pairwise footprint checks (OTL006) see the same VarIds.
  std::shared_ptr<VarTable> universe =
      files.size() > 1 ? std::make_shared<VarTable>() : nullptr;
  std::vector<ParsedModule> mods;
  mods.reserve(files.size());
  for (const std::string& file : files) {
    mods.push_back(parse_module(slurp(file), universe));
  }
  std::vector<lint::Diagnostic> diags = lint::lint_modules(mods, opts);
  for (lint::Diagnostic& d : diags) {
    // Map each finding back to the input file via its module name.
    for (std::size_t i = 0; i < mods.size(); ++i) {
      if (mods[i].name == d.module_name) {
        d.file = files[i];
        break;
      }
    }
  }
  if (format == "json") {
    std::cout << lint::render_json(diags);
  } else {
    std::cout << lint::render_human(diags);
    if (diags.empty()) {
      std::cout << "clean: " << files.size()
                << (files.size() == 1 ? " module, " : " modules, ")
                << lint::check_registry().size() << " checks, 0 findings\n";
    }
  }
  if (lint::has_errors(diags)) return 1;
  if (werror && !diags.empty()) return 1;
  return 0;
}

int cmd_analyze(const std::vector<std::string>& files, const std::string& format,
                bool want_independence, bool want_footprints) {
  // With neither section flag, emit both sections.
  if (!want_independence && !want_footprints) want_independence = want_footprints = true;

  // Several files share one universe by variable name (like `lint` and
  // `compose`), so cross-module footprints compare the same VarIds.
  std::shared_ptr<VarTable> universe =
      files.size() > 1 ? std::make_shared<VarTable>() : nullptr;
  std::vector<ParsedModule> mods;
  mods.reserve(files.size());
  for (const std::string& file : files) {
    mods.push_back(parse_module(slurp(file), universe));
  }
  const VarTable& vars = *mods.front().vars;

  std::vector<analysis::ActionUnit> units;
  for (const ParsedModule& mod : mods) {
    std::vector<analysis::ActionUnit> mu = analysis::module_action_units(mod);
    units.insert(units.end(), std::make_move_iterator(mu.begin()),
                 std::make_move_iterator(mu.end()));
  }
  const analysis::IndependenceMatrix m = analysis::compute_independence(vars, std::move(units));
  const std::size_t n = m.size();

  auto var_names = [&](const std::vector<VarId>& vs) {
    std::vector<std::string> names;
    names.reserve(vs.size());
    for (VarId v : vs) names.push_back(vars.name(v));
    return names;
  };

  if (format == "json") {
    // Emission order is fixed (file order, then NEXT-disjunct order, then
    // row-major pairs), so repeated runs produce byte-identical output.
    auto str_array = [](const std::vector<std::string>& xs) {
      std::string out = "[";
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + obs::json_escape(xs[i]) + "\"";
      }
      return out + "]";
    };
    std::cout << "{\n  \"schema\": \"opentla-analyze-v1\",\n  \"modules\": [";
    for (std::size_t i = 0; i < mods.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << "\"" << obs::json_escape(mods[i].name) << "\"";
    }
    std::cout << "],\n  \"units\": [";
    for (std::size_t i = 0; i < n; ++i) {
      const analysis::ActionUnit& u = m.units()[i];
      if (i > 0) std::cout << ",";
      std::cout << "\n    {\"name\": \"" << obs::json_escape(u.name) << "\", \"module\": \""
                << obs::json_escape(u.module) << "\"}";
    }
    if (n > 0) std::cout << "\n  ";
    std::cout << "]";
    if (want_footprints) {
      std::cout << ",\n  \"footprints\": [";
      for (std::size_t i = 0; i < n; ++i) {
        const analysis::ActionUnit& u = m.units()[i];
        if (i > 0) std::cout << ",";
        std::cout << "\n    {\"unit\": \"" << obs::json_escape(u.name) << "\", \"module\": \""
                  << obs::json_escape(u.module)
                  << "\", \"reads\": " << str_array(var_names(u.fp.reads))
                  << ", \"writes\": " << str_array(var_names(u.fp.writes))
                  << ", \"guard_reads\": " << str_array(var_names(u.fp.guard_reads))
                  << ", \"conservative\": " << (u.fp.conservative ? "true" : "false") << "}";
      }
      if (n > 0) std::cout << "\n  ";
      std::cout << "]";
    }
    if (want_independence) {
      char density[32];
      std::snprintf(density, sizeof density, "%.6f", m.density());
      std::cout << ",\n  \"independence\": {\n    \"independent_pairs\": "
                << m.independent_pairs() << ",\n    \"dependent_pairs\": " << m.dependent_pairs()
                << ",\n    \"density\": " << density << ",\n    \"matrix\": [";
      for (std::size_t i = 0; i < n; ++i) {
        if (i > 0) std::cout << ",";
        std::cout << "\n      [";
        for (std::size_t j = 0; j < n; ++j) {
          if (j > 0) std::cout << ", ";
          std::cout << (m.independent(i, j) ? 1 : 0);
        }
        std::cout << "]";
      }
      if (n > 0) std::cout << "\n    ";
      std::cout << "],\n    \"dependent\": [";
      bool first = true;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          if (m.independent(i, j)) continue;
          if (!first) std::cout << ",";
          first = false;
          std::cout << "\n      {\"a\": \"" << obs::json_escape(m.units()[i].name)
                    << "\", \"b\": \"" << obs::json_escape(m.units()[j].name)
                    << "\", \"reason\": \"" << obs::json_escape(m.reason(i, j)) << "\"}";
        }
      }
      if (!first) std::cout << "\n    ";
      std::cout << "]\n  }";
    }
    std::cout << "\n}\n";
    return 0;
  }

  std::cout << "analyze";
  for (const ParsedModule& mod : mods) std::cout << " " << mod.name;
  std::cout << ": " << n << " action unit" << (n == 1 ? "" : "s") << "\n";
  auto set_str = [&](const std::vector<VarId>& vs) {
    std::string out = "{";
    for (std::size_t i = 0; i < vs.size(); ++i) {
      if (i > 0) out += ", ";
      out += vars.name(vs[i]);
    }
    return out + "}";
  };
  std::size_t width = 4;
  for (const analysis::ActionUnit& u : m.units()) width = std::max(width, u.name.size());
  if (want_footprints) {
    std::cout << "footprints:\n";
    for (const analysis::ActionUnit& u : m.units()) {
      std::cout << "  " << std::left << std::setw(static_cast<int>(width)) << u.name
                << std::right << "  reads " << set_str(u.fp.reads) << "  writes "
                << set_str(u.fp.writes) << "  guards " << set_str(u.fp.guard_reads)
                << (u.fp.conservative ? "  [conservative]" : "") << "\n";
    }
  }
  if (want_independence) {
    char density[32];
    std::snprintf(density, sizeof density, "%.2f", m.density());
    std::cout << "independence: " << m.independent_pairs() << "/"
              << (m.independent_pairs() + m.dependent_pairs())
              << " unordered pairs independent (density " << density << ")\n";
    if (n > 0) {
      // Matrix rows: '.' independent, 'X' dependent (diagonal included).
      std::cout << "  matrix ('.' independent, 'X' dependent):\n";
      for (std::size_t i = 0; i < n; ++i) {
        std::cout << "  " << std::left << std::setw(static_cast<int>(width))
                  << m.units()[i].name << std::right << "  ";
        for (std::size_t j = 0; j < n; ++j) std::cout << (m.independent(i, j) ? '.' : 'X');
        std::cout << "\n";
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          if (m.independent(i, j)) continue;
          std::cout << "  " << m.units()[i].name << " ~ " << m.units()[j].name << ": "
                    << m.reason(i, j) << "\n";
        }
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto run_start = std::chrono::steady_clock::now();
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 2) return usage();
  std::string cmd = args[0];

  // `profile SUBCOMMAND ...` wraps another subcommand; --format/--out then
  // configure the profile renderer, not the wrapped subcommand.
  const bool profiling = cmd == "profile";
  if (profiling) {
    args.erase(args.begin());
    if (args.size() < 2) return usage();
    cmd = args[0];
    if (cmd == "profile") return usage();
  }

  // Common options.
  std::string invariant_src;
  std::string from_src, to_src;
  bool dump = false;
  bool stats = false;
  std::size_t max_states = 2'000'000;
  unsigned threads = 1;
  std::size_t steps = 16;
  unsigned seed = 0;
  std::string format = "human";
  std::string out_file;
  long progress_ms = -1;  // <0 = off
  std::string events_file;
  std::string metrics_file;
  long deadline_ms = -1;   // <0 = off
  long rss_limit_mb = -1;  // <0 = off
  long flight_cap = -1;    // <0 = off
  long sample_hz = -1;     // <0 = off
  long top_n = 10;
  std::string flight_out = "flight_recorder.jsonl";
  int serve_port = -1;  // <0 = off (0 = ephemeral)
  long serve_hold_ms = 0;
  std::string ledger_file;
  bool werror = false;
  bool want_independence = false;
  bool want_footprints = false;
  lint::LintOptions lint_opts;
  std::vector<std::pair<std::string, std::string>> witnesses;
  std::vector<std::pair<std::string, std::string>> component_files;
  std::vector<std::string> constraint_files;
  std::pair<std::string, std::string> goal_files;
  std::vector<std::string> files;
  try {
  auto split_pair = [&](const std::string& arg) {
    const std::size_t comma = arg.find(',');
    if (comma == std::string::npos) {
      throw std::runtime_error("expected ENV.tla,GUAR.tla, got " + arg);
    }
    return std::make_pair(arg.substr(0, comma), arg.substr(comma + 1));
  };
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--invariant" && i + 1 < args.size()) {
      invariant_src = args[++i];
    } else if (args[i] == "--dump") {
      dump = true;
    } else if (args[i] == "--max-states" && i + 1 < args.size()) {
      max_states = std::stoull(args[++i]);
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      threads = static_cast<unsigned>(std::stoul(args[++i]));
    } else if (args[i] == "--from" && i + 1 < args.size()) {
      from_src = args[++i];
    } else if (args[i] == "--to" && i + 1 < args.size()) {
      to_src = args[++i];
    } else if (args[i] == "--steps" && i + 1 < args.size()) {
      steps = std::stoull(args[++i]);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = static_cast<unsigned>(std::stoul(args[++i]));
    } else if (args[i] == "--format" && i + 1 < args.size()) {
      format = args[++i];
      // "trace" (Chrome trace_event) and "folded" (collapsed stacks for
      // flamegraph.pl) only make sense for `profile`.
      if (format != "human" && format != "json" &&
          !(profiling && (format == "trace" || format == "folded"))) {
        return usage();
      }
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_file = args[++i];
    } else if (args[i] == "--progress") {
      progress_ms = 250;
    } else if (args[i].rfind("--progress=", 0) == 0) {
      progress_ms = std::stol(args[i].substr(std::string("--progress=").size()));
      if (progress_ms <= 0) return usage();
    } else if (args[i] == "--events" && i + 1 < args.size()) {
      events_file = args[++i];
    } else if (args[i] == "--metrics-out" && i + 1 < args.size()) {
      metrics_file = args[++i];
    } else if (args[i] == "--deadline-ms" && i + 1 < args.size()) {
      deadline_ms = std::stol(args[++i]);
      if (deadline_ms <= 0) return usage();
    } else if (args[i] == "--rss-limit-mb" && i + 1 < args.size()) {
      rss_limit_mb = std::stol(args[++i]);
      if (rss_limit_mb <= 0) return usage();
    } else if (args[i] == "--flight-recorder") {
      flight_cap = 4096;
    } else if (args[i].rfind("--flight-recorder=", 0) == 0) {
      flight_cap = std::stol(args[i].substr(std::string("--flight-recorder=").size()));
      if (flight_cap <= 0) return usage();
    } else if (args[i] == "--sample-hz" && i + 1 < args.size()) {
      sample_hz = std::stol(args[++i]);
      if (sample_hz <= 0) return usage();
    } else if (args[i] == "--top" && i + 1 < args.size()) {
      top_n = std::stol(args[++i]);
      if (top_n <= 0) return usage();
    } else if (args[i] == "--flight-out" && i + 1 < args.size()) {
      flight_out = args[++i];
    } else if (args[i] == "--serve-metrics" && i + 1 < args.size()) {
      serve_port = std::stoi(args[++i]);
      if (serve_port < 0 || serve_port > 65535) return usage();
    } else if (args[i] == "--serve-hold-ms" && i + 1 < args.size()) {
      serve_hold_ms = std::stol(args[++i]);
      if (serve_hold_ms < 0) return usage();
    } else if (args[i] == "--run-ledger" && i + 1 < args.size()) {
      ledger_file = args[++i];
    } else if (args[i] == "--stats") {
      stats = true;
    } else if (args[i] == "--tree-eval") {
      opentla::vm::set_tree_eval_for_test(true);
    } else if (args[i] == "--werror") {
      werror = true;
    } else if (args[i] == "--independence") {
      want_independence = true;
    } else if (args[i] == "--footprints") {
      want_footprints = true;
    } else if (args[i] == "--state-bound" && i + 1 < args.size()) {
      lint_opts.state_bound = std::stoull(args[++i]);
    } else if (args[i] == "--witness" && i + 1 < args.size()) {
      const std::string w = args[++i];
      const std::size_t eq = w.find('=');
      if (eq == std::string::npos) return usage();
      witnesses.emplace_back(w.substr(0, eq), w.substr(eq + 1));
    } else if (args[i] == "--component" && i + 1 < args.size()) {
      component_files.push_back(split_pair(args[++i]));
    } else if (args[i] == "--constraint" && i + 1 < args.size()) {
      constraint_files.push_back(args[++i]);
    } else if (args[i] == "--goal" && i + 1 < args.size()) {
      goal_files = split_pair(args[++i]);
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage();
    } else {
      files.push_back(args[i]);
    }
  }

    // Under `profile`, --format belongs to the profile renderer; the
    // wrapped subcommand renders its default (human) output.
    const std::string inner_format = profiling ? "human" : format;

    ExploreOptions eopts;
    eopts.threads = threads;
    eopts.max_states = max_states;

    // Run budget: armed by any limit flag. The flight recorder arms it too
    // (signal watch only) so SIGINT/SIGTERM end in a dump plus a graceful
    // partial result instead of the default fatal exit, and a ledger run
    // gets a limit-free budget so max_states stops latch a reason the
    // ledger can record. Budget flags work in OPENTLA_OBS=OFF builds —
    // limits are a correctness feature, not an observability one.
    const bool want_limits = deadline_ms >= 0 || rss_limit_mb >= 0 || flight_cap >= 0;
    std::unique_ptr<run::RunBudget> budget;
    if (want_limits || !ledger_file.empty()) {
      run::BudgetLimits limits;
      if (deadline_ms >= 0) limits.deadline_ms = static_cast<std::uint64_t>(deadline_ms);
      if (rss_limit_mb >= 0) {
        limits.max_rss_bytes = static_cast<std::uint64_t>(rss_limit_mb) * 1024 * 1024;
      }
      limits.watch_signals = want_limits;
      budget = std::make_unique<run::RunBudget>(limits);
      eopts.budget = budget.get();
    }

    auto dispatch = [&]() -> int {
      if (cmd == "compose") {
        if (goal_files.first.empty() || component_files.empty()) return usage();
        return cmd_compose(component_files, constraint_files, goal_files, witnesses,
                           max_states, threads, budget.get());
      }
      if (cmd == "lint") {
        if (files.empty()) return usage();
        return cmd_lint(files, inner_format, werror, lint_opts);
      }
      if (cmd == "analyze") {
        if (files.empty()) return usage();
        return cmd_analyze(files, inner_format, want_independence, want_footprints);
      }
      if (cmd == "refine") {
        if (files.size() != 2) return usage();
        ParsedModule low = parse_module(slurp(files[0]));
        ParsedModule high = parse_module(slurp(files[1]));
        return cmd_refine(low, high, witnesses, eopts);
      }
      if (files.size() != 1) return usage();
      ParsedModule mod = parse_module(slurp(files[0]));
      if (cmd == "info") return cmd_info(mod, inner_format);
      if (cmd == "states") return cmd_states(mod, dump, eopts, inner_format);
      if (cmd == "check") return cmd_check(mod, invariant_src, eopts);
      if (cmd == "closure") return cmd_closure(mod, eopts);
      if (cmd == "deadlock") return cmd_deadlock(mod, eopts);
      if (cmd == "simulate") return cmd_simulate(mod, steps, seed, eopts);
      if (cmd == "coverage") return cmd_coverage(mod, inner_format, eopts);
      if (cmd == "leadsto") {
        if (from_src.empty() || to_src.empty()) return usage();
        return cmd_leadsto(mod, from_src, to_src, eopts);
      }
      return usage();
    };

    // Live observability flags need the instrumentation compiled in; an
    // OPENTLA_OBS=OFF binary would silently record nothing, so reject the
    // flags outright instead of emitting empty files.
    const bool live_obs = progress_ms >= 0 || !events_file.empty() || !metrics_file.empty() ||
                          flight_cap >= 0 || serve_port >= 0 || !ledger_file.empty() ||
                          sample_hz >= 0;
    if (live_obs && !obs::compile_time_enabled()) {
      std::cerr << "error: --progress/--events/--metrics-out/--flight-recorder/"
                   "--serve-metrics/--run-ledger/--sample-hz require a build with "
                   "OPENTLA_OBS=ON (this binary was configured with -DOPENTLA_OBS=OFF)\n";
      return 2;
    }

    std::unique_ptr<obs::JsonlWriter> events;
    if (!events_file.empty()) {
      events = std::make_unique<obs::JsonlWriter>(events_file);
      if (!events->ok()) {
        std::cerr << "error: cannot write " << events_file << "\n";
        return 2;
      }
      obs::set_phase_sink(
          [ev = events.get()](const obs::PhaseEvent& p) { ev->write_phase(p); });
    }
    // Clears the phase sink before `events` is destroyed, including when
    // dispatch throws.
    struct PhaseSinkGuard {
      bool active;
      ~PhaseSinkGuard() {
        if (active) obs::set_phase_sink(nullptr);
      }
    } sink_guard{events != nullptr};

    if (live_obs) obs::set_enabled(true);

    if (flight_cap >= 0) {
      obs::flight_recorder_enable(static_cast<std::size_t>(flight_cap), flight_out);
    }

    std::unique_ptr<obs::MetricsServer> server;
    if (serve_port >= 0) {
      server = std::make_unique<obs::MetricsServer>(static_cast<std::uint16_t>(serve_port));
      if (!server->ok()) {
        std::cerr << "error: cannot bind 127.0.0.1:" << serve_port << "\n";
        return 2;
      }
      std::cerr << "[serve] http://127.0.0.1:" << server->port()
                << " (/metrics, /progress)\n";
    }

    // The recorder and the /progress endpoint need heartbeats even when the
    // user didn't ask for a console progress line: run a silent sampler.
    std::unique_ptr<obs::ProgressSampler> sampler;
    const bool verbose_progress = progress_ms >= 0;
    if (verbose_progress || server != nullptr || flight_cap >= 0) {
      const long period_ms = verbose_progress ? progress_ms : 100;
      sampler = std::make_unique<obs::ProgressSampler>(
          std::chrono::milliseconds(period_ms),
          [ev = events.get(), srv = server.get(),
           verbose_progress](const obs::ProgressSample& s) {
            if (verbose_progress) {
              std::fprintf(stderr,
                           "[progress] t=%.2fs states=%llu frontier=%llu rate=%.0f/s "
                           "rss=%.1fMB\n",
                           static_cast<double>(s.elapsed_us) / 1e6,
                           static_cast<unsigned long long>(s.states),
                           static_cast<unsigned long long>(s.frontier), s.states_per_sec,
                           static_cast<double>(s.rss_bytes) / (1024.0 * 1024.0));
              std::fflush(stderr);
            }
            if (ev) ev->write_progress(s);
            if (srv) srv->set_progress(s);
            if (obs::flight_recorder_enabled()) {
              obs::flight_recorder_record(obs::FlightKind::kProgress, "", s.states,
                                          s.frontier, s.rss_bytes);
            }
          });
    }

    // Span-stack sampling profiler: walks every registered thread's span
    // stack at --sample-hz and folds the observations for flamegraphs.
    // Read-only on atomics, so exploration order (and the bit-identical
    // graph contract) is unaffected.
    std::unique_ptr<obs::SamplingProfiler> span_profiler;
    if (sample_hz > 0) {
      obs::set_enabled(true);
      span_profiler =
          std::make_unique<obs::SamplingProfiler>(static_cast<double>(sample_hz));
    }

    auto finish = [&](int rc) {
      if (span_profiler) span_profiler->stop();
      if (sampler) sampler->stop();
      obs::gauge_max(obs::Gauge::PeakRssBytes, obs::read_rss_bytes());
      if (budget != nullptr && budget->stopped()) {
        // A budget-stopped run never exits 0: "success" on a partial graph
        // is not a verdict. Definite failures (rc 1) keep their exit code.
        if (rc == 0) rc = run::kBudgetExitCode;
        if (obs::flight_recorder_enabled()) {
          const std::size_t n = obs::flight_recorder_dump("budget_stop");
          std::cerr << "[flight-recorder] wrote " << n << " events to " << flight_out
                    << "\n";
        }
      }
      if (!metrics_file.empty()) {
        std::ofstream out(metrics_file);
        out << obs::render_openmetrics(obs::snapshot());
        if (!out) {
          std::cerr << "error: cannot write " << metrics_file << "\n";
          return 2;
        }
      }
      if (server) {
        if (serve_hold_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(serve_hold_ms));
        }
        server->stop();
      }
      if (!ledger_file.empty()) {
        run::RunRecord rec;
        rec.command = cmd;
        std::uint64_t h = run::fnv1a64(nullptr, 0);
        auto fold = [&h](const std::string& path) {
          try {
            const std::string text = slurp(path);
            h = run::fnv1a64(text.data(), text.size(), h);
          } catch (const std::exception&) {
            // Unreadable inputs already failed the run; the ledger still
            // records the attempt.
          }
        };
        for (const std::string& f : files) fold(f);
        for (const auto& [env, guar] : component_files) fold(env), fold(guar);
        for (const std::string& f : constraint_files) fold(f);
        if (!goal_files.first.empty()) fold(goal_files.first), fold(goal_files.second);
        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(h));
        rec.spec_hash = hex;
        for (std::size_t i = 0; i < args.size(); ++i) {
          if (i != 0) rec.options += ' ';
          rec.options += args[i];
        }
        rec.stop_reason =
            run::to_string(budget != nullptr ? budget->reason() : run::StopReason::kCompleted);
        rec.exit_code = rc;
        rec.states = obs::counter_value(obs::Counter::StatesGenerated);
        rec.budget_stops = obs::counter_value(obs::Counter::BudgetStops);
        rec.elapsed_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - run_start)
                .count());
        rec.peak_rss_bytes = obs::gauge_value(obs::Gauge::PeakRssBytes);
        const obs::Snapshot mem_snap = obs::snapshot();
        rec.tracked_peak_bytes = mem_snap.mem_tracked_peak_bytes;
        rec.bytes_per_state = mem_snap.bytes_per_state();
        if (!run::append_run_ledger(ledger_file, rec)) {
          std::cerr << "warning: cannot append run ledger " << ledger_file << "\n";
        }
      }
      return rc;
    };

    if (!profiling && !stats) return finish(dispatch());

    obs::ScopedSink sink;
    const int rc = dispatch();
    // Sampling ends with the measured work (stop() is idempotent; finish()
    // calls it again harmlessly) so folded counts are complete here.
    if (span_profiler) span_profiler->stop();
    obs::Snapshot snap = sink.take();
    // Expression-evaluator section: which engine ran and how much bytecode
    // it retired. Appended to human-readable stats/profile output only; the
    // JSON/trace renders already carry the vm_* counters.
    const auto vm_section = [&snap] {
      std::ostringstream os;
      os << "--- vm ---\n"
         << "mode: " << (vm::tree_eval_forced() ? "tree" : "vm") << "\n"
         << "vm_programs_compiled: "
         << snap.counter(obs::Counter::VmProgramsCompiled) << "\n"
         << "vm_instrs_executed: "
         << snap.counter(obs::Counter::VmInstrsExecuted) << "\n";
      return os.str();
    };
    if (!profiling) {
      std::cout << "--- stats ---\n" << obs::render_human(snap) << vm_section();
      return finish(rc);
    }
    // Folded stacks come from the live sampler when one ran; when it did
    // not (or the run was too short for any tick to land on an open span),
    // they are derived from the completed spans so the flamegraph always
    // renders.
    const auto folded_text = [&] {
      std::vector<obs::FoldedStack> stacks;
      if (span_profiler) stacks = span_profiler->folded();
      if (stacks.empty()) stacks = obs::folded_from_spans(snap);
      return obs::render_folded(stacks);
    };
    const std::string rendered =
        format == "trace"    ? obs::render_chrome_trace(snap)
        : format == "json"   ? obs::render_json(snap)
        : format == "folded" ? folded_text()
                             : obs::render_human(snap) + vm_section() +
                                   obs::render_profile_table(
                                       obs::profile_rows(snap),
                                       static_cast<std::size_t>(top_n));
    if (out_file.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(out_file);
      out << rendered;
      if (!out) {
        std::cerr << "error: cannot write " << out_file << "\n";
        return finish(2);
      }
    }
    return finish(rc);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    if (obs::flight_recorder_enabled()) obs::flight_recorder_dump("exception");
    return 2;
  }
}
