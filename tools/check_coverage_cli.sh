#!/usr/bin/env bash
# End-to-end check of the `tlacheck coverage` subcommand and the live
# observability flags (--progress / --events / --metrics-out):
#
#   1. coverage on a generated spec with a never-enabled action exits 1
#      and names the action (human and JSON formats);
#   2. coverage on a fully-covered bundled spec exits 0;
#   3. a live-obs run emits >=2 heartbeats to stderr, parseable JSON on
#      stdout, a schema-valid JSONL event stream (tools/events_schema.json),
#      and an OpenMetrics exposition terminated by `# EOF`;
#   4. in --obs-off mode (binary built with -DOPENTLA_OBS=OFF), coverage
#      still works (it counts emissions directly, independent of the obs
#      registry), but the live-obs flags are rejected with exit 2, a clear
#      message, and no output files — step 3 is replaced by this probe.
#
# Usage: tools/check_coverage_cli.sh <tlacheck-binary> [--obs-off]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
tlacheck="${1:?usage: check_coverage_cli.sh <tlacheck-binary> [--obs-off]}"
obs_off=0
[ "${2:-}" = "--obs-off" ] && obs_off=1
specs="${repo_root}/specs"
events_schema="${repo_root}/tools/events_schema.json"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "check_coverage_cli: FAIL: $*" >&2
  exit 1
}

# --- 1. A never-enabled action must be flagged with exit 1 and named. ---

cat > "$workdir/never.tla" <<'EOF'
MODULE Never
VARIABLE x \in 0..2
INIT x = 0
ACTION Step == x < 2 /\ x' = x + 1
ACTION Ghost == x = 9 /\ x' = 0
NEXT Step \/ Ghost
SUBSCRIPT <<x>>
EOF

rc=0
out="$("$tlacheck" coverage "$workdir/never.tla")" || rc=$?
[ "$rc" -eq 1 ] || fail "coverage on never.tla: expected exit 1, got $rc"
grep -q "Ghost" <<<"$out" || fail "coverage human output does not name Ghost"
grep -q "never fired" <<<"$out" || fail "coverage human output lacks 'never fired'"

rc=0
"$tlacheck" coverage "$workdir/never.tla" --format json > "$workdir/never.json" || rc=$?
[ "$rc" -eq 1 ] || fail "coverage --format json on never.tla: expected exit 1, got $rc"
python3 - "$workdir/never.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data["never_fired"] == ["Ghost"], data["never_fired"]
ghost = [a for a in data["actions"] if a["name"] == "Ghost"]
assert len(ghost) == 1 and ghost[0]["never_fired"] and ghost[0]["fired"] == 0, ghost
step = [a for a in data["actions"] if a["name"] == "Step"]
assert step and not step[0]["never_fired"] and step[0]["fired"] > 0, step
PY
echo "ok: never-enabled action flagged (exit 1, named in both formats)"

# --- 1b. Guard-based enabled attribution: a guard that holds while the ---
# ---     action still cannot fire must show enabled_states > 0.        ---

cat > "$workdir/stuck.tla" <<'EOF'
MODULE Stuck
VARIABLE x \in 0..2
INIT x = 0
ACTION Step == x < 2 /\ x' = x + 1
ACTION Stuck == x = 0 /\ x' = x + 5
NEXT Step \/ Stuck
SUBSCRIPT <<x>>
EOF

rc=0
"$tlacheck" coverage "$workdir/stuck.tla" --format json > "$workdir/stuck.json" || rc=$?
[ "$rc" -eq 1 ] || fail "coverage on stuck.tla: expected exit 1, got $rc"
python3 - "$workdir/stuck.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
stuck = [a for a in data["actions"] if a["name"] == "Stuck"][0]
# The precondition x = 0 holds in a reachable state, so the guard-based
# attribution reports enabled_states > 0 even though the action can never
# fire (x + 5 always leaves the declared domain).
assert stuck["fired"] == 0 and stuck["never_fired"], stuck
assert stuck["enabled_states"] > 0, stuck
PY
echo "ok: guard-enabled-but-never-fired action reports enabled_states > 0"

# --- 2. A fully-covered bundled spec passes. ---

"$tlacheck" coverage "$specs/counter.tla" > /dev/null \
  || fail "coverage on counter.tla: expected exit 0, got $?"
echo "ok: covered spec exits 0"

# --- 4 (--obs-off). The OFF binary rejects live-obs flags cleanly. ---

if [ "$obs_off" -eq 1 ]; then
  off_events="$workdir/off_events.jsonl"
  off_metrics="$workdir/off_metrics.om"
  rc=0
  "$tlacheck" coverage "$specs/counter.tla" --progress=50 \
    --events "$off_events" --metrics-out "$off_metrics" \
    > /dev/null 2> "$workdir/off.stderr" || rc=$?
  [ "$rc" -eq 2 ] || fail "OFF build: live-obs flags expected exit 2, got $rc"
  grep -q "OPENTLA_OBS" "$workdir/off.stderr" \
    || fail "OFF build: rejection message does not mention OPENTLA_OBS"
  [ ! -e "$off_events" ] || fail "OFF build: created $off_events despite rejecting the flags"
  [ ! -e "$off_metrics" ] || fail "OFF build: created $off_metrics despite rejecting the flags"
  echo "ok: OPENTLA_OBS=OFF binary rejects live-obs flags cleanly (exit 2, no files)"
  echo "check_coverage_cli: all checks passed (--obs-off mode)"
  exit 0
fi

# --- 3. Live-obs round trip: heartbeats + events JSONL + OpenMetrics. ---

events="$workdir/events.jsonl"
metrics="$workdir/metrics.om"
stderr_log="$workdir/progress.stderr"
stdout_json="$workdir/coverage.json"

"$tlacheck" coverage "$specs/ag_queue/qedbl.tla" --format json \
  --progress=50 --events "$events" --metrics-out "$metrics" \
  > "$stdout_json" 2> "$stderr_log" \
  || fail "live-obs coverage run failed with $?"

python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$stdout_json" \
  || fail "stdout is not parseable JSON with --progress active"

beats="$(grep -c '^\[progress\]' "$stderr_log" || true)"
[ "$beats" -ge 2 ] || fail "expected >=2 heartbeats on stderr, saw $beats"

[ -s "$events" ] || fail "--events wrote no lines"
python3 - "$events_schema" "$events" <<'PY'
import json, sys

schema = json.load(open(sys.argv[1]))
shapes = {s["properties"]["type"]["const"]: s for s in schema["oneOf"]}

def check_value(key, value, prop):
    t = prop.get("type", prop.get("const") and "const")
    if "const" in prop:
        assert value == prop["const"], f"{key}: {value!r} != {prop['const']!r}"
    elif t == "integer":
        assert isinstance(value, int) and not isinstance(value, bool), key
        assert value >= prop.get("minimum", value), key
    elif t == "number":
        assert isinstance(value, (int, float)) and not isinstance(value, bool), key
        assert value >= prop.get("minimum", value), key
    elif t == "boolean":
        assert isinstance(value, bool), key
    elif t == "string":
        assert isinstance(value, str), key
        assert len(value) >= prop.get("minLength", 0), key

n_progress = n_final = 0
seqs = []
for lineno, line in enumerate(open(sys.argv[2]), 1):
    event = json.loads(line)
    shape = shapes.get(event.get("type"))
    assert shape is not None, f"line {lineno}: unknown type {event.get('type')!r}"
    for key in shape["required"]:
        assert key in event, f"line {lineno}: missing '{key}'"
    for key, value in event.items():
        assert key in shape["properties"], f"line {lineno}: unexpected '{key}'"
        check_value(f"line {lineno}: {key}", value, shape["properties"][key])
    if event["type"] == "progress":
        n_progress += 1
        n_final += event["final"]
        seqs.append(event["seq"])

assert n_progress >= 2, f"expected >=2 progress events, saw {n_progress}"
assert n_final == 1, f"expected exactly one final sample, saw {n_final}"
assert seqs == sorted(seqs), f"progress seq not monotone: {seqs}"
print(f"  {lineno} event lines validated ({n_progress} progress)")
PY

[ -s "$metrics" ] || fail "--metrics-out wrote no content"
tail -n 1 "$metrics" | grep -qx '# EOF' || fail "OpenMetrics file lacks '# EOF' terminator"
grep -q '^opentla_states_generated_total ' "$metrics" \
  || fail "OpenMetrics file lacks opentla_states_generated_total"
grep -q '^opentla_action_fired_total{action="IQEdbl"} ' "$metrics" \
  || fail "OpenMetrics file lacks the labeled action_fired sample for IQEdbl"
grep -q '^opentla_successor_fanout_bucket{le="+Inf"} ' "$metrics" \
  || fail "OpenMetrics file lacks the fanout +Inf bucket"
echo "ok: live-obs round trip (heartbeats, JSONL, OpenMetrics)"

echo "check_coverage_cli: all checks passed"
