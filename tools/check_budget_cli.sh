#!/usr/bin/env bash
# End-to-end check of the run-budget CLI contract (ISSUE: obs v3):
#
#   1. a state-budget breach exits 3 with `stop_reason: "state_budget"`,
#      and serial/parallel runs (threads 1, 2, 4) report the SAME state
#      count at the same bound — the unified max_states semantics;
#   2. a deadline breach on the fig9 composition exits 3, prints a partial
#      obligation report with `stop_reason: "deadline"`, and (obs-on) the
#      --flight-recorder dump is schema-valid against
#      tools/flight_schema.json;
#   3. a violation found before any breach still exits 1: counterexamples
#      on partial graphs are real;
#   4. (obs-on) SIGTERM during a recorded run ends in exit 3 with
#      `stop_reason: "interrupted"` and a written dump;
#   5. (obs-on) --run-ledger appends one line per run, schema-valid
#      against tools/ledger_schema.json, with the breach's stop reason.
#
# Budget flags themselves (--deadline-ms/--rss-limit-mb/--max-states) must
# work in OPENTLA_OBS=OFF builds; in --obs-off mode the recorder/ledger
# probes are replaced by "rejected with exit 2" assertions.
#
# Usage: tools/check_budget_cli.sh <tlacheck-binary> [--obs-off]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
tlacheck="$(readlink -f "${1:?usage: check_budget_cli.sh <tlacheck-binary> [--obs-off]}")"
obs_off=0
[ "${2:-}" = "--obs-off" ] && obs_off=1
specs="${repo_root}/specs"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

fail() {
  echo "check_budget_cli: FAIL: $*" >&2
  exit 1
}

fig9=(compose
  --constraint "$specs/ag_queue/g.tla"
  --component "$specs/ag_queue/qe1.tla,$specs/ag_queue/qm1.tla"
  --component "$specs/ag_queue/qe2.tla,$specs/ag_queue/qm2.tla"
  --goal "$specs/ag_queue/qedbl.tla,$specs/ag_queue/qmdbl.tla"
  --witness 'q=q2 \o (IF z.sig # z.ack THEN <<z.val>> ELSE <<>>) \o q1')

# --- 1. State budget: exit 3, stop_reason, serial/parallel count parity. ---

counts=""
for t in 1 2 4; do
  rc=0
  out="$("$tlacheck" states "$specs/peterson.tla" --max-states 10 --threads "$t")" || rc=$?
  [ "$rc" -eq 3 ] || fail "states --max-states 10 --threads $t: expected exit 3, got $rc"
  grep -q 'stop_reason: "state_budget"' <<<"$out" \
    || fail "threads $t: missing stop_reason state_budget in: $out"
  n="$(sed -n 's/^\([0-9]*\) states.*/\1/p' <<<"$out")"
  [ "$n" = "10" ] || fail "threads $t: expected 10 states at the budget, got '$n'"
  counts="$counts $n"
done
echo "ok: state budget stops at the same count across threads:$counts"

# A generous budget must not trigger (exit 0, no stop_reason line).
rc=0
out="$("$tlacheck" states "$specs/peterson.tla" --max-states 100000)" || rc=$?
[ "$rc" -eq 0 ] || fail "generous --max-states: expected exit 0, got $rc"
grep -q 'stop_reason' <<<"$out" && fail "generous --max-states printed a stop_reason"
echo "ok: generous budget does not trigger"

# JSON output carries the stop_reason field only on a breach.
rc=0
"$tlacheck" states "$specs/peterson.tla" --max-states 10 --format json \
  > states.json || rc=$?
[ "$rc" -eq 3 ] || fail "states --format json at budget: expected exit 3, got $rc"
python3 - states.json <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data["states"] == 10, data
assert data["stop_reason"] == "state_budget", data
PY
echo "ok: JSON partial result carries stop_reason"

# --- 2. Deadline breach on fig9: partial proof report, exit 3. ---

flight_args=()
if [ "$obs_off" -eq 0 ]; then
  flight_args=(--flight-recorder --flight-out flight.jsonl)
fi
rc=0
out="$("$tlacheck" "${fig9[@]}" --deadline-ms 1 "${flight_args[@]}" 2>stderr.txt)" || rc=$?
[ "$rc" -eq 3 ] || fail "fig9 --deadline-ms 1: expected exit 3, got $rc (stderr: $(cat stderr.txt))"
grep -q 'stop_reason: "deadline"' <<<"$out" \
  || fail "fig9 deadline run lacks stop_reason deadline: $out"
grep -q 'NOT PROVED (run budget stopped the proof)' <<<"$out" \
  || fail "fig9 deadline run lacks the partial-proof trailer: $out"
grep -q '\[?budget\]' <<<"$out" \
  || fail "fig9 deadline run marks no obligation inconclusive: $out"
echo "ok: fig9 deadline breach yields a partial proof report with exit 3"

if [ "$obs_off" -eq 0 ]; then
  [ -s flight.jsonl ] || fail "deadline breach wrote no flight-recorder dump"
  python3 - "$repo_root/tools/flight_schema.json" flight.jsonl <<'PY'
import json, sys
schema = json.load(open(sys.argv[1]))
event_shape, dump_shape = schema["oneOf"]
kinds = set(event_shape["properties"]["type"]["enum"])
lines = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
assert lines, "empty dump"
assert lines[-1]["type"] == "dump", lines[-1]
dump = lines[-1]
for key in dump_shape["required"]:
    assert key in dump, f"dump line missing {key}"
assert dump["reason"] == "budget_stop", dump
assert dump["written"] == len(lines) - 1, (dump, len(lines))
seqs = []
for ev in lines[:-1]:
    for key in event_shape["required"]:
        assert key in ev, f"event missing {key}: {ev}"
    assert ev["type"] in kinds, ev
    assert set(ev) <= set(event_shape["properties"]), ev
    seqs.append(ev["seq"])
assert seqs == sorted(seqs), "dump is not oldest-first"
assert any(ev["type"] == "budget" and ev["label"] == "deadline" for ev in lines[:-1]), \
    "no budget event with label deadline in the dump"
print(f"flight.jsonl: ok ({len(lines) - 1} events)")
PY
  echo "ok: flight-recorder dump is schema-valid"
fi

# --- 3. A violation beats the budget: exit 1, not 3. ---

rc=0
"$tlacheck" check "$specs/counter.tla" --invariant 'x < 4' --deadline-ms 60000 \
  >/dev/null || rc=$?
[ "$rc" -eq 1 ] || fail "violation under an unbreached budget: expected exit 1, got $rc"
echo "ok: definite violations keep exit 1 under a budget"

if [ "$obs_off" -eq 1 ]; then
  # --- obs-off: live-obs flags rejected with exit 2, budgets still work. ---
  for flag in "--flight-recorder" "--serve-metrics 0" "--run-ledger ledger.jsonl"; do
    rc=0
    # shellcheck disable=SC2086
    "$tlacheck" states "$specs/counter.tla" $flag >/dev/null 2>err.txt || rc=$?
    [ "$rc" -eq 2 ] || fail "obs-off: '$flag' expected exit 2, got $rc"
    grep -q "OPENTLA_OBS=ON" err.txt || fail "obs-off: '$flag' error lacks the hint"
  done
  [ ! -e flight_recorder.jsonl ] || fail "obs-off run created flight_recorder.jsonl"
  [ ! -e ledger.jsonl ] || fail "obs-off run created ledger.jsonl"
  echo "ok: obs-off build rejects recorder/server/ledger flags with exit 2"
  echo "check_budget_cli: PASS (obs-off)"
  exit 0
fi

# --- 4. SIGTERM: graceful stop, stop_reason interrupted, dump written. ---

rm -f flight.jsonl
"$tlacheck" "${fig9[@]}" --flight-recorder --flight-out flight.jsonl \
  > sigterm_out.txt 2>/dev/null &
pid=$!
# Race-tolerant: if the run finishes before the signal lands, fall back to
# asserting the clean-completion exit instead.
sleep 0.05
kill -TERM "$pid" 2>/dev/null || true
rc=0
wait "$pid" || rc=$?
if [ "$rc" -eq 3 ]; then
  grep -q 'stop_reason: "interrupted"' sigterm_out.txt \
    || fail "SIGTERM run exited 3 without stop_reason interrupted"
  [ -s flight.jsonl ] || fail "SIGTERM run wrote no flight-recorder dump"
  grep -q '"type":"dump"' flight.jsonl || fail "SIGTERM dump lacks the trailer"
  echo "ok: SIGTERM ends in a graceful interrupted stop with a dump"
elif [ "$rc" -eq 0 ]; then
  echo "ok: SIGTERM race lost (run completed first); graceful path covered by exit-3 branch elsewhere"
else
  fail "SIGTERM run: expected exit 3 (or 0 on race), got $rc"
fi

# --- 5. The run ledger: one schema-valid line per run. ---

rm -f ledger.jsonl
rc=0
"$tlacheck" states "$specs/peterson.tla" --max-states 10 --run-ledger ledger.jsonl \
  >/dev/null || rc=$?
[ "$rc" -eq 3 ] || fail "ledger run: expected exit 3, got $rc"
rc=0
"$tlacheck" states "$specs/peterson.tla" --run-ledger ledger.jsonl >/dev/null || rc=$?
[ "$rc" -eq 0 ] || fail "second ledger run: expected exit 0, got $rc"
python3 - "$repo_root/tools/ledger_schema.json" ledger.jsonl <<'PY'
import json, re, sys
schema = json.load(open(sys.argv[1]))
lines = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
assert len(lines) == 2, f"expected 2 ledger lines, got {len(lines)}"
for rec in lines:
    for key in schema["required"]:
        assert key in rec, f"ledger line missing {key}: {rec}"
    assert set(rec) <= set(schema["properties"]), rec
    assert rec["schema"] == "opentla-run-ledger-v2", rec
    assert re.fullmatch(r"[0-9a-f]{16}", rec["spec_hash"]), rec
    assert rec["stop_reason"] in schema["properties"]["stop_reason"]["enum"], rec
breached, clean = lines
assert breached["stop_reason"] == "state_budget" and breached["exit_code"] == 3, breached
assert clean["stop_reason"] == "completed" and clean["exit_code"] == 0, clean
assert breached["spec_hash"] == clean["spec_hash"], "same spec must hash identically"
print("ledger.jsonl: ok (2 lines)")
PY
echo "ok: run ledger lines are schema-valid and carry the stop reason"

echo "check_budget_cli: PASS"
