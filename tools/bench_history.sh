#!/usr/bin/env bash
# Append one benchmark run to the longitudinal history ledger.
#
#   tools/bench_history.sh <BENCH_name.json> [history.jsonl]
#     (default history file: <repo>/bench/history.jsonl)
#
# Each call appends one JSONL line {ts, bench, wall_time_s, counters,
# gauges, tracked_peak_bytes, bytes_per_state} built from a bench
# binary's BENCH_<name>.json counter export
# plus the adjacent <name>.gbench.json google-benchmark report when one
# exists (wall_time_s = the summed real_time of its benchmarks; null
# otherwise). The line is written with a single O_APPEND write — same
# crash-safety contract as the run ledger.
#
# It then compares wall_time_s and bytes_per_state against the PREVIOUS
# entry for the same bench name and prints a warning to stderr when the
# run regressed by more than 20% on either. The warning never fails the
# script (exit 0): history is an observatory, not a gate — CI surfaces
# the message, a human decides.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bench_json="${1:?usage: bench_history.sh <BENCH_name.json> [history.jsonl]}"
history="${2:-${repo_root}/bench/history.jsonl}"

[ -f "$bench_json" ] || { echo "bench_history: no such file: $bench_json" >&2; exit 1; }
mkdir -p "$(dirname "$history")"

python3 - "$bench_json" "$history" <<'PY'
import json, os, sys, time

bench_path, history_path = sys.argv[1], sys.argv[2]
data = json.load(open(bench_path))
name = data["bench"]

# Wall time: the google-benchmark JSON report written alongside the
# counter export by tools/ci_bench.sh (--benchmark_out). Optional.
gbench_path = os.path.join(os.path.dirname(os.path.abspath(bench_path)),
                           f"{name}.gbench.json")
wall = None
if os.path.exists(gbench_path):
    report = json.load(open(gbench_path))
    times = [b["real_time"] * {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
             [b.get("time_unit", "ns")]
             for b in report.get("benchmarks", [])
             if b.get("run_type", "iteration") == "iteration"]
    if times:
        wall = sum(times)

memory = data.get("memory", {})
entry = {
    "ts": int(time.time()),
    "bench": name,
    "wall_time_s": wall,
    "counters": data.get("counters", {}),
    "gauges": data.get("gauges", {}),
    "tracked_peak_bytes": memory.get("tracked_peak_bytes", 0),
    "bytes_per_state": memory.get("bytes_per_state", 0),
}

# Previous entry for the same bench, for the regression comparison.
prev = None
if os.path.exists(history_path):
    with open(history_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn line from a killed run; skip, never fail
            if rec.get("bench") == name:
                prev = rec

line = json.dumps(entry, sort_keys=True)
fd = os.open(history_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
try:
    os.write(fd, (line + "\n").encode())
finally:
    os.close(fd)

warned = False
if (prev is not None and prev.get("wall_time_s") and wall
        and wall > prev["wall_time_s"] * 1.20):
    pct = 100.0 * (wall / prev["wall_time_s"] - 1.0)
    print(f"bench_history: WARNING: {name} wall time regressed "
          f"{pct:.1f}% ({prev['wall_time_s']:.3f}s -> {wall:.3f}s)",
          file=sys.stderr)
    warned = True
bps = entry["bytes_per_state"]
prev_bps = prev.get("bytes_per_state", 0) if prev is not None else 0
if prev_bps and bps and bps > prev_bps * 1.20:
    pct = 100.0 * (bps / prev_bps - 1.0)
    print(f"bench_history: WARNING: {name} bytes_per_state regressed "
          f"{pct:.1f}% ({prev_bps} -> {bps})", file=sys.stderr)
    warned = True
if not warned:
    print(f"bench_history: appended {name} "
          f"(wall={'%.3fs' % wall if wall else 'n/a'}, "
          f"bytes_per_state={bps}) to {history_path}")
PY
