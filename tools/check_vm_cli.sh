#!/usr/bin/env bash
# End-to-end check of the bytecode-VM CLI surface:
#
#   1. tree/VM identity: for a spread of subcommands and bundled specs,
#      running with and without --tree-eval produces byte-identical
#      output and identical exit codes — including a violated-invariant
#      counterexample trace, a deterministic full state dump over
#      sequence-valued variables, and a deadlock verdict;
#   2. in an obs-on build, `--stats` appends the "--- vm ---" section
#      with mode "vm", a nonzero vm_programs_compiled, and a nonzero
#      vm_instrs_executed; under --tree-eval the mode flips to "tree"
#      and vm_instrs_executed stays 0 (programs still compile at
#      construction);
#   3. `profile` surfaces the same vm section in its human format;
#   4. --tree-eval composes with any subcommand and an unknown flag
#      still exits 2;
#   5. in --obs-off mode (binary built with -DOPENTLA_OBS=OFF) the
#      identity checks all run — the evaluator switch is not an obs
#      feature — and only the counter probes are skipped.
#
# Usage: tools/check_vm_cli.sh <tlacheck-binary> [--obs-off]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
tlacheck="${1:?usage: check_vm_cli.sh <tlacheck-binary> [--obs-off]}"
obs_off=0
[ "${2:-}" = "--obs-off" ] && obs_off=1
specs="${repo_root}/specs"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "check_vm_cli: FAIL: $*" >&2
  exit 1
}

# Runs "$@" twice — once per evaluator — and insists on identical bytes
# and identical exit codes.
identical() {
  local label="$1"
  shift
  local rc_vm=0 rc_tree=0
  "$tlacheck" "$@" > "$workdir/vm.out" 2>&1 || rc_vm=$?
  "$tlacheck" "$@" --tree-eval > "$workdir/tree.out" 2>&1 || rc_tree=$?
  [ "$rc_vm" -eq "$rc_tree" ] \
    || fail "$label: exit codes differ (vm=$rc_vm tree=$rc_tree)"
  cmp -s "$workdir/vm.out" "$workdir/tree.out" \
    || fail "$label: output differs between VM and tree evaluator"
  echo "ok: tree/vm identical: $label (exit $rc_vm)"
}

# --- 1. Tree/VM identity across subcommands and specs. ---

identical "states --dump round_robin" states "$specs/round_robin.tla" --dump
identical "states --dump peterson" states "$specs/peterson.tla" --dump
identical "check mutex (holds)" check "$specs/mutex.tla"
identical "check counter (violated + counterexample)" \
  check "$specs/counter.tla" --invariant "x < 3"
identical "deadlock hour_clock" deadlock "$specs/hour_clock.tla"
identical "closure counter_mod2" closure "$specs/counter_mod2.tla"

# --- 4. Flag handling (checked early so failures read in CLI terms). ---

rc=0
"$tlacheck" states "$specs/counter.tla" --tree-eval --no-such-flag \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "unknown flag beside --tree-eval: expected exit 2, got $rc"
echo "ok: unknown flag still exits 2 with --tree-eval present"

# --- 2 + 3. Obs counters and the profile section (obs-on builds only). ---

if [ "$obs_off" -eq 1 ]; then
  echo "ok: --obs-off build ran every identity check above (the evaluator"
  echo "    switch works without the obs registry)"
  echo "check_vm_cli: all checks passed (--obs-off mode)"
  exit 0
fi

out="$("$tlacheck" check "$specs/counter.tla" --stats)"
grep -q -- "--- vm ---" <<<"$out" || fail "--stats lacks the vm section"
grep -q "^mode: vm$" <<<"$out" || fail "--stats vm section: mode is not 'vm'"
grep -Eq "^vm_programs_compiled: [1-9][0-9]*$" <<<"$out" \
  || fail "--stats: vm_programs_compiled is zero or missing"
grep -Eq "^vm_instrs_executed: [1-9][0-9]*$" <<<"$out" \
  || fail "--stats: vm_instrs_executed is zero or missing"
echo "ok: --stats vm section (mode vm, nonzero compile/execute counters)"

out="$("$tlacheck" check "$specs/counter.tla" --tree-eval --stats)"
grep -q "^mode: tree$" <<<"$out" \
  || fail "--tree-eval --stats: mode is not 'tree'"
grep -q "^vm_instrs_executed: 0$" <<<"$out" \
  || fail "--tree-eval --stats: vm_instrs_executed should be 0"
grep -Eq "^vm_programs_compiled: [1-9][0-9]*$" <<<"$out" \
  || fail "--tree-eval --stats: programs still compile at construction"
echo "ok: --tree-eval flips the mode and executes zero VM instructions"

out="$("$tlacheck" profile check "$specs/counter.tla")"
grep -q -- "--- vm ---" <<<"$out" || fail "profile lacks the vm section"
grep -q "^mode: vm$" <<<"$out" || fail "profile vm section: mode is not 'vm'"
echo "ok: profile surfaces the vm section"

echo "check_vm_cli: all checks passed"
