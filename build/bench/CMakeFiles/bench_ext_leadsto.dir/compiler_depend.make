# Empty compiler generated dependencies file for bench_ext_leadsto.
# This may be replaced when dependencies are built.
