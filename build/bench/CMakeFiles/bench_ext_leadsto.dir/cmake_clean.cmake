file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_leadsto.dir/bench_ext_leadsto.cpp.o"
  "CMakeFiles/bench_ext_leadsto.dir/bench_ext_leadsto.cpp.o.d"
  "bench_ext_leadsto"
  "bench_ext_leadsto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_leadsto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
