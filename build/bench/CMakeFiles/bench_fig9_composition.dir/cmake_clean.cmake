file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_composition.dir/bench_fig9_composition.cpp.o"
  "CMakeFiles/bench_fig9_composition.dir/bench_fig9_composition.cpp.o.d"
  "bench_fig9_composition"
  "bench_fig9_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
