# Empty dependencies file for bench_fig9_composition.
# This may be replaced when dependencies are built.
