file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_circular.dir/bench_fig1_circular.cpp.o"
  "CMakeFiles/bench_fig1_circular.dir/bench_fig1_circular.cpp.o.d"
  "bench_fig1_circular"
  "bench_fig1_circular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_circular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
