file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_operators.dir/bench_ablation_operators.cpp.o"
  "CMakeFiles/bench_ablation_operators.dir/bench_ablation_operators.cpp.o.d"
  "bench_ablation_operators"
  "bench_ablation_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
