# Empty dependencies file for bench_ablation_operators.
# This may be replaced when dependencies are built.
