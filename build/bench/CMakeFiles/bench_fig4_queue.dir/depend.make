# Empty dependencies file for bench_fig4_queue.
# This may be replaced when dependencies are built.
