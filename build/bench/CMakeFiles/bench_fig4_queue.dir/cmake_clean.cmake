file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_queue.dir/bench_fig4_queue.cpp.o"
  "CMakeFiles/bench_fig4_queue.dir/bench_fig4_queue.cpp.o.d"
  "bench_fig4_queue"
  "bench_fig4_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
