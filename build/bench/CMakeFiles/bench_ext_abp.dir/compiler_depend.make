# Empty compiler generated dependencies file for bench_ext_abp.
# This may be replaced when dependencies are built.
