file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_abp.dir/bench_ext_abp.cpp.o"
  "CMakeFiles/bench_ext_abp.dir/bench_ext_abp.cpp.o.d"
  "bench_ext_abp"
  "bench_ext_abp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_abp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
