# Empty dependencies file for bench_fig6_complete_queue.
# This may be replaced when dependencies are built.
