file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_handshake.dir/bench_fig2_handshake.cpp.o"
  "CMakeFiles/bench_fig2_handshake.dir/bench_fig2_handshake.cpp.o.d"
  "bench_fig2_handshake"
  "bench_fig2_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
