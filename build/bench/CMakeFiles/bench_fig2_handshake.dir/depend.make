# Empty dependencies file for bench_fig2_handshake.
# This may be replaced when dependencies are built.
