# Empty compiler generated dependencies file for bench_fig8_double_queue.
# This may be replaced when dependencies are built.
