file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_double_queue.dir/bench_fig8_double_queue.cpp.o"
  "CMakeFiles/bench_fig8_double_queue.dir/bench_fig8_double_queue.cpp.o.d"
  "bench_fig8_double_queue"
  "bench_fig8_double_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_double_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
