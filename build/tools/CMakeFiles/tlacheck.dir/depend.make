# Empty dependencies file for tlacheck.
# This may be replaced when dependencies are built.
