file(REMOVE_RECURSE
  "CMakeFiles/tlacheck.dir/tlacheck.cpp.o"
  "CMakeFiles/tlacheck.dir/tlacheck.cpp.o.d"
  "tlacheck"
  "tlacheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlacheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
