file(REMOVE_RECURSE
  "CMakeFiles/test_noninterleaving.dir/test_noninterleaving.cpp.o"
  "CMakeFiles/test_noninterleaving.dir/test_noninterleaving.cpp.o.d"
  "test_noninterleaving"
  "test_noninterleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noninterleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
