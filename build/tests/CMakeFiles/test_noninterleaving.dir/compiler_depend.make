# Empty compiler generated dependencies file for test_noninterleaving.
# This may be replaced when dependencies are built.
