file(REMOVE_RECURSE
  "CMakeFiles/test_inclusion.dir/test_inclusion.cpp.o"
  "CMakeFiles/test_inclusion.dir/test_inclusion.cpp.o.d"
  "test_inclusion"
  "test_inclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
