# Empty dependencies file for test_inclusion.
# This may be replaced when dependencies are built.
