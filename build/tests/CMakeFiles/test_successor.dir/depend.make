# Empty dependencies file for test_successor.
# This may be replaced when dependencies are built.
