file(REMOVE_RECURSE
  "CMakeFiles/test_successor.dir/test_successor.cpp.o"
  "CMakeFiles/test_successor.dir/test_successor.cpp.o.d"
  "test_successor"
  "test_successor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_successor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
