# Empty dependencies file for test_prefix_machine.
# This may be replaced when dependencies are built.
