file(REMOVE_RECURSE
  "CMakeFiles/test_prefix_machine.dir/test_prefix_machine.cpp.o"
  "CMakeFiles/test_prefix_machine.dir/test_prefix_machine.cpp.o.d"
  "test_prefix_machine"
  "test_prefix_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
