file(REMOVE_RECURSE
  "CMakeFiles/test_circular.dir/test_circular.cpp.o"
  "CMakeFiles/test_circular.dir/test_circular.cpp.o.d"
  "test_circular"
  "test_circular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
