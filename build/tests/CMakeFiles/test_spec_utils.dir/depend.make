# Empty dependencies file for test_spec_utils.
# This may be replaced when dependencies are built.
