file(REMOVE_RECURSE
  "CMakeFiles/test_spec_utils.dir/test_spec_utils.cpp.o"
  "CMakeFiles/test_spec_utils.dir/test_spec_utils.cpp.o.d"
  "test_spec_utils"
  "test_spec_utils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
