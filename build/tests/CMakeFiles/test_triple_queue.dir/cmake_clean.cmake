file(REMOVE_RECURSE
  "CMakeFiles/test_triple_queue.dir/test_triple_queue.cpp.o"
  "CMakeFiles/test_triple_queue.dir/test_triple_queue.cpp.o.d"
  "test_triple_queue"
  "test_triple_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triple_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
