# Empty dependencies file for test_triple_queue.
# This may be replaced when dependencies are built.
