file(REMOVE_RECURSE
  "CMakeFiles/test_orthogonality.dir/test_orthogonality.cpp.o"
  "CMakeFiles/test_orthogonality.dir/test_orthogonality.cpp.o.d"
  "test_orthogonality"
  "test_orthogonality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orthogonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
