# Empty compiler generated dependencies file for test_orthogonality.
# This may be replaced when dependencies are built.
