# Empty compiler generated dependencies file for test_double_queue.
# This may be replaced when dependencies are built.
