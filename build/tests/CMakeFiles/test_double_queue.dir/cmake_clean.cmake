file(REMOVE_RECURSE
  "CMakeFiles/test_double_queue.dir/test_double_queue.cpp.o"
  "CMakeFiles/test_double_queue.dir/test_double_queue.cpp.o.d"
  "test_double_queue"
  "test_double_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_double_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
