# Empty dependencies file for opentla.
# This may be replaced when dependencies are built.
