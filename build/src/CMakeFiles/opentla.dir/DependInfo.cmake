
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opentla/abp/abp.cpp" "src/CMakeFiles/opentla.dir/opentla/abp/abp.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/abp/abp.cpp.o.d"
  "/root/repo/src/opentla/ag/ag_spec.cpp" "src/CMakeFiles/opentla.dir/opentla/ag/ag_spec.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/ag/ag_spec.cpp.o.d"
  "/root/repo/src/opentla/ag/composition_theorem.cpp" "src/CMakeFiles/opentla.dir/opentla/ag/composition_theorem.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/ag/composition_theorem.cpp.o.d"
  "/root/repo/src/opentla/ag/freeze_spec.cpp" "src/CMakeFiles/opentla.dir/opentla/ag/freeze_spec.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/ag/freeze_spec.cpp.o.d"
  "/root/repo/src/opentla/ag/propositions.cpp" "src/CMakeFiles/opentla.dir/opentla/ag/propositions.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/ag/propositions.cpp.o.d"
  "/root/repo/src/opentla/automata/freeze.cpp" "src/CMakeFiles/opentla.dir/opentla/automata/freeze.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/automata/freeze.cpp.o.d"
  "/root/repo/src/opentla/automata/prefix_machine.cpp" "src/CMakeFiles/opentla.dir/opentla/automata/prefix_machine.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/automata/prefix_machine.cpp.o.d"
  "/root/repo/src/opentla/automata/product.cpp" "src/CMakeFiles/opentla.dir/opentla/automata/product.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/automata/product.cpp.o.d"
  "/root/repo/src/opentla/check/inclusion.cpp" "src/CMakeFiles/opentla.dir/opentla/check/inclusion.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/check/inclusion.cpp.o.d"
  "/root/repo/src/opentla/check/invariant.cpp" "src/CMakeFiles/opentla.dir/opentla/check/invariant.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/check/invariant.cpp.o.d"
  "/root/repo/src/opentla/check/liveness.cpp" "src/CMakeFiles/opentla.dir/opentla/check/liveness.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/check/liveness.cpp.o.d"
  "/root/repo/src/opentla/check/machine_closure.cpp" "src/CMakeFiles/opentla.dir/opentla/check/machine_closure.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/check/machine_closure.cpp.o.d"
  "/root/repo/src/opentla/check/orthogonality.cpp" "src/CMakeFiles/opentla.dir/opentla/check/orthogonality.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/check/orthogonality.cpp.o.d"
  "/root/repo/src/opentla/check/refinement.cpp" "src/CMakeFiles/opentla.dir/opentla/check/refinement.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/check/refinement.cpp.o.d"
  "/root/repo/src/opentla/compose/compose.cpp" "src/CMakeFiles/opentla.dir/opentla/compose/compose.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/compose/compose.cpp.o.d"
  "/root/repo/src/opentla/expr/analysis.cpp" "src/CMakeFiles/opentla.dir/opentla/expr/analysis.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/expr/analysis.cpp.o.d"
  "/root/repo/src/opentla/expr/eval.cpp" "src/CMakeFiles/opentla.dir/opentla/expr/eval.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/expr/eval.cpp.o.d"
  "/root/repo/src/opentla/expr/expr.cpp" "src/CMakeFiles/opentla.dir/opentla/expr/expr.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/expr/expr.cpp.o.d"
  "/root/repo/src/opentla/expr/print.cpp" "src/CMakeFiles/opentla.dir/opentla/expr/print.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/expr/print.cpp.o.d"
  "/root/repo/src/opentla/expr/substitute.cpp" "src/CMakeFiles/opentla.dir/opentla/expr/substitute.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/expr/substitute.cpp.o.d"
  "/root/repo/src/opentla/graph/fair_cycle.cpp" "src/CMakeFiles/opentla.dir/opentla/graph/fair_cycle.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/graph/fair_cycle.cpp.o.d"
  "/root/repo/src/opentla/graph/scc.cpp" "src/CMakeFiles/opentla.dir/opentla/graph/scc.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/graph/scc.cpp.o.d"
  "/root/repo/src/opentla/graph/state_graph.cpp" "src/CMakeFiles/opentla.dir/opentla/graph/state_graph.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/graph/state_graph.cpp.o.d"
  "/root/repo/src/opentla/graph/successor.cpp" "src/CMakeFiles/opentla.dir/opentla/graph/successor.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/graph/successor.cpp.o.d"
  "/root/repo/src/opentla/lint/checks.cpp" "src/CMakeFiles/opentla.dir/opentla/lint/checks.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/lint/checks.cpp.o.d"
  "/root/repo/src/opentla/lint/diagnostic.cpp" "src/CMakeFiles/opentla.dir/opentla/lint/diagnostic.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/lint/diagnostic.cpp.o.d"
  "/root/repo/src/opentla/parser/lexer.cpp" "src/CMakeFiles/opentla.dir/opentla/parser/lexer.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/parser/lexer.cpp.o.d"
  "/root/repo/src/opentla/parser/parser.cpp" "src/CMakeFiles/opentla.dir/opentla/parser/parser.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/parser/parser.cpp.o.d"
  "/root/repo/src/opentla/proof/obligation.cpp" "src/CMakeFiles/opentla.dir/opentla/proof/obligation.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/proof/obligation.cpp.o.d"
  "/root/repo/src/opentla/proof/report.cpp" "src/CMakeFiles/opentla.dir/opentla/proof/report.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/proof/report.cpp.o.d"
  "/root/repo/src/opentla/queue/channel.cpp" "src/CMakeFiles/opentla.dir/opentla/queue/channel.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/queue/channel.cpp.o.d"
  "/root/repo/src/opentla/queue/double_queue.cpp" "src/CMakeFiles/opentla.dir/opentla/queue/double_queue.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/queue/double_queue.cpp.o.d"
  "/root/repo/src/opentla/queue/queue_spec.cpp" "src/CMakeFiles/opentla.dir/opentla/queue/queue_spec.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/queue/queue_spec.cpp.o.d"
  "/root/repo/src/opentla/semantics/enumerate.cpp" "src/CMakeFiles/opentla.dir/opentla/semantics/enumerate.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/semantics/enumerate.cpp.o.d"
  "/root/repo/src/opentla/semantics/lasso.cpp" "src/CMakeFiles/opentla.dir/opentla/semantics/lasso.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/semantics/lasso.cpp.o.d"
  "/root/repo/src/opentla/semantics/oracle.cpp" "src/CMakeFiles/opentla.dir/opentla/semantics/oracle.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/semantics/oracle.cpp.o.d"
  "/root/repo/src/opentla/state/state.cpp" "src/CMakeFiles/opentla.dir/opentla/state/state.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/state/state.cpp.o.d"
  "/root/repo/src/opentla/state/state_space.cpp" "src/CMakeFiles/opentla.dir/opentla/state/state_space.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/state/state_space.cpp.o.d"
  "/root/repo/src/opentla/state/var_table.cpp" "src/CMakeFiles/opentla.dir/opentla/state/var_table.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/state/var_table.cpp.o.d"
  "/root/repo/src/opentla/tla/disjoint.cpp" "src/CMakeFiles/opentla.dir/opentla/tla/disjoint.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/tla/disjoint.cpp.o.d"
  "/root/repo/src/opentla/tla/formula.cpp" "src/CMakeFiles/opentla.dir/opentla/tla/formula.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/tla/formula.cpp.o.d"
  "/root/repo/src/opentla/tla/spec.cpp" "src/CMakeFiles/opentla.dir/opentla/tla/spec.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/tla/spec.cpp.o.d"
  "/root/repo/src/opentla/value/domain.cpp" "src/CMakeFiles/opentla.dir/opentla/value/domain.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/value/domain.cpp.o.d"
  "/root/repo/src/opentla/value/value.cpp" "src/CMakeFiles/opentla.dir/opentla/value/value.cpp.o" "gcc" "src/CMakeFiles/opentla.dir/opentla/value/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
