file(REMOVE_RECURSE
  "libopentla.a"
)
