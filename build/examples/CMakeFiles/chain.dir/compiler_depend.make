# Empty compiler generated dependencies file for chain.
# This may be replaced when dependencies are built.
