file(REMOVE_RECURSE
  "CMakeFiles/chain.dir/chain.cpp.o"
  "CMakeFiles/chain.dir/chain.cpp.o.d"
  "chain"
  "chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
