# Empty compiler generated dependencies file for module_check.
# This may be replaced when dependencies are built.
