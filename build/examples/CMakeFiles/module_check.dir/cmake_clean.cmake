file(REMOVE_RECURSE
  "CMakeFiles/module_check.dir/module_check.cpp.o"
  "CMakeFiles/module_check.dir/module_check.cpp.o.d"
  "module_check"
  "module_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
