# Empty dependencies file for handshake.
# This may be replaced when dependencies are built.
