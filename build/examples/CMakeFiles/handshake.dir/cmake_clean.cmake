file(REMOVE_RECURSE
  "CMakeFiles/handshake.dir/handshake.cpp.o"
  "CMakeFiles/handshake.dir/handshake.cpp.o.d"
  "handshake"
  "handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
