# Empty dependencies file for alternating_bit.
# This may be replaced when dependencies are built.
