# Empty dependencies file for arbiter.
# This may be replaced when dependencies are built.
