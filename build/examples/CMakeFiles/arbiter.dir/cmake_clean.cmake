file(REMOVE_RECURSE
  "CMakeFiles/arbiter.dir/arbiter.cpp.o"
  "CMakeFiles/arbiter.dir/arbiter.cpp.o.d"
  "arbiter"
  "arbiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
