file(REMOVE_RECURSE
  "CMakeFiles/queue_composition.dir/queue_composition.cpp.o"
  "CMakeFiles/queue_composition.dir/queue_composition.cpp.o.d"
  "queue_composition"
  "queue_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
