# Empty dependencies file for queue_composition.
# This may be replaced when dependencies are built.
