// Unit tests for composition-as-conjunction (opentla/compose): composite
// graphs, conjunction_as_spec, pins, free tuples, coverage errors, and the
// Disjoint interleaving condition.

#include <gtest/gtest.h>

#include "opentla/compose/compose.hpp"
#include "opentla/expr/eval.hpp"
#include "opentla/tla/disjoint.hpp"

namespace opentla {
namespace {

class ComposeTest : public ::testing::Test {
 protected:
  ComposeTest() {
    a = vars.declare("a", range_domain(0, 1));
    b = vars.declare("b", range_domain(0, 1));
    // Component A: toggles a; component B: toggles b.
    toggler_a = toggler(a, "A");
    toggler_b = toggler(b, "B");
  }

  CanonicalSpec toggler(VarId v, std::string name) {
    CanonicalSpec s;
    s.name = std::move(name);
    s.init = ex::eq(ex::var(v), ex::integer(0));
    s.next = ex::eq(ex::primed_var(v), ex::sub(ex::integer(1), ex::var(v)));
    s.sub = {v};
    return s;
  }

  VarTable vars;
  VarId a = 0, b = 0;
  CanonicalSpec toggler_a, toggler_b;
};

TEST_F(ComposeTest, ConjunctionAllowsSimultaneousMoves) {
  // Without Disjoint, [N_A]_a /\ [N_B]_b admits the step toggling both.
  StateGraph g = build_composite_graph(vars, {{toggler_a, true}, {toggler_b, true}});
  EXPECT_EQ(g.num_states(), 4u);
  // From (0,0): stutter, toggle a (b free via N_A's missing frame? no:
  // N_A leaves b' unconstrained, so toggling a enumerates b too; B's
  // constraint then requires b' = b or a toggle — both allowed).
  const StateId s00 = g.initial()[0];
  EXPECT_EQ(g.successors(s00).size(), 4u);  // all four states reachable in one step
}

TEST_F(ComposeTest, DisjointRestrictsToInterleavings) {
  CanonicalSpec disjoint = make_disjoint({{a}, {b}});
  StateGraph g = build_composite_graph(
      vars, {{toggler_a, true}, {toggler_b, true}, {disjoint, false}});
  const StateId s00 = g.initial()[0];
  // Now only stutter, toggle-a, toggle-b: the double-toggle is filtered.
  EXPECT_EQ(g.successors(s00).size(), 3u);
}

TEST_F(ComposeTest, StepDisjointHelper) {
  State s({Value::integer(0), Value::integer(0)});
  State both({Value::integer(1), Value::integer(1)});
  State onea({Value::integer(1), Value::integer(0)});
  EXPECT_TRUE(step_disjoint({{a}, {b}}, s, s));
  EXPECT_TRUE(step_disjoint({{a}, {b}}, s, onea));
  EXPECT_FALSE(step_disjoint({{a}, {b}}, s, both));
}

TEST_F(ComposeTest, ConjunctionAsSpecMatchesCompositeGraph) {
  CanonicalSpec conj = conjunction_as_spec({toggler_a, toggler_b}, "AB");
  StateGraph direct = build_composite_graph(vars, {{conj, true}});
  StateGraph parts = build_composite_graph(vars, {{toggler_a, true}, {toggler_b, true}});
  EXPECT_EQ(direct.num_states(), parts.num_states());
  EXPECT_EQ(direct.num_edges(), parts.num_edges());
}

TEST_F(ComposeTest, ConjunctionAsSpecCollectsPieces) {
  CanonicalSpec fair = toggler_a;
  Fairness f;
  f.kind = Fairness::Kind::Weak;
  f.sub = {a};
  f.action = fair.next;
  fair.fairness.push_back(f);
  fair.hidden = {a};
  CanonicalSpec conj = conjunction_as_spec({fair, toggler_b}, "AB");
  EXPECT_EQ(conj.sub.size(), 2u);
  EXPECT_EQ(conj.fairness.size(), 1u);
  EXPECT_EQ(conj.hidden, std::vector<VarId>{a});
}

TEST_F(ComposeTest, CoverageErrorForUnconstrainedVariable) {
  EXPECT_THROW(build_composite_graph(vars, {{toggler_a, true}}), std::runtime_error);
}

TEST_F(ComposeTest, PinFreezesVariables) {
  CanonicalSpec pin = make_pin(vars, {b}, "PinB");
  StateGraph g = build_composite_graph(vars, {{toggler_a, true}, {pin, false}}, {}, {b});
  EXPECT_EQ(g.num_states(), 2u);  // b stays at its first domain value
  for (StateId s = 0; s < g.num_states(); ++s) {
    EXPECT_EQ(g.state(s)[b].as_int(), 0);
  }
}

TEST_F(ComposeTest, FreeTuplesGenerateEnvironmentMoves) {
  // Only A is a mover, but b may move freely via the free tuple (covered
  // by a frame part).
  CanonicalSpec frame;
  frame.name = "FrameB";
  frame.init = ex::eq(ex::var(b), ex::integer(0));
  frame.next = ex::top();
  frame.sub = {b};
  StateGraph g =
      build_composite_graph(vars, {{toggler_a, true}, {frame, false}}, {{b}});
  EXPECT_EQ(g.num_states(), 4u);
}

TEST_F(ComposeTest, AllFairnessConcatenates) {
  CanonicalSpec fa = toggler_a;
  Fairness f;
  f.kind = Fairness::Kind::Weak;
  f.sub = {a};
  f.action = fa.next;
  fa.fairness.push_back(f);
  EXPECT_EQ(all_fairness({fa, toggler_b}).size(), 1u);
  EXPECT_EQ(all_fairness({fa, fa}).size(), 2u);
}

}  // namespace
}  // namespace opentla
