// Property-based cross-validation: randomized canonical specifications
// over a small universe, with (a) the operator algebra the paper states or
// implies checked on enumerated + random lassos, and (b) the production
// checkers validated against the independent lasso oracle.
//
// Parameterized over seeds (TEST_P): each seed generates fresh specs, so
// the suite sweeps a family of systems rather than one hand-picked case.

#include <gtest/gtest.h>

#include <random>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/ag/freeze_spec.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/check/liveness.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/semantics/enumerate.hpp"
#include "opentla/semantics/oracle.hpp"

namespace opentla {
namespace {

class RandomSpecs {
 public:
  explicit RandomSpecs(unsigned seed) : rng_(seed) {
    x_ = vars_.declare("x", range_domain(0, 1));
    y_ = vars_.declare("y", range_domain(0, 1));
  }

  VarTable& vars() { return vars_; }
  VarId x() const { return x_; }
  VarId y() const { return y_; }

  std::int64_t bit() { return std::uniform_int_distribution<int>(0, 1)(rng_); }
  bool coin() { return bit() == 1; }

  /// A random state predicate over one variable.
  Expr predicate(VarId v) { return ex::eq(ex::var(v), ex::integer(bit())); }

  /// A random guarded assignment v' = b [when v = a], pinning `pin`.
  Expr guarded_assign(VarId v, VarId pin) {
    std::vector<Expr> conj;
    if (coin()) conj.push_back(ex::eq(ex::var(v), ex::integer(bit())));
    conj.push_back(ex::eq(ex::primed_var(v), ex::integer(bit())));
    conj.push_back(ex::unchanged({pin}));
    return ex::land(std::move(conj));
  }

  /// A random machine-closed canonical spec writing `v` (pinning `other`).
  CanonicalSpec spec(VarId v, VarId other, std::string name, bool with_fairness) {
    CanonicalSpec s;
    s.name = std::move(name);
    s.init = coin() ? ex::top() : predicate(v);
    std::vector<Expr> disjuncts = {guarded_assign(v, other)};
    if (coin()) disjuncts.push_back(guarded_assign(v, other));
    s.next = ex::lor(std::move(disjuncts));
    s.sub = {v};
    if (with_fairness) {
      Fairness f;
      f.kind = coin() ? Fairness::Kind::Weak : Fairness::Kind::Strong;
      f.sub = {v};
      f.action = s.next;  // sub-action of N: machine-closed by Prop 1
      f.label = "F";
      s.fairness.push_back(std::move(f));
    }
    return s;
  }

  /// Enumerated lassos up to length 2 plus a few random longer ones.
  std::vector<LassoBehavior> behaviors() {
    std::vector<LassoBehavior> out;
    for (std::size_t len = 1; len <= 2; ++len) {
      for_each_lasso(vars_, len, [&](const LassoBehavior& b) {
        out.push_back(b);
        return false;
      });
    }
    for (int i = 0; i < 24; ++i) out.push_back(random_lasso(vars_, 5, rng_));
    return out;
  }

 private:
  VarTable vars_;
  VarId x_ = 0, y_ = 0;
  std::mt19937 rng_;
};

class OperatorLaws : public ::testing::TestWithParam<unsigned> {};

TEST_P(OperatorLaws, SpecImpliesItsClosure) {
  RandomSpecs gen(GetParam());
  CanonicalSpec e = gen.spec(gen.x(), gen.y(), "E", /*with_fairness=*/true);
  Oracle oracle(gen.vars());
  Formula f = tf::spec(e);
  Formula cf = tf::closure(e);
  for (const LassoBehavior& b : gen.behaviors()) {
    if (oracle.evaluate(f, b)) {
      EXPECT_TRUE(oracle.evaluate(cf, b)) << b.to_string(gen.vars());
    }
  }
}

TEST_P(OperatorLaws, ClosureOfSafetySpecIsItself) {
  RandomSpecs gen(GetParam());
  CanonicalSpec e = gen.spec(gen.x(), gen.y(), "E", /*with_fairness=*/false);
  Oracle oracle(gen.vars());
  Formula f = tf::spec(e);
  Formula cf = tf::closure(e);
  for (const LassoBehavior& b : gen.behaviors()) {
    EXPECT_EQ(oracle.evaluate(f, b), oracle.evaluate(cf, b)) << b.to_string(gen.vars());
  }
}

TEST_P(OperatorLaws, WhilePlusIdentity) {
  // (E +> M) = (E -> M) /\ (E _|_ M), on random spec pairs.
  RandomSpecs gen(GetParam());
  CanonicalSpec e = gen.spec(gen.x(), gen.y(), "E", gen.coin());
  CanonicalSpec m = gen.spec(gen.y(), gen.x(), "M", gen.coin());
  Oracle oracle(gen.vars());
  Formula lhs = tf::while_plus(e, m);
  Formula rhs = tf::land(tf::arrow_while(e, m), tf::orthogonal(e, m));
  for (const LassoBehavior& b : gen.behaviors()) {
    EXPECT_EQ(oracle.evaluate(lhs, b), oracle.evaluate(rhs, b)) << b.to_string(gen.vars());
  }
}

TEST_P(OperatorLaws, WhilePlusImpliesImplication) {
  RandomSpecs gen(GetParam());
  CanonicalSpec e = gen.spec(gen.x(), gen.y(), "E", gen.coin());
  CanonicalSpec m = gen.spec(gen.y(), gen.x(), "M", gen.coin());
  Oracle oracle(gen.vars());
  Formula wp = tf::while_plus(e, m);
  Formula imp = tf::implies(tf::spec(e), tf::spec(m));
  for (const LassoBehavior& b : gen.behaviors()) {
    if (oracle.evaluate(wp, b)) {
      EXPECT_TRUE(oracle.evaluate(imp, b)) << b.to_string(gen.vars());
    }
  }
}

TEST_P(OperatorLaws, FreezeWeakensTheSpec) {
  // F => F_{+v}, and freezing on all variables of F is implied by freezing
  // on a superset.
  RandomSpecs gen(GetParam());
  CanonicalSpec e = gen.spec(gen.x(), gen.y(), "E", /*with_fairness=*/false);
  Oracle oracle(gen.vars());
  Formula f = tf::spec(e);
  Formula fv = tf::plus(e, {gen.x(), gen.y()});
  for (const LassoBehavior& b : gen.behaviors()) {
    if (oracle.evaluate(f, b)) {
      EXPECT_TRUE(oracle.evaluate(fv, b)) << b.to_string(gen.vars());
    }
  }
}

TEST_P(OperatorLaws, StrongFairnessImpliesWeak) {
  RandomSpecs gen(GetParam());
  Expr action = gen.guarded_assign(gen.x(), gen.y());
  Oracle oracle(gen.vars());
  Formula sf = tf::strong_fair({gen.x()}, action);
  Formula wf = tf::weak_fair({gen.x()}, action);
  for (const LassoBehavior& b : gen.behaviors()) {
    if (oracle.evaluate(sf, b)) {
      EXPECT_TRUE(oracle.evaluate(wf, b)) << b.to_string(gen.vars());
    }
  }
}

TEST_P(OperatorLaws, TrueWhilePlusIsIdentity) {
  // TRUE +> G = G (Section 5's device for threading G through the theorem).
  RandomSpecs gen(GetParam());
  CanonicalSpec g = gen.spec(gen.x(), gen.y(), "G", /*with_fairness=*/false);
  Oracle oracle(gen.vars());
  Formula lhs = tf::while_plus(trivial_assumption(), g);
  Formula rhs = tf::spec(g);
  for (const LassoBehavior& b : gen.behaviors()) {
    EXPECT_EQ(oracle.evaluate(lhs, b), oracle.evaluate(rhs, b)) << b.to_string(gen.vars());
  }
}

class FreezeSpecLaws : public ::testing::TestWithParam<unsigned> {};

TEST_P(FreezeSpecLaws, ExplicitFormMatchesSemanticFreeze) {
  // Section 4.1's claim, mechanized: the explicit canonical form of E_{+v}
  // (with a hidden "abandoned" flag) is semantically equal to the +v
  // operator, on every behavior of the extended universe.
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 1));
  VarId y = vars.declare("y", range_domain(0, 1));
  VarId b = vars.declare("__frozen", bool_domain());
  std::mt19937 rng(GetParam());
  auto bit = [&] { return std::uniform_int_distribution<int>(0, 1)(rng); };

  CanonicalSpec e;
  e.name = "E";
  e.init = ex::eq(ex::var(x), ex::integer(bit()));
  e.next = ex::land(ex::eq(ex::primed_var(x), ex::integer(bit())), ex::unchanged({y}));
  e.sub = {x};
  const std::vector<VarId> v = bit() ? std::vector<VarId>{x} : std::vector<VarId>{x, y};

  Oracle oracle(vars);
  Formula semantic = tf::plus(e, v);
  Formula explicit_form = tf::spec(freeze_spec(e, v, b));
  std::size_t checked = 0;
  for (std::size_t len = 1; len <= 2; ++len) {
    for_each_lasso(vars, len, [&](const LassoBehavior& sigma) {
      ++checked;
      EXPECT_EQ(oracle.evaluate(semantic, sigma), oracle.evaluate(explicit_form, sigma))
          << sigma.to_string(vars);
      return false;
    });
  }
  for (int i = 0; i < 16; ++i) {
    LassoBehavior sigma = random_lasso(vars, 4, rng);
    EXPECT_EQ(oracle.evaluate(semantic, sigma), oracle.evaluate(explicit_form, sigma))
        << sigma.to_string(vars);
  }
  EXPECT_GT(checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreezeSpecLaws, ::testing::Range(0u, 8u));

class CheckerOracleAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(CheckerOracleAgreement, InvariantCheckerMatchesOracle) {
  RandomSpecs gen(GetParam());
  CanonicalSpec sx = gen.spec(gen.x(), gen.y(), "SX", false);
  CanonicalSpec sy = gen.spec(gen.y(), gen.x(), "SY", false);
  StateGraph g = build_composite_graph(gen.vars(), {{sx, true}, {sy, true}});
  Expr p = ex::lor(gen.predicate(gen.x()), gen.predicate(gen.y()));
  InvariantResult r = check_invariant(g, p);

  Oracle oracle(gen.vars());
  Formula claim = tf::implies(tf::land(tf::spec(sx), tf::spec(sy)),
                              tf::always(tf::pred(p)));
  if (r.holds) {
    // No enumerated behavior may witness a violation.
    for (const LassoBehavior& b : gen.behaviors()) {
      EXPECT_TRUE(oracle.evaluate(claim, b)) << b.to_string(gen.vars());
    }
  } else {
    // The checker's trace, closed by stuttering, must refute the claim.
    LassoBehavior witness(r.counterexample, r.counterexample.size() - 1);
    EXPECT_FALSE(oracle.evaluate(claim, witness)) << witness.to_string(gen.vars());
  }
}

TEST_P(CheckerOracleAgreement, CompositionTheoremIsSound) {
  // Whenever the verifier says Q.E.D., the conclusion formula must be
  // valid on every behavior we can enumerate. (The converse need not hold:
  // the theorem is a sound proof rule, not a decision procedure.)
  RandomSpecs gen(GetParam());
  CanonicalSpec m1 = gen.spec(gen.x(), gen.y(), "M1", false);
  CanonicalSpec m2 = gen.spec(gen.y(), gen.x(), "M2", false);
  std::vector<AGSpec> components = {{m2, m1}, {m1, m2}};
  AGSpec goal = property_as_ag(conjunction_as_spec({m1, m2}, "Both"));
  ProofReport report = verify_composition(gen.vars(), components, goal);
  if (!report.all_discharged()) return;  // nothing claimed, nothing to check

  Oracle oracle(gen.vars());
  Formula conclusion = tf::implies(
      tf::land(tf::while_plus(m2, m1), tf::while_plus(m1, m2)),
      tf::while_plus(trivial_assumption(), conjunction_as_spec({m1, m2}, "Both")));
  for (const LassoBehavior& b : gen.behaviors()) {
    EXPECT_TRUE(oracle.evaluate(conclusion, b))
        << report.to_string() << b.to_string(gen.vars());
  }
}

TEST_P(CheckerOracleAgreement, LeadsToCounterexamplesAreGenuine) {
  // Whenever check_leads_to refutes P ~> Q, the lasso it returns must (a)
  // satisfy every fairness constraint and (b) violate [](P => <>Q) — both
  // judged by the independent oracle.
  RandomSpecs gen(GetParam());
  CanonicalSpec sx = gen.spec(gen.x(), gen.y(), "SX", false);
  CanonicalSpec sy = gen.spec(gen.y(), gen.x(), "SY", false);
  Fairness wf;
  wf.kind = Fairness::Kind::Weak;
  wf.sub = {gen.x()};
  wf.action = sx.next;
  wf.label = "WF(SX)";
  StateGraph g = build_composite_graph(gen.vars(), {{sx, true}, {sy, true}});
  Expr p = gen.predicate(gen.x());
  Expr q = gen.predicate(gen.y());
  LeadsToResult r = check_leads_to(g, {wf}, p, q);
  if (r.holds) return;

  // Assemble the lasso: prefix then cycle (the prefix's last state is the
  // cycle's entry, which equals the cycle's first state by construction of
  // the checker's report only when entry == anchor; stitch generically).
  std::vector<State> states = r.counterexample_prefix;
  std::size_t loop_start = states.size();
  // The prefix ends at the cycle entry; the cycle list starts at its
  // anchor. Append the cycle rotated to start at the entry if present.
  const State& entry = states.back();
  std::size_t rot = 0;
  bool entry_on_cycle = false;
  for (std::size_t i = 0; i < r.counterexample_cycle.size(); ++i) {
    if (r.counterexample_cycle[i] == entry) {
      rot = i;
      entry_on_cycle = true;
      break;
    }
  }
  ASSERT_TRUE(entry_on_cycle);
  loop_start = states.size() - 1;
  for (std::size_t i = 1; i < r.counterexample_cycle.size(); ++i) {
    states.push_back(r.counterexample_cycle[(rot + i) % r.counterexample_cycle.size()]);
  }
  LassoBehavior lasso(states, loop_start);

  Oracle oracle(gen.vars());
  Formula fair = tf::weak_fair(wf.sub, wf.action);
  Formula leads = tf::always(tf::implies(tf::pred(p), tf::eventually(tf::pred(q))));
  EXPECT_TRUE(oracle.evaluate(fair, lasso)) << lasso.to_string(gen.vars());
  EXPECT_FALSE(oracle.evaluate(leads, lasso)) << lasso.to_string(gen.vars());
}

TEST_P(CheckerOracleAgreement, TheoremFailuresAreGracefulOnBadInputs) {
  // Non-machine-closed guarantees are rejected with a failed Prop1
  // obligation rather than an exception or a bogus Q.E.D.
  RandomSpecs gen(GetParam());
  CanonicalSpec m1 = gen.spec(gen.x(), gen.y(), "M1", false);
  Fairness alien;
  alien.kind = Fairness::Kind::Weak;
  alien.sub = {gen.x()};
  alien.action = ex::eq(ex::primed_var(gen.y()), ex::integer(0));  // not in N
  alien.label = "WF(alien)";
  m1.fairness.push_back(alien);
  CanonicalSpec m2 = gen.spec(gen.y(), gen.x(), "M2", false);
  AGSpec goal = property_as_ag(conjunction_as_spec({m1.safety_part(), m2}, "Both"));
  ProofReport report = verify_composition(gen.vars(), {{m2, m1}, {m1.safety_part(), m2}},
                                          goal);
  EXPECT_FALSE(report.all_discharged());
  bool prop1_failed = false;
  for (const Obligation& ob : report.obligations) {
    if (ob.id.rfind("Prop1", 0) == 0 && !ob.discharged) prop1_failed = true;
  }
  EXPECT_TRUE(prop1_failed) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorLaws, ::testing::Range(0u, 12u));
INSTANTIATE_TEST_SUITE_P(Seeds, CheckerOracleAgreement, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace opentla
