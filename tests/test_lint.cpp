// Tests for the static spec analyzer (opentla/lint): each OTL diagnostic
// fires on a deliberately malformed module with the expected code,
// severity, and source line, and the human/JSON renderers carry all of it.

#include <gtest/gtest.h>

#include <algorithm>

#include "opentla/analysis/footprint.hpp"
#include "opentla/lint/checks.hpp"
#include "opentla/lint/diagnostic.hpp"
#include "opentla/parser/parser.hpp"

namespace opentla {
namespace {

using lint::Diagnostic;
using lint::Severity;

std::vector<Diagnostic> lint_src(const std::string& src, lint::LintOptions opts = {}) {
  return lint::lint_module(parse_module(src), opts);
}

const Diagnostic* find_code(const std::vector<Diagnostic>& diags, const std::string& code) {
  auto it = std::find_if(diags.begin(), diags.end(),
                         [&](const Diagnostic& d) { return d.code == code; });
  return it == diags.end() ? nullptr : &*it;
}

TEST(LintTest, CleanModuleHasNoFindings) {
  const std::string src =
      "MODULE Clean\n"
      "VARIABLE x \\in 0..3\n"
      "INIT x = 0\n"
      "ACTION Incr == x < 3 /\\ x' = x + 1\n"
      "NEXT Incr\n"
      "FAIRNESS WF Incr\n";
  EXPECT_TRUE(lint_src(src).empty());
}

TEST(LintTest, OTL001UnusedVariable) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "VARIABLE dead \\in 0..1\n"   // line 3, never mentioned again
      "INIT x = 0\n"
      "NEXT x' = x\n";
  std::vector<Diagnostic> diags = lint_src(src);
  const Diagnostic* d = find_code(diags, "OTL001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->context, "dead");
  EXPECT_EQ(d->loc.line, 3u);
}

TEST(LintTest, OTL002PrimedVariableInInit) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "\n"
      "INIT x' = 0\n"               // line 4
      "NEXT x' = x\n";
  std::vector<Diagnostic> diags = lint_src(src);
  const Diagnostic* d = find_code(diags, "OTL002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->context, "x");
  EXPECT_EQ(d->loc.line, 4u);
  EXPECT_TRUE(lint::has_errors(diags));
}

TEST(LintTest, OTL003FrameConditionGap) {
  const std::string src =
      "MODULE M\n"
      "VARIABLES x \\in 0..3, y \\in 0..3\n"
      "INIT x = 0 /\\ y = 0\n"
      "ACTION Step == y > 0 /\\ x' = x + 1\n"   // line 4: reads y, y' free
      "NEXT Step\n";
  std::vector<Diagnostic> diags = lint_src(src);
  const Diagnostic* d = find_code(diags, "OTL003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->context, "y");
  EXPECT_EQ(d->loc.line, 4u);
  EXPECT_NE(d->message.find("Step"), std::string::npos);
}

TEST(LintTest, OTL003SilentOnDeliberateOpenness) {
  // A variable the disjunct does not mention at all is deliberately
  // unconstrained (open-system nondeterminism), not a frame gap.
  const std::string src =
      "MODULE M\n"
      "VARIABLES x \\in 0..3, input \\in 0..3\n"
      "INIT x = 0 /\\ input = 0\n"
      "NEXT x' = x + 1\n";
  EXPECT_EQ(find_code(lint_src(src), "OTL003"), nullptr);
}

TEST(LintTest, OTL004OverlappingDisjointTuples) {
  const std::string src =
      "MODULE M\n"
      "VARIABLES a \\in 0..1, b \\in 0..1, c \\in 0..1\n"
      "\n"
      "DISJOINT <<a, b>>, <<b, c>>\n";   // line 4: b in both tuples
  std::vector<Diagnostic> diags = lint_src(src);
  const Diagnostic* d = find_code(diags, "OTL004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->context, "b");
  EXPECT_EQ(d->loc.line, 4u);
}

TEST(LintTest, OTL005FairnessNotSubactionOfNext) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "INIT x = 0\n"
      "ACTION Incr == x < 3 /\\ x' = x + 1\n"
      "NEXT Incr\n"
      "FAIRNESS WF x' = x + 2\n";   // line 6: not a disjunct of NEXT
  std::vector<Diagnostic> diags = lint_src(src);
  const Diagnostic* d = find_code(diags, "OTL005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->loc.line, 6u);
}

TEST(LintTest, OTL006OverlappingWrittenFootprints) {
  auto universe = std::make_shared<VarTable>();
  ParsedModule a = parse_module(
      "MODULE A\n"
      "VARIABLES x \\in 0..1, y \\in 0..1\n"
      "INIT x = 0\n"
      "NEXT x' = 1 - x /\\ y' = y\n",   // frames y: writes only x
      universe);
  ParsedModule b = parse_module(
      "MODULE B\n"
      "VARIABLES x \\in 0..1, y \\in 0..1\n"
      "INIT y = 0\n"
      "NEXT x' = 0 /\\ y' = 1 - y\n",   // writes x AND y: overlaps A on x
      universe);
  std::vector<Diagnostic> diags = lint::lint_modules({a, b});
  const Diagnostic* d = find_code(diags, "OTL006");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->context, "x");

  // Frame conditions (v' = v, UNCHANGED) are not writes: disjoint owners
  // produce no finding.
  ParsedModule c = parse_module(
      "MODULE C\n"
      "VARIABLES x \\in 0..1, y \\in 0..1\n"
      "INIT y = 0\n"
      "NEXT y' = 1 - y /\\ UNCHANGED x\n",
      universe);
  EXPECT_EQ(find_code(lint::lint_modules({a, c}), "OTL006"), nullptr);
}

TEST(LintTest, OTL007StateSpaceEstimate) {
  const std::string src =
      "MODULE Big\n"                                   // line 1
      "VARIABLES a \\in 0..99, b \\in 0..99, c \\in 0..99\n"
      "INIT a = 0 /\\ b = 0 /\\ c = 0\n"
      "NEXT a' = a /\\ b' = b /\\ c' = c\n";
  lint::LintOptions tight;
  tight.state_bound = 1000;   // 100^3 = 1e6 states >> 1000
  std::vector<Diagnostic> diags = lint_src(src, tight);
  const Diagnostic* d = find_code(diags, "OTL007");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->loc.line, 1u);
  // The default bound admits the same module.
  EXPECT_EQ(find_code(lint_src(src), "OTL007"), nullptr);
}

TEST(LintTest, OTL008DeadDisjunctAndConstantGuard) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "INIT x = 0\n"
      "ACTION Dead == 2 < 1 /\\ x' = 0\n"        // line 4: guard folds FALSE
      "ACTION Padded == 1 < 2 /\\ x' = x + 1\n"  // line 5: guard folds TRUE
      "NEXT Dead \\/ Padded\n";
  std::vector<Diagnostic> diags = lint_src(src);
  std::vector<const Diagnostic*> found;
  for (const Diagnostic& d : diags) {
    if (d.code == "OTL008") found.push_back(&d);
  }
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0]->context, "Dead");
  EXPECT_EQ(found[0]->loc.line, 4u);
  EXPECT_NE(found[0]->message.find("dead"), std::string::npos);
  EXPECT_EQ(found[1]->context, "Padded");
  EXPECT_EQ(found[1]->loc.line, 5u);
  EXPECT_NE(found[1]->message.find("TRUE"), std::string::npos);
}

TEST(LintTest, OTL009GuardUnsatisfiableOverDomains) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "INIT x = 0\n"
      "ACTION Ghost == x > 5 /\\ x' = 0\n"       // line 4: x > 5 is empty over 0..3
      "ACTION Step == x < 3 /\\ x' = x + 1\n"
      "NEXT Ghost \\/ Step\n";
  std::vector<Diagnostic> diags = lint_src(src);
  const Diagnostic* d = find_code(diags, "OTL009");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->context, "Ghost");
  EXPECT_EQ(d->loc.line, 4u);
  // The guard is not a constant fold, so OTL008 stays silent...
  EXPECT_EQ(find_code(diags, "OTL008"), nullptr);
  // ...and a satisfiable multi-guard window fires nothing.
  const std::string sat =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "INIT x = 0\n"
      "NEXT x >= 1 /\\ x <= 2 /\\ x' = 0\n";
  EXPECT_EQ(find_code(lint_src(sat), "OTL009"), nullptr);
}

TEST(LintTest, OTL009LeavesConstantFalseGuardsToOTL008) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "INIT x = 0\n"
      "NEXT (2 < 1 /\\ x' = 0) \\/ (x' = x + 1)\n";
  std::vector<Diagnostic> diags = lint_src(src);
  EXPECT_NE(find_code(diags, "OTL008"), nullptr);
  EXPECT_EQ(find_code(diags, "OTL009"), nullptr);
}

TEST(LintTest, OTL010AssignmentOutsideDomain) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "INIT x = 0\n"
      "ACTION Bump == x = 3 /\\ x' = x + 2\n"     // line 4: [5,5] outside 0..3
      "ACTION Step == x < 3 /\\ x' = x + 1\n"
      "NEXT Bump \\/ Step\n";
  std::vector<Diagnostic> diags = lint_src(src);
  const Diagnostic* d = find_code(diags, "OTL010");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->context, "x");
  EXPECT_EQ(d->loc.line, 4u);
  EXPECT_TRUE(lint::has_errors(diags));
}

TEST(LintTest, OTL010ConstantCatchesDomainHoles) {
  // The interval hull of {0, 2} is [0, 2], but a constant right-hand side
  // checks exact membership, so the hole at 1 is caught.
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in {0, 2}\n"
      "INIT x = 0\n"
      "NEXT x' = 1\n";
  std::vector<Diagnostic> diags = lint_src(src);
  const Diagnostic* d = find_code(diags, "OTL010");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->context, "x");
}

TEST(LintTest, OTL011SubsumedDisjunct) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..5\n"
      "INIT x = 0\n"
      "ACTION Reset == x > 2 /\\ x' = 0\n"
      "ACTION Narrow == x > 3 /\\ x' = 0\n"       // line 5: x > 3 implies x > 2
      "NEXT Reset \\/ Narrow\n";
  std::vector<Diagnostic> diags = lint_src(src);
  const Diagnostic* d = find_code(diags, "OTL011");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->context, "Narrow");
  EXPECT_EQ(d->loc.line, 5u);
  EXPECT_NE(d->message.find("Reset"), std::string::npos);
  // Different effects are never subsumption, however the guards relate.
  const std::string distinct =
      "MODULE M\n"
      "VARIABLE x \\in 0..5\n"
      "INIT x = 0\n"
      "NEXT (x > 2 /\\ x' = 0) \\/ (x > 3 /\\ x' = 1)\n";
  EXPECT_EQ(find_code(lint_src(distinct), "OTL011"), nullptr);
}

TEST(LintTest, OTL012ActionWritesAcrossDisjointTuples) {
  auto universe = std::make_shared<VarTable>();
  ParsedModule comp = parse_module(
      "MODULE C\n"
      "VARIABLES a \\in 0..1, b \\in 0..1\n"
      "INIT a = 0 /\\ b = 0\n"
      "ACTION Both == a' = 1 - a /\\ b' = 1 - b\n"
      "NEXT Both\n"
      "SUBSCRIPT <<a, b>>\n",
      universe);
  ParsedModule disj = parse_module(
      "MODULE D\n"
      "VARIABLES a \\in 0..1, b \\in 0..1\n"
      "DISJOINT <<a>>, <<b>>\n",
      universe);
  std::vector<Diagnostic> diags = lint::lint_modules({comp, disj});
  const Diagnostic* d = find_code(diags, "OTL012");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->context, "Both");
  EXPECT_EQ(d->module_name, "C");
  EXPECT_NE(d->message.find("'D'"), std::string::npos);

  // A component confined to one tuple (with the other framed) is fine.
  ParsedModule onlya = parse_module(
      "MODULE OnlyA\n"
      "VARIABLES a \\in 0..1, b \\in 0..1\n"
      "INIT a = 0\n"
      "NEXT a' = 1 - a /\\ UNCHANGED b\n"
      "SUBSCRIPT <<a, b>>\n",
      universe);
  EXPECT_EQ(find_code(lint::lint_modules({onlya, disj}), "OTL012"), nullptr);
}

TEST(LintTest, RegistryCoversDocumentedCodes) {
  std::vector<std::string> codes;
  for (const lint::LintCheck& c : lint::check_registry()) codes.push_back(c.code);
  // OTL006 and OTL012 are pairwise (lint_modules), so they are not in the
  // per-module registry.
  EXPECT_EQ(codes, (std::vector<std::string>{"OTL001", "OTL002", "OTL003", "OTL004",
                                             "OTL005", "OTL007", "OTL008", "OTL009",
                                             "OTL010", "OTL011"}));
}

TEST(LintTest, HumanRenderingCarriesCodeSeverityAndLine) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "\n"
      "INIT x' = 0\n"
      "NEXT x' = x\n";
  std::vector<Diagnostic> diags = lint_src(src);
  ASSERT_NE(find_code(diags, "OTL002"), nullptr);
  const std::string human = lint::render_human(diags);
  EXPECT_NE(human.find("[OTL002]"), std::string::npos);
  EXPECT_NE(human.find("error:"), std::string::npos);
  EXPECT_NE(human.find(":4:"), std::string::npos);
  EXPECT_NE(human.find("1 finding"), std::string::npos);
}

TEST(LintTest, JsonRenderingCarriesCodeSeverityAndLine) {
  const std::string src =
      "MODULE M\n"
      "VARIABLE x \\in 0..3\n"
      "\n"
      "INIT x' = 0\n"
      "NEXT x' = x\n";
  std::vector<Diagnostic> diags = lint_src(src);
  const std::string json = lint::render_json(diags);
  EXPECT_NE(json.find("\"code\": \"OTL002\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"module\": \"M\""), std::string::npos);
  // Empty input renders as an empty (still valid) array.
  EXPECT_EQ(lint::render_json({}), "[]\n");
}

TEST(LintTest, JsonEscapesSpecialCharacters) {
  std::vector<Diagnostic> diags(1);
  diags[0].code = "OTL999";
  diags[0].message = "quote \" backslash \\ newline \n tab \t";
  const std::string json = lint::render_json(diags);
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n tab \\t"),
            std::string::npos);
}

TEST(LintTest, JsonEscapesNamesAndNonAscii) {
  // Module/context fields with quotes, backslashes, control bytes, and
  // non-ASCII text must still render as valid JSON (UTF-8 passes through;
  // everything below 0x20 is \u-escaped).
  std::vector<Diagnostic> diags(1);
  diags[0].code = "OTL999";
  diags[0].module_name = "Weird\"Module\\Name";
  diags[0].context = "ctx\x01";
  diags[0].message = "caf\xc3\xa9 \xe2\x86\x92 d\xc3\xa9j\xc3\xa0";
  const std::string json = lint::render_json(diags);
  EXPECT_NE(json.find("Weird\\\"Module\\\\Name"), std::string::npos);
  EXPECT_NE(json.find("ctx\\u0001"), std::string::npos);
  EXPECT_NE(json.find("caf\xc3\xa9 \xe2\x86\x92 d\xc3\xa9j\xc3\xa0"), std::string::npos);
  // No raw quote survives inside a string value: strip the JSON structure
  // quotes and check balance by parsing key boundaries.
  EXPECT_EQ(json.find("Weird\"Module"), std::string::npos);
}

TEST(LintTest, WrittenFootprintIgnoresFrames) {
  ParsedModule m = parse_module(
      "MODULE M\n"
      "VARIABLES x \\in 0..1, y \\in 0..1, z \\in 0..1\n"
      "INIT x = 0\n"
      "NEXT x' = 1 - x /\\ y' = y /\\ UNCHANGED z\n");
  std::vector<VarId> w = analysis::write_footprint(m.spec.next);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(m.vars->name(w[0]), "x");
}

TEST(LintTest, ParserRecordsLocations) {
  ParsedModule m = parse_module(
      "MODULE Locs\n"
      "VARIABLE x \\in 0..3\n"
      "DEFINE Incr == x' = x + 1\n"
      "INIT x = 0\n"
      "NEXT Incr\n"
      "FAIRNESS WF Incr\n");
  EXPECT_EQ(m.locs.module_kw.line, 1u);
  ASSERT_TRUE(m.locs.variables.contains(m.vars->require("x")));
  EXPECT_EQ(m.locs.variables.at(m.vars->require("x")).line, 2u);
  ASSERT_TRUE(m.locs.definitions.contains("Incr"));
  EXPECT_EQ(m.locs.definitions.at("Incr").line, 3u);
  EXPECT_EQ(m.locs.init.line, 4u);
  EXPECT_EQ(m.locs.next.line, 5u);
  ASSERT_EQ(m.locs.fairness.size(), 1u);
  EXPECT_EQ(m.locs.fairness[0].line, 6u);
  EXPECT_EQ(m.declared, (std::vector<VarId>{m.vars->require("x")}));
}

}  // namespace
}  // namespace opentla
