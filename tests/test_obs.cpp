// Unit tests for the observability layer (opentla/obs): counter
// determinism across identical runs, span-nesting well-formedness,
// golden renderer output, and the runtime-disabled no-op guarantee.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "opentla/graph/state_graph.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/obs/obs.hpp"

namespace opentla {
namespace {

namespace obs = ::opentla::obs;

// Every test starts from a clean registry and leaves collection off, so
// tests compose regardless of execution order.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST_F(ObsTest, NamesAreStableSnakeCase) {
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const std::string n = obs::name(static_cast<obs::Counter>(i));
    EXPECT_NE(n, "?");
    for (char c : n) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')
          << n;
    }
  }
  for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
    EXPECT_NE(std::string(obs::name(static_cast<obs::Gauge>(i))), "?");
  }
  EXPECT_STREQ(obs::name(obs::Counter::StatesGenerated), "states_generated");
  EXPECT_STREQ(obs::name(obs::Gauge::PeakConfigurationCount),
               "peak_configuration_count");
}

// The same exploration must produce byte-identical counter deltas: the
// engine's instrumentation counts algorithmic events, not wall-clock
// accidents.
TEST_F(ObsTest, CountersAreDeterministicAcrossIdenticalRuns) {
  VarTable vars;
  const VarId x = vars.declare("x", range_domain(0, 7));
  const Expr next =
      ex::lor(ex::land(ex::lt(ex::var(x), ex::integer(7)),
                       ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1)))),
              ex::land(ex::eq(ex::var(x), ex::integer(7)),
                       ex::eq(ex::primed_var(x), ex::integer(0))));

  auto run = [&]() {
    obs::ScopedSink sink;
    ActionSuccessors gen(vars, next);
    StateGraph g(vars, {State({Value::integer(0)})},
                 [&gen](const State& s, const std::function<void(const State&)>& emit) {
                   gen.for_each_successor(s, emit);
                 });
    EXPECT_EQ(g.num_states(), 8u);
    return sink.take();
  };

  const obs::Snapshot a = run();
  const obs::Snapshot b = run();
  EXPECT_GT(a.counter(obs::Counter::StatesGenerated), 0u);
  EXPECT_GT(a.counter(obs::Counter::SuccessorsEnumerated), 0u);
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_EQ(a.counters[i], b.counters[i])
        << obs::name(static_cast<obs::Counter>(i));
  }
}

// Nested ScopedSinks each see their own delta.
TEST_F(ObsTest, ScopedSinkIsolatesItsScope) {
  obs::ScopedSink outer;
  obs::count(obs::Counter::SccPasses, 3);
  {
    obs::ScopedSink inner;
    obs::count(obs::Counter::SccPasses, 2);
    EXPECT_EQ(inner.take().counter(obs::Counter::SccPasses), 2u);
  }
  EXPECT_EQ(outer.take().counter(obs::Counter::SccPasses), 5u);
}

TEST_F(ObsTest, GaugeKeepsHighWaterMark) {
  obs::set_enabled(true);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 10);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 4);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 12);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 11);
  EXPECT_EQ(obs::snapshot().gauge(obs::Gauge::PeakGraphStates), 12u);
}

// Spans must form a forest: unique nonzero ids, parents that are either 0
// or another recorded span, and child intervals contained in the parent's.
TEST_F(ObsTest, SpanNestingIsWellFormed) {
  obs::set_enabled(true);
  {
    obs::Span outer("outer");
    { obs::Span inner_a("inner_a"); }
    { obs::Span inner_b("inner_b"); }
  }
  const obs::Snapshot snap = obs::snapshot();
  ASSERT_EQ(snap.spans.size(), 3u);
  EXPECT_EQ(snap.spans_dropped, 0u);

  // Spans are recorded at close: children first, the outer span last.
  const obs::SpanRecord& inner_a = snap.spans[0];
  const obs::SpanRecord& inner_b = snap.spans[1];
  const obs::SpanRecord& outer = snap.spans[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner_a.name, "inner_a");
  EXPECT_EQ(inner_b.name, "inner_b");

  std::set<std::uint32_t> ids;
  for (const obs::SpanRecord& s : snap.spans) {
    EXPECT_GT(s.id, 0u);
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
  }
  for (const obs::SpanRecord& s : snap.spans) {
    EXPECT_TRUE(s.parent == 0 || ids.count(s.parent)) << s.name;
  }
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner_a.parent, outer.id);
  EXPECT_EQ(inner_b.parent, outer.id);

  // Interval containment (monotonic clock, child closes before parent).
  for (const obs::SpanRecord* child : {&inner_a, &inner_b}) {
    EXPECT_GE(child->start_us, outer.start_us);
    EXPECT_LE(child->start_us + child->dur_us, outer.start_us + outer.dur_us);
  }
  EXPECT_LE(inner_a.start_us + inner_a.dur_us, inner_b.start_us);
}

TEST_F(ObsTest, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

// Golden test: the JSON renderer's exact output on a hand-built snapshot.
TEST_F(ObsTest, RenderJsonGolden) {
  obs::Snapshot snap;
  snap.counters[static_cast<std::size_t>(obs::Counter::StatesGenerated)] = 2;
  snap.gauges[static_cast<std::size_t>(obs::Gauge::PeakGraphStates)] = 7;
  snap.spans.push_back({"explore", 1, 0, 1, 100, 50});

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"states_generated\": 2,\n"
      "    \"successors_enumerated\": 0,\n"
      "    \"enabled_evaluations\": 0,\n"
      "    \"configs_expanded\": 0,\n"
      "    \"scc_passes\": 0,\n"
      "    \"lasso_candidates\": 0,\n"
      "    \"inclusion_pairs\": 0,\n"
      "    \"product_nodes\": 0,\n"
      "    \"product_steps\": 0,\n"
      "    \"freeze_steps\": 0,\n"
      "    \"refinement_edges_checked\": 0,\n"
      "    \"oracle_evaluations\": 0,\n"
      "    \"par_states_expanded\": 0,\n"
      "    \"par_steals\": 0,\n"
      "    \"par_shard_contention\": 0\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"peak_configuration_count\": 0,\n"
      "    \"peak_graph_states\": 7,\n"
      "    \"peak_product_nodes\": 0,\n"
      "    \"peak_par_workers\": 0\n"
      "  },\n"
      "  \"spans_dropped\": 0,\n"
      "  \"spans\": [\n"
      "    {\"name\": \"explore\", \"id\": 1, \"parent\": 0, \"tid\": 1, "
      "\"ts_us\": 100, \"dur_us\": 50}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(obs::render_json(snap), expected);
}

// Golden test: the Chrome trace_event renderer. One metadata event, one
// "X" complete event per span, one "C" counter sample per nonzero counter
// stamped at the trace's last timestamp.
TEST_F(ObsTest, RenderChromeTraceGolden) {
  obs::Snapshot snap;
  snap.counters[static_cast<std::size_t>(obs::Counter::StatesGenerated)] = 2;
  snap.spans.push_back({"explore", 1, 0, 1, 100, 50});

  const std::string expected =
      "{\"traceEvents\": [\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"opentla\"}},\n"
      "  {\"name\": \"explore\", \"cat\": \"opentla\", \"ph\": \"X\", "
      "\"ts\": 100, \"dur\": 50, \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"id\": 1, \"parent\": 0}},\n"
      "  {\"name\": \"states_generated\", \"ph\": \"C\", \"ts\": 150, "
      "\"pid\": 1, \"args\": {\"value\": 2}}\n"
      "], \"displayTimeUnit\": \"ms\"}\n";
  EXPECT_EQ(obs::render_chrome_trace(snap), expected);
}

TEST_F(ObsTest, RenderHumanMentionsEveryCounter) {
  obs::Snapshot snap;
  snap.spans.push_back({"explore", 1, 0, 1, 100, 50});
  const std::string table = obs::render_human(snap);
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_NE(table.find(obs::name(static_cast<obs::Counter>(i))),
              std::string::npos);
  }
  for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
    EXPECT_NE(table.find(obs::name(static_cast<obs::Gauge>(i))),
              std::string::npos);
  }
  EXPECT_NE(table.find("explore"), std::string::npos);
}

TEST_F(ObsTest, WriteBenchJsonRoundTrips) {
  const std::filesystem::path prev = std::filesystem::current_path();
  std::filesystem::current_path(::testing::TempDir());
  obs::Snapshot snap;
  snap.counters[static_cast<std::size_t>(obs::Counter::StatesGenerated)] = 42;
  const std::string path = obs::write_bench_json("unit_test", snap);
  std::filesystem::current_path(prev);
  ASSERT_EQ(path, "BENCH_unit_test.json");

  std::ifstream in(std::filesystem::path(::testing::TempDir()) / path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();
  EXPECT_NE(body.find("\"schema\": \"opentla-bench-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(body.find("\"states_generated\": 42"), std::string::npos);
  EXPECT_NE(body.find("\"peak_configuration_count\": 0"), std::string::npos);
}

// The parallel engine's counters: a multi-threaded exploration reports its
// worker-pool width and expansion count, and — because the graph must be
// canonical — the *graph-shape* counters match a serial run of the same
// space exactly. Steal/contention counts are scheduling-dependent, so only
// their presence in the snapshot is asserted, not a value.
TEST_F(ObsTest, ParallelCountersAreRecordedAndGraphCountersMatchSerial) {
  VarTable vars;
  const VarId x = vars.declare("x", range_domain(0, 63));
  const Expr next =
      ex::lor(ex::land(ex::lt(ex::var(x), ex::integer(63)),
                       ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1)))),
              ex::land(ex::eq(ex::var(x), ex::integer(63)),
                       ex::eq(ex::primed_var(x), ex::integer(0))));
  ActionSuccessors gen(vars, next);
  const StateGraph::SuccessorFn succ =
      [&gen](const State& s, const std::function<void(const State&)>& emit) {
        gen.for_each_successor(s, emit);
      };
  const State init({Value::integer(0)});

  auto run = [&](unsigned threads) {
    obs::ScopedSink sink;
    ExploreOptions opts;
    opts.threads = threads;
    StateGraph g(vars, {init}, succ, opts);
    EXPECT_EQ(g.num_states(), 64u);
    return sink.take();
  };

  const obs::Snapshot serial = run(1);
  const obs::Snapshot parallel = run(4);

  // Serial exploration never touches the par.* instruments.
  EXPECT_EQ(serial.counter(obs::Counter::ParStatesExpanded), 0u);
  EXPECT_EQ(serial.counter(obs::Counter::ParSteals), 0u);
  EXPECT_EQ(serial.gauge(obs::Gauge::PeakParWorkers), 0u);

  // The parallel run expands every state exactly once and records its pool.
  EXPECT_EQ(parallel.counter(obs::Counter::ParStatesExpanded), 64u);
  EXPECT_EQ(parallel.gauge(obs::Gauge::PeakParWorkers), 4u);
  // Graph-shape counters are engine-independent.
  EXPECT_EQ(parallel.counter(obs::Counter::StatesGenerated),
            serial.counter(obs::Counter::StatesGenerated));
  EXPECT_EQ(parallel.counter(obs::Counter::SuccessorsEnumerated),
            serial.counter(obs::Counter::SuccessorsEnumerated));
}

// With the runtime flag off, every primitive the macros expand to must
// leave the registry untouched, and Span construction must not record.
TEST_F(ObsTest, RuntimeDisabledRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  OPENTLA_OBS_COUNT(StatesGenerated);
  OPENTLA_OBS_COUNT_N(ConfigsExpanded, 17);
  OPENTLA_OBS_GAUGE_MAX(PeakGraphStates, 99);
  { OPENTLA_OBS_SPAN("ignored"); }
  { obs::Span direct("also_ignored"); }
  const obs::Snapshot snap = obs::snapshot();
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_EQ(snap.counters[i], 0u);
  }
  for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
    EXPECT_EQ(snap.gauges[i], 0u);
  }
  EXPECT_TRUE(snap.spans.empty());
}

}  // namespace
}  // namespace opentla
